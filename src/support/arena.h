/**
 * @file
 * A chunked bump allocator for the dynamic-analysis data plane.
 *
 * Per-event metadata work dominates dynamic-analysis overhead
 * (Section 2.3), and the single biggest constant factor in a naive
 * implementation is a heap allocation per event or per frame.  An
 * Arena turns those into pointer bumps: allocations come out of large
 * chunks, are never freed individually, and all storage is reclaimed
 * at once when the arena is destroyed or reset.  Used by the Giri
 * slicer's per-frame register tables; anything whose lifetime is
 * "the whole trace" belongs here.
 */

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "support/common.h"

namespace oha::support {

/** Chunked bump allocator; individual allocations are never freed. */
class Arena
{
  public:
    /** @p chunkBytes is the granularity of the backing allocations;
     *  requests larger than a chunk get a dedicated chunk. */
    explicit Arena(std::size_t chunkBytes = kDefaultChunkBytes)
        : chunkBytes_(chunkBytes)
    {
        OHA_ASSERT(chunkBytes > 0);
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Allocate @p bytes with @p align alignment (power of two). */
    void *
    allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t))
    {
        OHA_ASSERT(align > 0 && (align & (align - 1)) == 0);
        std::size_t cursor = (cursor_ + align - 1) & ~(align - 1);
        if (chunks_.empty() || cursor + bytes > chunkSize_.back()) {
            newChunk(bytes, align);
            cursor = 0; // fresh chunks are max_align_t-aligned
        }
        void *ptr = chunks_.back().get() + cursor;
        cursor_ = cursor + bytes;
        used_ += bytes;
        return ptr;
    }

    /** Allocate an uninitialized array of @p count T. */
    template <typename T>
    T *
    allocateArray(std::size_t count)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena never runs destructors");
        return static_cast<T *>(allocate(count * sizeof(T), alignof(T)));
    }

    /** Drop every allocation but keep the first chunk for reuse. */
    void
    reset()
    {
        if (chunks_.size() > 1) {
            chunks_.erase(chunks_.begin() + 1, chunks_.end());
            chunkSize_.erase(chunkSize_.begin() + 1, chunkSize_.end());
        }
        cursor_ = 0;
        used_ = 0;
    }

    /** Payload bytes handed out since construction / reset(). */
    std::size_t bytesUsed() const { return used_; }

    /** Backing bytes currently reserved across all chunks. */
    std::size_t
    bytesReserved() const
    {
        std::size_t total = 0;
        for (std::size_t size : chunkSize_)
            total += size;
        return total;
    }

  private:
    static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

    void
    newChunk(std::size_t atLeast, std::size_t align)
    {
        // operator new[] returns max_align_t-aligned storage, which
        // bounds every alignment allocate() accepts.
        OHA_ASSERT(align <= alignof(std::max_align_t));
        const std::size_t size = std::max(chunkBytes_, atLeast + align);
        chunks_.push_back(
            std::unique_ptr<std::byte[]>(new std::byte[size]));
        chunkSize_.push_back(size);
        cursor_ = 0;
    }

    std::size_t chunkBytes_;
    std::size_t cursor_ = 0;
    std::size_t used_ = 0;
    std::vector<std::unique_ptr<std::byte[]>> chunks_;
    std::vector<std::size_t> chunkSize_;
};

} // namespace oha::support
