/**
 * @file
 * A small fixed-size thread pool and the run-batching helper that
 * executes independent interpreter runs concurrently.
 *
 * Every execution the OHA pipeline performs — profiling runs,
 * no-custom-sync calibration trials, testing-corpus evaluations — is a
 * pure function of (module, input, schedule seed), so batches of runs
 * can execute on worker threads and have their observations merged in
 * deterministic input-index order.  runBatch() collects results by
 * index and degenerates to the plain serial loop when one thread is
 * configured, so OHA_THREADS=1 reproduces the single-threaded pipeline
 * bit for bit and larger thread counts change wall-clock time only.
 */

#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/common.h"
#include "support/env.h"

namespace oha::support {

/** Upper bound on a sane worker count: oversubscribing beyond a few
 *  threads per core only adds context-switch overhead, and absurd
 *  requests (OHA_THREADS=4000000000) would try to spawn that many
 *  std::threads and take the process down. */
inline std::size_t
maxSaneThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return std::size_t{4} * std::max(1u, hw);
}

/** Fixed-size pool of worker threads draining a shared task queue. */
class ThreadPool
{
  public:
    explicit ThreadPool(std::size_t numThreads)
    {
        // Same range contract as every other thread-count knob
        // (support/env.h): [1, 4x hardware_concurrency].  Callers
        // going through configuredThreads() arrive pre-clamped and
        // pass through silently.
        const std::size_t n =
            clampCount("ThreadPool", numThreads, 1, maxSaneThreads());
        workers_.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            workers_.emplace_back([this] { workerLoop(); });
        }
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        wake_.notify_all();
        for (std::thread &worker : workers_)
            worker.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::size_t numThreads() const { return workers_.size(); }

    /** Enqueue @p task to run on some worker thread. */
    void
    submit(std::function<void()> task)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            OHA_ASSERT(!stopping_);
            queue_.push_back(std::move(task));
            ++pending_;
        }
        wake_.notify_one();
    }

    /** Block until every submitted task has finished executing. */
    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idle_.wait(lock, [this] { return pending_ == 0; });
    }

  private:
    void
    workerLoop()
    {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                wake_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
                if (queue_.empty())
                    return; // stopping, queue drained
                task = std::move(queue_.front());
                queue_.pop_front();
            }
            task();
            {
                std::lock_guard<std::mutex> lock(mutex_);
                if (--pending_ == 0)
                    idle_.notify_all();
            }
        }
    }

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable idle_;
    std::deque<std::function<void()>> queue_;
    std::size_t pending_ = 0;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

namespace detail {

/** Cached OHA_THREADS value; 0 = not parsed yet. */
inline std::atomic<std::size_t> &
cachedEnvThreads()
{
    static std::atomic<std::size_t> cached{0};
    return cached;
}

} // namespace detail

/**
 * Re-read OHA_THREADS into the process-wide cached value and return
 * it.  Called implicitly by the first configuredThreads(); tests that
 * setenv() the variable mid-process must call this explicitly —
 * steady-state callers never touch getenv again, so concurrent
 * setenv/getenv UB is confined to deliberate refresh points.
 */
inline std::size_t
refreshConfiguredThreads()
{
    const std::size_t value =
        envSizeBytes("OHA_THREADS", 1, 1, maxSaneThreads());
    detail::cachedEnvThreads().store(value, std::memory_order_release);
    return value;
}

/**
 * Worker-thread count for a run batch: @p requested when nonzero,
 * else the OHA_THREADS environment variable, else 1.  The default of
 * 1 keeps every pipeline serial unless parallelism is asked for.
 * Values beyond 4x hardware_concurrency() are clamped with a warning.
 * The environment is parsed once and cached in an atomic; see
 * refreshConfiguredThreads().
 */
inline std::size_t
configuredThreads(std::size_t requested = 0)
{
    if (requested > 0)
        return clampCount("requested thread", requested, 1,
                          maxSaneThreads());
    const std::size_t cached =
        detail::cachedEnvThreads().load(std::memory_order_acquire);
    if (cached != 0)
        return cached;
    // First call: parse the environment.  A concurrent first call
    // computes the same value, so the race is benign.
    return refreshConfiguredThreads();
}

/**
 * Execute jobs fn(0) .. fn(count - 1) and return their results in
 * index order.  Jobs must be mutually independent; because results
 * are collected by index (not completion order), callers that merge
 * them serially observe byte-identical outputs for any thread count.
 * With one effective thread the jobs run inline on the caller.
 */
template <typename Fn>
auto
runBatch(std::size_t count, Fn &&fn, std::size_t threads = 0)
    -> std::vector<decltype(fn(std::size_t{}))>
{
    using Result = decltype(fn(std::size_t{}));
    std::vector<Result> results(count);
    const std::size_t numThreads =
        std::min(configuredThreads(threads), count);
    if (numThreads <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            results[i] = fn(i);
        return results;
    }

    ThreadPool pool(numThreads);
    std::mutex errorMutex;
    std::exception_ptr firstError;
    for (std::size_t i = 0; i < count; ++i) {
        pool.submit([&results, &fn, &errorMutex, &firstError, i] {
            try {
                results[i] = fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!firstError)
                    firstError = std::current_exception();
            }
        });
    }
    pool.wait();
    if (firstError)
        std::rethrow_exception(firstError);
    return results;
}

/**
 * Execute jobs fn(0) .. fn(count - 1) on an existing @p pool,
 * submitting one queue task per chunk of up to @p grain consecutive
 * indices instead of one per item — a thousand-element batch of
 * microsecond jobs costs ~count/grain queue round-trips rather than
 * count.  Results are still collected by index, so outputs are
 * byte-identical to the serial loop for any pool size or grain.
 * Degenerates to the inline loop when the pool has one worker or the
 * batch fits in a single chunk.
 *
 * The pool must be otherwise idle: completion is detected with
 * pool.wait(), which blocks until the pool's whole queue drains.
 */
template <typename Fn>
auto
runBatchOn(ThreadPool &pool, std::size_t count, Fn &&fn,
           std::size_t grain = 1)
    -> std::vector<decltype(fn(std::size_t{}))>
{
    using Result = decltype(fn(std::size_t{}));
    std::vector<Result> results(count);
    const std::size_t step = std::max<std::size_t>(grain, 1);
    if (pool.numThreads() <= 1 || count <= step) {
        for (std::size_t i = 0; i < count; ++i)
            results[i] = fn(i);
        return results;
    }

    std::mutex errorMutex;
    std::exception_ptr firstError;
    for (std::size_t begin = 0; begin < count; begin += step) {
        const std::size_t end = std::min(begin + step, count);
        pool.submit(
            [&results, &fn, &errorMutex, &firstError, begin, end] {
                try {
                    for (std::size_t i = begin; i < end; ++i)
                        results[i] = fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(errorMutex);
                    if (!firstError)
                        firstError = std::current_exception();
                }
            });
    }
    pool.wait();
    if (firstError)
        std::rethrow_exception(firstError);
    return results;
}

/**
 * Chunked overload of runBatch(): like the per-item form above but
 * one queue task per @p grain consecutive indices, on a transient
 * pool of configuredThreads(@p threads) workers.  See runBatchOn().
 */
template <typename Fn>
auto
runBatch(std::size_t count, Fn &&fn, std::size_t threads,
         std::size_t grain)
    -> std::vector<decltype(fn(std::size_t{}))>
{
    using Result = decltype(fn(std::size_t{}));
    const std::size_t numThreads =
        std::min(configuredThreads(threads), count);
    if (numThreads <= 1) {
        std::vector<Result> results(count);
        for (std::size_t i = 0; i < count; ++i)
            results[i] = fn(i);
        return results;
    }
    ThreadPool pool(numThreads);
    return runBatchOn(pool, count, fn, grain);
}

} // namespace oha::support
