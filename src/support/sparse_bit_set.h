/**
 * @file
 * Sparse bit set keyed by 32-bit element ids.
 *
 * Points-to sets and slicer visited sets are sparse subsets of a large
 * universe (every memory cell / instruction in the module), so the set
 * is stored as a sorted vector of (word-index, 64-bit word) pairs.
 * The representation favors the operations the Andersen solver needs:
 * unionWith (returning whether anything changed), containment and
 * ordered iteration.
 */

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "support/common.h"

namespace oha {

/** Sparse set of uint32 ids backed by sorted 64-bit chunks. */
class SparseBitSet
{
  public:
    SparseBitSet() = default;

    /** Insert @p id; returns true if it was newly added. */
    bool
    insert(std::uint32_t id)
    {
        const std::uint32_t word = id >> 6;
        const std::uint64_t mask = 1ULL << (id & 63);
        auto it = lowerBound(word);
        if (it != chunks_.end() && it->first == word) {
            if (it->second & mask)
                return false;
            it->second |= mask;
            return true;
        }
        chunks_.insert(it, {word, mask});
        return true;
    }

    /** Remove @p id; returns true if it was present. */
    bool
    erase(std::uint32_t id)
    {
        const std::uint32_t word = id >> 6;
        const std::uint64_t mask = 1ULL << (id & 63);
        auto it = lowerBound(word);
        if (it == chunks_.end() || it->first != word ||
            !(it->second & mask)) {
            return false;
        }
        it->second &= ~mask;
        if (it->second == 0)
            chunks_.erase(it);
        return true;
    }

    /** Membership test. */
    bool
    contains(std::uint32_t id) const
    {
        const std::uint32_t word = id >> 6;
        auto it = lowerBound(word);
        return it != chunks_.end() && it->first == word &&
               (it->second & (1ULL << (id & 63)));
    }

    /** Union @p other into this set; returns true if this set grew. */
    bool
    unionWith(const SparseBitSet &other)
    {
        if (other.chunks_.empty())
            return false;
        bool changed = false;
        std::vector<std::pair<std::uint32_t, std::uint64_t>> merged;
        merged.reserve(chunks_.size() + other.chunks_.size());
        auto a = chunks_.begin();
        auto b = other.chunks_.begin();
        while (a != chunks_.end() || b != other.chunks_.end()) {
            if (b == other.chunks_.end() ||
                (a != chunks_.end() && a->first < b->first)) {
                merged.push_back(*a++);
            } else if (a == chunks_.end() || b->first < a->first) {
                merged.push_back(*b++);
                changed = true;
            } else {
                const std::uint64_t joined = a->second | b->second;
                changed = changed || joined != a->second;
                merged.push_back({a->first, joined});
                ++a;
                ++b;
            }
        }
        chunks_ = std::move(merged);
        return changed;
    }

    /**
     * Union @p other into this set, accumulating the bits that were
     * newly added into @p added (itself union-accumulated, so a
     * caller can collect a running delta across several unions).
     * Returns true if this set grew.  This is the difference-
     * propagation primitive of the Andersen solver: a node's
     * successors receive only the bits in @p added, never the full
     * set.
     */
    bool
    unionWithDiff(const SparseBitSet &other, SparseBitSet &added)
    {
        if (other.chunks_.empty())
            return false;
        Chunks merged;
        Chunks fresh;
        merged.reserve(chunks_.size() + other.chunks_.size());
        auto a = chunks_.begin();
        auto b = other.chunks_.begin();
        while (a != chunks_.end() || b != other.chunks_.end()) {
            if (b == other.chunks_.end() ||
                (a != chunks_.end() && a->first < b->first)) {
                merged.push_back(*a++);
            } else if (a == chunks_.end() || b->first < a->first) {
                merged.push_back(*b);
                fresh.push_back(*b);
                ++b;
            } else {
                const std::uint64_t gained = b->second & ~a->second;
                merged.push_back({a->first, a->second | b->second});
                if (gained)
                    fresh.push_back({a->first, gained});
                ++a;
                ++b;
            }
        }
        chunks_ = std::move(merged);
        if (fresh.empty())
            return false;
        SparseBitSet diff;
        diff.chunks_ = std::move(fresh);
        added.unionWith(diff);
        return true;
    }

    /** Swap contents with @p other. */
    void
    swap(SparseBitSet &other)
    {
        chunks_.swap(other.chunks_);
    }

    /** Intersect this set with @p other in place. */
    void
    intersectWith(const SparseBitSet &other)
    {
        std::vector<std::pair<std::uint32_t, std::uint64_t>> merged;
        auto a = chunks_.begin();
        auto b = other.chunks_.begin();
        while (a != chunks_.end() && b != other.chunks_.end()) {
            if (a->first < b->first) {
                ++a;
            } else if (b->first < a->first) {
                ++b;
            } else {
                const std::uint64_t meet = a->second & b->second;
                if (meet)
                    merged.push_back({a->first, meet});
                ++a;
                ++b;
            }
        }
        chunks_ = std::move(merged);
    }

    /** True if this set and @p other share at least one element. */
    bool
    intersects(const SparseBitSet &other) const
    {
        auto a = chunks_.begin();
        auto b = other.chunks_.begin();
        while (a != chunks_.end() && b != other.chunks_.end()) {
            if (a->first < b->first)
                ++a;
            else if (b->first < a->first)
                ++b;
            else if (a->second & b->second)
                return true;
            else {
                ++a;
                ++b;
            }
        }
        return false;
    }

    /** Number of elements. */
    std::size_t
    size() const
    {
        std::size_t n = 0;
        for (const auto &[word, bits] : chunks_)
            n += static_cast<std::size_t>(__builtin_popcountll(bits));
        return n;
    }

    bool empty() const { return chunks_.empty(); }
    void clear() { chunks_.clear(); }

    bool
    operator==(const SparseBitSet &other) const
    {
        return chunks_ == other.chunks_;
    }

    /** Invoke @p fn for every element in ascending order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[word, bits] : chunks_) {
            std::uint64_t rest = bits;
            while (rest) {
                const int bit = __builtin_ctzll(rest);
                fn(static_cast<std::uint32_t>((word << 6) + bit));
                rest &= rest - 1;
            }
        }
    }

    /** Materialize the elements in ascending order. */
    std::vector<std::uint32_t>
    toVector() const
    {
        std::vector<std::uint32_t> out;
        out.reserve(size());
        forEach([&](std::uint32_t id) { out.push_back(id); });
        return out;
    }

    /** Approximate heap footprint, for cache byte budgeting. */
    std::size_t
    byteSizeEstimate() const
    {
        return sizeof(*this) +
               chunks_.capacity() *
                   sizeof(std::pair<std::uint32_t, std::uint64_t>);
    }

    /** FNV-style hash of the set contents (used by HVN). */
    std::uint64_t
    hash() const
    {
        std::uint64_t h = 0xcbf29ce484222325ULL;
        for (const auto &[word, bits] : chunks_) {
            h = (h ^ word) * 0x100000001b3ULL;
            h = (h ^ bits) * 0x100000001b3ULL;
        }
        return h;
    }

  private:
    using Chunks = std::vector<std::pair<std::uint32_t, std::uint64_t>>;

    Chunks::iterator
    lowerBound(std::uint32_t word)
    {
        auto it = chunks_.begin();
        auto last = chunks_.end();
        while (it != last) {
            auto mid = it + (last - it) / 2;
            if (mid->first < word)
                it = mid + 1;
            else
                last = mid;
        }
        return it;
    }

    Chunks::const_iterator
    lowerBound(std::uint32_t word) const
    {
        return const_cast<SparseBitSet *>(this)->lowerBound(word);
    }

    Chunks chunks_;
};

} // namespace oha
