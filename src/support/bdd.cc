#include "support/bdd.h"

namespace oha {

namespace {

/** Pack three 21-bit fields into a 64-bit cache key. */
std::uint64_t
pack3(std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    return (a << 42) ^ (b << 21) ^ c ^ (a * 0x9e3779b97f4a7c15ULL);
}

} // namespace

BddManager::BddManager(unsigned numVars) : numVars_(numVars)
{
    // Slots 0 and 1 are the terminals; var == numVars_ marks them and
    // sorts them below every real variable in the order.
    nodes_.push_back({numVars_, 0, 0});
    nodes_.push_back({numVars_, 1, 1});
}

std::uint32_t
BddManager::topVar(BddRef f) const
{
    return nodes_[f].var;
}

BddRef
BddManager::makeNode(std::uint32_t var, BddRef low, BddRef high)
{
    if (low == high)
        return low;
    const std::uint64_t key = pack3(var, low, high);
    auto it = unique_.find(key);
    if (it != unique_.end())
        return it->second;
    const BddRef ref = static_cast<BddRef>(nodes_.size());
    nodes_.push_back({var, low, high});
    unique_.emplace(key, ref);
    return ref;
}

BddRef
BddManager::var(unsigned v)
{
    OHA_ASSERT(v < numVars_);
    return makeNode(v, falseBdd(), trueBdd());
}

BddRef
BddManager::nvar(unsigned v)
{
    OHA_ASSERT(v < numVars_);
    return makeNode(v, trueBdd(), falseBdd());
}

BddRef
BddManager::ite(BddRef f, BddRef g, BddRef h)
{
    // Terminal cases.
    if (f == trueBdd())
        return g;
    if (f == falseBdd())
        return h;
    if (g == h)
        return g;
    if (g == trueBdd() && h == falseBdd())
        return f;

    const std::uint64_t key =
        pack3(f, g, h) ^ 0xabcdef0123456789ULL;
    auto it = iteCache_.find(key);
    if (it != iteCache_.end())
        return it->second;

    const std::uint32_t vf = topVar(f);
    const std::uint32_t vg = topVar(g);
    const std::uint32_t vh = topVar(h);
    std::uint32_t top = vf;
    if (vg < top)
        top = vg;
    if (vh < top)
        top = vh;

    auto cofactor = [&](BddRef r, bool hi) {
        if (topVar(r) != top)
            return r;
        return hi ? nodes_[r].high : nodes_[r].low;
    };

    const BddRef hi = ite(cofactor(f, true), cofactor(g, true),
                          cofactor(h, true));
    const BddRef lo = ite(cofactor(f, false), cofactor(g, false),
                          cofactor(h, false));
    const BddRef result = makeNode(top, lo, hi);
    iteCache_.emplace(key, result);
    return result;
}

double
BddManager::satCount(BddRef f)
{
    if (f == falseBdd())
        return 0.0;

    // count(f) over the remaining vars below f's level, then scale by
    // 2^(level of f) to account for free variables above it.
    struct Rec
    {
        BddManager *mgr;
        double
        operator()(BddRef r)
        {
            if (r == falseBdd())
                return 0.0;
            if (r == trueBdd())
                return 1.0;
            auto it = mgr->countCache_.find(r);
            if (it != mgr->countCache_.end())
                return it->second;
            const auto &node = mgr->nodes_[r];
            const std::uint32_t lowVar = mgr->topVar(node.low);
            const std::uint32_t highVar = mgr->topVar(node.high);
            const double low = (*this)(node.low) *
                double(1ULL << (lowVar - node.var - 1));
            const double high = (*this)(node.high) *
                double(1ULL << (highVar - node.var - 1));
            const double total = low + high;
            mgr->countCache_.emplace(r, total);
            return total;
        }
    } rec{this};

    return rec(f) * double(1ULL << topVar(f));
}

} // namespace oha
