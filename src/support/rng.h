/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every source of randomness in the library (thread scheduling,
 * workload input generation) flows through Rng so that executions are
 * a pure function of their seed.  This is what makes the paper's
 * "roll back and re-execute" recovery exact: replaying with the same
 * seed reproduces the same interleaving.
 *
 * The implementation is splitmix64 for seeding plus xoshiro256**.
 */

#pragma once

#include <cstdint>

namespace oha {

/** Deterministic, seedable PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds yield equal streams. */
    explicit Rng(std::uint64_t seed = 0) { reseed(seed); }

    /** Reset the generator to the stream identified by @p seed. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : state_)
            word = splitmix64(x);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw: true with probability @p p. */
    bool
    chance(double p)
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53 < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        x += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::uint64_t state_[4];
};

} // namespace oha
