#include "support/common.h"

#include <cstdarg>

namespace oha {
namespace detail {

namespace {

void
vreport(const char *tag, const char *file, int line, const char *fmt,
        va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    if (file)
        std::fprintf(stderr, " @ %s:%d", file, line);
    std::fprintf(stderr, "\n");
}

} // namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", file, line, fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", file, line, fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", nullptr, 0, fmt, ap);
    va_end(ap);
}

} // namespace detail
} // namespace oha
