/**
 * @file
 * A small reduced-ordered binary decision diagram (ROBDD) package in
 * the style of Brace, Rudell & Bryant (DAC 1990): hash-consed node
 * table, ITE-based apply with a computed cache.
 *
 * The paper tracks points-to sets and the slicer's visited-node set
 * with BDDs (Sections 5.1.1-5.1.2, citing [6, 9]).  BddSet layers an
 * integer-set abstraction on top: a set of uint32 ids is the
 * characteristic function of their binary encodings.
 */

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "support/common.h"

namespace oha {

/** Handle to a BDD node owned by a BddManager. */
using BddRef = std::uint32_t;

/** Hash-consed ROBDD node store with ITE-based operations. */
class BddManager
{
  public:
    /** @param numVars number of boolean variables (order = index order). */
    explicit BddManager(unsigned numVars);

    /** The constant-false BDD. */
    static constexpr BddRef falseBdd() { return 0; }
    /** The constant-true BDD. */
    static constexpr BddRef trueBdd() { return 1; }

    /** BDD of the single variable @p var. */
    BddRef var(unsigned var);
    /** BDD of the negation of variable @p var. */
    BddRef nvar(unsigned var);

    /** If-then-else: ite(f, g, h) = f·g + ¬f·h. */
    BddRef ite(BddRef f, BddRef g, BddRef h);

    BddRef bddAnd(BddRef a, BddRef b) { return ite(a, b, falseBdd()); }
    BddRef bddOr(BddRef a, BddRef b) { return ite(a, trueBdd(), b); }
    BddRef bddNot(BddRef a) { return ite(a, falseBdd(), trueBdd()); }
    BddRef bddDiff(BddRef a, BddRef b) { return ite(b, falseBdd(), a); }

    /** Number of satisfying assignments over all declared variables. */
    double satCount(BddRef f);

    /** Number of live nodes in the table (for memory accounting). */
    std::size_t numNodes() const { return nodes_.size(); }

    unsigned numVars() const { return numVars_; }

  private:
    struct Node
    {
        std::uint32_t var;
        BddRef low;
        BddRef high;
    };

    struct KeyHash
    {
        std::size_t
        operator()(const std::uint64_t &k) const
        {
            std::uint64_t x = k;
            x ^= x >> 33;
            x *= 0xff51afd7ed558ccdULL;
            x ^= x >> 29;
            return static_cast<std::size_t>(x);
        }
    };

    BddRef makeNode(std::uint32_t var, BddRef low, BddRef high);
    std::uint32_t topVar(BddRef f) const;

    unsigned numVars_;
    std::vector<Node> nodes_;
    std::unordered_map<std::uint64_t, BddRef, KeyHash> unique_;
    std::unordered_map<std::uint64_t, BddRef, KeyHash> iteCache_;
    std::unordered_map<std::uint64_t, double, KeyHash> countCache_;
};

/**
 * A set of uint32 ids represented as a BDD over the bits of the id.
 *
 * All sets sharing a BddSetUniverse share structure, so overlapping
 * points-to sets cost little memory — the property that makes BDDs
 * attractive for points-to analysis.
 */
class BddSetUniverse
{
  public:
    /** @param log2Universe bit width of element ids (<= 32). */
    explicit BddSetUniverse(unsigned log2Universe)
        : bits_(log2Universe), mgr_(log2Universe)
    {
        OHA_ASSERT(log2Universe <= 32);
    }

    /** BDD cube recognizing exactly the element @p id. */
    BddRef
    elem(std::uint32_t id)
    {
        auto it = elemCache_.find(id);
        if (it != elemCache_.end())
            return it->second;
        BddRef f = BddManager::trueBdd();
        for (int bit = 0; bit < static_cast<int>(bits_); ++bit) {
            const unsigned var = bits_ - 1 - static_cast<unsigned>(bit);
            const bool on = (id >> bit) & 1;
            f = mgr_.ite(mgr_.var(var), on ? f : BddManager::falseBdd(),
                         on ? BddManager::falseBdd() : f);
        }
        elemCache_.emplace(id, f);
        return f;
    }

    BddRef empty() const { return BddManager::falseBdd(); }
    BddRef insert(BddRef set, std::uint32_t id)
    {
        return mgr_.bddOr(set, elem(id));
    }
    BddRef unite(BddRef a, BddRef b) { return mgr_.bddOr(a, b); }
    BddRef intersect(BddRef a, BddRef b) { return mgr_.bddAnd(a, b); }

    bool
    contains(BddRef set, std::uint32_t id)
    {
        return mgr_.bddAnd(set, elem(id)) != BddManager::falseBdd();
    }

    /** Exact number of elements in @p set. */
    std::uint64_t
    size(BddRef set)
    {
        return static_cast<std::uint64_t>(mgr_.satCount(set));
    }

    BddManager &manager() { return mgr_; }

  private:
    unsigned bits_;
    BddManager mgr_;
    std::unordered_map<std::uint32_t, BddRef> elemCache_;
};

} // namespace oha
