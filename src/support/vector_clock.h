/**
 * @file
 * Vector clocks and epochs for the FastTrack race detector.
 *
 * Follows the representation of Flanagan & Freund (PLDI 2009): an
 * Epoch packs (thread id, clock) into one word; a VectorClock is a
 * growable vector of clocks indexed by thread id.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/common.h"

namespace oha {

/** A (thread, clock) pair packed into 64 bits: tid in the top 16. */
class Epoch
{
  public:
    /** Bits of the packed word holding the clock; the rest is tid. */
    static constexpr unsigned kClockBits = 48;
    /** Largest clock value an epoch can represent. */
    static constexpr std::uint64_t kMaxClock = (1ULL << kClockBits) - 1;

    Epoch() : raw_(0) {}
    Epoch(ThreadId tid, std::uint64_t clock)
        : raw_((static_cast<std::uint64_t>(tid) << kClockBits) |
               (clock & kMaxClock))
    {
        // An unmasked overflowing clock would bleed into the tid bits
        // and silently corrupt tid()/covers().
        OHA_ASSERT(clock <= kMaxClock);
    }

    ThreadId tid() const { return static_cast<ThreadId>(raw_ >> kClockBits); }
    std::uint64_t clock() const { return raw_ & kMaxClock; }
    std::uint64_t raw() const { return raw_; }

    bool operator==(const Epoch &other) const { return raw_ == other.raw_; }

    /** The distinguished "never accessed" epoch (tid 0, clock 0). */
    static Epoch none() { return Epoch(); }

  private:
    std::uint64_t raw_;
};

/** Growable vector clock; absent entries read as 0. */
class VectorClock
{
  public:
    /** Clock component for @p tid. */
    std::uint64_t
    get(ThreadId tid) const
    {
        return tid < clocks_.size() ? clocks_[tid] : 0;
    }

    /** Set the component for @p tid. */
    void
    set(ThreadId tid, std::uint64_t value)
    {
        if (tid >= clocks_.size())
            clocks_.resize(tid + 1, 0);
        clocks_[tid] = value;
    }

    /** Increment the component for @p tid. */
    void incr(ThreadId tid) { set(tid, get(tid) + 1); }

    /** Pointwise maximum: this := this ⊔ other. */
    void
    join(const VectorClock &other)
    {
        if (other.clocks_.size() > clocks_.size())
            clocks_.resize(other.clocks_.size(), 0);
        for (std::size_t i = 0; i < other.clocks_.size(); ++i)
            clocks_[i] = std::max(clocks_[i], other.clocks_[i]);
    }

    /** True if epoch @p e happens-before this clock (e.clock <= V[e.tid]). */
    bool
    covers(Epoch e) const
    {
        return e.clock() <= get(e.tid());
    }

    /** True if every component of @p other is <= this clock's. */
    bool
    coversAll(const VectorClock &other) const
    {
        for (std::size_t i = 0; i < other.clocks_.size(); ++i)
            if (other.clocks_[i] > get(static_cast<ThreadId>(i)))
                return false;
        return true;
    }

    /** The epoch of thread @p tid at this clock. */
    Epoch epochOf(ThreadId tid) const { return Epoch(tid, get(tid)); }

    std::size_t size() const { return clocks_.size(); }

  private:
    std::vector<std::uint64_t> clocks_;
};

} // namespace oha
