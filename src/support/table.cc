#include "support/table.h"

#include <cmath>
#include <cstdio>

#include "support/common.h"

namespace oha {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{}

void
TextTable::addRow(std::vector<std::string> cells)
{
    OHA_ASSERT(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::str() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            if (c + 1 < row.size())
                line.append(widths[c] - row[c].size() + 2, ' ');
        }
        line += '\n';
        return line;
    };

    std::string out = renderRow(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out.append(total, '-');
    out += '\n';
    for (const auto &row : rows_)
        out += renderRow(row);
    return out;
}

std::string
fmtDouble(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
fmtTime(double seconds)
{
    if (seconds < 0)
        return "-";
    if (seconds < 1.0) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
        return buf;
    }
    const long total = std::lround(seconds);
    const long hours = total / 3600;
    const long mins = (total % 3600) / 60;
    const long secs = total % 60;
    char buf[64];
    if (hours > 0)
        std::snprintf(buf, sizeof(buf), "%ldh %ldm %lds", hours, mins, secs);
    else if (mins > 0)
        std::snprintf(buf, sizeof(buf), "%ldm %lds", mins, secs);
    else
        std::snprintf(buf, sizeof(buf), "%lds", secs);
    return buf;
}

std::string
fmtSpeedup(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1fx", value);
    return buf;
}

} // namespace oha
