/**
 * @file
 * Fixed-size Bloom filter over 64-bit keys.
 *
 * OptSlice's likely-unused-call-context invariant needs a set-inclusion
 * check at every call site (Section 5.2.3).  A naive hash-set probe was
 * too slow for the paper's authors, so — exactly as they describe — the
 * fast path is a Bloom filter: a negative answer proves the context was
 * never observed (invariant violation), and positives fall back to the
 * exact set.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace oha {

/** Bloom filter with k=3 derived hash probes. */
class BloomFilter
{
  public:
    /** @param log2Bits log2 of the bit-array size (default 2^16 bits). */
    explicit BloomFilter(unsigned log2Bits = 16)
        : mask_((1ULL << log2Bits) - 1),
          words_((1ULL << log2Bits) / 64, 0)
    {}

    /** Insert a 64-bit key. */
    void
    insert(std::uint64_t key)
    {
        std::uint64_t h = mix(key);
        for (int i = 0; i < 3; ++i) {
            setBit(h & mask_);
            h = mix(h + 0x9e3779b97f4a7c15ULL);
        }
    }

    /**
     * Probe for a key.
     * @retval false the key was definitely never inserted.
     * @retval true the key may have been inserted.
     */
    bool
    mayContain(std::uint64_t key) const
    {
        std::uint64_t h = mix(key);
        for (int i = 0; i < 3; ++i) {
            if (!getBit(h & mask_))
                return false;
            h = mix(h + 0x9e3779b97f4a7c15ULL);
        }
        return true;
    }

  private:
    static std::uint64_t
    mix(std::uint64_t x)
    {
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
        x ^= x >> 33;
        x *= 0xc4ceb9fe1a85ec53ULL;
        x ^= x >> 33;
        return x;
    }

    void setBit(std::uint64_t i) { words_[i >> 6] |= 1ULL << (i & 63); }
    bool
    getBit(std::uint64_t i) const
    {
        return words_[i >> 6] & (1ULL << (i & 63));
    }

    std::uint64_t mask_;
    std::vector<std::uint64_t> words_;
};

} // namespace oha
