#include "support/durable_file.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace oha::support {

std::uint64_t
fnv1a64(const void *data, std::size_t len, std::uint64_t seed)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::uint64_t hash = seed;
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= bytes[i];
        hash *= 1099511628211ull;
    }
    return hash;
}

// -------------------------------------------------------- fault injection

namespace {

// Armed plan, shared by every thread doing persist-path I/O.  The
// counters are plain atomics: the sweep tests arm, run one persist
// path, and disarm — precision under concurrent arming is not a
// requirement, never crashing is.
std::atomic<bool> g_armed{false};
std::atomic<std::uint64_t> g_remaining{0}; ///< matching ops before fault
std::atomic<std::uint32_t> g_opMask{kIoAllOps};
std::atomic<int> g_error{5};
std::atomic<bool> g_crash{false};
std::atomic<std::uint64_t> g_ops{0};
std::atomic<std::uint64_t> g_injected{0};

/** True when this matching op must fail (or crash) now. */
bool
faultHere(std::uint32_t op)
{
    g_ops.fetch_add(1, std::memory_order_relaxed);
    if (!g_armed.load(std::memory_order_acquire))
        return false;
    if (!(g_opMask.load(std::memory_order_relaxed) & op))
        return false;
    // Decrement the countdown until it pins at zero; from then on
    // every matching op faults (sticky, like a failing disk).
    std::uint64_t remaining =
        g_remaining.load(std::memory_order_relaxed);
    while (remaining > 0 &&
           !g_remaining.compare_exchange_weak(
               remaining, remaining - 1, std::memory_order_relaxed)) {
    }
    if (remaining > 0)
        return false;
    g_injected.fetch_add(1, std::memory_order_relaxed);
    if (g_crash.load(std::memory_order_relaxed)) {
        // Simulated SIGKILL at the fault point: no atexit handlers,
        // no buffers flushed, the op itself never happens.
        ::_exit(kIoCrashExitCode);
    }
    return true;
}

} // namespace

void
armIoFault(const IoFaultPlan &plan)
{
    g_remaining.store(plan.failAfter, std::memory_order_relaxed);
    g_opMask.store(plan.opMask, std::memory_order_relaxed);
    g_error.store(plan.error, std::memory_order_relaxed);
    g_crash.store(plan.crash, std::memory_order_relaxed);
    g_injected.store(0, std::memory_order_relaxed);
    g_armed.store(true, std::memory_order_release);
}

void
disarmIoFault()
{
    g_armed.store(false, std::memory_order_release);
}

std::uint64_t
ioOpCount()
{
    return g_ops.load(std::memory_order_relaxed);
}

void
resetIoOpCount()
{
    g_ops.store(0, std::memory_order_relaxed);
}

std::uint64_t
ioFaultsInjected()
{
    return g_injected.load(std::memory_order_relaxed);
}

namespace io {

int
openFd(const char *path, int flags, int mode)
{
    if (faultHere(kIoOpen)) {
        errno = g_error.load(std::memory_order_relaxed);
        return -1;
    }
    return ::open(path, flags, mode);
}

long
pwriteFd(int fd, const void *data, std::size_t len, std::uint64_t offset)
{
    if (faultHere(kIoWrite)) {
        errno = g_error.load(std::memory_order_relaxed);
        return -1;
    }
    return static_cast<long>(
        ::pwrite(fd, data, len, static_cast<::off_t>(offset)));
}

int
fsyncFd(int fd)
{
    if (faultHere(kIoFsync)) {
        errno = g_error.load(std::memory_order_relaxed);
        return -1;
    }
    return ::fsync(fd);
}

int
renamePath(const char *from, const char *to)
{
    if (faultHere(kIoRename)) {
        errno = g_error.load(std::memory_order_relaxed);
        return -1;
    }
    return ::rename(from, to);
}

void *
mmapFd(std::size_t length, int fd, std::uint64_t offset)
{
    if (faultHere(kIoMmap)) {
        errno = g_error.load(std::memory_order_relaxed);
        return MAP_FAILED;
    }
    return ::mmap(nullptr, length, PROT_READ, MAP_PRIVATE, fd,
                  static_cast<::off_t>(offset));
}

} // namespace io

// ------------------------------------------------------------------ writer

namespace {

constexpr char kMagic[8] = {'O', 'H', 'A', 'D', 'U', 'R', '0', '1'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kHeaderBytes = 32;
constexpr std::size_t kBlockHeaderBytes = 16;

void
putU32(std::uint8_t *out, std::uint32_t value)
{
    for (unsigned i = 0; i < 4; ++i)
        out[i] = static_cast<std::uint8_t>((value >> (8 * i)) & 0xff);
}

void
putU64(std::uint8_t *out, std::uint64_t value)
{
    for (unsigned i = 0; i < 8; ++i)
        out[i] = static_cast<std::uint8_t>((value >> (8 * i)) & 0xff);
}

std::uint32_t
getU32(const std::uint8_t *in)
{
    std::uint32_t value = 0;
    for (unsigned i = 0; i < 4; ++i)
        value |= std::uint32_t{in[i]} << (8 * i);
    return value;
}

std::uint64_t
getU64(const std::uint8_t *in)
{
    std::uint64_t value = 0;
    for (unsigned i = 0; i < 8; ++i)
        value |= std::uint64_t{in[i]} << (8 * i);
    return value;
}

/** [magic | version | kind | blockCount | checksum-of-the-preceding]. */
void
encodeHeader(std::uint8_t out[kHeaderBytes], std::uint32_t kind,
             std::uint64_t blockCount)
{
    std::memcpy(out, kMagic, sizeof(kMagic));
    putU32(out + 8, kFormatVersion);
    putU32(out + 12, kind);
    putU64(out + 16, blockCount);
    putU64(out + 24, fnv1a64(out, 24));
}

/** Directory part of @p path ("." when bare). */
std::string
dirnameOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    return slash == 0 ? "/" : path.substr(0, slash);
}

/** fsync the directory containing @p path so a just-renamed entry is
 *  durable.  Failure is surfaced like any other fsync failure. */
int
fsyncDirOf(const std::string &path)
{
    const int dirFd =
        io::openFd(dirnameOf(path).c_str(), O_RDONLY | O_DIRECTORY, 0);
    if (dirFd < 0)
        return -1;
    const int rc = io::fsyncFd(dirFd);
    const int saved = errno;
    ::close(dirFd);
    errno = saved;
    return rc;
}

} // namespace

DurableWriter::DurableWriter(std::string path, std::uint32_t kind)
    : path_(std::move(path)), kind_(kind)
{
    tempPath_ = path_ + ".tmp." + std::to_string(::getpid());
    fd_ = io::openFd(tempPath_.c_str(), O_CREAT | O_TRUNC | O_WRONLY,
                     0644);
    if (fd_ < 0) {
        error_ = errno;
        errorOp_ = "open";
        return;
    }
    // Header placeholder; commit() rewrites it with the final block
    // count.  A reader of a crashed temp file (which is never at the
    // published path anyway) would reject the zero checksum.
    std::uint8_t header[kHeaderBytes] = {};
    write(header, sizeof(header));
}

DurableWriter::~DurableWriter()
{
    if (fd_ >= 0)
        ::close(fd_);
    if (!committed_)
        ::unlink(tempPath_.c_str());
}

void
DurableWriter::failWith(const char *op)
{
    if (error_ == 0) {
        error_ = errno ? errno : 5;
        errorOp_ = op;
    }
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
DurableWriter::write(const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    while (len > 0 && fd_ >= 0) {
        const long n = io::pwriteFd(fd_, bytes, len, offset_);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            failWith("write");
            return;
        }
        bytes += n;
        len -= static_cast<std::size_t>(n);
        offset_ += static_cast<std::uint64_t>(n);
    }
}

void
DurableWriter::addBlock(const void *data, std::size_t len)
{
    beginBlock();
    writeChunk(data, len);
    endBlock();
}

void
DurableWriter::addBlock(const std::string &payload)
{
    addBlock(payload.data(), payload.size());
}

void
DurableWriter::beginBlock()
{
    OHA_ASSERT(!inBlock_);
    inBlock_ = true;
    blockHeaderAt_ = offset_;
    blockLen_ = 0;
    blockSum_ = 14695981039346656037ull;
    std::uint8_t header[kBlockHeaderBytes] = {};
    write(header, sizeof(header));
}

void
DurableWriter::writeChunk(const void *data, std::size_t len)
{
    OHA_ASSERT(inBlock_);
    blockSum_ = fnv1a64(data, len, blockSum_);
    blockLen_ += len;
    write(data, len);
}

void
DurableWriter::endBlock()
{
    OHA_ASSERT(inBlock_);
    inBlock_ = false;
    ++blockCount_;
    static constexpr std::uint8_t zeros[8] = {};
    const auto pad = static_cast<std::size_t>((8 - blockLen_ % 8) % 8);
    if (pad)
        write(zeros, pad);
    // Back-patch the block header now the length/checksum are known.
    std::uint8_t header[kBlockHeaderBytes];
    putU64(header, blockLen_);
    putU64(header + 8, blockSum_);
    const std::uint64_t restore = offset_;
    offset_ = blockHeaderAt_;
    write(header, sizeof(header));
    if (fd_ >= 0)
        offset_ = restore;
}

bool
DurableWriter::commit(std::string *errorOut)
{
    OHA_ASSERT(!inBlock_ && !committed_);
    std::uint8_t header[kHeaderBytes];
    encodeHeader(header, kind_, blockCount_);
    const std::uint64_t restore = offset_;
    offset_ = 0;
    write(header, sizeof(header));
    offset_ = restore;
    if (fd_ >= 0 && io::fsyncFd(fd_) != 0)
        failWith("fsync");
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
        if (io::renamePath(tempPath_.c_str(), path_.c_str()) != 0) {
            failWith("rename");
        } else if (fsyncDirOf(path_) != 0) {
            // The rename happened; a directory-sync failure means it
            // may not survive a power cut.  Surface it (the caller
            // counts a write failure) but leave the published file —
            // it is fully valid if it does survive.
            failWith("fsync-dir");
            committed_ = true;
        } else {
            committed_ = true;
        }
    }
    if (error_ != 0) {
        if (errorOut)
            *errorOut = "durable write of " + path_ + " failed at " +
                        errorOp_ + ": " + std::strerror(error_);
        if (!committed_)
            ::unlink(tempPath_.c_str());
        return false;
    }
    return true;
}

// ------------------------------------------------------------------ reader

namespace {

/** Full pread with EINTR retry; false on error or short read. */
bool
preadAll(int fd, void *data, std::size_t len, std::uint64_t offset)
{
    auto *bytes = static_cast<std::uint8_t *>(data);
    while (len > 0) {
        const ::ssize_t n =
            ::pread(fd, bytes, len, static_cast<::off_t>(offset));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false; // truncated
        bytes += n;
        len -= static_cast<std::size_t>(n);
        offset += static_cast<std::uint64_t>(n);
    }
    return true;
}

void
setError(std::string *errorOut, const std::string &path,
         const std::string &reason)
{
    if (errorOut)
        *errorOut = path + ": " + reason;
}

} // namespace

std::unique_ptr<DurableReader>
DurableReader::open(const std::string &path, std::uint32_t expectKind,
                    std::string *errorOut)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        setError(errorOut, path, std::strerror(errno));
        return nullptr;
    }
    std::unique_ptr<DurableReader> reader(new DurableReader);
    reader->fd_ = fd;

    struct ::stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        setError(errorOut, path, "cannot stat");
        return nullptr;
    }
    reader->fileSize_ = static_cast<std::uint64_t>(st.st_size);

    std::uint8_t header[kHeaderBytes];
    if (reader->fileSize_ < kHeaderBytes ||
        !preadAll(fd, header, sizeof(header), 0)) {
        setError(errorOut, path, "truncated header");
        return nullptr;
    }
    if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
        setError(errorOut, path, "bad magic");
        return nullptr;
    }
    if (getU32(header + 8) != kFormatVersion) {
        setError(errorOut, path,
                 "unsupported format version " +
                     std::to_string(getU32(header + 8)));
        return nullptr;
    }
    if (getU32(header + 12) != expectKind) {
        setError(errorOut, path, "wrong container kind");
        return nullptr;
    }
    if (getU64(header + 24) != fnv1a64(header, 24)) {
        setError(errorOut, path, "header checksum mismatch");
        return nullptr;
    }
    const std::uint64_t blockCount = getU64(header + 16);
    // A block costs at least its header, so this bound also rejects
    // absurd counts before the vector reserve below.
    if (blockCount > reader->fileSize_ / kBlockHeaderBytes) {
        setError(errorOut, path, "implausible block count");
        return nullptr;
    }

    // Walk and checksum every block once, up front: a reader that
    // opens successfully has verified every byte it will ever serve.
    std::vector<std::uint8_t> chunk(64 * 1024);
    std::uint64_t offset = kHeaderBytes;
    reader->blocks_.reserve(static_cast<std::size_t>(blockCount));
    for (std::uint64_t b = 0; b < blockCount; ++b) {
        std::uint8_t blockHeader[kBlockHeaderBytes];
        if (offset + kBlockHeaderBytes > reader->fileSize_ ||
            !preadAll(fd, blockHeader, sizeof(blockHeader), offset)) {
            setError(errorOut, path, "truncated block header");
            return nullptr;
        }
        const std::uint64_t len = getU64(blockHeader);
        const std::uint64_t sum = getU64(blockHeader + 8);
        const std::uint64_t payloadAt = offset + kBlockHeaderBytes;
        const std::uint64_t padded = len + (8 - len % 8) % 8;
        if (padded < len || payloadAt + padded < payloadAt ||
            payloadAt + padded > reader->fileSize_) {
            setError(errorOut, path, "block overruns file");
            return nullptr;
        }
        std::uint64_t hash = 14695981039346656037ull;
        std::uint64_t left = len;
        std::uint64_t at = payloadAt;
        while (left > 0) {
            const std::size_t n = static_cast<std::size_t>(
                left < chunk.size() ? left : chunk.size());
            if (!preadAll(fd, chunk.data(), n, at)) {
                setError(errorOut, path, "block read failed");
                return nullptr;
            }
            hash = fnv1a64(chunk.data(), n, hash);
            left -= n;
            at += n;
        }
        if (hash != sum) {
            setError(errorOut, path,
                     "block " + std::to_string(b) +
                         " checksum mismatch");
            return nullptr;
        }
        reader->blocks_.push_back({payloadAt, len});
        offset = payloadAt + padded;
    }
    if (offset != reader->fileSize_) {
        setError(errorOut, path, "trailing bytes after last block");
        return nullptr;
    }
    return reader;
}

DurableReader::~DurableReader()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
DurableReader::readBlock(std::size_t i, std::string &out) const
{
    OHA_ASSERT(i < blocks_.size());
    out.resize(static_cast<std::size_t>(blocks_[i].length));
    if (out.empty())
        return true;
    return preadAll(fd_, out.data(), out.size(), blocks_[i].offset);
}

int
DurableReader::releaseFd()
{
    const int fd = fd_;
    fd_ = -1;
    return fd;
}

// ------------------------------------------------------------- plain files

bool
atomicWriteFile(const std::string &path, const std::string &content,
                std::string *errorOut)
{
    const std::string tempPath =
        path + ".tmp." + std::to_string(::getpid());
    const int fd =
        io::openFd(tempPath.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd < 0) {
        setError(errorOut, path, std::strerror(errno));
        return false;
    }
    const auto *bytes =
        reinterpret_cast<const std::uint8_t *>(content.data());
    std::size_t len = content.size();
    std::uint64_t offset = 0;
    while (len > 0) {
        const long n = io::pwriteFd(fd, bytes, len, offset);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            setError(errorOut, path, std::strerror(errno));
            ::close(fd);
            ::unlink(tempPath.c_str());
            return false;
        }
        bytes += n;
        len -= static_cast<std::size_t>(n);
        offset += static_cast<std::uint64_t>(n);
    }
    if (io::fsyncFd(fd) != 0) {
        setError(errorOut, path, std::strerror(errno));
        ::close(fd);
        ::unlink(tempPath.c_str());
        return false;
    }
    ::close(fd);
    if (io::renamePath(tempPath.c_str(), path.c_str()) != 0) {
        setError(errorOut, path, std::strerror(errno));
        ::unlink(tempPath.c_str());
        return false;
    }
    if (fsyncDirOf(path) != 0) {
        // Renamed but possibly not durable across power loss; surface
        // the error, keep the (valid) published file.
        setError(errorOut, path, std::strerror(errno));
        return false;
    }
    return true;
}

} // namespace oha::support
