/**
 * @file
 * An open-addressed hash table from uint64 keys to POD-ish values,
 * built for the per-event hot paths of the dynamic analyses.
 *
 * Shadow memory (FastTrack's per-cell VarState, Giri's last-store
 * table) is looked up on every delivered memory event, so the
 * std::unordered_map combination of per-node allocation, pointer
 * chasing and modulo hashing is exactly the metadata overhead the
 * paper says dominates dynamic analysis (Section 2.3).  FlatMap keeps
 * keys and values in two parallel flat arrays with power-of-two
 * capacity, linear probing and a strong 64-bit mixer, so the common
 * lookup is one probe in one cache line and growth is a plain
 * rehash-by-move.  Deletion is tombstone-free (backward shift), so
 * heavy insert/erase churn cannot degrade probe lengths.
 *
 * One key value (~0) is reserved as the empty sentinel; the id-packing
 * schemes used by the analyses ((obj << 32) | off, frame * 2^16 + reg)
 * never produce it for realistic inputs, and inserting it panics.
 */

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "support/common.h"

namespace oha::support {

/** Open-addressed uint64 -> T hash map (linear probing). */
template <typename T>
class FlatMap
{
  public:
    static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

    FlatMap() = default;

    /** Value for @p key, default-constructing it on first touch. */
    T &
    operator[](std::uint64_t key)
    {
        OHA_ASSERT(key != kEmptyKey);
        if ((size_ + 1) * 8 > capacity() * 7) // load factor 7/8
            grow();
        std::size_t slot = probe(key);
        if (keys_[slot] != key) {
            keys_[slot] = key;
            vals_[slot] = T{};
            ++size_;
        }
        return vals_[slot];
    }

    /** Pointer to the value for @p key, or nullptr. */
    T *
    find(std::uint64_t key)
    {
        if (size_ == 0)
            return nullptr;
        const std::size_t slot = probe(key);
        return keys_[slot] == key ? &vals_[slot] : nullptr;
    }

    const T *
    find(std::uint64_t key) const
    {
        return const_cast<FlatMap *>(this)->find(key);
    }

    /** Erase @p key if present; returns whether it was.  Backward
     *  shift: displaced successors move up, so no tombstones. */
    bool
    erase(std::uint64_t key)
    {
        if (size_ == 0)
            return false;
        std::size_t slot = probe(key);
        if (keys_[slot] != key)
            return false;
        const std::size_t mask = capacity() - 1;
        std::size_t hole = slot;
        for (std::size_t next = (hole + 1) & mask;
             keys_[next] != kEmptyKey; next = (next + 1) & mask) {
            // An entry may fill the hole only if its home slot does
            // not lie (cyclically) between the hole and the entry.
            const std::size_t home = mix(keys_[next]) & mask;
            const bool movable = ((next - home) & mask) >=
                                 ((next - hole) & mask);
            if (movable) {
                keys_[hole] = keys_[next];
                vals_[hole] = std::move(vals_[next]);
                hole = next;
            }
        }
        keys_[hole] = kEmptyKey;
        vals_[hole] = T{};
        --size_;
        return true;
    }

    /** Visit every (key, value) pair in unspecified order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < keys_.size(); ++i)
            if (keys_[i] != kEmptyKey)
                fn(keys_[i], vals_[i]);
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    void
    clear()
    {
        keys_.assign(keys_.size(), kEmptyKey);
        vals_.assign(vals_.size(), T{});
        size_ = 0;
    }

    /** Pre-size for @p expected entries to avoid growth rehashes. */
    void
    reserve(std::size_t expected)
    {
        std::size_t want = kMinCapacity;
        while (expected * 8 > want * 7)
            want *= 2;
        if (want > capacity())
            rehash(want);
    }

  private:
    static constexpr std::size_t kMinCapacity = 16;

    std::size_t capacity() const { return keys_.size(); }

    /** Fibonacci/splitmix-style 64-bit finalizer: full avalanche, so
     *  masking to a power of two is safe for packed sequential keys. */
    static std::uint64_t
    mix(std::uint64_t key)
    {
        key ^= key >> 33;
        key *= 0xff51afd7ed558ccdULL;
        key ^= key >> 33;
        key *= 0xc4ceb9fe1a85ec53ULL;
        key ^= key >> 33;
        return key;
    }

    /** Slot holding @p key, or the empty slot where it would insert.
     *  Requires capacity() > 0 and a free slot (load factor < 1). */
    std::size_t
    probe(std::uint64_t key) const
    {
        const std::size_t mask = capacity() - 1;
        std::size_t slot = mix(key) & mask;
        while (keys_[slot] != key && keys_[slot] != kEmptyKey)
            slot = (slot + 1) & mask;
        return slot;
    }

    void grow() { rehash(capacity() ? capacity() * 2 : kMinCapacity); }

    void
    rehash(std::size_t newCapacity)
    {
        std::vector<std::uint64_t> oldKeys = std::move(keys_);
        std::vector<T> oldVals = std::move(vals_);
        keys_.assign(newCapacity, kEmptyKey);
        vals_.assign(newCapacity, T{});
        for (std::size_t i = 0; i < oldKeys.size(); ++i) {
            if (oldKeys[i] == kEmptyKey)
                continue;
            const std::size_t slot = probe(oldKeys[i]);
            keys_[slot] = oldKeys[i];
            vals_[slot] = std::move(oldVals[i]);
        }
    }

    std::vector<std::uint64_t> keys_;
    std::vector<T> vals_;
    std::size_t size_ = 0;
};

} // namespace oha::support
