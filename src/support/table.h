/**
 * @file
 * Plain-text table rendering for the benchmark harnesses.  Every
 * bench binary regenerates one paper table or figure as an aligned
 * text table / data series, so the formatting lives in one place.
 */

#pragma once

#include <string>
#include <vector>

namespace oha {

/** Column-aligned text table. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must have as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Render with padded columns and a header separator. */
    std::string str() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format @p value with @p decimals fractional digits. */
std::string fmtDouble(double value, int decimals = 1);

/** Format a duration in seconds as the paper does, e.g. "1m 15s". */
std::string fmtTime(double seconds);

/** Render @p value as "3.5x" speedup notation. */
std::string fmtSpeedup(double value);

} // namespace oha
