/**
 * @file
 * Crash-consistent on-disk containers for captures and snapshots.
 *
 * Everything the pipeline persists — trace capture files
 * (exec::persistTrace) and warm-start cache snapshots
 * (service/snapshot.h) — goes through one checksummed block-container
 * format and one atomic-publish protocol:
 *
 *   write <path>.tmp.<pid>  ->  fsync(file)  ->  rename(tmp, path)
 *   ->  fsync(directory)
 *
 * so a reader never observes a half-written file at the published
 * path: rename is atomic, and the directory fsync makes the rename
 * itself durable.  A crash at any point leaves either the previous
 * file or no file — never a torn one.
 *
 * Container layout (all integers little-endian, offsets 8-aligned):
 *
 *   [magic "OHADUR01" | u32 version | u32 kind | u64 blockCount
 *    | u64 headerChecksum]                                 32 bytes
 *   repeat blockCount times:
 *   [u64 payloadLen | u64 payloadChecksum] [payload] [pad to 8]
 *
 * Checksums are FNV-1a-64 (the same primary hash the cache
 * fingerprints use).  DurableReader::open verifies the magic, the
 * version, the header checksum and every block checksum before
 * returning, so a successfully opened container is fully verified —
 * callers only add semantic validation on top.  Any mismatch,
 * truncation or I/O error rejects the whole file with a reason; the
 * caller's contract is "reject, count, recompute" — corrupt state is
 * never served.
 *
 * Block payload offsets are 8-aligned by construction (32-byte
 * header, 16-byte block headers, padded payloads), so an mmap of a
 * block lands a naturally-aligned LeanEvent array.
 *
 * I/O fault injection: every syscall these writers (and
 * exec::SpillFile) issue goes through the armable wrappers below, so
 * tests and the CI fault sweep can fail or crash the process at the
 * k-th open/write/fsync/rename/mmap and assert that every persist
 * path degrades cleanly and every load path rejects-or-recovers.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/common.h"

namespace oha::support {

/** FNV-1a-64 over @p len bytes, continuing from @p seed. */
std::uint64_t fnv1a64(const void *data, std::size_t len,
                      std::uint64_t seed = 14695981039346656037ull);

// -------------------------------------------------------- fault injection

/** Faultable I/O operation classes (bitmask). */
enum : std::uint32_t
{
    kIoOpen = 1u << 0,
    kIoWrite = 1u << 1,
    kIoFsync = 1u << 2,
    kIoRename = 1u << 3,
    kIoMmap = 1u << 4,
    kIoAllOps = (1u << 5) - 1,
};

/**
 * One armed I/O fault: the first @p failAfter operations matching
 * @p opMask succeed, then every matching operation fails with
 * @p error (sticky, like a dying disk) until disarmIoFault().  With
 * @p crash set the process _exit()s at the fault point instead —
 * the moral equivalent of SIGKILL mid-write, for crash-recovery
 * tests (the op is NOT performed first).
 */
struct IoFaultPlan
{
    std::uint64_t failAfter = 0;
    std::uint32_t opMask = kIoAllOps;
    int error = 5; ///< EIO
    bool crash = false;
};

/** Exit code used by crash-mode faults (child-process tests wait for
 *  it to distinguish "crashed at the fault point" from "ran past"). */
constexpr int kIoCrashExitCode = 97;

void armIoFault(const IoFaultPlan &plan);
void disarmIoFault();
/** Matching operations observed since resetIoOpCount() (counted
 *  whether or not a fault is armed — run a path once disarmed to
 *  learn its op count, then sweep failAfter over [0, count)). */
std::uint64_t ioOpCount();
void resetIoOpCount();
/** Faults actually injected since the last arm. */
std::uint64_t ioFaultsInjected();

namespace io {

/** Syscall wrappers with fault injection; signatures mirror the
 *  wrapped calls.  All persist-path I/O MUST go through these. */
int openFd(const char *path, int flags, int mode);
long pwriteFd(int fd, const void *data, std::size_t len,
              std::uint64_t offset);
int fsyncFd(int fd);
int renamePath(const char *from, const char *to);
void *mmapFd(std::size_t length, int fd, std::uint64_t offset);

} // namespace io

// --------------------------------------------------- payload (de)serializer

/** Append-only little-endian byte sink for block payloads. */
class ByteWriter
{
  public:
    void
    u8(std::uint8_t value)
    {
        buf_.push_back(static_cast<char>(value));
    }

    void
    u32(std::uint32_t value)
    {
        for (unsigned shift = 0; shift < 32; shift += 8)
            buf_.push_back(static_cast<char>((value >> shift) & 0xff));
    }

    void
    u64(std::uint64_t value)
    {
        for (unsigned shift = 0; shift < 64; shift += 8)
            buf_.push_back(static_cast<char>((value >> shift) & 0xff));
    }

    void
    bytes(const void *data, std::size_t len)
    {
        buf_.append(static_cast<const char *>(data), len);
    }

    /** Length-prefixed string. */
    void
    str(const std::string &value)
    {
        u64(value.size());
        buf_.append(value);
    }

    const std::string &data() const { return buf_; }
    std::string take() { return std::move(buf_); }

  private:
    std::string buf_;
};

/**
 * Bounds-checked reader over one block payload.  Every accessor
 * checks the remaining length; a short read trips a sticky failure
 * flag and returns zero/empty from then on, so decoding adversarial
 * payloads can never read out of bounds — callers check ok() (and
 * validate element counts against remaining() before reserving) and
 * reject the entry on failure.
 */
class ByteReader
{
  public:
    ByteReader(const void *data, std::size_t size)
        : ptr_(static_cast<const std::uint8_t *>(data)),
          end_(static_cast<const std::uint8_t *>(data) + size)
    {
    }

    explicit ByteReader(const std::string &payload)
        : ByteReader(payload.data(), payload.size())
    {
    }

    bool ok() const { return ok_; }
    void fail() { ok_ = false; }
    std::size_t
    remaining() const
    {
        return static_cast<std::size_t>(end_ - ptr_);
    }

    std::uint8_t
    u8()
    {
        if (!take(1))
            return 0;
        return ptr_[-1];
    }

    std::uint32_t
    u32()
    {
        if (!take(4))
            return 0;
        const std::uint8_t *at = ptr_ - 4;
        std::uint32_t value = 0;
        for (unsigned i = 0; i < 4; ++i)
            value |= std::uint32_t{at[i]} << (8 * i);
        return value;
    }

    std::uint64_t
    u64()
    {
        if (!take(8))
            return 0;
        const std::uint8_t *at = ptr_ - 8;
        std::uint64_t value = 0;
        for (unsigned i = 0; i < 8; ++i)
            value |= std::uint64_t{at[i]} << (8 * i);
        return value;
    }

    std::string
    str()
    {
        const std::uint64_t len = u64();
        if (len > remaining()) {
            fail();
            return {};
        }
        std::string value(reinterpret_cast<const char *>(ptr_),
                          static_cast<std::size_t>(len));
        take(static_cast<std::size_t>(len));
        return value;
    }

    /** Borrow @p len raw bytes (null + fail when short). */
    const std::uint8_t *
    bytes(std::size_t len)
    {
        if (!take(len))
            return nullptr;
        return ptr_ - len;
    }

  private:
    bool
    take(std::size_t len)
    {
        if (!ok_ || remaining() < len) {
            ok_ = false;
            return false;
        }
        ptr_ += len;
        return true;
    }

    const std::uint8_t *ptr_;
    const std::uint8_t *end_;
    bool ok_ = true;
};

// ------------------------------------------------------------- containers

/** Container kinds (header field; a reader asked for one kind rejects
 *  the other, so a capture file is never parsed as a snapshot). */
enum : std::uint32_t
{
    kDurableKindCapture = 1,
    kDurableKindSnapshot = 2,
};

/**
 * Writes one container to <path>.tmp.<pid>, publishing it at @p path
 * only on commit().  Failures are sticky: the first failing syscall
 * records its errno and every later call no-ops, so callers can
 * batch blocks and check once at commit.  An uncommitted writer
 * unlinks its temp file on destruction — an interrupted persist
 * leaves the previously-published file untouched.
 */
class DurableWriter
{
  public:
    DurableWriter(std::string path, std::uint32_t kind);
    ~DurableWriter();
    DurableWriter(const DurableWriter &) = delete;
    DurableWriter &operator=(const DurableWriter &) = delete;

    bool ok() const { return fd_ >= 0; }
    /** errno of the first failure (0 while ok). */
    int error() const { return error_; }

    /** Append one whole block. */
    void addBlock(const void *data, std::size_t len);
    void addBlock(const std::string &payload);

    /** Streaming block: begin, any number of chunks, end (the block
     *  header is back-patched with the final length/checksum). */
    void beginBlock();
    void writeChunk(const void *data, std::size_t len);
    void endBlock();

    /** Finalize the header, fsync, rename into place, fsync the
     *  directory.  False (with @p errorOut set) on any failure —
     *  the published path is untouched and the temp file removed. */
    bool commit(std::string *errorOut = nullptr);

  private:
    void failWith(const char *op);
    void write(const void *data, std::size_t len);

    std::string path_;
    std::string tempPath_;
    std::uint32_t kind_;
    int fd_ = -1;
    int error_ = 0;
    std::string errorOp_;
    std::uint64_t offset_ = 0;
    std::uint64_t blockCount_ = 0;
    bool committed_ = false;
    // streaming-block state
    bool inBlock_ = false;
    std::uint64_t blockHeaderAt_ = 0;
    std::uint64_t blockLen_ = 0;
    std::uint64_t blockSum_ = 0;
};

/**
 * Opens and FULLY verifies a container: magic, version, kind, header
 * checksum, per-block bounds and checksums, and absence of trailing
 * garbage.  open() returns null with a reason on any defect — a
 * non-null reader's blocks are all checksum-verified.
 */
class DurableReader
{
  public:
    static std::unique_ptr<DurableReader>
    open(const std::string &path, std::uint32_t expectKind,
         std::string *errorOut = nullptr);

    ~DurableReader();
    DurableReader(const DurableReader &) = delete;
    DurableReader &operator=(const DurableReader &) = delete;

    std::size_t numBlocks() const { return blocks_.size(); }
    std::uint64_t
    blockOffset(std::size_t i) const
    {
        return blocks_[i].offset;
    }
    std::uint64_t
    blockLength(std::size_t i) const
    {
        return blocks_[i].length;
    }
    std::uint64_t fileSize() const { return fileSize_; }

    /** Copy block @p i's payload out (empty + false on read error —
     *  possible despite open-time verification if the medium fails
     *  between open and read). */
    bool readBlock(std::size_t i, std::string &out) const;

    /** Hand the fd to the caller (e.g. exec::SpillFile read-only
     *  adoption for mmap replay); the reader no longer closes it. */
    int releaseFd();

  private:
    DurableReader() = default;

    struct Block
    {
        std::uint64_t offset;
        std::uint64_t length;
    };

    int fd_ = -1;
    std::uint64_t fileSize_ = 0;
    std::vector<Block> blocks_;
};

/**
 * Atomically replace @p path with @p content using the same
 * temp+fsync+rename+dirsync protocol (no container framing — for
 * plain-text outputs like bench JSON reports).  An interrupted write
 * never leaves a truncated file at @p path.
 */
bool atomicWriteFile(const std::string &path, const std::string &content,
                     std::string *errorOut = nullptr);

} // namespace oha::support
