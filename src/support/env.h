/**
 * @file
 * Validated environment-variable parsing for size/count knobs.
 *
 * Every tunable the pipeline reads from the environment —
 * OHA_THREADS, OHA_CACHE_BUDGET_MB, OHA_TRACE_SEGMENT_BYTES,
 * OHA_REPLAY_SHARDS, OHA_LINEAGE_DEPTH — goes through this one helper
 * with a single contract: garbage never crashes or silently
 * misconfigures (warn + default), out-of-range values are clamped
 * with a warning, and a well-formed value is honored exactly.
 * OHA_THREADS layers a process-wide cache on top (its steady-state
 * callers must never touch getenv; see refreshConfiguredThreads() in
 * thread_pool.h) but the parse itself is this helper's.
 */

#pragma once

#include <cerrno>
#include <cstdlib>

#include "support/common.h"

namespace oha::support {

/**
 * Clamp @p value to [@p minValue, @p maxValue], warning when the
 * clamp engages.  This is THE range contract for every count/size
 * knob: envSizeBytes() routes parsed environment values through it,
 * and the thread-count paths (support::configuredThreads explicit
 * requests, ThreadPool's constructor) use it directly — one
 * validate/warn/clamp implementation, no per-caller copies.
 * @p origin names the knob in the warning ("OHA_THREADS",
 * "requested", "ThreadPool").
 */
inline std::size_t
clampCount(const char *origin, std::size_t value, std::size_t minValue,
           std::size_t maxValue)
{
    OHA_ASSERT(minValue <= maxValue);
    if (value > maxValue) {
        OHA_WARN("clamping %s value %zu to maximum %zu", origin, value,
                 maxValue);
        return maxValue;
    }
    if (value < minValue) {
        OHA_WARN("clamping %s value %zu to minimum %zu", origin, value,
                 minValue);
        return minValue;
    }
    return value;
}

/**
 * Parse environment variable @p name as a non-negative integer scaled
 * by @p unit (bytes per unit; 1 for plain counts), clamped to
 * [@p minValue, @p maxValue].
 *
 *  - unset            -> @p defaultValue, silently;
 *  - malformed (empty, trailing junk, not a number) -> @p defaultValue
 *    with a warning;
 *  - below/above the clamp range -> the nearest bound with a warning.
 *
 * The environment is re-read on every call (callers are cold paths:
 * once per capture / replay / cache construction), so tests may
 * setenv() between pipeline invocations without a refresh hook.
 * @p defaultValue, @p minValue and @p maxValue are post-scaling
 * byte/count values; the clamp is applied after the unit multiply so
 * an overflowing product also lands on @p maxValue.
 */
inline std::size_t
envSizeBytes(const char *name, std::size_t defaultValue,
             std::size_t minValue, std::size_t maxValue,
             std::size_t unit = 1)
{
    OHA_ASSERT(minValue <= maxValue && unit > 0);
    const char *env = std::getenv(name);
    if (!env)
        return defaultValue;
    // strtoull tolerates leading whitespace and wraps negatives;
    // require a plain digit string so "-3" and " 5" count as
    // malformed rather than silently becoming huge/valid.
    char *end = nullptr;
    errno = 0;
    const unsigned long long parsed =
        (env[0] >= '0' && env[0] <= '9') ? std::strtoull(env, &end, 10)
                                         : 0;
    if (end == env || !end || *end != '\0') {
        OHA_WARN("ignoring malformed %s value '%s' (using default %zu)",
                 name, env, defaultValue);
        return defaultValue;
    }
    // A value too large for unsigned long long saturates strtoull at
    // ULLONG_MAX with ERANGE; report the original text instead of the
    // wrapped/saturated number and land on the maximum.
    if (errno == ERANGE) {
        OHA_WARN("saturating overflowing %s value '%s' to maximum %zu",
                 name, env, maxValue);
        return maxValue;
    }
    // Overflow-safe scale: saturate instead of wrapping, then apply
    // the shared range contract.
    if (parsed > static_cast<unsigned long long>(maxValue) / unit) {
        OHA_WARN("clamping %s value %llu to maximum %zu", name, parsed,
                 maxValue);
        return maxValue;
    }
    return clampCount(name, static_cast<std::size_t>(parsed) * unit,
                      minValue, maxValue);
}

} // namespace oha::support
