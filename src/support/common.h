/**
 * @file
 * Common definitions shared across the OHA library: fixed-width id
 * types, error-reporting helpers and assertion macros.
 *
 * Following the gem5 convention, panic() flags an internal library bug
 * (it aborts), while fatal() flags a user error (bad configuration,
 * malformed program) and exits cleanly.
 */

#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace oha {

/** Module-unique id of an IR instruction. */
using InstrId = std::uint32_t;
/** Module-unique id of a basic block. */
using BlockId = std::uint32_t;
/** Module-unique id of a function. */
using FuncId = std::uint32_t;
/** Dynamic thread id assigned by the interpreter. */
using ThreadId = std::uint32_t;

/** Sentinel for "no instruction". */
constexpr InstrId kNoInstr = static_cast<InstrId>(-1);
/** Sentinel for "no block". */
constexpr BlockId kNoBlock = static_cast<BlockId>(-1);
/** Sentinel for "no function". */
constexpr FuncId kNoFunc = static_cast<FuncId>(-1);

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...);
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...);
void warnImpl(const char *fmt, ...);

} // namespace detail

} // namespace oha

/** Report an internal library bug and abort. */
#define OHA_PANIC(...) \
    ::oha::detail::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Report an unrecoverable user error and exit(1). */
#define OHA_FATAL(...) \
    ::oha::detail::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Print a warning to stderr; execution continues. */
#define OHA_WARN(...) ::oha::detail::warnImpl(__VA_ARGS__)

/** Internal invariant check; active in all build types. */
#define OHA_ASSERT(cond, ...)                                           \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::oha::detail::panicImpl(__FILE__, __LINE__,                \
                                     "assertion failed: %s", #cond);   \
        }                                                               \
    } while (0)
