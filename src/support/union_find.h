/**
 * @file
 * Union-find with path halving, used to collapse pointer-equivalence
 * cycles in the Andersen solver (lazy cycle detection) and merged
 * nodes produced by HVN.
 */

#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "support/common.h"

namespace oha {

/** Disjoint-set forest over dense uint32 ids. */
class UnionFind
{
  public:
    explicit UnionFind(std::size_t n = 0) { reset(n); }

    /** Reinitialize with @p n singleton sets. */
    void
    reset(std::size_t n)
    {
        parent_.resize(n);
        std::iota(parent_.begin(), parent_.end(), 0);
        rank_.assign(n, 0);
    }

    /** Grow to at least @p n elements. */
    void
    grow(std::size_t n)
    {
        const std::size_t old = parent_.size();
        if (n <= old)
            return;
        parent_.resize(n);
        rank_.resize(n, 0);
        for (std::size_t i = old; i < n; ++i)
            parent_[i] = static_cast<std::uint32_t>(i);
    }

    /** Representative of @p x (with path halving). */
    std::uint32_t
    find(std::uint32_t x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    /** Merge the sets of @p a and @p b; returns the new representative. */
    std::uint32_t
    merge(std::uint32_t a, std::uint32_t b)
    {
        a = find(a);
        b = find(b);
        if (a == b)
            return a;
        if (rank_[a] < rank_[b])
            std::swap(a, b);
        parent_[b] = a;
        if (rank_[a] == rank_[b])
            ++rank_[a];
        return a;
    }

    /**
     * Merge with a caller-chosen representative: @p drop's set joins
     * @p keep's, and @p keep stays the representative.  Both must
     * already be representatives.  Used where the surviving id is
     * semantically significant (the wavefront solver collapses cycles
     * to the minimum member id so parallel and serial solves agree on
     * node naming); plain merge() picks by rank instead.
     */
    void
    mergeInto(std::uint32_t keep, std::uint32_t drop)
    {
        OHA_ASSERT(parent_[keep] == keep && parent_[drop] == drop);
        if (keep == drop)
            return;
        parent_[drop] = keep;
        if (rank_[keep] <= rank_[drop])
            rank_[keep] = static_cast<std::uint8_t>(rank_[drop] + 1);
    }

    bool same(std::uint32_t a, std::uint32_t b) { return find(a) == find(b); }

    std::size_t size() const { return parent_.size(); }

  private:
    std::vector<std::uint32_t> parent_;
    std::vector<std::uint8_t> rank_;
};

} // namespace oha
