/**
 * @file
 * Runtime values of the OHA interpreter.
 *
 * A Value is a tagged union: scalar integer, pointer (object id +
 * cell offset), function pointer, or thread handle.  Tagging keeps
 * the interpreter memory-safe: dereferencing a non-pointer is a
 * detected runtime error rather than undefined behaviour.
 */

#pragma once

#include <cstdint>

#include "support/common.h"

namespace oha::exec {

/** Discriminator of a runtime Value. */
enum class ValueKind : std::uint8_t
{
    Scalar,  ///< 64-bit signed integer
    Pointer, ///< (object, offset) reference into the object heap
    FuncPtr, ///< function pointer
    Thread,  ///< thread handle produced by Spawn
};

/** Dynamic object id in the interpreter heap. */
using ObjectId = std::uint32_t;

/** A tagged runtime value. */
struct Value
{
    ValueKind kind = ValueKind::Scalar;
    std::int64_t num = 0;      ///< Scalar payload
    ObjectId obj = 0;          ///< Pointer payload: object id
    std::uint32_t off = 0;     ///< Pointer payload: cell offset
    std::uint32_t idx = 0;     ///< FuncPtr: FuncId; Thread: ThreadId

    static Value
    scalar(std::int64_t v)
    {
        Value value;
        value.kind = ValueKind::Scalar;
        value.num = v;
        return value;
    }

    static Value
    pointer(ObjectId obj, std::uint32_t off)
    {
        Value value;
        value.kind = ValueKind::Pointer;
        value.obj = obj;
        value.off = off;
        return value;
    }

    static Value
    funcPtr(FuncId func)
    {
        Value value;
        value.kind = ValueKind::FuncPtr;
        value.idx = func;
        return value;
    }

    static Value
    thread(ThreadId tid)
    {
        Value value;
        value.kind = ValueKind::Thread;
        value.idx = tid;
        return value;
    }

    bool isScalar() const { return kind == ValueKind::Scalar; }
    bool isPointer() const { return kind == ValueKind::Pointer; }
    bool isFuncPtr() const { return kind == ValueKind::FuncPtr; }
    bool isThread() const { return kind == ValueKind::Thread; }

    /** Truthiness for CondBr: non-zero scalar, or any non-scalar. */
    bool
    truthy() const
    {
        return kind != ValueKind::Scalar || num != 0;
    }

    /** Structural equality (used by pointer comparisons). */
    bool
    operator==(const Value &other) const
    {
        if (kind != other.kind)
            return false;
        switch (kind) {
          case ValueKind::Scalar: return num == other.num;
          case ValueKind::Pointer:
            return obj == other.obj && off == other.off;
          case ValueKind::FuncPtr:
          case ValueKind::Thread: return idx == other.idx;
        }
        return false;
    }
};

} // namespace oha::exec
