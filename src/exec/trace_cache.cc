#include "exec/trace_cache.h"

#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <utility>

#include "service/shared_cache.h"

namespace oha::exec {

namespace {

using service::Fingerprint;
using service::LruList;
using service::SharedCache;

void
appendU64(std::string &out, std::uint64_t value)
{
    for (unsigned shift = 0; shift < 64; shift += 8)
        out.push_back(static_cast<char>((value >> shift) & 0xff));
}

/** Every ExecConfig field, packed for fingerprinting — two configs
 *  with equal packings produce byte-identical recordings. */
Fingerprint
configFingerprint(const ExecConfig &config)
{
    std::string packed;
    packed.reserve((config.input.size() + config.replaySchedule.size() +
                    8) *
                   sizeof(std::uint64_t));
    appendU64(packed, config.input.size());
    for (std::int64_t word : config.input)
        appendU64(packed, static_cast<std::uint64_t>(word));
    appendU64(packed, config.scheduleSeed);
    appendU64(packed, config.maxSteps);
    appendU64(packed, config.minQuantum);
    appendU64(packed, config.maxQuantum);
    appendU64(packed, config.recordSchedule ? 1 : 0);
    appendU64(packed, config.replaySchedule.size());
    for (const ScheduleStep &step : config.replaySchedule) {
        appendU64(packed, step.thread);
        appendU64(packed, step.quantum);
    }
    return service::fingerprintText(packed);
}

struct TraceKey
{
    std::uint64_t moduleFp;
    std::uint64_t configFp;

    bool
    operator<(const TraceKey &other) const
    {
        return std::tie(moduleFp, configFp) <
               std::tie(other.moduleFp, other.configFp);
    }
};

struct Entry
{
    std::uint64_t moduleSecondary = 0;
    std::uint64_t configSecondary = 0;
    std::shared_ptr<const ir::Module> module;
    std::shared_ptr<const RecordedTrace> trace;
    LruList::Handle handle;
};

using TraceMap = std::map<TraceKey, Entry>;

/** The trace section of the shared cache, registered on first use.
 *  Callers MUST materialize this before taking the spine mutex. */
TraceMap &
section()
{
    static TraceMap *instance = [] {
        auto *map = new TraceMap;
        SharedCache::instance().registerSection([map] { map->clear(); });
        return map;
    }();
    return *instance;
}

} // namespace

std::size_t
byteSizeEstimate(const RecordedTrace &trace)
{
    const RunResult &result = trace.result;
    // Charge what the entry actually keeps resident: in-RAM segment
    // payload plus one chunk of arena slack (buffers allocate in
    // 64 KiB chunks).  Spilled segments live in the unlinked
    // overflow file and cost only their index entry here — replays
    // page them in through transient mmap windows, so a cached
    // billion-event capture does not evict the whole budget.
    return sizeof(trace) + trace.events.residentBytes() +
           trace.events.leanResidentBytes() + 64 * 1024 +
           trace.events.numSegments() * (sizeof(SegmentHeader) + 64) +
           result.abortReason.capacity() +
           result.outputs.capacity() *
               sizeof(std::pair<InstrId, std::int64_t>) +
           result.delivered.capacity() * sizeof(EventCounts) +
           result.schedule.capacity() * sizeof(ScheduleStep);
}

std::shared_ptr<const RecordedTrace>
recordRunMemo(const std::shared_ptr<const ir::Module> &module,
              const ExecConfig &config)
{
    OHA_ASSERT(module && module->finalized());

    TraceMap &map = section();
    SharedCache &sc = SharedCache::instance();

    const Fingerprint moduleFp = service::fingerprintModule(module);
    const Fingerprint configFp = configFingerprint(config);
    const TraceKey key{moduleFp.primary, configFp.primary};

    std::uint64_t gen = 0;
    {
        std::lock_guard<std::mutex> lock(sc.mutex());
        gen = sc.generation();
        auto it = map.find(key);
        if (it != map.end()) {
            if (it->second.moduleSecondary == moduleFp.secondary &&
                it->second.configSecondary == configFp.secondary) {
                sc.noteHit();
                sc.lru().touch(it->second.handle);
                return it->second.trace;
            }
            // 64-bit collision: evict the wrong-keyed entry, record
            // fresh (counted, never silently served).
            sc.noteVerifiedMiss();
            sc.lru().remove(it->second.handle);
            map.erase(it);
        } else {
            sc.noteMiss();
        }
    }

    // The recording run happens outside the lock.
    auto trace =
        std::make_shared<const RecordedTrace>(recordRun(*module, config));
    const std::size_t bytes = byteSizeEstimate(*trace);

    std::lock_guard<std::mutex> lock(sc.mutex());
    if (gen != sc.generation()) {
        sc.noteStaleDrop();
        return trace;
    }
    auto it = map.find(key);
    if (it != map.end()) {
        if (it->second.moduleSecondary == moduleFp.secondary &&
            it->second.configSecondary == configFp.secondary)
            return it->second.trace; // first insert wins
        sc.lru().remove(it->second.handle);
        map.erase(it);
    }
    Entry entry;
    entry.moduleSecondary = moduleFp.secondary;
    entry.configSecondary = configFp.secondary;
    entry.module = module;
    entry.trace = std::move(trace);
    auto [pos, inserted] = map.emplace(key, std::move(entry));
    OHA_ASSERT(inserted);
    pos->second.handle =
        sc.lru().insert(bytes, [&map, key] { map.erase(key); });
    std::shared_ptr<const RecordedTrace> shared = pos->second.trace;
    sc.enforceBudget();
    return shared;
}

std::vector<TraceSectionEntry>
exportTraceSection()
{
    TraceMap &map = section();
    SharedCache &sc = SharedCache::instance();
    std::vector<TraceSectionEntry> out;
    std::lock_guard<std::mutex> lock(sc.mutex());
    out.reserve(map.size());
    for (const auto &[key, entry] : map) {
        out.push_back({{key.moduleFp, entry.moduleSecondary},
                       {key.configFp, entry.configSecondary},
                       entry.trace});
    }
    return out;
}

void
admitTraceSectionEntry(const TraceSectionEntry &entry)
{
    if (!entry.trace)
        return;
    TraceMap &map = section();
    SharedCache &sc = SharedCache::instance();
    const TraceKey key{entry.moduleFp.primary, entry.configFp.primary};
    const std::size_t bytes = byteSizeEstimate(*entry.trace);
    std::lock_guard<std::mutex> lock(sc.mutex());
    if (map.find(key) != map.end())
        return; // first insert wins: never displace a live entry
    Entry stored;
    stored.moduleSecondary = entry.moduleFp.secondary;
    stored.configSecondary = entry.configFp.secondary;
    // No module object: restored entries verify fingerprints only.
    stored.trace = entry.trace;
    auto [pos, inserted] = map.emplace(key, std::move(stored));
    OHA_ASSERT(inserted);
    pos->second.handle =
        sc.lru().insert(bytes, [&map, key] { map.erase(key); });
    sc.enforceBudget();
}

} // namespace oha::exec
