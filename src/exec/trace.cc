#include "exec/trace.h"

#include <atomic>
#include <bit>
#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include "support/durable_file.h"
#include "support/env.h"

namespace oha::exec {

namespace {

// Global mmap accounting: tests assert that replaying a spilled
// capture keeps peak resident trace bytes O(segment size × shards)
// rather than O(trace size).
std::atomic<std::size_t> g_mappedNow{0};
std::atomic<std::size_t> g_mappedPeak{0};

void
accountMap(std::size_t bytes)
{
    const std::size_t now =
        g_mappedNow.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    std::size_t peak = g_mappedPeak.load(std::memory_order_relaxed);
    while (now > peak &&
           !g_mappedPeak.compare_exchange_weak(peak, now,
                                               std::memory_order_relaxed)) {
    }
}

void
accountUnmap(std::size_t bytes)
{
    g_mappedNow.fetch_sub(bytes, std::memory_order_relaxed);
}

} // namespace

namespace testing {

std::size_t
mappedTraceBytesNow()
{
    return g_mappedNow.load(std::memory_order_relaxed);
}

std::size_t
mappedTraceBytesPeak()
{
    return g_mappedPeak.load(std::memory_order_relaxed);
}

void
resetMappedTraceBytesPeak()
{
    g_mappedPeak.store(g_mappedNow.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
}

} // namespace testing

std::size_t
configuredSegmentBytes()
{
    // 64 MiB default: the whole existing corpus records well under
    // one segment, so spilling is opt-in via the environment (or
    // TraceStoreOptions) until traces actually outgrow RAM.  The
    // floor keeps a segment big enough for at least one maximal
    // record; the ceiling guards against fat-finger terabyte values.
    return support::envSizeBytes("OHA_TRACE_SEGMENT_BYTES",
                                 std::size_t{64} << 20, std::size_t{4} << 10,
                                 std::size_t{64} << 30);
}

// ---------------------------------------------------------------- SpillFile

SpillFile::Mapping::Mapping(void *base, std::size_t mapLen,
                            std::size_t headSlack)
    : base_(base), mapLen_(mapLen), headSlack_(headSlack)
{
    accountMap(mapLen_);
}

SpillFile::Mapping::~Mapping()
{
    ::munmap(base_, mapLen_);
    accountUnmap(mapLen_);
}

std::shared_ptr<SpillFile>
SpillFile::create(int *errnoOut)
{
    const char *tmpdir = std::getenv("TMPDIR");
    std::string path = (tmpdir && *tmpdir) ? tmpdir : "/tmp";
    path += "/oha-trace-XXXXXX";
    std::vector<char> templ(path.begin(), path.end());
    templ.push_back('\0');
    const int fd = ::mkstemp(templ.data());
    if (fd < 0) {
        if (errnoOut)
            *errnoOut = errno;
        OHA_WARN("trace spill disabled: mkstemp(%s) failed: %s",
                 templ.data(), std::strerror(errno));
        return nullptr;
    }
    // Unlink immediately: the file lives as long as the fd and can
    // never be leaked, even on crash.
    ::unlink(templ.data());
    return std::shared_ptr<SpillFile>(new SpillFile(fd));
}

std::shared_ptr<SpillFile>
SpillFile::adoptReadOnly(int fd, std::uint64_t size)
{
    OHA_ASSERT(fd >= 0);
    auto file = std::shared_ptr<SpillFile>(new SpillFile(fd));
    file->size_ = size;
    file->readOnly_ = true;
    return file;
}

SpillFile::~SpillFile()
{
    ::close(fd_);
}

bool
SpillFile::writeAll(const std::uint8_t *data, std::size_t len)
{
    OHA_ASSERT(!readOnly_, "append to a read-only (adopted) SpillFile");
    while (len > 0) {
        const long n = support::io::pwriteFd(fd_, data, len, size_);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            lastErrno_ = errno;
            OHA_WARN("trace spill write failed: %s; keeping segment "
                     "in RAM",
                     std::strerror(errno));
            return false;
        }
        data += n;
        len -= static_cast<std::size_t>(n);
        size_ += static_cast<std::uint64_t>(n);
    }
    return true;
}

bool
SpillFile::append(const TraceBuffer &buffer, std::uint64_t &offsetOut)
{
    const std::uint64_t start = size_;
    bool ok = true;
    buffer.forEachSpan([&](const std::uint8_t *data, std::size_t len) {
        ok = ok && writeAll(data, len);
    });
    if (!ok) {
        // Truncate the partial tail so the next append starts clean.
        if (::ftruncate(fd_, static_cast<::off_t>(start)) == 0)
            size_ = start;
        return false;
    }
    offsetOut = start;
    return true;
}

bool
SpillFile::append(const void *data, std::size_t len,
                  std::uint64_t &offsetOut)
{
    const std::uint64_t rollback = size_;
    static constexpr std::uint8_t zeros[8] = {};
    const auto pad = static_cast<std::size_t>((8 - size_ % 8) % 8);
    bool ok = pad == 0 || writeAll(zeros, pad);
    const std::uint64_t start = size_;
    ok = ok && writeAll(static_cast<const std::uint8_t *>(data), len);
    if (!ok) {
        if (::ftruncate(fd_, static_cast<::off_t>(rollback)) == 0)
            size_ = rollback;
        return false;
    }
    offsetOut = start;
    return true;
}

std::shared_ptr<const SpillFile::Mapping>
SpillFile::map(std::uint64_t offset, std::size_t length) const
{
    static const std::size_t page =
        static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    const std::uint64_t alignedOff = offset & ~(std::uint64_t{page} - 1);
    const std::size_t headSlack = static_cast<std::size_t>(offset - alignedOff);
    const std::size_t mapLen = length + headSlack;
    void *base = support::io::mmapFd(mapLen, fd_, alignedOff);
    if (base == MAP_FAILED) {
        OHA_WARN("mmap of spilled trace segment failed: %s",
                 std::strerror(errno));
        return nullptr;
    }
    return std::make_shared<const Mapping>(base, mapLen, headSlack);
}

// ---------------------------------------------------------------- TraceStore

TraceStore::TraceStore(const TraceStoreOptions &options)
    : segmentBytes_(options.segmentBytes != 0 ? options.segmentBytes
                                              : configuredSegmentBytes()),
      captureValues_(options.captureValues)
{
}

void
TraceStore::closeOpenSegment()
{
    OHA_ASSERT(!finished_, "closeOpenSegment() after finish()");
    const std::size_t bytes = open_.sizeBytes();
    if (bytes == 0)
        return;

    Segment segment;
    segment.header = openHeader_;
    segment.header.bytes = bytes;
    segment.header.leanEntries = openLean_.size();
    if (captureValues_)
        segment.header.flags |= SegmentHeader::kFlagHasValues;

    if (!file_ && !spillFailed_) {
        int createErrno = 0;
        file_ = SpillFile::create(&createErrno);
        if (!file_) {
            spillFailed_ = true;
            spillStats_.lastErrno = createErrno;
        }
    }
    bool onDisk = false;
    if (file_ && !spillFailed_) {
        onDisk = file_->append(open_, segment.fileOffset);
        if (!onDisk) {
            // Mid-stream spill failure (disk full, I/O error): stop
            // retrying disk for the rest of this capture, but KEEP
            // the spill file — segments already written to it stay
            // on disk and replay normally; only new segments fall
            // back to RAM.  The errno is surfaced via spillStats().
            spillFailed_ = true;
            spillStats_.lastErrno = file_->lastErrno();
            if (spillStats_.spilledSegments == 0)
                file_.reset(); // nothing on disk yet: drop the file
        }
    }
    if (onDisk) {
        segment.header.flags |= SegmentHeader::kFlagSpilled;
        ++spillStats_.spilledSegments;
    } else {
        segment.buffer = std::make_unique<TraceBuffer>(std::move(open_));
        residentClosed_ += bytes;
        ++spillStats_.ramFallbackSegments;
    }
    // The sidecar index spills with its segment; on failure it stays
    // in RAM like the stream bytes would.
    bool leanOnDisk = false;
    if (onDisk && !openLean_.empty()) {
        leanOnDisk = file_->append(openLean_.data(),
                                   openLean_.size() * sizeof(LeanEvent),
                                   segment.leanFileOffset);
        if (!leanOnDisk) {
            // Same dying-disk response as the stream bytes: keep what
            // is already spilled, stop issuing further disk writes.
            spillFailed_ = true;
            spillStats_.lastErrno = file_->lastErrno();
        }
    }
    if (!leanOnDisk && !openLean_.empty()) {
        leanResident_ += openLean_.size() * sizeof(LeanEvent);
        segment.lean = std::move(openLean_);
    }
    totalBytes_ += bytes;
    segments_.push_back(std::move(segment));

    open_ = TraceBuffer();
    openHeader_ = SegmentHeader{};
    openLean_.clear();
}

void
TraceStore::finish()
{
    if (finished_)
        return;
    // The trailing segment stays in RAM: it is below the spill
    // threshold by construction, and for unspilled captures this
    // preserves the original all-in-memory behavior exactly.  An
    // empty trailing segment (the last record landed precisely on
    // the threshold) is dropped.
    const std::size_t bytes = open_.sizeBytes();
    if (bytes > 0) {
        Segment segment;
        segment.header = openHeader_;
        segment.header.bytes = bytes;
        segment.header.leanEntries = openLean_.size();
        if (captureValues_)
            segment.header.flags |= SegmentHeader::kFlagHasValues;
        segment.buffer = std::make_unique<TraceBuffer>(std::move(open_));
        residentClosed_ += bytes;
        if (!openLean_.empty()) {
            leanResident_ += openLean_.size() * sizeof(LeanEvent);
            segment.lean = std::move(openLean_);
        }
        totalBytes_ += bytes;
        segments_.push_back(std::move(segment));
        open_ = TraceBuffer();
        openHeader_ = SegmentHeader{};
        openLean_.clear();
    }
    finished_ = true;
}

SegmentCursor
TraceStore::cursor(std::size_t i) const
{
    OHA_ASSERT(i < segments_.size());
    const Segment &segment = segments_[i];
    SegmentCursor cursor;
    if (segment.buffer) {
        segment.buffer->forEachSpan(
            [&](const std::uint8_t *data, std::size_t len) {
                cursor.spans_.push_back({data, len});
            });
    } else {
        auto mapping = file_->map(segment.fileOffset,
                                  static_cast<std::size_t>(
                                      segment.header.bytes));
        OHA_ASSERT(mapping, "cannot map spilled trace segment");
        cursor.spans_.push_back(
            {mapping->data(),
             static_cast<std::size_t>(segment.header.bytes)});
        cursor.keepAlive_ = std::move(mapping);
    }
    return cursor;
}

TraceStore::LeanIndexView
TraceStore::leanIndex(std::size_t i) const
{
    OHA_ASSERT(i < segments_.size());
    const Segment &segment = segments_[i];
    LeanIndexView view;
    view.count = static_cast<std::size_t>(segment.header.leanEntries);
    if (view.count == 0)
        return view;
    if (!segment.lean.empty()) {
        view.data = segment.lean.data();
        return view;
    }
    auto mapping = file_->map(segment.leanFileOffset,
                              view.count * sizeof(LeanEvent));
    OHA_ASSERT(mapping, "cannot map spilled trace sidecar index");
    // append() aligned leanFileOffset to 8 bytes and the mapping base
    // is page-aligned, so the head-slack-adjusted pointer satisfies
    // alignof(LeanEvent).
    view.data = reinterpret_cast<const LeanEvent *>(mapping->data());
    view.keepAlive = std::move(mapping);
    return view;
}

// ------------------------------------------------------------- persistence

bool
TraceStore::forEachSegmentBytes(
    std::size_t i,
    const std::function<void(const std::uint8_t *, std::size_t)> &fn) const
{
    OHA_ASSERT(i < segments_.size());
    const Segment &segment = segments_[i];
    if (segment.buffer) {
        segment.buffer->forEachSpan(fn);
        return true;
    }
    auto mapping = file_->map(segment.fileOffset,
                              static_cast<std::size_t>(
                                  segment.header.bytes));
    if (!mapping)
        return false;
    fn(mapping->data(), static_cast<std::size_t>(segment.header.bytes));
    return true;
}

namespace {

// Capture meta encoding, shared between the capture-file meta block
// and the snapshot-embedded blob form.  Bump when any serialized
// field changes; readers reject other versions (recompute, don't
// guess).
constexpr std::uint32_t kTraceMetaVersion = 1;

void
serializeRunResult(support::ByteWriter &out, const RunResult &result)
{
    out.u32(static_cast<std::uint32_t>(result.status));
    out.str(result.abortReason);
    out.u32(result.abortMeta.kind);
    out.u64(result.abortMeta.site);
    out.u64(result.abortMeta.aux);
    out.u64(result.abortMeta.observed);
    out.u32(result.abortMeta.thread);
    out.u64(result.outputs.size());
    for (const auto &[instr, value] : result.outputs) {
        out.u64(instr);
        out.u64(static_cast<std::uint64_t>(value));
    }
    out.u64(result.steps);
    for (std::uint64_t count : result.totalEvents.counts)
        out.u64(count);
    out.u64(result.delivered.size());
    for (const EventCounts &counts : result.delivered)
        for (std::uint64_t count : counts.counts)
            out.u64(count);
    out.u32(result.numThreads);
    out.u64(result.schedule.size());
    for (const ScheduleStep &step : result.schedule) {
        out.u32(step.thread);
        out.u32(step.quantum);
    }
}

bool
deserializeRunResult(support::ByteReader &in, RunResult &result)
{
    const std::uint32_t status = in.u32();
    if (status > static_cast<std::uint32_t>(RunResult::Status::StepLimit))
        return false;
    result.status = static_cast<RunResult::Status>(status);
    result.abortReason = in.str();
    result.abortMeta.kind = in.u32();
    result.abortMeta.site = in.u64();
    result.abortMeta.aux = in.u64();
    result.abortMeta.observed = in.u64();
    result.abortMeta.thread = in.u32();
    const std::uint64_t numOutputs = in.u64();
    if (numOutputs > in.remaining() / 16)
        return false;
    result.outputs.reserve(static_cast<std::size_t>(numOutputs));
    for (std::uint64_t i = 0; i < numOutputs && in.ok(); ++i) {
        const std::uint64_t instr = in.u64();
        const auto value = static_cast<std::int64_t>(in.u64());
        if (instr > kNoInstr)
            return false;
        result.outputs.push_back({static_cast<InstrId>(instr), value});
    }
    result.steps = in.u64();
    for (std::uint64_t &count : result.totalEvents.counts)
        count = in.u64();
    const std::uint64_t numDelivered = in.u64();
    if (numDelivered > in.remaining() / (8 * kNumEventClasses))
        return false;
    result.delivered.resize(static_cast<std::size_t>(numDelivered));
    for (EventCounts &counts : result.delivered)
        for (std::uint64_t &count : counts.counts)
            count = in.u64();
    result.numThreads = in.u32();
    const std::uint64_t numSchedule = in.u64();
    if (numSchedule > in.remaining() / 8)
        return false;
    result.schedule.reserve(static_cast<std::size_t>(numSchedule));
    for (std::uint64_t i = 0; i < numSchedule && in.ok(); ++i) {
        const auto thread = static_cast<ThreadId>(in.u32());
        const std::uint32_t quantum = in.u32();
        result.schedule.push_back({thread, quantum});
    }
    return in.ok();
}

void
serializeSegmentHeader(support::ByteWriter &out, const SegmentHeader &header)
{
    out.u64(header.records);
    out.u64(header.steps);
    out.u64(header.tidBitmap);
    out.u64(header.firstInstr);
    out.u64(header.lastInstr);
    out.u64(header.bytes);
    out.u64(header.leanEntries);
    out.u8(header.flags);
}

bool
deserializeSegmentHeader(support::ByteReader &in, SegmentHeader &header)
{
    header.records = in.u64();
    header.steps = in.u64();
    header.tidBitmap = in.u64();
    const std::uint64_t firstInstr = in.u64();
    const std::uint64_t lastInstr = in.u64();
    header.bytes = in.u64();
    header.leanEntries = in.u64();
    header.flags = in.u8();
    if (firstInstr > kNoInstr || lastInstr > kNoInstr)
        return false;
    header.firstInstr = static_cast<InstrId>(firstInstr);
    header.lastInstr = static_cast<InstrId>(lastInstr);
    // Unknown flag bits mean a writer newer than this reader: reject
    // rather than misinterpret.
    if (header.flags & ~(SegmentHeader::kFlagHasValues |
                         SegmentHeader::kFlagSpilled))
        return false;
    return in.ok();
}

/** Meta prologue shared by the capture file and the snapshot blob:
 *  version, capture knobs, segment count, run result, header table. */
void
serializeTraceMeta(support::ByteWriter &out, const TraceStore &store,
                   const RunResult &result, std::uint64_t numSegments,
                   const std::function<const SegmentHeader &(std::size_t)>
                       &headerAt)
{
    out.u32(kTraceMetaVersion);
    out.u8(store.capturesValues() ? 1 : 0);
    out.u64(store.segmentBytesThreshold());
    out.u64(numSegments);
    serializeRunResult(out, result);
    for (std::uint64_t i = 0; i < numSegments; ++i)
        serializeSegmentHeader(out, headerAt(static_cast<std::size_t>(i)));
}

struct TraceMeta
{
    bool captureValues = false;
    std::uint64_t segmentBytes = 0;
    std::vector<SegmentHeader> headers;
    RunResult result;
};

bool
deserializeTraceMeta(support::ByteReader &in, TraceMeta &meta)
{
    if (in.u32() != kTraceMetaVersion)
        return false;
    const std::uint8_t captureValues = in.u8();
    if (captureValues > 1)
        return false;
    meta.captureValues = captureValues != 0;
    meta.segmentBytes = in.u64();
    if (meta.segmentBytes == 0)
        return false;
    const std::uint64_t numSegments = in.u64();
    if (!deserializeRunResult(in, meta.result))
        return false;
    // 57 bytes per serialized header.
    if (numSegments > in.remaining() / 57)
        return false;
    meta.headers.resize(static_cast<std::size_t>(numSegments));
    std::uint64_t stepSum = 0;
    for (SegmentHeader &header : meta.headers) {
        if (!deserializeSegmentHeader(in, header))
            return false;
        if (header.bytes == 0)
            return false; // empty segments are never stored
        stepSum += header.steps;
    }
    // The replay loop asserts that step flags reproduce the recorded
    // step count; validate it here so a corrupt capture is rejected
    // instead of tripping the assert mid-replay.
    if (stepSum != meta.result.steps)
        return false;
    return in.ok();
}

} // namespace

bool
persistTrace(const RecordedTrace &trace, const std::string &path,
             std::string *errorOut)
{
    const TraceStore &store = trace.events;
    OHA_ASSERT(store.finished_, "persistTrace before finish()");

    support::DurableWriter writer(path, support::kDurableKindCapture);
    support::ByteWriter meta;
    serializeTraceMeta(meta, store, trace.result, store.numSegments(),
                       [&](std::size_t i) -> const SegmentHeader & {
                           return store.header(i);
                       });
    writer.addBlock(meta.data());

    for (std::size_t i = 0; i < store.numSegments(); ++i) {
        const TraceStore::Segment &segment = store.segments_[i];
        writer.beginBlock();
        const bool ok = store.forEachSegmentBytes(
            i, [&](const std::uint8_t *data, std::size_t len) {
                writer.writeChunk(data, len);
            });
        writer.endBlock();
        if (!ok) {
            if (errorOut)
                *errorOut = path + ": cannot map spilled segment " +
                            std::to_string(i);
            OHA_WARN("trace persist to %s failed: segment %zu unmappable",
                     path.c_str(), i);
            return false;
        }
        // Sidecar block (possibly empty) — keeps a fixed
        // 1 + 2*segments block layout the loader can validate.
        if (!segment.lean.empty()) {
            writer.addBlock(segment.lean.data(),
                            segment.lean.size() * sizeof(LeanEvent));
        } else if (segment.header.leanEntries > 0) {
            const std::size_t leanBytes =
                static_cast<std::size_t>(segment.header.leanEntries) *
                sizeof(LeanEvent);
            auto mapping =
                store.file_->map(segment.leanFileOffset, leanBytes);
            if (!mapping) {
                if (errorOut)
                    *errorOut = path + ": cannot map spilled sidecar " +
                                std::to_string(i);
                OHA_WARN("trace persist to %s failed: sidecar %zu "
                         "unmappable",
                         path.c_str(), i);
                return false;
            }
            writer.addBlock(mapping->data(), leanBytes);
        } else {
            writer.addBlock(nullptr, 0);
        }
    }

    std::string error;
    if (!writer.commit(&error)) {
        if (errorOut)
            *errorOut = error;
        OHA_WARN("trace persist failed: %s", error.c_str());
        return false;
    }
    return true;
}

std::shared_ptr<RecordedTrace>
loadTrace(const std::string &path, std::string *errorOut)
{
    const auto reject = [&](const std::string &reason)
        -> std::shared_ptr<RecordedTrace> {
        if (errorOut)
            *errorOut = path + ": " + reason;
        OHA_WARN("rejecting capture file %s: %s", path.c_str(),
                 reason.c_str());
        return nullptr;
    };

    std::string error;
    auto reader = support::DurableReader::open(
        path, support::kDurableKindCapture, &error);
    if (!reader) {
        if (errorOut)
            *errorOut = error;
        OHA_WARN("rejecting capture file: %s", error.c_str());
        return nullptr;
    }

    if (reader->numBlocks() < 1)
        return reject("no meta block");
    std::string metaBytes;
    if (!reader->readBlock(0, metaBytes))
        return reject("meta block unreadable");
    support::ByteReader metaIn(metaBytes);
    TraceMeta meta;
    if (!deserializeTraceMeta(metaIn, meta) || metaIn.remaining() != 0)
        return reject("corrupt meta block");
    if (reader->numBlocks() != 1 + 2 * meta.headers.size())
        return reject("block count does not match segment table");

    // Cross-check every segment/sidecar block length against the
    // header table before adopting anything.
    for (std::size_t i = 0; i < meta.headers.size(); ++i) {
        const SegmentHeader &header = meta.headers[i];
        if (reader->blockLength(1 + 2 * i) != header.bytes)
            return reject("segment " + std::to_string(i) +
                          " length mismatch");
        if (reader->blockLength(2 + 2 * i) !=
            header.leanEntries * sizeof(LeanEvent))
            return reject("sidecar " + std::to_string(i) +
                          " length mismatch");
    }

    auto trace = std::make_shared<RecordedTrace>();
    trace->result = std::move(meta.result);

    TraceStoreOptions options;
    options.segmentBytes = static_cast<std::size_t>(meta.segmentBytes);
    options.captureValues = meta.captureValues;
    TraceStore store(options);

    const std::uint64_t fileSize = reader->fileSize();
    std::vector<std::pair<std::uint64_t, std::uint64_t>> offsets;
    offsets.reserve(meta.headers.size());
    for (std::size_t i = 0; i < meta.headers.size(); ++i)
        offsets.push_back({reader->blockOffset(1 + 2 * i),
                           reader->blockOffset(2 + 2 * i)});
    store.file_ = SpillFile::adoptReadOnly(reader->releaseFd(), fileSize);

    for (std::size_t i = 0; i < meta.headers.size(); ++i) {
        TraceStore::Segment segment;
        segment.header = meta.headers[i];
        // Every loaded segment replays through an mmap window of the
        // capture file, whether or not it was spilled at record time.
        segment.header.flags |= SegmentHeader::kFlagSpilled;
        segment.fileOffset = offsets[i].first;
        segment.leanFileOffset = offsets[i].second;
        store.totalBytes_ +=
            static_cast<std::size_t>(segment.header.bytes);
        ++store.spillStats_.spilledSegments;
        store.segments_.push_back(std::move(segment));
    }
    store.finished_ = true;

    // Verification map pass: prove every window the replayers will
    // need is mappable now, so a load under injected mmap faults is
    // rejected here instead of tripping the replay-time assert.
    for (std::size_t i = 0; i < store.segments_.size(); ++i) {
        const TraceStore::Segment &segment = store.segments_[i];
        if (!store.file_->map(segment.fileOffset,
                              static_cast<std::size_t>(
                                  segment.header.bytes)))
            return reject("segment " + std::to_string(i) +
                          " unmappable");
        if (segment.header.leanEntries > 0 &&
            !store.file_->map(segment.leanFileOffset,
                              static_cast<std::size_t>(
                                  segment.header.leanEntries) *
                                  sizeof(LeanEvent)))
            return reject("sidecar " + std::to_string(i) +
                          " unmappable");
    }

    trace->events = std::move(store);
    return trace;
}

bool
serializeRecordedTrace(const RecordedTrace &trace, support::ByteWriter &out)
{
    const TraceStore &store = trace.events;
    OHA_ASSERT(store.finished_, "serializeRecordedTrace before finish()");
    serializeTraceMeta(out, store, trace.result, store.numSegments(),
                       [&](std::size_t i) -> const SegmentHeader & {
                           return store.header(i);
                       });
    for (std::size_t i = 0; i < store.numSegments(); ++i) {
        const TraceStore::Segment &segment = store.segments_[i];
        bool ok = store.forEachSegmentBytes(
            i, [&](const std::uint8_t *data, std::size_t len) {
                out.bytes(data, len);
            });
        if (!ok)
            return false;
        if (!segment.lean.empty()) {
            out.bytes(segment.lean.data(),
                      segment.lean.size() * sizeof(LeanEvent));
        } else if (segment.header.leanEntries > 0) {
            const std::size_t leanBytes =
                static_cast<std::size_t>(segment.header.leanEntries) *
                sizeof(LeanEvent);
            auto mapping =
                store.file_->map(segment.leanFileOffset, leanBytes);
            if (!mapping)
                return false;
            out.bytes(mapping->data(), leanBytes);
        }
    }
    return true;
}

std::shared_ptr<RecordedTrace>
deserializeRecordedTrace(support::ByteReader &in)
{
    TraceMeta meta;
    if (!deserializeTraceMeta(in, meta))
        return nullptr;
    // The remaining payload must hold every segment + sidecar.
    std::uint64_t needed = 0;
    for (const SegmentHeader &header : meta.headers)
        needed += header.bytes + header.leanEntries * sizeof(LeanEvent);
    if (needed > in.remaining())
        return nullptr;

    auto trace = std::make_shared<RecordedTrace>();
    trace->result = std::move(meta.result);

    TraceStoreOptions options;
    options.segmentBytes = static_cast<std::size_t>(meta.segmentBytes);
    options.captureValues = meta.captureValues;
    TraceStore store(options);

    for (const SegmentHeader &header : meta.headers) {
        const auto bytes = static_cast<std::size_t>(header.bytes);
        const std::uint8_t *payload = in.bytes(bytes);
        if (!payload)
            return nullptr;
        TraceStore::Segment segment;
        segment.header = header;
        const bool wasSpilled =
            header.flags & SegmentHeader::kFlagSpilled;
        segment.header.flags &=
            static_cast<std::uint8_t>(~SegmentHeader::kFlagSpilled);

        bool onDisk = false;
        if (wasSpilled) {
            // Re-spill segments that lived on disk originally, so a
            // restored big capture does not balloon RAM.  Failure
            // falls back to RAM exactly like live capture does.
            if (!store.file_ && !store.spillFailed_) {
                int createErrno = 0;
                store.file_ = SpillFile::create(&createErrno);
                if (!store.file_) {
                    store.spillFailed_ = true;
                    store.spillStats_.lastErrno = createErrno;
                }
            }
            if (store.file_ && !store.spillFailed_) {
                onDisk = store.file_->append(payload, bytes,
                                             segment.fileOffset);
                if (!onDisk) {
                    store.spillFailed_ = true;
                    store.spillStats_.lastErrno =
                        store.file_->lastErrno();
                    if (store.spillStats_.spilledSegments == 0)
                        store.file_.reset();
                }
            }
        }
        if (onDisk) {
            segment.header.flags |= SegmentHeader::kFlagSpilled;
            ++store.spillStats_.spilledSegments;
        } else {
            auto buffer = std::make_unique<TraceBuffer>();
            buffer->putBytes(payload, bytes);
            segment.buffer = std::move(buffer);
            store.residentClosed_ += bytes;
            if (wasSpilled)
                ++store.spillStats_.ramFallbackSegments;
        }

        if (header.leanEntries > 0) {
            const std::size_t leanBytes =
                static_cast<std::size_t>(header.leanEntries) *
                sizeof(LeanEvent);
            const std::uint8_t *leanPayload = in.bytes(leanBytes);
            if (!leanPayload)
                return nullptr;
            bool leanOnDisk = false;
            if (onDisk) {
                leanOnDisk = store.file_->append(
                    leanPayload, leanBytes, segment.leanFileOffset);
                if (!leanOnDisk) {
                    store.spillFailed_ = true;
                    store.spillStats_.lastErrno =
                        store.file_->lastErrno();
                }
            }
            if (!leanOnDisk) {
                segment.lean.resize(
                    static_cast<std::size_t>(header.leanEntries));
                std::memcpy(segment.lean.data(), leanPayload, leanBytes);
                store.leanResident_ += leanBytes;
            }
        }
        store.totalBytes_ += bytes;
        store.segments_.push_back(std::move(segment));
    }
    store.finished_ = true;
    if (!in.ok())
        return nullptr;
    trace->events = std::move(store);
    return trace;
}

// ----------------------------------------------------------------- capture

RecordedTrace
recordRun(const ir::Module &module, const ExecConfig &config)
{
    return recordRun(module, config, TraceStoreOptions{});
}

RecordedTrace
recordRun(const ir::Module &module, const ExecConfig &config,
          const TraceStoreOptions &options)
{
    RecordedTrace trace;
    TraceRecorder recorder(options);
    Interpreter interp(module, config);
    interp.setRecorder(&recorder);
    trace.result = interp.run();
    trace.events = recorder.take();
    return trace;
}

// ------------------------------------------------------------------ replay

void
TraceReplayer::requestAbort(std::string reason)
{
    if (!abortRequested_) {
        abortRequested_ = true;
        abortReason_ = std::move(reason);
    }
}

void
TraceReplayer::requestAbort(std::string reason, const AbortMetadata &meta)
{
    if (!abortRequested_) {
        abortMeta_ = meta;
        requestAbort(std::move(reason));
    }
}

RunResult
TraceReplayer::run()
{
    if (numShards_ > 1 && shard_ != 0)
        return runLeanShard();

    RunResult result;
    result.delivered.assign(attachments_.size(), EventCounts{});

    // Same per-site dispatch snapshot as Interpreter::run(): low byte
    // = attachment cover bits, high byte = event class.
    const std::size_t numInstrs = module_.numInstrs();
    const std::size_t numBlocks = module_.numBlocks();
    OHA_ASSERT(attachments_.size() <= 8,
               "dispatch masks hold at most 8 attachments");
    std::vector<std::uint16_t> dispatch(numInstrs);
    for (InstrId id = 0; id < numInstrs; ++id) {
        dispatch[id] = static_cast<std::uint16_t>(
            static_cast<std::uint16_t>(eventClassOf(module_.instr(id).op))
            << 8);
    }
    std::vector<std::uint8_t> blockMask(numBlocks, 0);
    for (std::size_t i = 0; i < attachments_.size(); ++i) {
        const InstrumentationPlan &plan = *attachments_[i].plan;
        const auto bit = static_cast<std::uint16_t>(1u << i);
        for (InstrId id = 0; id < numInstrs; ++id)
            if (plan.coversInstr(id))
                dispatch[id] |= bit;
        for (BlockId id = 0; id < numBlocks; ++id)
            if (plan.coversBlock(id))
                blockMask[id] |= static_cast<std::uint8_t>(1u << i);
    }

    // Shadow call stacks: the interpreter assigns frame ids globally
    // sequentially from 1 (main's root first), and the record stream
    // is in execution order, so allocating ids in record order
    // reproduces them exactly.
    struct SimFrame
    {
        std::uint64_t frameId;
        const ir::Instruction *callSite; ///< null for thread roots
    };
    std::vector<std::vector<SimFrame>> stacks;
    std::uint64_t nextFrameId = 1;

    const TraceStore &store = trace_.events;
    std::uint64_t stepsStarted = 0;
    std::uint32_t numThreads = 0;
    bool truncated = false;

    // Segments decode standalone (delta chains restart per segment);
    // a spilled segment is mapped only while its cursor lives, so
    // peak resident trace bytes track the segment size, not the
    // trace size.
    for (std::size_t seg = 0; seg < store.numSegments() && !truncated;
         ++seg) {
        const bool hasValues =
            store.header(seg).flags & SegmentHeader::kFlagHasValues;
        SegmentCursor reader = store.cursor(seg);
        std::int64_t prevInstr = 0;
        std::int64_t prevObj = 0;
        std::int64_t prevBlock = 0;

        while (!reader.atEnd()) {
            const std::uint8_t header = reader.byte();
            const std::uint8_t kind = header & 3;
            // Step flag: this record begins a new guest instruction.
            // A live run honours an abort at the next instruction
            // boundary (the aborting instruction completes all its
            // deliveries); stopping here reproduces that exactly.
            if (header & 4) {
                if (abortRequested_) {
                    truncated = true;
                    break;
                }
                ++stepsStarted;
            }
            ThreadId tid = header >> 3;
            if (tid == TraceRecorder::kTidEscape)
                tid = static_cast<ThreadId>(reader.varint());

            switch (kind) {
              case TraceRecorder::kInstrEvent: {
                prevInstr += reader.zigzag();
                const auto id = static_cast<InstrId>(prevInstr);
                const ir::Instruction &ins = module_.instr(id);
                const std::uint16_t disp = dispatch[id];
                auto evMask = static_cast<std::uint8_t>(disp & 0xff);
                const auto cls = static_cast<EventClass>(disp >> 8);
                ++result.totalEvents[cls];

                // Decode the payload into locals first: most records
                // are not covered by any attached plan, and for those
                // the only obligatory work is advancing the delta
                // chains, the shadow stacks and the output log.
                // Building the full EventCtx happens only on
                // delivery.
                ObjectId obj = 0;
                std::uint32_t off = 0;
                FuncId callee = kNoFunc;
                ThreadId otherTid = 0;
                Value value;
                switch (ins.op) {
                  case ir::Opcode::Load:
                  case ir::Opcode::Store:
                    prevObj += reader.zigzag();
                    obj = static_cast<ObjectId>(prevObj);
                    off = static_cast<std::uint32_t>(reader.varint());
                    if (hasValues)
                        value = decodeTraceValue(reader);
                    // Shard filter: a non-owned access still advances
                    // the stream/delta state and the totals above,
                    // but skips context construction and delivery —
                    // the owning shard is the one that analyzes it.
                    if (numShards_ > 1 && !ownsObject(obj))
                        evMask = 0;
                    break;
                  case ir::Opcode::Lock:
                  case ir::Opcode::Unlock:
                    prevObj += reader.zigzag();
                    obj = static_cast<ObjectId>(prevObj);
                    off = static_cast<std::uint32_t>(reader.varint());
                    break;
                  case ir::Opcode::Call:
                    callee = ins.callee;
                    break;
                  case ir::Opcode::ICall:
                    callee = static_cast<FuncId>(reader.varint());
                    break;
                  case ir::Opcode::Spawn:
                  case ir::Opcode::Join:
                    otherTid = static_cast<ThreadId>(reader.varint());
                    break;
                  case ir::Opcode::Output:
                    result.outputs.push_back({ins.id, reader.zigzag()});
                    break;
                  default:
                    break;
                }

                if (evMask) {
                    std::vector<SimFrame> &stack = stacks[tid];
                    EventCtx ctx;
                    ctx.tid = tid;
                    ctx.instr = &ins;
                    ctx.frameId = stack.back().frameId;
                    ctx.obj = obj;
                    ctx.off = off;
                    ctx.calleeResolved = callee;
                    ctx.otherTid = otherTid;
                    ctx.value = value;
                    switch (ins.op) {
                      case ir::Opcode::Call:
                      case ir::Opcode::ICall:
                        ctx.frame2 = nextFrameId;
                        break;
                      case ir::Opcode::Ret:
                        if (stack.size() > 1) {
                            ctx.frame2 = stack[stack.size() - 2].frameId;
                            ctx.callInstr = stack.back().callSite;
                        }
                        break;
                      case ir::Opcode::Spawn:
                        ctx.frame2 = stacks[otherTid].back().frameId;
                        break;
                      default:
                        break;
                    }
                    for (std::uint8_t mask = evMask; mask;
                         mask &= static_cast<std::uint8_t>(mask - 1)) {
                        const unsigned i =
                            static_cast<unsigned>(std::countr_zero(mask));
                        ++result.delivered[i][cls];
                        attachments_[i].tool->onEvent(ctx);
                    }
                }

                // Stack mutations happen after delivery, mirroring
                // the interpreter (the Call event sees the caller's
                // frame as frameId; Ret sees the returning frame).
                if (ins.op == ir::Opcode::Call ||
                    ins.op == ir::Opcode::ICall) {
                    stacks[tid].push_back({nextFrameId++, &ins});
                } else if (ins.op == ir::Opcode::Ret) {
                    stacks[tid].pop_back();
                }
                break;
              }
              case TraceRecorder::kBlockEnter: {
                prevBlock += reader.zigzag();
                const auto block = static_cast<BlockId>(prevBlock);
                ++result.totalEvents[EventClass::BlockEnter];
                for (std::uint8_t mask = blockMask[block]; mask;
                     mask &= static_cast<std::uint8_t>(mask - 1)) {
                    const unsigned i =
                        static_cast<unsigned>(std::countr_zero(mask));
                    ++result.delivered[i][EventClass::BlockEnter];
                    attachments_[i].tool->onBlockEnter(tid, block);
                }
                break;
              }
              case TraceRecorder::kThreadStart: {
                const auto parent =
                    static_cast<ThreadId>(reader.varint());
                const std::uint64_t siteRaw = reader.varint();
                const InstrId spawnSite =
                    siteRaw == 0 ? kNoInstr
                                 : static_cast<InstrId>(siteRaw - 1);
                if (tid >= stacks.size())
                    stacks.resize(tid + 1);
                stacks[tid].push_back({nextFrameId++, nullptr});
                ++numThreads;
                for (const Attachment &attachment : attachments_)
                    attachment.tool->onThreadStart(tid, parent, spawnSite);
                break;
              }
              case TraceRecorder::kThreadFinish: {
                for (const Attachment &attachment : attachments_)
                    attachment.tool->onThreadFinish(tid);
                break;
              }
            }
        }
    }

    result.numThreads = numThreads;
    if (abortRequested_) {
        // Aborted mid-replay (whether or not records remained): a
        // live run would finish the aborting instruction and stop at
        // the top of the scheduler loop with exactly this step count.
        (void)truncated;
        result.status = RunResult::Status::Aborted;
        result.abortReason = abortReason_;
        result.abortMeta = abortMeta_;
        result.steps = stepsStarted;
    } else {
        result.status = trace_.result.status;
        result.abortReason = trace_.result.abortReason;
        result.abortMeta = trace_.result.abortMeta;
        result.steps = trace_.result.steps;
        result.schedule = trace_.result.schedule;
        OHA_ASSERT(stepsStarted == trace_.result.steps,
                   "trace step flags diverge from recorded step count");
    }
    return result;
}

RunResult
TraceReplayer::runLeanShard()
{
    // Worker decode for shards > 0 (shard 0 runs the full loop): the
    // aggregate throughput of an N-shard replay is bounded by how
    // cheaply the N-1 extra workers can reach their partition's
    // events.  Workers therefore never touch the encoded stream at
    // all — they walk the pre-decoded LeanEvent sidecar the recorder
    // captured per segment, so a worker costs O(access + sync
    // events) instead of O(stream bytes).  See the class comment for
    // the reduced-RunResult contract.
    RunResult result;
    result.delivered.assign(attachments_.size(), EventCounts{});

    // Lean shards replay only sidecar classes; a plan covering
    // anything else (calls, rets, blocks, outputs) belongs on the
    // primary.
    for (const Attachment &attachment : attachments_) {
        for (InstrId id = 0; id < module_.numInstrs(); ++id) {
            if (!attachment.plan->coversInstr(id))
                continue;
            switch (module_.instr(id).op) {
              case ir::Opcode::Load:
              case ir::Opcode::Store:
              case ir::Opcode::Lock:
              case ir::Opcode::Unlock:
              case ir::Opcode::Spawn:
              case ir::Opcode::Join:
                break;
              default:
                OHA_ASSERT(false, "plan covering a non-sidecar "
                                  "instruction on a lean worker shard");
            }
        }
        for (BlockId id = 0; id < module_.numBlocks(); ++id)
            OHA_ASSERT(!attachment.plan->coversBlock(id),
                       "block-covering plan on a lean worker shard");
    }

    const TraceStore &store = trace_.events;
    std::uint32_t numThreads = 0;
    for (std::size_t seg = 0; seg < store.numSegments(); ++seg) {
        const TraceStore::LeanIndexView index = store.leanIndex(seg);
        for (std::size_t i = 0; i < index.count; ++i) {
            const LeanEvent &event = index.data[i];
            switch (event.cls) {
              case LeanEvent::kThreadStartCls: {
                ++numThreads;
                const InstrId site =
                    event.off == 0
                        ? kNoInstr
                        : static_cast<InstrId>(event.off - 1);
                for (const Attachment &attachment : attachments_)
                    attachment.tool->onThreadStart(
                        event.tid, static_cast<ThreadId>(event.aux),
                        site);
                break;
              }
              case LeanEvent::kThreadFinishCls:
                for (const Attachment &attachment : attachments_)
                    attachment.tool->onThreadFinish(event.tid);
                break;
              default: {
                const auto cls = static_cast<EventClass>(event.cls);
                if ((cls == EventClass::Load ||
                     cls == EventClass::Store) &&
                    !ownsObject(event.obj))
                    break;
                const ir::Instruction &ins = module_.instr(event.instr);
                EventCtx ctx;
                ctx.tid = event.tid;
                ctx.instr = &ins;
                ctx.obj = event.obj;
                ctx.off = event.off;
                ctx.otherTid = static_cast<ThreadId>(event.aux);
                ctx.calleeResolved = ins.callee;
                for (std::size_t a = 0; a < attachments_.size(); ++a) {
                    if (!attachments_[a].plan->coversInstr(event.instr))
                        continue;
                    ++result.delivered[a][cls];
                    attachments_[a].tool->onEvent(ctx);
                }
                break;
              }
            }
        }
    }

    // The sidecar carries no step flags, so a mid-replay abort has no
    // step boundary to stop at; aborting tools (invariant checkers)
    // belong on the primary shard.
    OHA_ASSERT(!abortRequested_,
               "aborting tool attached to a lean worker shard");
    result.numThreads = numThreads;
    result.status = trace_.result.status;
    result.abortReason = trace_.result.abortReason;
    result.abortMeta = trace_.result.abortMeta;
    result.steps = trace_.result.steps;
    return result;
}

// ----------------------------------------------------------------- testing

namespace testing {

std::size_t
byteOffsetAfterStep(const ir::Module &module, const TraceStore &store,
                    std::uint64_t step)
{
    // Record-skipping decode: same framing as TraceReplayer::run()
    // minus dispatch.  Offsets are relative to the concatenated
    // stream so the result is usable as a spill threshold.
    std::size_t base = 0;
    std::uint64_t steps = 0;
    for (std::size_t seg = 0; seg < store.numSegments(); ++seg) {
        const bool hasValues =
            store.header(seg).flags & SegmentHeader::kFlagHasValues;
        SegmentCursor reader = store.cursor(seg);
        std::int64_t prevInstr = 0;
        while (!reader.atEnd()) {
            const std::size_t recordStart = base + reader.consumed();
            const std::uint8_t header = reader.byte();
            if ((header & 4) && ++steps == step + 1)
                return recordStart;
            if ((header >> 3) == TraceRecorder::kTidEscape)
                reader.varint();
            switch (header & 3) {
              case TraceRecorder::kInstrEvent: {
                prevInstr += reader.zigzag();
                const ir::Instruction &ins =
                    module.instr(static_cast<InstrId>(prevInstr));
                switch (ins.op) {
                  case ir::Opcode::Load:
                  case ir::Opcode::Store:
                    reader.zigzag();
                    reader.varint();
                    if (hasValues)
                        decodeTraceValue(reader);
                    break;
                  case ir::Opcode::Lock:
                  case ir::Opcode::Unlock:
                    reader.zigzag();
                    reader.varint();
                    break;
                  case ir::Opcode::ICall:
                  case ir::Opcode::Spawn:
                  case ir::Opcode::Join:
                    reader.varint();
                    break;
                  case ir::Opcode::Output:
                    reader.zigzag();
                    break;
                  default:
                    break;
                }
                break;
              }
              case TraceRecorder::kBlockEnter:
                reader.zigzag();
                break;
              case TraceRecorder::kThreadStart:
                reader.varint();
                reader.varint();
                break;
              default: // kThreadFinish: header byte only
                break;
            }
        }
        base += static_cast<std::size_t>(store.header(seg).bytes);
    }
    return base;
}

} // namespace testing

} // namespace oha::exec
