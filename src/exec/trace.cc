#include "exec/trace.h"

#include <bit>
#include <utility>

namespace oha::exec {

RecordedTrace
recordRun(const ir::Module &module, const ExecConfig &config)
{
    RecordedTrace trace;
    TraceRecorder recorder;
    Interpreter interp(module, config);
    interp.setRecorder(&recorder);
    trace.result = interp.run();
    trace.events = recorder.take();
    return trace;
}

void
TraceReplayer::requestAbort(std::string reason)
{
    if (!abortRequested_) {
        abortRequested_ = true;
        abortReason_ = std::move(reason);
    }
}

void
TraceReplayer::requestAbort(std::string reason, const AbortMetadata &meta)
{
    if (!abortRequested_) {
        abortMeta_ = meta;
        requestAbort(std::move(reason));
    }
}

RunResult
TraceReplayer::run()
{
    RunResult result;
    result.delivered.assign(attachments_.size(), EventCounts{});

    // Same per-site dispatch snapshot as Interpreter::run(): low byte
    // = attachment cover bits, high byte = event class.
    const std::size_t numInstrs = module_.numInstrs();
    const std::size_t numBlocks = module_.numBlocks();
    OHA_ASSERT(attachments_.size() <= 8,
               "dispatch masks hold at most 8 attachments");
    std::vector<std::uint16_t> dispatch(numInstrs);
    for (InstrId id = 0; id < numInstrs; ++id) {
        dispatch[id] = static_cast<std::uint16_t>(
            static_cast<std::uint16_t>(eventClassOf(module_.instr(id).op))
            << 8);
    }
    std::vector<std::uint8_t> blockMask(numBlocks, 0);
    for (std::size_t i = 0; i < attachments_.size(); ++i) {
        const InstrumentationPlan &plan = *attachments_[i].plan;
        const auto bit = static_cast<std::uint16_t>(1u << i);
        for (InstrId id = 0; id < numInstrs; ++id)
            if (plan.coversInstr(id))
                dispatch[id] |= bit;
        for (BlockId id = 0; id < numBlocks; ++id)
            if (plan.coversBlock(id))
                blockMask[id] |= static_cast<std::uint8_t>(1u << i);
    }

    // Shadow call stacks: the interpreter assigns frame ids globally
    // sequentially from 1 (main's root first), and the record stream
    // is in execution order, so allocating ids in record order
    // reproduces them exactly.
    struct SimFrame
    {
        std::uint64_t frameId;
        const ir::Instruction *callSite; ///< null for thread roots
    };
    std::vector<std::vector<SimFrame>> stacks;
    std::uint64_t nextFrameId = 1;

    TraceBuffer::Reader reader = trace_.events.reader();
    std::int64_t prevInstr = 0;
    std::int64_t prevObj = 0;
    std::int64_t prevBlock = 0;
    std::uint64_t stepsStarted = 0;
    std::uint32_t numThreads = 0;
    bool truncated = false;

    while (!reader.atEnd()) {
        const std::uint8_t header = reader.byte();
        const std::uint8_t kind = header & 3;
        // Step flag: this record begins a new guest instruction.  A
        // live run honours an abort at the next instruction boundary
        // (the aborting instruction completes all its deliveries);
        // stopping here reproduces that exactly.
        if (header & 4) {
            if (abortRequested_) {
                truncated = true;
                break;
            }
            ++stepsStarted;
        }
        ThreadId tid = header >> 3;
        if (tid == TraceRecorder::kTidEscape)
            tid = static_cast<ThreadId>(reader.varint());

        switch (kind) {
          case TraceRecorder::kInstrEvent: {
            prevInstr += reader.zigzag();
            const auto id = static_cast<InstrId>(prevInstr);
            const ir::Instruction &ins = module_.instr(id);
            const std::uint16_t disp = dispatch[id];
            const auto evMask = static_cast<std::uint8_t>(disp & 0xff);
            const auto cls = static_cast<EventClass>(disp >> 8);
            ++result.totalEvents[cls];

            // Decode the payload into locals first: most records are
            // not covered by any attached plan, and for those the only
            // obligatory work is advancing the delta chains, the
            // shadow stacks and the output log.  Building the full
            // EventCtx happens only on delivery.
            ObjectId obj = 0;
            std::uint32_t off = 0;
            FuncId callee = kNoFunc;
            ThreadId otherTid = 0;
            switch (ins.op) {
              case ir::Opcode::Load:
              case ir::Opcode::Store:
              case ir::Opcode::Lock:
              case ir::Opcode::Unlock:
                prevObj += reader.zigzag();
                obj = static_cast<ObjectId>(prevObj);
                off = static_cast<std::uint32_t>(reader.varint());
                break;
              case ir::Opcode::Call:
                callee = ins.callee;
                break;
              case ir::Opcode::ICall:
                callee = static_cast<FuncId>(reader.varint());
                break;
              case ir::Opcode::Spawn:
              case ir::Opcode::Join:
                otherTid = static_cast<ThreadId>(reader.varint());
                break;
              case ir::Opcode::Output:
                result.outputs.push_back({ins.id, reader.zigzag()});
                break;
              default:
                break;
            }

            if (evMask) {
                std::vector<SimFrame> &stack = stacks[tid];
                EventCtx ctx;
                ctx.tid = tid;
                ctx.instr = &ins;
                ctx.frameId = stack.back().frameId;
                ctx.obj = obj;
                ctx.off = off;
                ctx.calleeResolved = callee;
                ctx.otherTid = otherTid;
                switch (ins.op) {
                  case ir::Opcode::Call:
                  case ir::Opcode::ICall:
                    ctx.frame2 = nextFrameId;
                    break;
                  case ir::Opcode::Ret:
                    if (stack.size() > 1) {
                        ctx.frame2 = stack[stack.size() - 2].frameId;
                        ctx.callInstr = stack.back().callSite;
                    }
                    break;
                  case ir::Opcode::Spawn:
                    ctx.frame2 = stacks[otherTid].back().frameId;
                    break;
                  default:
                    break;
                }
                for (std::uint8_t mask = evMask; mask;
                     mask &= static_cast<std::uint8_t>(mask - 1)) {
                    const unsigned i =
                        static_cast<unsigned>(std::countr_zero(mask));
                    ++result.delivered[i][cls];
                    attachments_[i].tool->onEvent(ctx);
                }
            }

            // Stack mutations happen after delivery, mirroring the
            // interpreter (the Call event sees the caller's frame as
            // frameId; Ret sees the returning frame).
            if (ins.op == ir::Opcode::Call ||
                ins.op == ir::Opcode::ICall) {
                stacks[tid].push_back({nextFrameId++, &ins});
            } else if (ins.op == ir::Opcode::Ret) {
                stacks[tid].pop_back();
            }
            break;
          }
          case TraceRecorder::kBlockEnter: {
            prevBlock += reader.zigzag();
            const auto block = static_cast<BlockId>(prevBlock);
            ++result.totalEvents[EventClass::BlockEnter];
            for (std::uint8_t mask = blockMask[block]; mask;
                 mask &= static_cast<std::uint8_t>(mask - 1)) {
                const unsigned i =
                    static_cast<unsigned>(std::countr_zero(mask));
                ++result.delivered[i][EventClass::BlockEnter];
                attachments_[i].tool->onBlockEnter(tid, block);
            }
            break;
          }
          case TraceRecorder::kThreadStart: {
            const auto parent = static_cast<ThreadId>(reader.varint());
            const std::uint64_t siteRaw = reader.varint();
            const InstrId spawnSite =
                siteRaw == 0 ? kNoInstr
                             : static_cast<InstrId>(siteRaw - 1);
            if (tid >= stacks.size())
                stacks.resize(tid + 1);
            stacks[tid].push_back({nextFrameId++, nullptr});
            ++numThreads;
            for (const Attachment &attachment : attachments_)
                attachment.tool->onThreadStart(tid, parent, spawnSite);
            break;
          }
          case TraceRecorder::kThreadFinish: {
            for (const Attachment &attachment : attachments_)
                attachment.tool->onThreadFinish(tid);
            break;
          }
        }
    }

    result.numThreads = numThreads;
    if (abortRequested_) {
        // Aborted mid-replay (whether or not records remained): a
        // live run would finish the aborting instruction and stop at
        // the top of the scheduler loop with exactly this step count.
        (void)truncated;
        result.status = RunResult::Status::Aborted;
        result.abortReason = abortReason_;
        result.abortMeta = abortMeta_;
        result.steps = stepsStarted;
    } else {
        result.status = trace_.result.status;
        result.abortReason = trace_.result.abortReason;
        result.abortMeta = trace_.result.abortMeta;
        result.steps = trace_.result.steps;
        result.schedule = trace_.result.schedule;
        OHA_ASSERT(stepsStarted == trace_.result.steps,
                   "trace step flags diverge from recorded step count");
    }
    return result;
}

} // namespace oha::exec
