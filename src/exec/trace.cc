#include "exec/trace.h"

#include <atomic>
#include <bit>
#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include "support/env.h"

namespace oha::exec {

namespace {

// Global mmap accounting: tests assert that replaying a spilled
// capture keeps peak resident trace bytes O(segment size × shards)
// rather than O(trace size).
std::atomic<std::size_t> g_mappedNow{0};
std::atomic<std::size_t> g_mappedPeak{0};

void
accountMap(std::size_t bytes)
{
    const std::size_t now =
        g_mappedNow.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    std::size_t peak = g_mappedPeak.load(std::memory_order_relaxed);
    while (now > peak &&
           !g_mappedPeak.compare_exchange_weak(peak, now,
                                               std::memory_order_relaxed)) {
    }
}

void
accountUnmap(std::size_t bytes)
{
    g_mappedNow.fetch_sub(bytes, std::memory_order_relaxed);
}

} // namespace

namespace testing {

std::size_t
mappedTraceBytesNow()
{
    return g_mappedNow.load(std::memory_order_relaxed);
}

std::size_t
mappedTraceBytesPeak()
{
    return g_mappedPeak.load(std::memory_order_relaxed);
}

void
resetMappedTraceBytesPeak()
{
    g_mappedPeak.store(g_mappedNow.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
}

} // namespace testing

std::size_t
configuredSegmentBytes()
{
    // 64 MiB default: the whole existing corpus records well under
    // one segment, so spilling is opt-in via the environment (or
    // TraceStoreOptions) until traces actually outgrow RAM.  The
    // floor keeps a segment big enough for at least one maximal
    // record; the ceiling guards against fat-finger terabyte values.
    return support::envSizeBytes("OHA_TRACE_SEGMENT_BYTES",
                                 std::size_t{64} << 20, std::size_t{4} << 10,
                                 std::size_t{64} << 30);
}

// ---------------------------------------------------------------- SpillFile

SpillFile::Mapping::Mapping(void *base, std::size_t mapLen,
                            std::size_t headSlack)
    : base_(base), mapLen_(mapLen), headSlack_(headSlack)
{
    accountMap(mapLen_);
}

SpillFile::Mapping::~Mapping()
{
    ::munmap(base_, mapLen_);
    accountUnmap(mapLen_);
}

std::shared_ptr<SpillFile>
SpillFile::create()
{
    const char *tmpdir = std::getenv("TMPDIR");
    std::string path = (tmpdir && *tmpdir) ? tmpdir : "/tmp";
    path += "/oha-trace-XXXXXX";
    std::vector<char> templ(path.begin(), path.end());
    templ.push_back('\0');
    const int fd = ::mkstemp(templ.data());
    if (fd < 0) {
        OHA_WARN("trace spill disabled: mkstemp(%s) failed: %s",
                 templ.data(), std::strerror(errno));
        return nullptr;
    }
    // Unlink immediately: the file lives as long as the fd and can
    // never be leaked, even on crash.
    ::unlink(templ.data());
    return std::shared_ptr<SpillFile>(new SpillFile(fd));
}

SpillFile::~SpillFile()
{
    ::close(fd_);
}

bool
SpillFile::writeAll(const std::uint8_t *data, std::size_t len)
{
    while (len > 0) {
        const ::ssize_t n = ::pwrite(fd_, data, len,
                                     static_cast<::off_t>(size_));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            OHA_WARN("trace spill write failed: %s; keeping segment "
                     "in RAM",
                     std::strerror(errno));
            return false;
        }
        data += n;
        len -= static_cast<std::size_t>(n);
        size_ += static_cast<std::uint64_t>(n);
    }
    return true;
}

bool
SpillFile::append(const TraceBuffer &buffer, std::uint64_t &offsetOut)
{
    const std::uint64_t start = size_;
    bool ok = true;
    buffer.forEachSpan([&](const std::uint8_t *data, std::size_t len) {
        ok = ok && writeAll(data, len);
    });
    if (!ok) {
        // Truncate the partial tail so the next append starts clean.
        if (::ftruncate(fd_, static_cast<::off_t>(start)) == 0)
            size_ = start;
        return false;
    }
    offsetOut = start;
    return true;
}

bool
SpillFile::append(const void *data, std::size_t len,
                  std::uint64_t &offsetOut)
{
    const std::uint64_t rollback = size_;
    static constexpr std::uint8_t zeros[8] = {};
    const auto pad = static_cast<std::size_t>((8 - size_ % 8) % 8);
    bool ok = pad == 0 || writeAll(zeros, pad);
    const std::uint64_t start = size_;
    ok = ok && writeAll(static_cast<const std::uint8_t *>(data), len);
    if (!ok) {
        if (::ftruncate(fd_, static_cast<::off_t>(rollback)) == 0)
            size_ = rollback;
        return false;
    }
    offsetOut = start;
    return true;
}

std::shared_ptr<const SpillFile::Mapping>
SpillFile::map(std::uint64_t offset, std::size_t length) const
{
    static const std::size_t page =
        static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    const std::uint64_t alignedOff = offset & ~(std::uint64_t{page} - 1);
    const std::size_t headSlack = static_cast<std::size_t>(offset - alignedOff);
    const std::size_t mapLen = length + headSlack;
    void *base = ::mmap(nullptr, mapLen, PROT_READ, MAP_PRIVATE, fd_,
                        static_cast<::off_t>(alignedOff));
    if (base == MAP_FAILED) {
        OHA_WARN("mmap of spilled trace segment failed: %s",
                 std::strerror(errno));
        return nullptr;
    }
    return std::make_shared<const Mapping>(base, mapLen, headSlack);
}

// ---------------------------------------------------------------- TraceStore

TraceStore::TraceStore(const TraceStoreOptions &options)
    : segmentBytes_(options.segmentBytes != 0 ? options.segmentBytes
                                              : configuredSegmentBytes()),
      captureValues_(options.captureValues)
{
}

void
TraceStore::closeOpenSegment()
{
    OHA_ASSERT(!finished_, "closeOpenSegment() after finish()");
    const std::size_t bytes = open_.sizeBytes();
    if (bytes == 0)
        return;

    Segment segment;
    segment.header = openHeader_;
    segment.header.bytes = bytes;
    segment.header.leanEntries = openLean_.size();
    if (captureValues_)
        segment.header.flags |= SegmentHeader::kFlagHasValues;

    if (!file_ && !spillFailed_) {
        file_ = SpillFile::create();
        spillFailed_ = file_ == nullptr;
    }
    bool onDisk = false;
    if (file_)
        onDisk = file_->append(open_, segment.fileOffset);
    if (onDisk) {
        segment.header.flags |= SegmentHeader::kFlagSpilled;
    } else {
        segment.buffer = std::make_unique<TraceBuffer>(std::move(open_));
        residentClosed_ += bytes;
    }
    // The sidecar index spills with its segment; on failure it stays
    // in RAM like the stream bytes would.
    bool leanOnDisk = false;
    if (onDisk && !openLean_.empty())
        leanOnDisk = file_->append(openLean_.data(),
                                   openLean_.size() * sizeof(LeanEvent),
                                   segment.leanFileOffset);
    if (!leanOnDisk && !openLean_.empty()) {
        leanResident_ += openLean_.size() * sizeof(LeanEvent);
        segment.lean = std::move(openLean_);
    }
    totalBytes_ += bytes;
    segments_.push_back(std::move(segment));

    open_ = TraceBuffer();
    openHeader_ = SegmentHeader{};
    openLean_.clear();
}

void
TraceStore::finish()
{
    if (finished_)
        return;
    // The trailing segment stays in RAM: it is below the spill
    // threshold by construction, and for unspilled captures this
    // preserves the original all-in-memory behavior exactly.  An
    // empty trailing segment (the last record landed precisely on
    // the threshold) is dropped.
    const std::size_t bytes = open_.sizeBytes();
    if (bytes > 0) {
        Segment segment;
        segment.header = openHeader_;
        segment.header.bytes = bytes;
        segment.header.leanEntries = openLean_.size();
        if (captureValues_)
            segment.header.flags |= SegmentHeader::kFlagHasValues;
        segment.buffer = std::make_unique<TraceBuffer>(std::move(open_));
        residentClosed_ += bytes;
        if (!openLean_.empty()) {
            leanResident_ += openLean_.size() * sizeof(LeanEvent);
            segment.lean = std::move(openLean_);
        }
        totalBytes_ += bytes;
        segments_.push_back(std::move(segment));
        open_ = TraceBuffer();
        openHeader_ = SegmentHeader{};
        openLean_.clear();
    }
    finished_ = true;
}

SegmentCursor
TraceStore::cursor(std::size_t i) const
{
    OHA_ASSERT(i < segments_.size());
    const Segment &segment = segments_[i];
    SegmentCursor cursor;
    if (segment.buffer) {
        segment.buffer->forEachSpan(
            [&](const std::uint8_t *data, std::size_t len) {
                cursor.spans_.push_back({data, len});
            });
    } else {
        auto mapping = file_->map(segment.fileOffset,
                                  static_cast<std::size_t>(
                                      segment.header.bytes));
        OHA_ASSERT(mapping, "cannot map spilled trace segment");
        cursor.spans_.push_back(
            {mapping->data(),
             static_cast<std::size_t>(segment.header.bytes)});
        cursor.keepAlive_ = std::move(mapping);
    }
    return cursor;
}

TraceStore::LeanIndexView
TraceStore::leanIndex(std::size_t i) const
{
    OHA_ASSERT(i < segments_.size());
    const Segment &segment = segments_[i];
    LeanIndexView view;
    view.count = static_cast<std::size_t>(segment.header.leanEntries);
    if (view.count == 0)
        return view;
    if (!segment.lean.empty()) {
        view.data = segment.lean.data();
        return view;
    }
    auto mapping = file_->map(segment.leanFileOffset,
                              view.count * sizeof(LeanEvent));
    OHA_ASSERT(mapping, "cannot map spilled trace sidecar index");
    // append() aligned leanFileOffset to 8 bytes and the mapping base
    // is page-aligned, so the head-slack-adjusted pointer satisfies
    // alignof(LeanEvent).
    view.data = reinterpret_cast<const LeanEvent *>(mapping->data());
    view.keepAlive = std::move(mapping);
    return view;
}

// ----------------------------------------------------------------- capture

RecordedTrace
recordRun(const ir::Module &module, const ExecConfig &config)
{
    return recordRun(module, config, TraceStoreOptions{});
}

RecordedTrace
recordRun(const ir::Module &module, const ExecConfig &config,
          const TraceStoreOptions &options)
{
    RecordedTrace trace;
    TraceRecorder recorder(options);
    Interpreter interp(module, config);
    interp.setRecorder(&recorder);
    trace.result = interp.run();
    trace.events = recorder.take();
    return trace;
}

// ------------------------------------------------------------------ replay

void
TraceReplayer::requestAbort(std::string reason)
{
    if (!abortRequested_) {
        abortRequested_ = true;
        abortReason_ = std::move(reason);
    }
}

void
TraceReplayer::requestAbort(std::string reason, const AbortMetadata &meta)
{
    if (!abortRequested_) {
        abortMeta_ = meta;
        requestAbort(std::move(reason));
    }
}

RunResult
TraceReplayer::run()
{
    if (numShards_ > 1 && shard_ != 0)
        return runLeanShard();

    RunResult result;
    result.delivered.assign(attachments_.size(), EventCounts{});

    // Same per-site dispatch snapshot as Interpreter::run(): low byte
    // = attachment cover bits, high byte = event class.
    const std::size_t numInstrs = module_.numInstrs();
    const std::size_t numBlocks = module_.numBlocks();
    OHA_ASSERT(attachments_.size() <= 8,
               "dispatch masks hold at most 8 attachments");
    std::vector<std::uint16_t> dispatch(numInstrs);
    for (InstrId id = 0; id < numInstrs; ++id) {
        dispatch[id] = static_cast<std::uint16_t>(
            static_cast<std::uint16_t>(eventClassOf(module_.instr(id).op))
            << 8);
    }
    std::vector<std::uint8_t> blockMask(numBlocks, 0);
    for (std::size_t i = 0; i < attachments_.size(); ++i) {
        const InstrumentationPlan &plan = *attachments_[i].plan;
        const auto bit = static_cast<std::uint16_t>(1u << i);
        for (InstrId id = 0; id < numInstrs; ++id)
            if (plan.coversInstr(id))
                dispatch[id] |= bit;
        for (BlockId id = 0; id < numBlocks; ++id)
            if (plan.coversBlock(id))
                blockMask[id] |= static_cast<std::uint8_t>(1u << i);
    }

    // Shadow call stacks: the interpreter assigns frame ids globally
    // sequentially from 1 (main's root first), and the record stream
    // is in execution order, so allocating ids in record order
    // reproduces them exactly.
    struct SimFrame
    {
        std::uint64_t frameId;
        const ir::Instruction *callSite; ///< null for thread roots
    };
    std::vector<std::vector<SimFrame>> stacks;
    std::uint64_t nextFrameId = 1;

    const TraceStore &store = trace_.events;
    std::uint64_t stepsStarted = 0;
    std::uint32_t numThreads = 0;
    bool truncated = false;

    // Segments decode standalone (delta chains restart per segment);
    // a spilled segment is mapped only while its cursor lives, so
    // peak resident trace bytes track the segment size, not the
    // trace size.
    for (std::size_t seg = 0; seg < store.numSegments() && !truncated;
         ++seg) {
        const bool hasValues =
            store.header(seg).flags & SegmentHeader::kFlagHasValues;
        SegmentCursor reader = store.cursor(seg);
        std::int64_t prevInstr = 0;
        std::int64_t prevObj = 0;
        std::int64_t prevBlock = 0;

        while (!reader.atEnd()) {
            const std::uint8_t header = reader.byte();
            const std::uint8_t kind = header & 3;
            // Step flag: this record begins a new guest instruction.
            // A live run honours an abort at the next instruction
            // boundary (the aborting instruction completes all its
            // deliveries); stopping here reproduces that exactly.
            if (header & 4) {
                if (abortRequested_) {
                    truncated = true;
                    break;
                }
                ++stepsStarted;
            }
            ThreadId tid = header >> 3;
            if (tid == TraceRecorder::kTidEscape)
                tid = static_cast<ThreadId>(reader.varint());

            switch (kind) {
              case TraceRecorder::kInstrEvent: {
                prevInstr += reader.zigzag();
                const auto id = static_cast<InstrId>(prevInstr);
                const ir::Instruction &ins = module_.instr(id);
                const std::uint16_t disp = dispatch[id];
                auto evMask = static_cast<std::uint8_t>(disp & 0xff);
                const auto cls = static_cast<EventClass>(disp >> 8);
                ++result.totalEvents[cls];

                // Decode the payload into locals first: most records
                // are not covered by any attached plan, and for those
                // the only obligatory work is advancing the delta
                // chains, the shadow stacks and the output log.
                // Building the full EventCtx happens only on
                // delivery.
                ObjectId obj = 0;
                std::uint32_t off = 0;
                FuncId callee = kNoFunc;
                ThreadId otherTid = 0;
                Value value;
                switch (ins.op) {
                  case ir::Opcode::Load:
                  case ir::Opcode::Store:
                    prevObj += reader.zigzag();
                    obj = static_cast<ObjectId>(prevObj);
                    off = static_cast<std::uint32_t>(reader.varint());
                    if (hasValues)
                        value = decodeTraceValue(reader);
                    // Shard filter: a non-owned access still advances
                    // the stream/delta state and the totals above,
                    // but skips context construction and delivery —
                    // the owning shard is the one that analyzes it.
                    if (numShards_ > 1 && !ownsObject(obj))
                        evMask = 0;
                    break;
                  case ir::Opcode::Lock:
                  case ir::Opcode::Unlock:
                    prevObj += reader.zigzag();
                    obj = static_cast<ObjectId>(prevObj);
                    off = static_cast<std::uint32_t>(reader.varint());
                    break;
                  case ir::Opcode::Call:
                    callee = ins.callee;
                    break;
                  case ir::Opcode::ICall:
                    callee = static_cast<FuncId>(reader.varint());
                    break;
                  case ir::Opcode::Spawn:
                  case ir::Opcode::Join:
                    otherTid = static_cast<ThreadId>(reader.varint());
                    break;
                  case ir::Opcode::Output:
                    result.outputs.push_back({ins.id, reader.zigzag()});
                    break;
                  default:
                    break;
                }

                if (evMask) {
                    std::vector<SimFrame> &stack = stacks[tid];
                    EventCtx ctx;
                    ctx.tid = tid;
                    ctx.instr = &ins;
                    ctx.frameId = stack.back().frameId;
                    ctx.obj = obj;
                    ctx.off = off;
                    ctx.calleeResolved = callee;
                    ctx.otherTid = otherTid;
                    ctx.value = value;
                    switch (ins.op) {
                      case ir::Opcode::Call:
                      case ir::Opcode::ICall:
                        ctx.frame2 = nextFrameId;
                        break;
                      case ir::Opcode::Ret:
                        if (stack.size() > 1) {
                            ctx.frame2 = stack[stack.size() - 2].frameId;
                            ctx.callInstr = stack.back().callSite;
                        }
                        break;
                      case ir::Opcode::Spawn:
                        ctx.frame2 = stacks[otherTid].back().frameId;
                        break;
                      default:
                        break;
                    }
                    for (std::uint8_t mask = evMask; mask;
                         mask &= static_cast<std::uint8_t>(mask - 1)) {
                        const unsigned i =
                            static_cast<unsigned>(std::countr_zero(mask));
                        ++result.delivered[i][cls];
                        attachments_[i].tool->onEvent(ctx);
                    }
                }

                // Stack mutations happen after delivery, mirroring
                // the interpreter (the Call event sees the caller's
                // frame as frameId; Ret sees the returning frame).
                if (ins.op == ir::Opcode::Call ||
                    ins.op == ir::Opcode::ICall) {
                    stacks[tid].push_back({nextFrameId++, &ins});
                } else if (ins.op == ir::Opcode::Ret) {
                    stacks[tid].pop_back();
                }
                break;
              }
              case TraceRecorder::kBlockEnter: {
                prevBlock += reader.zigzag();
                const auto block = static_cast<BlockId>(prevBlock);
                ++result.totalEvents[EventClass::BlockEnter];
                for (std::uint8_t mask = blockMask[block]; mask;
                     mask &= static_cast<std::uint8_t>(mask - 1)) {
                    const unsigned i =
                        static_cast<unsigned>(std::countr_zero(mask));
                    ++result.delivered[i][EventClass::BlockEnter];
                    attachments_[i].tool->onBlockEnter(tid, block);
                }
                break;
              }
              case TraceRecorder::kThreadStart: {
                const auto parent =
                    static_cast<ThreadId>(reader.varint());
                const std::uint64_t siteRaw = reader.varint();
                const InstrId spawnSite =
                    siteRaw == 0 ? kNoInstr
                                 : static_cast<InstrId>(siteRaw - 1);
                if (tid >= stacks.size())
                    stacks.resize(tid + 1);
                stacks[tid].push_back({nextFrameId++, nullptr});
                ++numThreads;
                for (const Attachment &attachment : attachments_)
                    attachment.tool->onThreadStart(tid, parent, spawnSite);
                break;
              }
              case TraceRecorder::kThreadFinish: {
                for (const Attachment &attachment : attachments_)
                    attachment.tool->onThreadFinish(tid);
                break;
              }
            }
        }
    }

    result.numThreads = numThreads;
    if (abortRequested_) {
        // Aborted mid-replay (whether or not records remained): a
        // live run would finish the aborting instruction and stop at
        // the top of the scheduler loop with exactly this step count.
        (void)truncated;
        result.status = RunResult::Status::Aborted;
        result.abortReason = abortReason_;
        result.abortMeta = abortMeta_;
        result.steps = stepsStarted;
    } else {
        result.status = trace_.result.status;
        result.abortReason = trace_.result.abortReason;
        result.abortMeta = trace_.result.abortMeta;
        result.steps = trace_.result.steps;
        result.schedule = trace_.result.schedule;
        OHA_ASSERT(stepsStarted == trace_.result.steps,
                   "trace step flags diverge from recorded step count");
    }
    return result;
}

RunResult
TraceReplayer::runLeanShard()
{
    // Worker decode for shards > 0 (shard 0 runs the full loop): the
    // aggregate throughput of an N-shard replay is bounded by how
    // cheaply the N-1 extra workers can reach their partition's
    // events.  Workers therefore never touch the encoded stream at
    // all — they walk the pre-decoded LeanEvent sidecar the recorder
    // captured per segment, so a worker costs O(access + sync
    // events) instead of O(stream bytes).  See the class comment for
    // the reduced-RunResult contract.
    RunResult result;
    result.delivered.assign(attachments_.size(), EventCounts{});

    // Lean shards replay only sidecar classes; a plan covering
    // anything else (calls, rets, blocks, outputs) belongs on the
    // primary.
    for (const Attachment &attachment : attachments_) {
        for (InstrId id = 0; id < module_.numInstrs(); ++id) {
            if (!attachment.plan->coversInstr(id))
                continue;
            switch (module_.instr(id).op) {
              case ir::Opcode::Load:
              case ir::Opcode::Store:
              case ir::Opcode::Lock:
              case ir::Opcode::Unlock:
              case ir::Opcode::Spawn:
              case ir::Opcode::Join:
                break;
              default:
                OHA_ASSERT(false, "plan covering a non-sidecar "
                                  "instruction on a lean worker shard");
            }
        }
        for (BlockId id = 0; id < module_.numBlocks(); ++id)
            OHA_ASSERT(!attachment.plan->coversBlock(id),
                       "block-covering plan on a lean worker shard");
    }

    const TraceStore &store = trace_.events;
    std::uint32_t numThreads = 0;
    for (std::size_t seg = 0; seg < store.numSegments(); ++seg) {
        const TraceStore::LeanIndexView index = store.leanIndex(seg);
        for (std::size_t i = 0; i < index.count; ++i) {
            const LeanEvent &event = index.data[i];
            switch (event.cls) {
              case LeanEvent::kThreadStartCls: {
                ++numThreads;
                const InstrId site =
                    event.off == 0
                        ? kNoInstr
                        : static_cast<InstrId>(event.off - 1);
                for (const Attachment &attachment : attachments_)
                    attachment.tool->onThreadStart(
                        event.tid, static_cast<ThreadId>(event.aux),
                        site);
                break;
              }
              case LeanEvent::kThreadFinishCls:
                for (const Attachment &attachment : attachments_)
                    attachment.tool->onThreadFinish(event.tid);
                break;
              default: {
                const auto cls = static_cast<EventClass>(event.cls);
                if ((cls == EventClass::Load ||
                     cls == EventClass::Store) &&
                    !ownsObject(event.obj))
                    break;
                const ir::Instruction &ins = module_.instr(event.instr);
                EventCtx ctx;
                ctx.tid = event.tid;
                ctx.instr = &ins;
                ctx.obj = event.obj;
                ctx.off = event.off;
                ctx.otherTid = static_cast<ThreadId>(event.aux);
                ctx.calleeResolved = ins.callee;
                for (std::size_t a = 0; a < attachments_.size(); ++a) {
                    if (!attachments_[a].plan->coversInstr(event.instr))
                        continue;
                    ++result.delivered[a][cls];
                    attachments_[a].tool->onEvent(ctx);
                }
                break;
              }
            }
        }
    }

    // The sidecar carries no step flags, so a mid-replay abort has no
    // step boundary to stop at; aborting tools (invariant checkers)
    // belong on the primary shard.
    OHA_ASSERT(!abortRequested_,
               "aborting tool attached to a lean worker shard");
    result.numThreads = numThreads;
    result.status = trace_.result.status;
    result.abortReason = trace_.result.abortReason;
    result.abortMeta = trace_.result.abortMeta;
    result.steps = trace_.result.steps;
    return result;
}

// ----------------------------------------------------------------- testing

namespace testing {

std::size_t
byteOffsetAfterStep(const ir::Module &module, const TraceStore &store,
                    std::uint64_t step)
{
    // Record-skipping decode: same framing as TraceReplayer::run()
    // minus dispatch.  Offsets are relative to the concatenated
    // stream so the result is usable as a spill threshold.
    std::size_t base = 0;
    std::uint64_t steps = 0;
    for (std::size_t seg = 0; seg < store.numSegments(); ++seg) {
        const bool hasValues =
            store.header(seg).flags & SegmentHeader::kFlagHasValues;
        SegmentCursor reader = store.cursor(seg);
        std::int64_t prevInstr = 0;
        while (!reader.atEnd()) {
            const std::size_t recordStart = base + reader.consumed();
            const std::uint8_t header = reader.byte();
            if ((header & 4) && ++steps == step + 1)
                return recordStart;
            if ((header >> 3) == TraceRecorder::kTidEscape)
                reader.varint();
            switch (header & 3) {
              case TraceRecorder::kInstrEvent: {
                prevInstr += reader.zigzag();
                const ir::Instruction &ins =
                    module.instr(static_cast<InstrId>(prevInstr));
                switch (ins.op) {
                  case ir::Opcode::Load:
                  case ir::Opcode::Store:
                    reader.zigzag();
                    reader.varint();
                    if (hasValues)
                        decodeTraceValue(reader);
                    break;
                  case ir::Opcode::Lock:
                  case ir::Opcode::Unlock:
                    reader.zigzag();
                    reader.varint();
                    break;
                  case ir::Opcode::ICall:
                  case ir::Opcode::Spawn:
                  case ir::Opcode::Join:
                    reader.varint();
                    break;
                  case ir::Opcode::Output:
                    reader.zigzag();
                    break;
                  default:
                    break;
                }
                break;
              }
              case TraceRecorder::kBlockEnter:
                reader.zigzag();
                break;
              case TraceRecorder::kThreadStart:
                reader.varint();
                reader.varint();
                break;
              default: // kThreadFinish: header byte only
                break;
            }
        }
        base += static_cast<std::size_t>(store.header(seg).bytes);
    }
    return base;
}

} // namespace testing

} // namespace oha::exec
