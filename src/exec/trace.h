/**
 * @file
 * Deterministic event-trace capture and replay (record once, analyze
 * many), at billion-event scale.
 *
 * The paper assumes a deterministic record/replay environment:
 * rollback after an invariant violation is "deterministic
 * re-execution under the sound hybrid analysis" (Section 2.3).  Our
 * interpreter already *is* that environment — an execution is a pure
 * function of (module, input, schedule seed) and tools never perturb
 * it — so the pipeline executes an input once with a TraceRecorder
 * sink that captures the complete analysis-relevant event stream,
 * then drives any number of analysis configurations from a
 * TraceReplayer that performs only decode + plan filtering + tool
 * dispatch.
 *
 * Storage model: the stream is a sequence of immutable *segments*.
 * Capture appends into an open arena-backed TraceBuffer; when the
 * open segment crosses `OHA_TRACE_SEGMENT_BYTES` (default 64 MiB —
 * small traces never spill and stay all-in-RAM exactly as before) it
 * is closed at a record boundary and its bytes are written to an
 * unlinked temp file.  Each closed segment carries a SegmentHeader
 * (record/step counts, per-tid presence bitmap, first/last
 * instruction ids, byte length, flags) so replayers can skip or seek
 * without decoding.  Replay reads spilled segments through per-cursor
 * read-only mmap windows — one segment mapped at a time per replay —
 * so peak resident trace bytes are O(segment size × concurrent
 * replays), not O(trace size).  Segments are immutable after close:
 * any number of replays (different tools, different shards) may read
 * one capture concurrently.
 *
 * Encoding (varint/zigzag-delta, one record per fired event):
 *
 *   header byte:  bits 0-1  record kind (instr event / block enter /
 *                           thread start / thread finish)
 *                 bit 2     step flag — set on the first record of
 *                           each executed instruction, so the
 *                           replayer can reconstruct the step count
 *                           and stop exactly at the instruction
 *                           boundary where a live run would abort
 *                 bits 3-7  thread id (31 = escape, varint follows)
 *
 *   instr event:  zigzag delta of the instruction id vs. the previous
 *                 instr record, then an opcode-dependent payload:
 *                 Load/Store/Lock/Unlock -> zigzag object-id delta +
 *                 varint offset; ICall -> varint resolved callee;
 *                 Spawn/Join -> varint other thread; Output -> zigzag
 *                 encoded value.  Everything else (the opcode, the
 *                 event class, Call's static callee) is recomputed
 *                 from the module at replay time.
 *
 *   block enter:  zigzag delta of the block id.
 *   thread start: varint parent tid + varint spawn site (+1; 0 means
 *                 kNoInstr, i.e. the main thread).
 *
 * Optional value payload: when a capture is recorded with
 * `TraceStoreOptions::captureValues`, every Load/Store record is
 * followed by the loaded/stored Value (kind byte + kind-dependent
 * varints), and the segment header carries
 * SegmentHeader::kFlagHasValues so replayers know to decode it.  The
 * record header byte has no spare bits (2 kind + 1 step + 5 tid), so
 * the flag is stream-level, carried per segment.  Value-consuming
 * tools can then replay instead of forcing a live run; payload-free
 * captures remain byte-identical to the original encoding.
 *
 * Delta chains (instr/obj/block) reset at every segment boundary, so
 * each segment decodes standalone — a seek never needs the previous
 * segment's tail state.
 *
 * Frame identifiers are *not* encoded: the interpreter assigns them
 * globally sequentially from 1, so the replayer reconstructs
 * identical frame ids (and Ret's caller frame / call-site context)
 * with a per-thread shadow call stack.
 *
 * Replay fidelity: delivered events, ordering, per-tool counts, step
 * counts, outputs and abort semantics are byte-identical to a live
 * run of the same tools under the same plans.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/interpreter.h"
#include "support/arena.h"

namespace oha::support {
class ByteWriter;
class ByteReader;
} // namespace oha::support

namespace oha::exec {

/** Arena-backed append-only byte stream with varint/zigzag codec.
 *  One TraceBuffer holds one (open or closed-in-RAM) segment. */
class TraceBuffer
{
  public:
    TraceBuffer() : arena_(std::make_unique<support::Arena>(kChunkBytes)) {}

    TraceBuffer(TraceBuffer &&) = default;
    TraceBuffer &operator=(TraceBuffer &&) = default;

    void
    putByte(std::uint8_t byte)
    {
        // Hot path: one pointer compare + store.  Chunk allocations
        // only every kChunkBytes bytes.
        if (wptr_ == wend_)
            newChunk();
        *wptr_++ = byte;
        ++bytes_;
    }

    void
    putVarint(std::uint64_t value)
    {
        while (value >= 0x80) {
            putByte(static_cast<std::uint8_t>(value) | 0x80);
            value >>= 7;
        }
        putByte(static_cast<std::uint8_t>(value));
    }

    void
    putZigzag(std::int64_t value)
    {
        putVarint((static_cast<std::uint64_t>(value) << 1) ^
                  static_cast<std::uint64_t>(value >> 63));
    }

    /** Bulk append (persistence loaders refilling a segment). */
    void
    putBytes(const void *data, std::size_t len)
    {
        const auto *bytes = static_cast<const std::uint8_t *>(data);
        while (len > 0) {
            if (wptr_ == wend_)
                newChunk();
            const auto n = std::min(
                len, static_cast<std::size_t>(wend_ - wptr_));
            std::memcpy(wptr_, bytes, n);
            wptr_ += n;
            bytes += n;
            len -= n;
            bytes_ += n;
        }
    }

    /** Payload bytes written so far. */
    std::size_t sizeBytes() const { return bytes_; }

    /** Visit the written bytes as contiguous (pointer, length) spans
     *  in stream order.  The buffer must not be appended to while the
     *  spans are in use. */
    template <typename Fn>
    void
    forEachSpan(Fn &&fn) const
    {
        for (std::size_t i = 0; i < chunks_.size(); ++i) {
            const Chunk &chunk = chunks_[i];
            const std::uint8_t *end = i + 1 == chunks_.size()
                                          ? wptr_
                                          : chunk.data + chunk.size;
            if (end != chunk.data)
                fn(chunk.data, static_cast<std::size_t>(end - chunk.data));
        }
    }

  private:
    static constexpr std::size_t kChunkBytes = 64 * 1024;

    struct Chunk
    {
        std::uint8_t *data;
        std::size_t size;
    };

    void
    newChunk()
    {
        chunks_.push_back(
            {arena_->allocateArray<std::uint8_t>(kChunkBytes), kChunkBytes});
        wptr_ = chunks_.back().data;
        wend_ = wptr_ + kChunkBytes;
    }

    std::unique_ptr<support::Arena> arena_;
    std::vector<Chunk> chunks_;
    std::uint8_t *wptr_ = nullptr; ///< write cursor in the last chunk
    std::uint8_t *wend_ = nullptr; ///< end of the last chunk
    std::size_t bytes_ = 0;
};

/** Per-segment index entry, filled during capture so replay can skip
 *  or seek without decoding the payload. */
struct SegmentHeader
{
    std::uint64_t records = 0;   ///< records of any kind
    std::uint64_t steps = 0;     ///< records carrying the step flag
    std::uint64_t tidBitmap = 0; ///< bit min(tid, 63) per present tid
    InstrId firstInstr = kNoInstr; ///< first instr-event site (or kNoInstr)
    InstrId lastInstr = kNoInstr;  ///< last instr-event site (or kNoInstr)
    std::uint64_t bytes = 0;     ///< encoded payload length
    std::uint64_t leanEntries = 0; ///< sidecar LeanEvent count
    std::uint8_t flags = 0;

    /** Load/Store records carry a trailing value payload. */
    static constexpr std::uint8_t kFlagHasValues = 1;
    /** Segment lives in the spill file, not in RAM. */
    static constexpr std::uint8_t kFlagSpilled = 2;
};

/**
 * One pre-decoded sidecar entry for the lean worker decode of a
 * sharded replay.  The recorder appends these alongside the encoded
 * stream for exactly the event classes a race-detection worker
 * consumes — Load/Store accesses, Lock/Unlock, Spawn/Join, and
 * thread lifecycle — at the moment it already holds the decoded
 * fields, so capture cost is one 24-byte store per relevant event.
 * Worker shards then replay from this index in O(relevant events)
 * instead of decoding the full stream; value payloads are
 * deliberately omitted (no sync/race tool reads them — tools that do
 * attach to the full-fidelity primary shard).
 */
struct LeanEvent
{
    InstrId instr = kNoInstr; ///< event site; kNoInstr for lifecycle
    ObjectId obj = 0;         ///< access/lock object (else 0)
    /** Access/lock offset; for ThreadStart, spawnSite + 1 (0 = none). */
    std::uint32_t off = 0;
    ThreadId tid = 0;
    /** Spawn/Join: other tid; ThreadStart: parent tid. */
    std::uint32_t aux = 0;
    /** EventClass, or one of the lifecycle markers below. */
    std::uint8_t cls = 0;
    std::uint8_t pad_[3] = {0, 0, 0};

    static constexpr std::uint8_t kThreadStartCls = 0xfe;
    static constexpr std::uint8_t kThreadFinishCls = 0xff;
};
static_assert(sizeof(LeanEvent) == 24 && alignof(LeanEvent) == 4,
              "LeanEvent layout is an on-disk format");

/**
 * Unlinked on-disk overflow file shared by all spilled segments of
 * one capture.  Append-only during recording; immutable and
 * mmap-readable afterwards.  The file is unlinked at creation, so it
 * vanishes with the last handle even on crash.
 */
class SpillFile
{
  public:
    /** Read-only mmap window over one segment.  Mapped bytes are
     *  accounted in the global counters exposed under
     *  exec::testing so tests can assert the resident-bytes bound. */
    class Mapping
    {
      public:
        Mapping(void *base, std::size_t mapLen, std::size_t headSlack);
        ~Mapping();
        Mapping(const Mapping &) = delete;
        Mapping &operator=(const Mapping &) = delete;

        const std::uint8_t *
        data() const
        {
            return static_cast<const std::uint8_t *>(base_) + headSlack_;
        }

      private:
        void *base_;
        std::size_t mapLen_;
        std::size_t headSlack_; ///< offset round-down to page boundary
    };

    /** Create an unlinked temp file under $TMPDIR (default /tmp).
     *  Returns null (with a warning, and the errno in @p errnoOut)
     *  when the directory is not writable — callers then keep
     *  segments in RAM. */
    static std::shared_ptr<SpillFile> create(int *errnoOut = nullptr);

    /** Named-file mode: wrap an already-open, fully-verified capture
     *  file descriptor for read-only segment mapping (the load side
     *  of persistTrace).  The adopted fd is closed with the last
     *  handle; append() is forbidden. */
    static std::shared_ptr<SpillFile> adoptReadOnly(int fd,
                                                    std::uint64_t size);

    ~SpillFile();
    SpillFile(const SpillFile &) = delete;
    SpillFile &operator=(const SpillFile &) = delete;

    /** Append the buffer's bytes; on success stores the segment's
     *  starting offset in @p offsetOut.  A short write (disk full)
     *  warns and returns false with the file truncated back, so the
     *  caller can fall back to RAM. */
    bool append(const TraceBuffer &buffer, std::uint64_t &offsetOut);

    /** errno of the most recent failed write/create (0 = none). */
    int lastErrno() const { return lastErrno_; }

    /** Append @p len raw bytes, first padding the file to an 8-byte
     *  offset so mmap'd LeanEvent arrays land naturally aligned
     *  (page-aligned mapping base + 8-aligned head slack).  Same
     *  failure contract as the buffer overload. */
    bool append(const void *data, std::size_t len,
                std::uint64_t &offsetOut);

    /** Map @p length bytes at @p offset read-only.  Null on mmap
     *  failure. */
    std::shared_ptr<const Mapping> map(std::uint64_t offset,
                                       std::size_t length) const;

  private:
    explicit SpillFile(int fd) : fd_(fd) {}

    /** pwrite loop at the current tail; advances size_.  False (with
     *  a warning) on unrecoverable write failure. */
    bool writeAll(const std::uint8_t *data, std::size_t len);

    int fd_;
    std::uint64_t size_ = 0;
    bool readOnly_ = false;
    int lastErrno_ = 0;
};

/** Sequential decoder over one segment's byte spans (arena chunks
 *  for in-RAM segments, a single mmap window for spilled ones).  The
 *  owning TraceStore must outlive the cursor; the cursor itself keeps
 *  the mmap window alive.  Concurrent cursors over one segment are
 *  safe (reads only). */
class SegmentCursor
{
  public:
    bool
    atEnd() const
    {
        return ptr_ == end_ && next_ >= spans_.size();
    }

    std::uint8_t
    byte()
    {
        // Hot path: one pointer compare + deref.  Span hops only
        // every chunk (64 KiB) or never (mmap).
        if (ptr_ == end_)
            loadNextSpan();
        return *ptr_++;
    }

    std::uint64_t
    varint()
    {
        std::uint64_t value = 0;
        unsigned shift = 0;
        while (true) {
            const std::uint8_t b = byte();
            value |= (std::uint64_t{b} & 0x7f) << shift;
            if (!(b & 0x80))
                return value;
            shift += 7;
        }
    }

    std::int64_t
    zigzag()
    {
        const std::uint64_t raw = varint();
        return static_cast<std::int64_t>(raw >> 1) ^
               -static_cast<std::int64_t>(raw & 1);
    }

    /** Bytes consumed so far within this segment. */
    std::size_t
    consumed() const
    {
        return before_ + static_cast<std::size_t>(ptr_ - begin_);
    }

  private:
    friend class TraceStore;

    struct Span
    {
        const std::uint8_t *data;
        std::size_t size;
    };

    void
    loadNextSpan()
    {
        before_ += static_cast<std::size_t>(end_ - begin_);
        const Span &span = spans_[next_++];
        begin_ = ptr_ = span.data;
        end_ = span.data + span.size;
    }

    std::vector<Span> spans_;
    std::shared_ptr<const void> keepAlive_; ///< mmap window, if any
    const std::uint8_t *begin_ = nullptr;
    const std::uint8_t *ptr_ = nullptr;
    const std::uint8_t *end_ = nullptr;
    std::size_t next_ = 0;
    std::size_t before_ = 0;
};

/** Encode @p value as a trace value payload (kind byte +
 *  kind-dependent varints). */
inline void
encodeTraceValue(TraceBuffer &out, const Value &value)
{
    out.putByte(static_cast<std::uint8_t>(value.kind));
    switch (value.kind) {
      case ValueKind::Scalar:
        out.putZigzag(value.num);
        break;
      case ValueKind::Pointer:
        out.putVarint(value.obj);
        out.putVarint(value.off);
        break;
      case ValueKind::FuncPtr:
      case ValueKind::Thread:
        out.putVarint(value.idx);
        break;
    }
}

/** Inverse of encodeTraceValue. */
inline Value
decodeTraceValue(SegmentCursor &in)
{
    switch (static_cast<ValueKind>(in.byte())) {
      case ValueKind::Scalar:
        return Value::scalar(in.zigzag());
      case ValueKind::Pointer: {
        const auto obj = static_cast<ObjectId>(in.varint());
        const auto off = static_cast<std::uint32_t>(in.varint());
        return Value::pointer(obj, off);
      }
      case ValueKind::FuncPtr:
        return Value::funcPtr(static_cast<FuncId>(in.varint()));
      case ValueKind::Thread:
        return Value::thread(static_cast<ThreadId>(in.varint()));
    }
    OHA_ASSERT(false, "corrupt trace value payload");
    return {};
}

/** Capture knobs for one TraceStore. */
struct TraceStoreOptions
{
    /** Close + spill the open segment once it reaches this many
     *  bytes.  0 means "read OHA_TRACE_SEGMENT_BYTES" (default
     *  64 MiB).  Small traces never cross the threshold and stay
     *  entirely in RAM, single-segment. */
    std::size_t segmentBytes = 0;
    /** Append a value payload to every Load/Store record. */
    bool captureValues = false;
};

/** OHA_TRACE_SEGMENT_BYTES with validation/clamping (see
 *  support::envSizeBytes); re-read on every call. */
std::size_t configuredSegmentBytes();

struct RecordedTrace;

/**
 * The segmented trace store: one open TraceBuffer receiving records
 * plus a list of closed, immutable segments (spilled to the overflow
 * file, or kept in RAM when spilling is unavailable).  The recording
 * side is driven by TraceRecorder; after finish() the store is
 * read-only and safe to share across concurrent replays.
 */
class TraceStore
{
  public:
    TraceStore() : TraceStore(TraceStoreOptions{}) {}
    explicit TraceStore(const TraceStoreOptions &options);

    TraceStore(TraceStore &&) = default;
    TraceStore &operator=(TraceStore &&) = default;

    // ---- recording side (TraceRecorder only) ----

    /** The open segment's byte stream. */
    TraceBuffer &open() { return open_; }

    /** Account one appended record in the open segment's header. */
    void
    noteRecord(ThreadId tid, bool step)
    {
        ++openHeader_.records;
        openHeader_.steps += step;
        openHeader_.tidBitmap |= std::uint64_t{1} << (tid < 63 ? tid : 63);
    }

    /** Account one instr-event site in the open segment's header. */
    void
    noteInstr(InstrId id)
    {
        if (openHeader_.firstInstr == kNoInstr)
            openHeader_.firstInstr = id;
        openHeader_.lastInstr = id;
    }

    /** Append one pre-decoded sidecar entry for the record just
     *  encoded into the open segment (see LeanEvent). */
    void noteLean(const LeanEvent &event) { openLean_.push_back(event); }

    /** Should the open segment close?  Checked at record boundaries
     *  only, so segments close between records, never inside one. */
    bool openOverThreshold() const
    {
        return open_.sizeBytes() >= segmentBytes_;
    }

    /** Close the open segment: spill it to the overflow file (kept
     *  in RAM with a warning when spilling fails) and start a fresh
     *  open segment.  The caller must reset its delta chains. */
    void closeOpenSegment();

    /** End recording: the open segment (below the spill threshold by
     *  construction) becomes a final in-RAM segment, or is dropped
     *  when empty.  The store is read-only afterwards. */
    void finish();

    // ---- read side ----

    std::size_t numSegments() const { return segments_.size(); }

    const SegmentHeader &
    header(std::size_t i) const
    {
        return segments_[i].header;
    }

    /** Decoder positioned at the start of segment @p i.  Spilled
     *  segments are mapped for the cursor's lifetime; in-RAM
     *  segments borrow the store's arena. */
    SegmentCursor cursor(std::size_t i) const;

    /** Borrowed view over one segment's sidecar index (possibly
     *  empty).  Spilled sidecars are mapped for the view's
     *  lifetime. */
    struct LeanIndexView
    {
        const LeanEvent *data = nullptr;
        std::size_t count = 0;
        std::shared_ptr<const SpillFile::Mapping> keepAlive;
    };

    LeanIndexView leanIndex(std::size_t i) const;

    /** Did any segment reach the overflow file? */
    bool spilled() const { return file_ != nullptr; }

    /** Spill-path health for one capture: how many segments reached
     *  disk, how many fell back to RAM after a spill failure (disk
     *  full, unwritable $TMPDIR), and the errno of the most recent
     *  failure.  Surfaced so callers can distinguish "small trace,
     *  never spilled" from "spill failed, RAM kept growing". */
    struct SpillStats
    {
        std::uint64_t spilledSegments = 0;
        std::uint64_t ramFallbackSegments = 0;
        int lastErrno = 0;
    };

    const SpillStats &spillStats() const { return spillStats_; }

    /** Total encoded payload bytes across all segments. */
    std::size_t sizeBytes() const { return totalBytes_; }

    /** Bytes held in RAM (open segment + unspilled closed segments);
     *  excludes spilled bytes, which cost only an mmap window during
     *  replay. */
    std::size_t
    residentBytes() const
    {
        return open_.sizeBytes() + residentClosed_;
    }

    std::size_t segmentBytesThreshold() const { return segmentBytes_; }
    bool capturesValues() const { return captureValues_; }

    /** Sidecar-index bytes held in RAM (open segment + unspilled
     *  closed segments); the stream-byte twin of residentBytes(). */
    std::size_t
    leanResidentBytes() const
    {
        return openLean_.size() * sizeof(LeanEvent) + leanResident_;
    }

  private:
    friend bool persistTrace(const RecordedTrace &, const std::string &,
                             std::string *);
    friend std::shared_ptr<RecordedTrace> loadTrace(const std::string &,
                                                    std::string *);
    friend bool serializeRecordedTrace(const RecordedTrace &,
                                       support::ByteWriter &);
    friend std::shared_ptr<RecordedTrace>
    deserializeRecordedTrace(support::ByteReader &);

    struct Segment
    {
        SegmentHeader header;
        /** In-RAM payload; null when spilled (then fileOffset is
         *  valid). */
        std::unique_ptr<TraceBuffer> buffer;
        std::uint64_t fileOffset = 0;
        /** In-RAM sidecar; empty when spilled (then leanFileOffset
         *  is valid) or when the segment has no relevant events. */
        std::vector<LeanEvent> lean;
        std::uint64_t leanFileOffset = 0;
    };

    /** Visit segment @p i's encoded payload bytes in stream order
     *  (serialization; maps spilled segments for the call).  False on
     *  map failure. */
    bool forEachSegmentBytes(
        std::size_t i,
        const std::function<void(const std::uint8_t *, std::size_t)> &fn)
        const;

    std::size_t segmentBytes_;
    bool captureValues_;
    bool finished_ = false;
    bool spillFailed_ = false; ///< warn once, then keep RAM fallback
    TraceBuffer open_;
    SegmentHeader openHeader_;
    std::vector<LeanEvent> openLean_;
    std::vector<Segment> segments_;
    std::shared_ptr<SpillFile> file_;
    std::size_t totalBytes_ = 0;
    std::size_t residentClosed_ = 0;
    std::size_t leanResident_ = 0;
    SpillStats spillStats_;
};

/**
 * Interpreter-native recording sink (not a Tool: it sees every event
 * unconditionally, before plan filtering, with the full context).
 * Attach with Interpreter::setRecorder before run().
 */
class TraceRecorder
{
  public:
    TraceRecorder() = default;
    explicit TraceRecorder(const TraceStoreOptions &options)
        : store_(options)
    {
    }

    /** Mark the start of one guest instruction; the next record
     *  carries the step flag.  Idempotent, so an instruction that
     *  blocks without executing (Lock/Join) leaves the flag pending
     *  for the instruction that actually fires next. */
    void beginStep() { pendingStep_ = true; }

    /** Does recording @p op read payload fields out of the EventCtx?
     *  The interpreter skips context construction entirely for
     *  payload-free records (the bulk of the stream), so recording
     *  costs little more than the header + instr-delta encode. */
    static constexpr bool
    opHasPayload(ir::Opcode op)
    {
        switch (op) {
          case ir::Opcode::Load:
          case ir::Opcode::Store:
          case ir::Opcode::Lock:
          case ir::Opcode::Unlock:
          case ir::Opcode::ICall:
          case ir::Opcode::Spawn:
          case ir::Opcode::Join:
          case ir::Opcode::Output:
            return true;
          default:
            return false;
        }
    }

    /** Record one fired event.  @p ctx is consulted only when
     *  opHasPayload(ins.op) — it may be uninitialized otherwise. */
    void
    recordEvent(EventClass cls, ThreadId tid, const ir::Instruction &ins,
                const EventCtx &ctx)
    {
        TraceBuffer &out = store_.open();
        const bool step = putHeader(out, kInstrEvent, tid);
        const InstrId id = ins.id;
        out.putZigzag(std::int64_t{id} - prevInstr_);
        prevInstr_ = id;
        switch (ins.op) {
          case ir::Opcode::Load:
          case ir::Opcode::Store:
            out.putZigzag(std::int64_t{ctx.obj} - prevObj_);
            prevObj_ = ctx.obj;
            out.putVarint(ctx.off);
            if (store_.capturesValues())
                encodeTraceValue(out, ctx.value);
            store_.noteLean({id, ctx.obj, ctx.off, tid, 0,
                             static_cast<std::uint8_t>(cls)});
            break;
          case ir::Opcode::Lock:
          case ir::Opcode::Unlock:
            out.putZigzag(std::int64_t{ctx.obj} - prevObj_);
            prevObj_ = ctx.obj;
            out.putVarint(ctx.off);
            store_.noteLean({id, ctx.obj, ctx.off, tid, 0,
                             static_cast<std::uint8_t>(cls)});
            break;
          case ir::Opcode::ICall:
            out.putVarint(ctx.calleeResolved);
            break;
          case ir::Opcode::Spawn:
          case ir::Opcode::Join:
            out.putVarint(ctx.otherTid);
            store_.noteLean({id, 0, 0, tid, ctx.otherTid,
                             static_cast<std::uint8_t>(cls)});
            break;
          case ir::Opcode::Output:
            out.putZigzag(Interpreter::encodeValue(ctx.value));
            break;
          default:
            break;
        }
        store_.noteInstr(id);
        endRecord(tid, step);
    }

    void
    recordBlockEnter(ThreadId tid, BlockId block)
    {
        TraceBuffer &out = store_.open();
        const bool step = putHeader(out, kBlockEnter, tid);
        out.putZigzag(std::int64_t{block} - prevBlock_);
        prevBlock_ = block;
        endRecord(tid, step);
    }

    void
    recordThreadStart(ThreadId tid, ThreadId parent, InstrId spawnSite)
    {
        TraceBuffer &out = store_.open();
        const bool step = putHeader(out, kThreadStart, tid);
        out.putVarint(parent);
        out.putVarint(spawnSite == kNoInstr ? 0
                                            : std::uint64_t{spawnSite} + 1);
        store_.noteLean(
            {kNoInstr, 0,
             spawnSite == kNoInstr
                 ? 0
                 : static_cast<std::uint32_t>(spawnSite) + 1,
             tid, parent, LeanEvent::kThreadStartCls});
        endRecord(tid, step);
    }

    void
    recordThreadFinish(ThreadId tid)
    {
        const bool step = putHeader(store_.open(), kThreadFinish, tid);
        store_.noteLean(
            {kNoInstr, 0, 0, tid, 0, LeanEvent::kThreadFinishCls});
        endRecord(tid, step);
    }

    /** Finish and move the segmented store out (recorder is spent
     *  afterwards). */
    TraceStore
    take()
    {
        store_.finish();
        return std::move(store_);
    }

    // Record kinds (header bits 0-1).
    static constexpr std::uint8_t kInstrEvent = 0;
    static constexpr std::uint8_t kBlockEnter = 1;
    static constexpr std::uint8_t kThreadStart = 2;
    static constexpr std::uint8_t kThreadFinish = 3;
    /** Header tid field value meaning "varint tid follows". */
    static constexpr std::uint8_t kTidEscape = 31;

  private:
    bool
    putHeader(TraceBuffer &out, std::uint8_t kind, ThreadId tid)
    {
        std::uint8_t header = kind;
        const bool step = pendingStep_;
        if (step) {
            header |= 4;
            pendingStep_ = false;
        }
        if (tid < kTidEscape) {
            out.putByte(header | static_cast<std::uint8_t>(tid << 3));
        } else {
            out.putByte(header |
                        static_cast<std::uint8_t>(kTidEscape << 3));
            out.putVarint(tid);
        }
        return step;
    }

    /** Per-record bookkeeping + spill check.  Runs after the record
     *  is fully encoded, so segments close only at record
     *  boundaries; the delta chains restart with the new segment so
     *  it decodes standalone. */
    void
    endRecord(ThreadId tid, bool step)
    {
        store_.noteRecord(tid, step);
        if (store_.openOverThreshold()) {
            store_.closeOpenSegment();
            prevInstr_ = 0;
            prevObj_ = 0;
            prevBlock_ = 0;
        }
    }

    TraceStore store_;
    bool pendingStep_ = false;
    std::int64_t prevInstr_ = 0;
    std::int64_t prevObj_ = 0;
    std::int64_t prevBlock_ = 0;
};

/** One recorded execution: the segmented event stream plus the plain
 *  run's outcome.  Immutable after recording; safe to share
 *  read-only across concurrent replays. */
struct RecordedTrace
{
    TraceStore events;
    /** Result of the recording run (no tools attached, so
     *  `delivered` is empty and the status/steps are those of the
     *  uninstrumented execution). */
    RunResult result;
};

/**
 * Persist a finished capture to @p path as a checksummed, atomically
 * published file (support::DurableWriter, kind Capture): segment
 * payloads and LeanEvent sidecars as raw blocks plus a meta block
 * carrying the SegmentHeader table and the RunResult.  False (with
 * @p errorOut and a warning) on any I/O failure — the previously
 * published file, if any, is untouched.
 */
bool persistTrace(const RecordedTrace &trace, const std::string &path,
                  std::string *errorOut = nullptr);

/**
 * Reload a capture persisted by persistTrace.  The file is fully
 * checksum-verified and semantically validated (segment/block counts,
 * byte lengths, step totals); segments replay through the same mmap
 * windows as live spilled segments — the loaded fd is adopted as a
 * read-only SpillFile, so load cost is O(metadata), not O(trace).
 * Null (with @p errorOut and a warning) on any defect: truncation,
 * bit flips, version skew, wrong kind — never a crash, never
 * corrupt events served.
 */
std::shared_ptr<RecordedTrace> loadTrace(const std::string &path,
                                         std::string *errorOut = nullptr);

/** Blob form of persistTrace for embedding a capture inside another
 *  container (cache snapshots): same meta encoding, segment payloads
 *  inline.  Spilled segments are read back through mmap windows;
 *  false (nothing appended beyond a possibly-partial blob — discard
 *  @p out) when a window cannot be mapped. */
bool serializeRecordedTrace(const RecordedTrace &trace,
                            support::ByteWriter &out);

/** Inverse of serializeRecordedTrace; bounds-checked and validated
 *  like loadTrace.  Originally-spilled segments are re-spilled to a
 *  fresh unlinked SpillFile (RAM fallback when unavailable).  Null on
 *  any defect. */
std::shared_ptr<RecordedTrace>
deserializeRecordedTrace(support::ByteReader &in);

/** Execute @p config once, uninstrumented, capturing its trace. */
RecordedTrace recordRun(const ir::Module &module, const ExecConfig &config);

/** Same, with explicit capture knobs (spill threshold, values). */
RecordedTrace recordRun(const ir::Module &module, const ExecConfig &config,
                        const TraceStoreOptions &options);

/**
 * Drives attached tools from a recorded trace without re-running
 * fetch/decode/eval.  The attach/run/requestAbort surface mirrors
 * Interpreter, and the resulting RunResult (status, steps, outputs,
 * event accounting, per-tool delivery counts) is byte-identical to a
 * live run of the same tools under the same plans on the same input.
 *
 * Aborts (the invariant checker on a violation) truncate the replay
 * at the same instruction boundary a live run would stop at: the
 * aborting instruction's remaining records are still delivered, then
 * the replay ends with Status::Aborted and the step count of the live
 * aborted run.  A full (un-aborted) replay reports the recorded run's
 * status — including Aborted/StepLimit when the *recording* itself
 * was truncated.
 *
 * Sharded replay: setShardFilter(s, n) makes this replayer deliver
 * Load/Store events only for objects owned by shard s of n
 * (ownership = object id mod n); all other event classes — sync,
 * spawn/join, thread lifecycle, call/ret, block enters — are
 * delivered to every shard, so per-shard tools observe identical
 * thread/lock state and each memory location is analyzed by exactly
 * one shard.
 *
 * Shard 0 is the primary: its run() is a full replay (complete
 * RunResult — totalEvents, outputs, frame ids in every EventCtx)
 * with only the Load/Store filter applied.  Shards > 0 replay from
 * the per-segment LeanEvent sidecar index the recorder captured
 * alongside the stream: a worker never touches the encoded bytes at
 * all, it walks an array of pre-decoded access/sync events and
 * filters to its partition, so its cost is O(relevant events) rather
 * than O(stream bytes) and the marginal cost of an extra shard is
 * far below a full replay.  Lean results carry steps, numThreads,
 * status and `delivered` (owned deliveries only — per-shard
 * delivered Load/Store counts still sum to the serial run's); their
 * totalEvents/outputs are empty, delivered EventCtx frame fields are
 * zero, and Load/Store values are empty even for value-capturing
 * traces — none of which FastTrack-style tools read.  Worker-shard
 * plans must cover only sidecar classes (Load/Store, Lock/Unlock,
 * Spawn/Join); tools needing calls, rets, blocks, outputs or values
 * attach to the primary.  Consumers wanting the stream-level result
 * read it from shard 0 (core::replayFastTrackSharded does exactly
 * that).
 */
class TraceReplayer : public ExecutionControl
{
  public:
    TraceReplayer(const ir::Module &module, const RecordedTrace &trace)
        : module_(module), trace_(trace)
    {
    }

    /** Attach a tool filtered by @p plan (same contract as
     *  Interpreter::attach). */
    void
    attach(Tool *tool, const InstrumentationPlan *plan)
    {
        OHA_ASSERT(tool && plan);
        attachments_.push_back({tool, plan});
    }

    /** Deliver Load/Store only for objects with
     *  obj % numShards == shard (no-op when numShards <= 1). */
    void
    setShardFilter(std::uint32_t shard, std::uint32_t numShards)
    {
        OHA_ASSERT(numShards >= 1 && shard < numShards);
        shard_ = shard;
        numShards_ = numShards;
        // Power-of-two shard counts take the mask fast path.
        shardMask_ = (numShards & (numShards - 1)) == 0 ? numShards - 1 : 0;
    }

    /** Replay the recorded stream through the attached tools.
     *  Dispatches to the lean worker decode for shards > 0. */
    RunResult run();

    void requestAbort(std::string reason) override;
    void requestAbort(std::string reason,
                      const AbortMetadata &meta) override;

  private:
    struct Attachment
    {
        Tool *tool;
        const InstrumentationPlan *plan;
    };

    bool
    ownsObject(ObjectId obj) const
    {
        return shardMask_ ? (obj & shardMask_) == shard_
                          : obj % numShards_ == shard_;
    }

    /** Lean decode for non-primary shards (see class comment). */
    RunResult runLeanShard();

    const ir::Module &module_;
    const RecordedTrace &trace_;
    std::vector<Attachment> attachments_;

    std::uint32_t shard_ = 0;
    std::uint32_t numShards_ = 1;
    std::uint32_t shardMask_ = 0;

    bool abortRequested_ = false;
    std::string abortReason_;
    AbortMetadata abortMeta_;
};

namespace testing {

/** Trace bytes currently mmap'd across all replays (this process). */
std::size_t mappedTraceBytesNow();
/** High-water mark of mappedTraceBytesNow() since the last reset. */
std::size_t mappedTraceBytesPeak();
void resetMappedTraceBytesPeak();

/** Byte offset within the concatenated encoded stream immediately
 *  after the last record of 1-based step @p step — i.e. a spill
 *  threshold of exactly this value makes the first segment end on
 *  that step's boundary.  Decodes the stream (test-only pace). */
std::size_t byteOffsetAfterStep(const ir::Module &module,
                                const TraceStore &store,
                                std::uint64_t step);

} // namespace testing

} // namespace oha::exec
