/**
 * @file
 * Deterministic event-trace capture and replay (record once, analyze
 * many).
 *
 * The paper assumes a deterministic record/replay environment:
 * rollback after an invariant violation is "deterministic
 * re-execution under the sound hybrid analysis" (Section 2.3).  Our
 * interpreter already *is* that environment — an execution is a pure
 * function of (module, input, schedule seed) and tools never perturb
 * it — but the evaluation pipeline used to pay for the determinism
 * without exploiting it, running every testing input through the full
 * fetch/decode/eval loop once per analysis configuration.
 *
 * This subsystem executes an input once with a TraceRecorder sink
 * that captures the complete analysis-relevant event stream — memory
 * accesses, sync operations, spawns/joins, calls/returns, block
 * entries — into a compact arena-backed byte buffer, then drives any
 * number of analysis configurations from a TraceReplayer that decodes
 * the stream and performs only plan filtering + tool dispatch.
 * Rollback becomes a replay under the hybrid plan instead of a second
 * full execution.
 *
 * Encoding (varint/zigzag-delta, one record per fired event):
 *
 *   header byte:  bits 0-1  record kind (instr event / block enter /
 *                           thread start / thread finish)
 *                 bit 2     step flag — set on the first record of
 *                           each executed instruction, so the
 *                           replayer can reconstruct the step count
 *                           and stop exactly at the instruction
 *                           boundary where a live run would abort
 *                 bits 3-7  thread id (31 = escape, varint follows)
 *
 *   instr event:  zigzag delta of the instruction id vs. the previous
 *                 instr record, then an opcode-dependent payload:
 *                 Load/Store/Lock/Unlock -> zigzag object-id delta +
 *                 varint offset; ICall -> varint resolved callee;
 *                 Spawn/Join -> varint other thread; Output -> zigzag
 *                 encoded value.  Everything else (the opcode, the
 *                 event class, Call's static callee) is recomputed
 *                 from the module at replay time.
 *
 *   block enter:  zigzag delta of the block id.
 *   thread start: varint parent tid + varint spawn site (+1; 0 means
 *                 kNoInstr, i.e. the main thread).
 *
 * Frame identifiers are *not* encoded: the interpreter assigns them
 * globally sequentially from 1, so the replayer reconstructs
 * identical frame ids (and Ret's caller frame / call-site context)
 * with a per-thread shadow call stack.
 *
 * Replay fidelity: delivered events, ordering, per-tool counts, step
 * counts, outputs and abort semantics are byte-identical to a live
 * run of the same tools under the same plans.  The only EventCtx
 * field not reconstructed is `value` (loaded/stored/returned Values),
 * which no current tool consumes; a tool that needs values must run
 * live or the codec must grow a value payload.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "exec/interpreter.h"
#include "support/arena.h"

namespace oha::exec {

/** Arena-backed append-only byte stream with varint/zigzag codec. */
class TraceBuffer
{
  public:
    TraceBuffer() : arena_(std::make_unique<support::Arena>(kChunkBytes)) {}

    TraceBuffer(TraceBuffer &&) = default;
    TraceBuffer &operator=(TraceBuffer &&) = default;

    void
    putByte(std::uint8_t byte)
    {
        // Hot path: one pointer compare + store.  Chunk allocations
        // only every kChunkBytes bytes.
        if (wptr_ == wend_)
            newChunk();
        *wptr_++ = byte;
        ++bytes_;
    }

    void
    putVarint(std::uint64_t value)
    {
        while (value >= 0x80) {
            putByte(static_cast<std::uint8_t>(value) | 0x80);
            value >>= 7;
        }
        putByte(static_cast<std::uint8_t>(value));
    }

    void
    putZigzag(std::int64_t value)
    {
        putVarint((static_cast<std::uint64_t>(value) << 1) ^
                  static_cast<std::uint64_t>(value >> 63));
    }

    /** Payload bytes written so far. */
    std::size_t sizeBytes() const { return bytes_; }

    /** Sequential decoder over the buffer.  The buffer must stay
     *  alive and unmodified while readers exist; concurrent readers
     *  over one buffer are safe (reads only). */
    class Reader
    {
      public:
        bool
        atEnd() const
        {
            return ptr_ == end_ && nextChunk_ >= buffer_->chunks_.size();
        }

        std::uint8_t
        byte()
        {
            // Hot path: one pointer compare + deref.  Chunk hops only
            // every kChunkBytes bytes.
            if (ptr_ == end_)
                loadNextChunk();
            return *ptr_++;
        }

        std::uint64_t
        varint()
        {
            std::uint64_t value = 0;
            unsigned shift = 0;
            while (true) {
                const std::uint8_t b = byte();
                value |= (std::uint64_t{b} & 0x7f) << shift;
                if (!(b & 0x80))
                    return value;
                shift += 7;
            }
        }

        std::int64_t
        zigzag()
        {
            const std::uint64_t raw = varint();
            return static_cast<std::int64_t>(raw >> 1) ^
                   -static_cast<std::int64_t>(raw & 1);
        }

      private:
        friend class TraceBuffer;
        explicit Reader(const TraceBuffer *buffer) : buffer_(buffer) {}

        void
        loadNextChunk()
        {
            const Chunk &chunk = buffer_->chunks_[nextChunk_++];
            ptr_ = chunk.data;
            end_ = nextChunk_ == buffer_->chunks_.size()
                       ? buffer_->wptr_
                       : ptr_ + chunk.size;
        }

        const TraceBuffer *buffer_;
        const std::uint8_t *ptr_ = nullptr;
        const std::uint8_t *end_ = nullptr;
        std::size_t nextChunk_ = 0;
    };

    Reader reader() const { return Reader(this); }

  private:
    static constexpr std::size_t kChunkBytes = 64 * 1024;

    struct Chunk
    {
        std::uint8_t *data;
        std::size_t size;
    };

    void
    newChunk()
    {
        chunks_.push_back(
            {arena_->allocateArray<std::uint8_t>(kChunkBytes), kChunkBytes});
        wptr_ = chunks_.back().data;
        wend_ = wptr_ + kChunkBytes;
    }

    std::unique_ptr<support::Arena> arena_;
    std::vector<Chunk> chunks_;
    std::uint8_t *wptr_ = nullptr; ///< write cursor in the last chunk
    std::uint8_t *wend_ = nullptr; ///< end of the last chunk
    std::size_t bytes_ = 0;
};

/**
 * Interpreter-native recording sink (not a Tool: it sees every event
 * unconditionally, before plan filtering, with the full context).
 * Attach with Interpreter::setRecorder before run().
 */
class TraceRecorder
{
  public:
    /** Mark the start of one guest instruction; the next record
     *  carries the step flag.  Idempotent, so an instruction that
     *  blocks without executing (Lock/Join) leaves the flag pending
     *  for the instruction that actually fires next. */
    void beginStep() { pendingStep_ = true; }

    /** Does recording @p op read payload fields out of the EventCtx?
     *  The interpreter skips context construction entirely for
     *  payload-free records (the bulk of the stream), so recording
     *  costs little more than the header + instr-delta encode. */
    static constexpr bool
    opHasPayload(ir::Opcode op)
    {
        switch (op) {
          case ir::Opcode::Load:
          case ir::Opcode::Store:
          case ir::Opcode::Lock:
          case ir::Opcode::Unlock:
          case ir::Opcode::ICall:
          case ir::Opcode::Spawn:
          case ir::Opcode::Join:
          case ir::Opcode::Output:
            return true;
          default:
            return false;
        }
    }

    /** Record one fired event.  @p ctx is consulted only when
     *  opHasPayload(ins.op) — it may be uninitialized otherwise. */
    void
    recordEvent(EventClass cls, ThreadId tid, const ir::Instruction &ins,
                const EventCtx &ctx)
    {
        putHeader(kInstrEvent, tid);
        const InstrId id = ins.id;
        buffer_.putZigzag(std::int64_t{id} - prevInstr_);
        prevInstr_ = id;
        switch (ins.op) {
          case ir::Opcode::Load:
          case ir::Opcode::Store:
          case ir::Opcode::Lock:
          case ir::Opcode::Unlock:
            buffer_.putZigzag(std::int64_t{ctx.obj} - prevObj_);
            prevObj_ = ctx.obj;
            buffer_.putVarint(ctx.off);
            break;
          case ir::Opcode::ICall:
            buffer_.putVarint(ctx.calleeResolved);
            break;
          case ir::Opcode::Spawn:
          case ir::Opcode::Join:
            buffer_.putVarint(ctx.otherTid);
            break;
          case ir::Opcode::Output:
            buffer_.putZigzag(Interpreter::encodeValue(ctx.value));
            break;
          default:
            break;
        }
        (void)cls;
    }

    void
    recordBlockEnter(ThreadId tid, BlockId block)
    {
        putHeader(kBlockEnter, tid);
        buffer_.putZigzag(std::int64_t{block} - prevBlock_);
        prevBlock_ = block;
    }

    void
    recordThreadStart(ThreadId tid, ThreadId parent, InstrId spawnSite)
    {
        putHeader(kThreadStart, tid);
        buffer_.putVarint(parent);
        buffer_.putVarint(spawnSite == kNoInstr ? 0
                                                : std::uint64_t{spawnSite} + 1);
    }

    void
    recordThreadFinish(ThreadId tid)
    {
        putHeader(kThreadFinish, tid);
    }

    /** Move the encoded stream out (recorder is spent afterwards). */
    TraceBuffer take() { return std::move(buffer_); }

    // Record kinds (header bits 0-1).
    static constexpr std::uint8_t kInstrEvent = 0;
    static constexpr std::uint8_t kBlockEnter = 1;
    static constexpr std::uint8_t kThreadStart = 2;
    static constexpr std::uint8_t kThreadFinish = 3;
    /** Header tid field value meaning "varint tid follows". */
    static constexpr std::uint8_t kTidEscape = 31;

  private:
    void
    putHeader(std::uint8_t kind, ThreadId tid)
    {
        std::uint8_t header = kind;
        if (pendingStep_) {
            header |= 4;
            pendingStep_ = false;
        }
        if (tid < kTidEscape) {
            buffer_.putByte(header |
                            static_cast<std::uint8_t>(tid << 3));
        } else {
            buffer_.putByte(header |
                            static_cast<std::uint8_t>(kTidEscape << 3));
            buffer_.putVarint(tid);
        }
    }

    TraceBuffer buffer_;
    bool pendingStep_ = false;
    std::int64_t prevInstr_ = 0;
    std::int64_t prevObj_ = 0;
    std::int64_t prevBlock_ = 0;
};

/** One recorded execution: the event stream plus the plain run's
 *  outcome.  Immutable after recording; safe to share read-only
 *  across concurrent replays. */
struct RecordedTrace
{
    TraceBuffer events;
    /** Result of the recording run (no tools attached, so
     *  `delivered` is empty and the status/steps are those of the
     *  uninstrumented execution). */
    RunResult result;
};

/** Execute @p config once, uninstrumented, capturing its trace. */
RecordedTrace recordRun(const ir::Module &module, const ExecConfig &config);

/**
 * Drives attached tools from a recorded trace without re-running
 * fetch/decode/eval.  The attach/run/requestAbort surface mirrors
 * Interpreter, and the resulting RunResult (status, steps, outputs,
 * event accounting, per-tool delivery counts) is byte-identical to a
 * live run of the same tools under the same plans on the same input.
 *
 * Aborts (the invariant checker on a violation) truncate the replay
 * at the same instruction boundary a live run would stop at: the
 * aborting instruction's remaining records are still delivered, then
 * the replay ends with Status::Aborted and the step count of the live
 * aborted run.  A full (un-aborted) replay reports the recorded run's
 * status — including Aborted/StepLimit when the *recording* itself
 * was truncated.
 */
class TraceReplayer : public ExecutionControl
{
  public:
    TraceReplayer(const ir::Module &module, const RecordedTrace &trace)
        : module_(module), trace_(trace)
    {
    }

    /** Attach a tool filtered by @p plan (same contract as
     *  Interpreter::attach). */
    void
    attach(Tool *tool, const InstrumentationPlan *plan)
    {
        OHA_ASSERT(tool && plan);
        attachments_.push_back({tool, plan});
    }

    /** Replay the recorded stream through the attached tools. */
    RunResult run();

    void requestAbort(std::string reason) override;
    void requestAbort(std::string reason,
                      const AbortMetadata &meta) override;

  private:
    struct Attachment
    {
        Tool *tool;
        const InstrumentationPlan *plan;
    };

    const ir::Module &module_;
    const RecordedTrace &trace_;
    std::vector<Attachment> attachments_;

    bool abortRequested_ = false;
    std::string abortReason_;
    AbortMetadata abortMeta_;
};

} // namespace oha::exec
