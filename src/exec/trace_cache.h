/**
 * @file
 * Memoized trace capture, backed by the shared cross-request cache
 * (service/shared_cache.h).
 *
 * A recorded trace is a pure function of (module, ExecConfig): the
 * interpreter is deterministic and the recorder captures every event
 * unconditionally, before plan filtering.  So a capture — easily the
 * most expensive per-input step of record-once/analyze-many — is as
 * memoizable as a points-to solve.  Within one pipeline invocation
 * that only deduplicates identical (input, seed) pairs, but in
 * service mode (service/analysis_service.h) it is the difference
 * between a cold and a warm request: repeated analyses of a hot
 * (module, corpus) pair skip the interpreter entirely and replay the
 * cached streams.
 *
 * Entries share the LRU spine and byte budget of the static-result
 * caches (andersen_cache.h) and inherit the same correctness
 * machinery: dual-fingerprint verification on hit, generation-stamped
 * inserts, first-insert-wins.  Traces are immutable after recording
 * and replays only read, so one cached trace may serve any number of
 * concurrent replays.
 */

#pragma once

#include <memory>
#include <vector>

#include "exec/trace.h"
#include "ir/module.h"
#include "service/shared_cache.h"

namespace oha::exec {

/** Approximate heap footprint of a recorded trace (event stream +
 *  recorded run outcome), for cache byte budgeting. */
std::size_t byteSizeEstimate(const RecordedTrace &trace);

/**
 * Memoized recordRun.  Keyed by (module fingerprint, exec-config
 * fingerprint) — every ExecConfig field participates, including the
 * replay schedule — in the shared cross-request cache.  On a miss the
 * recording run executes outside the cache lock; first insert wins.
 * The returned trace (and the cache entry behind it, until evicted)
 * keeps @p module alive.
 */
std::shared_ptr<const RecordedTrace>
recordRunMemo(const std::shared_ptr<const ir::Module> &module,
              const ExecConfig &config);

/**
 * Snapshot-portable view of one cached capture: both fingerprints of
 * each key component plus the (immutable, plain-data) trace.  Used by
 * the warm-start snapshot (service/snapshot.cc); restored entries are
 * admitted without a module object — replays fetch the module from
 * the request, the entry only needs to verify fingerprints.
 */
struct TraceSectionEntry
{
    service::Fingerprint moduleFp;
    service::Fingerprint configFp;
    std::shared_ptr<const RecordedTrace> trace;
};

/** Copy the cached captures out for snapshotting.  Safe to call
 *  concurrently with requests. */
std::vector<TraceSectionEntry> exportTraceSection();

/** Re-admit a restored capture (warm start).  First insert wins; the
 *  entry joins the LRU spine with its byte estimate charged. */
void admitTraceSectionEntry(const TraceSectionEntry &entry);

} // namespace oha::exec
