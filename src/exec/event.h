/**
 * @file
 * The instrumentation interface between the interpreter and dynamic
 * analysis tools.
 *
 * Dynamic analysis in the paper is "instrumenting a binary with
 * additional checks" (Section 2.3); here a Tool subscribes to runtime
 * events, and an InstrumentationPlan says which instruction / block
 * sites are instrumented at all.  Eliding a check — the core
 * optimization of hybrid analysis — is simply clearing its bit in the
 * plan, after which the tool never sees the event (and, exactly as in
 * Figure 2 of the paper, loses any metadata it would have recorded).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/value.h"
#include "ir/module.h"
#include "support/common.h"

namespace oha::exec {

class Interpreter;

/**
 * Structured metadata attached to an abort request.  A plain-data
 * mirror of the aborting tool's diagnosis (for the invariant checker,
 * a dyn::Violation): the field meanings are owned by the tool that
 * raised the abort, the execution layer only carries them through to
 * RunResult::abortMeta so drivers can act on *why* a speculative run
 * died without parsing the reason string.  Kept POD so recorded and
 * replayed runs can compare it field-for-field.
 */
struct AbortMetadata
{
    std::uint32_t kind = 0;     ///< tool-defined discriminator (0 = none)
    std::uint64_t site = 0;     ///< primary site (instruction/block id)
    std::uint64_t aux = 0;      ///< secondary site (e.g. partner lock)
    std::uint64_t observed = 0; ///< offending observed value
    std::uint32_t thread = 0;   ///< thread that tripped the check

    bool operator==(const AbortMetadata &other) const = default;
};

/**
 * The control surface an event source offers to its tools.  Both the
 * live Interpreter and the TraceReplayer (trace.h) implement it, so a
 * tool that needs to stop the execution — the invariant checker on a
 * violated speculation — works identically whether its events come
 * from a live run or from a recorded trace.
 */
class ExecutionControl
{
  public:
    virtual ~ExecutionControl() = default;

    /** Stop the execution/replay from inside a tool callback.  The
     *  current instruction's remaining deliveries still happen; the
     *  run ends at the next instruction boundary. */
    virtual void requestAbort(std::string reason) = 0;

    /** As above, with structured metadata surfaced through
     *  RunResult::abortMeta.  The default drops the metadata, so
     *  ExecutionControl implementations that predate it (and test
     *  doubles) keep working unchanged. */
    virtual void
    requestAbort(std::string reason, const AbortMetadata &meta)
    {
        (void)meta;
        requestAbort(std::move(reason));
    }
};

/** Classes of runtime events, used for cost accounting. */
enum class EventClass : std::uint8_t
{
    Load, Store, Lock, Unlock, Spawn, Join, Call, Ret, BlockEnter,
    Output, Other,
};

constexpr std::size_t kNumEventClasses = 11;

/** Per-class event counters for one execution / one tool attachment. */
struct EventCounts
{
    std::uint64_t counts[kNumEventClasses] = {};

    std::uint64_t &
    operator[](EventClass cls)
    {
        return counts[static_cast<std::size_t>(cls)];
    }

    std::uint64_t
    operator[](EventClass cls) const
    {
        return counts[static_cast<std::size_t>(cls)];
    }

    std::uint64_t
    total() const
    {
        std::uint64_t sum = 0;
        for (std::uint64_t c : counts)
            sum += c;
        return sum;
    }

    void
    add(const EventCounts &other)
    {
        for (std::size_t i = 0; i < kNumEventClasses; ++i)
            counts[i] += other.counts[i];
    }
};

/** EventClass an instruction belongs to when it fires. */
EventClass eventClassOf(ir::Opcode op);

/**
 * Context passed to Tool::onEvent.  Which fields are meaningful
 * depends on the opcode:
 *  - Load/Store/Lock/Unlock: obj/off are the resolved address; for
 *    Store, value is the stored value; for Load, the loaded value.
 *  - Call/ICall: calleeResolved is the target, frame2 the new callee
 *    frame id (for argument def-use linking).
 *  - Ret: frame2 is the caller frame id and callInstr the call site
 *    whose destination receives the value.
 *  - Spawn/Join: otherTid is the child / joined thread.
 *  - Output: value is the emitted value.
 */
struct EventCtx
{
    ThreadId tid = 0;
    const ir::Instruction *instr = nullptr;
    std::uint64_t frameId = 0;

    ObjectId obj = 0;
    std::uint32_t off = 0;
    Value value;

    FuncId calleeResolved = kNoFunc;
    std::uint64_t frame2 = 0;
    const ir::Instruction *callInstr = nullptr;
    ThreadId otherTid = 0;
};

/**
 * A dynamic analysis tool.  All hooks default to no-ops; tools
 * override what they need.  Tools may call Interpreter::requestAbort
 * from a hook to stop the execution (used for invariant violations).
 */
class Tool
{
  public:
    virtual ~Tool() = default;

    /** An instrumented instruction executed. */
    virtual void onEvent(const EventCtx &ctx) { (void)ctx; }

    /** Control entered an instrumented basic block. */
    virtual void
    onBlockEnter(ThreadId tid, BlockId block)
    {
        (void)tid;
        (void)block;
    }

    /** A thread began running (including the main thread). */
    virtual void
    onThreadStart(ThreadId tid, ThreadId parent, InstrId spawnSite)
    {
        (void)tid;
        (void)parent;
        (void)spawnSite;
    }

    /** A thread ran to completion. */
    virtual void onThreadFinish(ThreadId tid) { (void)tid; }
};

/**
 * Which sites are instrumented.  Per-instruction and per-block byte
 * maps over module-unique ids — bytes, not vector<bool>, because
 * coversInstr() sits on the per-event dispatch path and a bit-proxy
 * read (shift + mask through a proxy object) is measurably slower
 * than one byte load.  Site counts are maintained incrementally so
 * numInstrSites()/numBlockSites() are O(1).
 */
class InstrumentationPlan
{
  public:
    InstrumentationPlan() = default;

    /** Plan instrumenting every instruction and block. */
    static InstrumentationPlan
    all(const ir::Module &module)
    {
        InstrumentationPlan plan;
        plan.instrs_.assign(module.numInstrs(), 1);
        plan.blocks_.assign(module.numBlocks(), 1);
        plan.instrSites_ = module.numInstrs();
        plan.blockSites_ = module.numBlocks();
        return plan;
    }

    /** Plan instrumenting nothing. */
    static InstrumentationPlan
    none(const ir::Module &module)
    {
        InstrumentationPlan plan;
        plan.instrs_.assign(module.numInstrs(), 0);
        plan.blocks_.assign(module.numBlocks(), 0);
        return plan;
    }

    bool
    coversInstr(InstrId id) const
    {
        return id < instrs_.size() && instrs_[id];
    }

    bool
    coversBlock(BlockId id) const
    {
        return id < blocks_.size() && blocks_[id];
    }

    void
    setInstr(InstrId id, bool on)
    {
        OHA_ASSERT(id < instrs_.size());
        instrSites_ -= instrs_[id];
        instrs_[id] = on;
        instrSites_ += instrs_[id];
    }

    void
    setBlock(BlockId id, bool on)
    {
        OHA_ASSERT(id < blocks_.size());
        blockSites_ -= blocks_[id];
        blocks_[id] = on;
        blockSites_ += blocks_[id];
    }

    /** Number of instrumented instruction sites. */
    std::uint64_t numInstrSites() const { return instrSites_; }

    /** Number of instrumented block sites. */
    std::uint64_t numBlockSites() const { return blockSites_; }

  private:
    std::vector<std::uint8_t> instrs_;
    std::vector<std::uint8_t> blocks_;
    std::uint64_t instrSites_ = 0;
    std::uint64_t blockSites_ = 0;
};

} // namespace oha::exec
