#include "exec/interpreter.h"

#include <bit>
#include <new>
#include <utility>

#include "exec/trace.h"

namespace oha::exec {

namespace {

/** Internal exception used to unwind on guest program faults. */
struct GuestFault
{
    std::string message;
};

} // namespace

EventClass
eventClassOf(ir::Opcode op)
{
    using ir::Opcode;
    switch (op) {
      case Opcode::Load: return EventClass::Load;
      case Opcode::Store: return EventClass::Store;
      case Opcode::Lock: return EventClass::Lock;
      case Opcode::Unlock: return EventClass::Unlock;
      case Opcode::Spawn: return EventClass::Spawn;
      case Opcode::Join: return EventClass::Join;
      case Opcode::Call:
      case Opcode::ICall: return EventClass::Call;
      case Opcode::Ret: return EventClass::Ret;
      case Opcode::Output: return EventClass::Output;
      default: return EventClass::Other;
    }
}

Interpreter::Interpreter(const ir::Module &module, ExecConfig config)
    : module_(module), config_(std::move(config)),
      rng_(config_.scheduleSeed)
{
    OHA_ASSERT(module.finalized(), "interpreter requires finalized module");
}

void
Interpreter::attach(Tool *tool, const InstrumentationPlan *plan)
{
    OHA_ASSERT(tool && plan);
    attachments_.push_back({tool, plan});
    delivered_.emplace_back();
}

InstrId
Interpreter::objectAllocSite(ObjectId obj) const
{
    OHA_ASSERT(obj < heap_.size());
    return heap_[obj].allocSite;
}

std::int64_t
Interpreter::encodeValue(const Value &value)
{
    switch (value.kind) {
      case ValueKind::Scalar:
        return value.num;
      case ValueKind::Pointer:
        return (std::int64_t{1} << 62) ^
               (static_cast<std::int64_t>(value.obj) << 20) ^ value.off;
      case ValueKind::FuncPtr:
        return (std::int64_t{1} << 61) ^ value.idx;
      case ValueKind::Thread:
        return (std::int64_t{1} << 60) ^ value.idx;
    }
    return 0;
}

ObjectId
Interpreter::allocObject(InstrId site, std::uint32_t cells)
{
    const ObjectId obj = static_cast<ObjectId>(heap_.size());
    heap_.push_back({site, std::vector<Value>(cells)});
    lockOwner_.push_back(0);
    return obj;
}

Value &
Interpreter::reg(Frame &frame, ir::Reg r)
{
    // In bounds by construction: verifyModule (run by finalize(),
    // which the constructor requires) rejects any register index
    // >= numRegs(), and frames allocate exactly numRegs() slots.
    return frame.regs[r];
}

const Value &
Interpreter::regRead(Frame &frame, ir::Reg r)
{
    return frame.regs[r];
}

void
Interpreter::guestError(const std::string &message)
{
    throw GuestFault{message};
}

void
Interpreter::requestAbort(std::string reason)
{
    if (!abortRequested_) {
        abortRequested_ = true;
        abortReason_ = std::move(reason);
    }
}

void
Interpreter::requestAbort(std::string reason, const AbortMetadata &meta)
{
    if (!abortRequested_) {
        abortMeta_ = meta;
        requestAbort(std::move(reason));
    }
}

void
Interpreter::buildDispatchTables()
{
    const std::size_t numInstrs = module_.numInstrs();
    const std::size_t numBlocks = module_.numBlocks();
    OHA_ASSERT(attachments_.size() <= 8,
               "dispatch masks hold at most 8 attachments");
    dispatch_.resize(numInstrs);
    for (InstrId id = 0; id < numInstrs; ++id) {
        dispatch_[id] = static_cast<std::uint16_t>(
            static_cast<std::uint16_t>(eventClassOf(module_.instr(id).op))
            << 8);
    }
    blockMask_.assign(numBlocks, 0);
    for (std::size_t i = 0; i < attachments_.size(); ++i) {
        const InstrumentationPlan &plan = *attachments_[i].plan;
        const auto bit = static_cast<std::uint16_t>(1u << i);
        for (InstrId id = 0; id < numInstrs; ++id)
            if (plan.coversInstr(id))
                dispatch_[id] |= bit;
        for (BlockId id = 0; id < numBlocks; ++id)
            if (plan.coversBlock(id))
                blockMask_[id] |= static_cast<std::uint8_t>(1u << i);
    }
}

void
Interpreter::fireEvent(const EventCtx &ctx, std::uint8_t mask,
                       EventClass cls)
{
    for (; mask; mask &= static_cast<std::uint8_t>(mask - 1)) {
        const unsigned i = static_cast<unsigned>(std::countr_zero(mask));
        ++delivered_[i][cls];
        attachments_[i].tool->onEvent(ctx);
    }
}

void
Interpreter::fireBlockEnter(ThreadId tid, BlockId block)
{
    ++totalEvents_[EventClass::BlockEnter];
    if (recorder_)
        recorder_->recordBlockEnter(tid, block);
    std::uint8_t mask = blockMask_[block];
    for (; mask; mask &= static_cast<std::uint8_t>(mask - 1)) {
        const unsigned i = static_cast<unsigned>(std::countr_zero(mask));
        ++delivered_[i][EventClass::BlockEnter];
        attachments_[i].tool->onBlockEnter(tid, block);
    }
}

void
Interpreter::enterBlock(ThreadCtx &thread, const ir::BasicBlock *block)
{
    Frame &frame = thread.stack.back();
    frame.block = block;
    frame.ip = 0;
    fireBlockEnter(thread.tid, block->id());
}

void
Interpreter::pushFrame(ThreadCtx &thread, const ir::Function *func,
                       const std::vector<Value> &args,
                       const ir::Instruction *callSite)
{
    Frame frame;
    frame.func = func;
    frame.regs.assign(func->numRegs(), Value{});
    for (std::size_t i = 0; i < args.size(); ++i)
        frame.regs[i] = args[i];
    frame.callSite = callSite;
    frame.frameId = nextFrameId_++;
    thread.stack.push_back(std::move(frame));
    enterBlock(thread, func->entry());
}

void
Interpreter::popFrame(ThreadCtx &thread, const Value &retVal)
{
    const Frame done = std::move(thread.stack.back());
    thread.stack.pop_back();
    if (thread.stack.empty()) {
        // Thread root returned: the thread is finished.
        thread.retVal = retVal;
        thread.state = ThreadState::Finished;
        if (recorder_)
            recorder_->recordThreadFinish(thread.tid);
        for (auto &attachment : attachments_)
            attachment.tool->onThreadFinish(thread.tid);
        // Wake joiners.
        for (auto &other : threads_) {
            if (other.state == ThreadState::BlockedOnJoin &&
                other.waitTid == thread.tid) {
                other.state = ThreadState::Runnable;
            }
        }
        return;
    }
    Frame &caller = thread.stack.back();
    if (done.callSite && done.callSite->dest != ir::kNoReg)
        reg(caller, done.callSite->dest) = retVal;
}

ThreadId
Interpreter::spawnThread(const ir::Function *func,
                         const std::vector<Value> &args, InstrId spawnSite,
                         ThreadId parent)
{
    const ThreadId tid = static_cast<ThreadId>(threads_.size());
    threads_.emplace_back();
    ThreadCtx &thread = threads_.back();
    thread.tid = tid;
    thread.spawnSite = spawnSite;
    if (recorder_)
        recorder_->recordThreadStart(tid, parent, spawnSite);
    for (auto &attachment : attachments_)
        attachment.tool->onThreadStart(tid, parent, spawnSite);
    pushFrame(thread, func, args, nullptr);
    return tid;
}

void
Interpreter::runQuantum(std::uint32_t pick, std::uint64_t quantum)
{
    using ir::Opcode;

    for (std::uint64_t q = 0; q < quantum; ++q) {
        // Re-fetched every iteration: Spawn reallocates threads_ and
        // Call/Ret reallocate the frame stack.
        ThreadCtx &thread = threads_[pick];
        if (thread.state != ThreadState::Runnable)
            return;
        if (steps_ >= config_.maxSteps || abortRequested_)
            return;

        // Instruction-boundary marker for trace capture: the next
        // recorded event carries the step flag, so replay can
        // reconstruct step counts and abort boundaries.
        if (recorder_)
            recorder_->beginStep();

        Frame &fr = thread.stack.back();
        // ip stays in range because every block ends in a terminator
        // (verifyModule) and terminators replace the block instead of
        // advancing ip.
        const ir::Instruction &ins = fr.block->instructions()[fr.ip];
        const ThreadId tid = thread.tid;

        // One 16-bit dispatch load: low byte says which attachments
        // cover this site, high byte is the precomputed event class.
        // When no tool covers the site the event context is never
        // populated and no tool loop runs — eliding a check really
        // does cost nothing, as the paper's speedup model assumes
        // (Section 2.3).
        const std::uint16_t disp = dispatch_[ins.id];
        const auto evMask = static_cast<std::uint8_t>(disp & 0xff);
        const auto cls = static_cast<EventClass>(disp >> 8);

        // The context stays uninitialized on uninstrumented sites:
        // zero-filling ~80 bytes per instruction is measurable on the
        // interpreter floor, so construction is deferred into the
        // wantCtx branch via a union.  A recorder captures every
        // event regardless of plan coverage, but reads context fields
        // only for payload-carrying opcodes, so payload-free records
        // (the bulk of the stream) skip construction too.
        const bool wantCtx =
            evMask != 0 ||
            (recorder_ != nullptr && TraceRecorder::opHasPayload(ins.op));
        union CtxSlot
        {
            CtxSlot() {}
            EventCtx ctx;
        } slot;
        EventCtx &ctx = slot.ctx;
        if (wantCtx) {
            new (&slot.ctx) EventCtx();
            ctx.tid = tid;
            ctx.instr = &ins;
            ctx.frameId = fr.frameId;
        }
        auto fire = [&] {
            ++totalEvents_.counts[static_cast<std::size_t>(cls)];
            if (recorder_)
                recorder_->recordEvent(cls, tid, ins, ctx);
            if (evMask)
                fireEvent(ctx, evMask, cls);
        };

        auto pointerOperand = [&](ir::Reg r) -> const Value & {
            const Value &value = regRead(fr, r);
            if (!value.isPointer())
                guestError("dereference of non-pointer value");
            return value;
        };
        auto checkBounds = [&](const Value &ptr) {
            if (ptr.obj >= heap_.size() ||
                ptr.off >= heap_[ptr.obj].cells.size()) {
                guestError("out-of-bounds memory access");
            }
        };

        switch (ins.op) {
          case Opcode::Alloc: {
            const ObjectId obj =
                allocObject(ins.id, static_cast<std::uint32_t>(ins.imm));
            reg(fr, ins.dest) = Value::pointer(obj, 0);
            ++fr.ip;
            fire();
            break;
          }
          case Opcode::ConstInt:
            reg(fr, ins.dest) = Value::scalar(ins.imm);
            ++fr.ip;
            fire();
            break;
          case Opcode::Assign:
            reg(fr, ins.dest) = regRead(fr, ins.a);
            ++fr.ip;
            fire();
            break;
          case Opcode::BinOp: {
            const Value &lhs = regRead(fr, ins.a);
            const Value &rhs = regRead(fr, ins.b);
            std::int64_t result;
            if (lhs.isScalar() && rhs.isScalar()) {
                result = ir::evalBinOp(ins.binop, lhs.num, rhs.num);
            } else if (ins.binop == ir::BinOpKind::Eq) {
                result = lhs == rhs;
            } else if (ins.binop == ir::BinOpKind::Ne) {
                result = !(lhs == rhs);
            } else {
                guestError("arithmetic on non-scalar values");
            }
            reg(fr, ins.dest) = Value::scalar(result);
            ++fr.ip;
            fire();
            break;
          }
          case Opcode::GlobalAddr:
            // Globals occupy object ids [0, numGlobals) by construction.
            reg(fr, ins.dest) = Value::pointer(ins.globalId, 0);
            ++fr.ip;
            fire();
            break;
          case Opcode::FuncAddr:
            reg(fr, ins.dest) = Value::funcPtr(ins.callee);
            ++fr.ip;
            fire();
            break;
          case Opcode::Gep: {
            const Value &base = pointerOperand(ins.a);
            const std::int64_t field =
                ins.b != ir::kNoReg ? regRead(fr, ins.b).num : ins.imm;
            const std::int64_t off = static_cast<std::int64_t>(base.off) + field;
            if (off < 0)
                guestError("negative pointer offset");
            reg(fr, ins.dest) =
                Value::pointer(base.obj, static_cast<std::uint32_t>(off));
            ++fr.ip;
            fire();
            break;
          }
          case Opcode::Load: {
            const Value ptr = pointerOperand(ins.a);
            checkBounds(ptr);
            const Value value = heap_[ptr.obj].cells[ptr.off];
            reg(fr, ins.dest) = value;
            if (wantCtx) {
                ctx.obj = ptr.obj;
                ctx.off = ptr.off;
                ctx.value = value;
            }
            ++fr.ip;
            fire();
            break;
          }
          case Opcode::Store: {
            const Value ptr = pointerOperand(ins.a);
            checkBounds(ptr);
            const Value value = regRead(fr, ins.b);
            heap_[ptr.obj].cells[ptr.off] = value;
            if (wantCtx) {
                ctx.obj = ptr.obj;
                ctx.off = ptr.off;
                ctx.value = value;
            }
            ++fr.ip;
            fire();
            break;
          }
          case Opcode::Call:
          case Opcode::ICall: {
            const ir::Function *callee;
            if (ins.op == Opcode::Call) {
                callee = module_.function(ins.callee);
            } else {
                const Value &fp = regRead(fr, ins.a);
                if (!fp.isFuncPtr())
                    guestError("indirect call through non-function value");
                callee = module_.function(fp.idx);
                if (callee->numParams() != ins.args.size())
                    guestError("indirect call arity mismatch");
            }
            std::vector<Value> args;
            args.reserve(ins.args.size());
            for (ir::Reg r : ins.args)
                args.push_back(regRead(fr, r));
            if (wantCtx)
                ctx.calleeResolved = callee->id();
            ++fr.ip;
            // pushFrame may reallocate the frame stack; fr is dead after.
            pushFrame(thread, callee, args, &ins);
            if (wantCtx)
                ctx.frame2 = thread.stack.back().frameId;
            fire();
            break;
          }
          case Opcode::Ret: {
            const Value retVal = ins.a != ir::kNoReg ? regRead(fr, ins.a)
                                                     : Value::scalar(0);
            if (wantCtx) {
                if (thread.stack.size() > 1) {
                    ctx.frame2 = thread.stack[thread.stack.size() - 2].frameId;
                    ctx.callInstr = fr.callSite;
                }
                ctx.value = retVal;
            }
            fire();
            popFrame(thread, retVal);
            break;
          }
          case Opcode::Br:
            enterBlock(thread, module_.block(ins.target));
            break;
          case Opcode::CondBr: {
            const bool taken = regRead(fr, ins.a).truthy();
            enterBlock(thread,
                       module_.block(taken ? ins.target : ins.target2));
            break;
          }
          case Opcode::Lock: {
            const Value ptr = pointerOperand(ins.a);
            checkBounds(ptr);
            const std::uint32_t owner = lockOwner_[ptr.obj];
            if (owner == tid + 1)
                guestError("recursive lock acquisition");
            if (owner != 0) {
                thread.state = ThreadState::BlockedOnLock;
                thread.waitObj = ptr.obj;
                return;
            }
            lockOwner_[ptr.obj] = tid + 1;
            if (wantCtx) {
                ctx.obj = ptr.obj;
                ctx.off = ptr.off;
            }
            ++fr.ip;
            fire();
            break;
          }
          case Opcode::Unlock: {
            const Value ptr = pointerOperand(ins.a);
            checkBounds(ptr);
            if (lockOwner_[ptr.obj] != tid + 1)
                guestError("unlock of lock not held");
            if (wantCtx) {
                ctx.obj = ptr.obj;
                ctx.off = ptr.off;
            }
            ++fr.ip;
            fire();
            lockOwner_[ptr.obj] = 0;
            for (auto &other : threads_) {
                if (other.state == ThreadState::BlockedOnLock &&
                    other.waitObj == ptr.obj) {
                    other.state = ThreadState::Runnable;
                }
            }
            break;
          }
          case Opcode::Spawn: {
            const ir::Function *callee = module_.function(ins.callee);
            std::vector<Value> args;
            args.reserve(ins.args.size());
            for (ir::Reg r : ins.args)
                args.push_back(regRead(fr, r));
            const ir::Reg dest = ins.dest;
            const std::uint64_t callerFrame = fr.frameId;
            ++fr.ip;
            // spawnThread reallocates threads_; all references die here.
            const ThreadId child = spawnThread(callee, args, ins.id, tid);
            ThreadCtx &self = threads_[tid];
            reg(self.stack.back(), dest) = Value::thread(child);
            if (wantCtx) {
                ctx.frameId = callerFrame;
                ctx.otherTid = child;
                ctx.frame2 = threads_[child].stack.back().frameId;
            }
            fire();
            break;
          }
          case Opcode::Join: {
            const Value &handle = regRead(fr, ins.a);
            if (!handle.isThread())
                guestError("join of non-thread value");
            ThreadCtx &target = threads_[handle.idx];
            if (target.state != ThreadState::Finished) {
                thread.state = ThreadState::BlockedOnJoin;
                thread.waitTid = handle.idx;
                return;
            }
            if (ins.dest != ir::kNoReg)
                reg(fr, ins.dest) = target.retVal;
            if (wantCtx) {
                ctx.otherTid = handle.idx;
                ctx.value = target.retVal;
            }
            ++fr.ip;
            fire();
            break;
          }
          case Opcode::Output: {
            const Value value = regRead(fr, ins.a);
            outputs_.push_back({ins.id, encodeValue(value)});
            if (wantCtx)
                ctx.value = value;
            ++fr.ip;
            fire();
            break;
          }
          case Opcode::Input: {
            std::int64_t index = ins.imm;
            if (ins.b != ir::kNoReg)
                index += regRead(fr, ins.b).num;
            std::int64_t value = 0;
            if (!config_.input.empty()) {
                const std::int64_t n =
                    static_cast<std::int64_t>(config_.input.size());
                value = config_.input[static_cast<std::size_t>(
                    ((index % n) + n) % n)];
            }
            reg(fr, ins.dest) = Value::scalar(value);
            ++fr.ip;
            fire();
            break;
          }
        }
        ++steps_;
    }
}

RunResult
Interpreter::run()
{
    RunResult result;

    // Snapshot the attachments' plans into flat per-site dispatch
    // masks; from here on coverage is one byte load per event.
    buildDispatchTables();

    // Globals become heap objects [0, numGlobals) so GlobalAddr can
    // use the global id directly as the object id.
    for (const auto &global : module_.globals())
        allocObject(kNoInstr, global.size);

    const ir::Function *mainFunc = module_.entryFunction();
    if (mainFunc->numParams() != 0)
        OHA_FATAL("main() must take no parameters");

    try {
        spawnThread(mainFunc, {}, kNoInstr, 0);

        std::vector<std::uint32_t> runnable;
        while (true) {
            if (abortRequested_) {
                result.status = RunResult::Status::Aborted;
                result.abortReason = abortReason_;
                result.abortMeta = abortMeta_;
                break;
            }
            if (steps_ >= config_.maxSteps) {
                result.status = RunResult::Status::StepLimit;
                break;
            }

            runnable.clear();
            bool anyLive = false;
            for (std::uint32_t i = 0; i < threads_.size(); ++i) {
                if (threads_[i].state == ThreadState::Runnable)
                    runnable.push_back(i);
                if (threads_[i].state != ThreadState::Finished)
                    anyLive = true;
            }
            if (runnable.empty()) {
                result.status = anyLive ? RunResult::Status::Deadlock
                                        : RunResult::Status::Finished;
                if (anyLive)
                    result.abortReason = "deadlock: all live threads blocked";
                break;
            }

            std::uint32_t pick;
            std::uint64_t quantum;
            if (scheduleCursor_ < config_.replaySchedule.size()) {
                // Replay mode: take the recorded decision verbatim.
                const ScheduleStep &step =
                    config_.replaySchedule[scheduleCursor_++];
                pick = step.thread;
                quantum = step.quantum;
                if (pick >= threads_.size() ||
                    threads_[pick].state != ThreadState::Runnable) {
                    OHA_FATAL("schedule replay diverged: thread %u not "
                              "runnable",
                              pick);
                }
            } else {
                pick = static_cast<std::uint32_t>(
                    runnable[rng_.below(runnable.size())]);
                quantum = config_.minQuantum +
                          rng_.below(config_.maxQuantum -
                                     config_.minQuantum + 1);
            }
            if (config_.recordSchedule) {
                schedule_.push_back(
                    {pick, static_cast<std::uint32_t>(quantum)});
            }

            runQuantum(pick, quantum);
        }
    } catch (const GuestFault &fault) {
        result.status = RunResult::Status::RuntimeError;
        result.abortReason = fault.message;
    }

    result.outputs = std::move(outputs_);
    result.schedule = std::move(schedule_);
    result.steps = steps_;
    result.totalEvents = totalEvents_;
    result.delivered = delivered_;
    result.numThreads = static_cast<std::uint32_t>(threads_.size());
    return result;
}

} // namespace oha::exec
