/**
 * @file
 * The OHA execution engine: a deterministic multi-threaded
 * interpreter for OHA IR with pluggable instrumentation.
 *
 * Determinism is the foundation of the paper's speculation story:
 * an execution is a pure function of (module, input, schedule seed),
 * so "roll back and re-execute with traditional hybrid analysis"
 * (Section 2.3) is exact — the sound re-analysis sees the very same
 * interleaving the optimistic run mis-speculated on.  This plays the
 * role of the record/replay system the paper assumes.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exec/event.h"
#include "exec/value.h"
#include "ir/module.h"
#include "support/rng.h"

namespace oha::exec {

/** One scheduler decision: which thread ran, for how many steps. */
struct ScheduleStep
{
    ThreadId thread;
    std::uint32_t quantum;

    bool
    operator==(const ScheduleStep &other) const
    {
        return thread == other.thread && quantum == other.quantum;
    }
};

/** Inputs that fully determine an execution. */
struct ExecConfig
{
    /** Input word vector read by Input instructions. */
    std::vector<std::int64_t> input;
    /** Seed of the deterministic thread scheduler. */
    std::uint64_t scheduleSeed = 0;
    /** Hard cap on executed instructions (runaway protection). */
    std::uint64_t maxSteps = 200'000'000;
    /** Scheduler quantum bounds (instructions per slice). */
    std::uint32_t minQuantum = 16;
    std::uint32_t maxQuantum = 64;

    /** Capture the scheduler's decisions in RunResult::schedule.
     *  The seed already makes runs replayable; an explicit trace
     *  additionally allows replay under a *different* seed (classic
     *  record/replay, as rollback systems assume — Section 2.3). */
    bool recordSchedule = false;
    /** When non-empty, scheduling decisions are taken from this trace
     *  instead of the seeded RNG (the trace must come from a recorded
     *  run of the same module + input). */
    std::vector<ScheduleStep> replaySchedule;
};

/** Outcome and accounting of one execution. */
struct RunResult
{
    enum class Status
    {
        Finished,     ///< program ran to completion
        Aborted,      ///< a tool requested abort (invariant violation)
        RuntimeError, ///< the guest program faulted
        Deadlock,     ///< all live threads blocked
        StepLimit,    ///< maxSteps exceeded
    };

    Status status = Status::Finished;
    std::string abortReason;
    /** Structured metadata from the aborting tool (all-zero unless the
     *  abort came through the metadata-carrying requestAbort). */
    AbortMetadata abortMeta;

    /** (instruction, value) pairs emitted by Output, in order. */
    std::vector<std::pair<InstrId, std::int64_t>> outputs;

    /** Total guest instructions executed. */
    std::uint64_t steps = 0;
    /** All events that occurred, by class, instrumented or not. */
    EventCounts totalEvents;
    /** Events actually delivered, per attached tool. */
    std::vector<EventCounts> delivered;
    /** Number of threads ever created (main included). */
    std::uint32_t numThreads = 0;

    /** Scheduler trace (only when ExecConfig::recordSchedule). */
    std::vector<ScheduleStep> schedule;

    bool finished() const { return status == Status::Finished; }
};

class TraceRecorder;

/** Deterministic IR interpreter with instrumentation attachments. */
class Interpreter : public ExecutionControl
{
  public:
    Interpreter(const ir::Module &module, ExecConfig config);

    /**
     * Attach a tool filtered by @p plan.  Both must outlive run().
     * Tools are notified in attachment order.
     */
    void attach(Tool *tool, const InstrumentationPlan *plan);

    /** Attach a trace-capture sink (trace.h).  Unlike a Tool, the
     *  recorder sees every event unconditionally — before plan
     *  filtering — plus instruction-boundary markers, so the recorded
     *  stream can later be replayed under any plan.  Must outlive
     *  run(). */
    void setRecorder(TraceRecorder *recorder) { recorder_ = recorder; }

    /** Execute the program to completion (or abort). */
    RunResult run();

    /** Stop the execution from inside a tool callback. */
    void requestAbort(std::string reason) override;
    void requestAbort(std::string reason,
                      const AbortMetadata &meta) override;

    const ir::Module &module() const { return module_; }

    /** Allocation site of a heap object, or kNoInstr for globals. */
    InstrId objectAllocSite(ObjectId obj) const;

    /** Encode a value as a 64-bit observable (for Output records). */
    static std::int64_t encodeValue(const Value &value);

  private:
    struct Frame
    {
        const ir::Function *func = nullptr;
        const ir::BasicBlock *block = nullptr;
        std::size_t ip = 0;
        std::vector<Value> regs;
        const ir::Instruction *callSite = nullptr;
        std::uint64_t frameId = 0;
    };

    enum class ThreadState : std::uint8_t
    {
        Runnable, BlockedOnLock, BlockedOnJoin, Finished,
    };

    struct ThreadCtx
    {
        ThreadId tid = 0;
        ThreadState state = ThreadState::Runnable;
        std::vector<Frame> stack;
        ObjectId waitObj = 0;
        ThreadId waitTid = 0;
        Value retVal;
        InstrId spawnSite = kNoInstr;
    };

    struct HeapObject
    {
        InstrId allocSite = kNoInstr;
        std::vector<Value> cells;
    };

    struct Attachment
    {
        Tool *tool;
        const InstrumentationPlan *plan;
    };

    /** Execute up to @p quantum instructions of thread @p pick,
     *  stopping early when it blocks, finishes, aborts, or hits the
     *  step limit.  The whole scheduling slice runs in one call so the
     *  per-instruction path has no function-call overhead. */
    void runQuantum(std::uint32_t pick, std::uint64_t quantum);

    void enterBlock(ThreadCtx &thread, const ir::BasicBlock *block);
    void pushFrame(ThreadCtx &thread, const ir::Function *func,
                   const std::vector<Value> &args,
                   const ir::Instruction *callSite);
    void popFrame(ThreadCtx &thread, const Value &retVal);
    ThreadId spawnThread(const ir::Function *func,
                         const std::vector<Value> &args, InstrId spawnSite,
                         ThreadId parent);

    /** Merge the attachments' plans into the per-site dispatch words
     *  (bit i = attachment i) and precompute per-instruction event
     *  classes.  Called once when run() starts; afterwards the
     *  per-event dispatch is one 16-bit load. */
    void buildDispatchTables();

    void fireEvent(const EventCtx &ctx, std::uint8_t mask,
                   EventClass cls);
    void fireBlockEnter(ThreadId tid, BlockId block);

    Value &reg(Frame &frame, ir::Reg r);
    const Value &regRead(Frame &frame, ir::Reg r);
    [[noreturn]] void guestError(const std::string &message);

    ObjectId allocObject(InstrId site, std::uint32_t cells);

    const ir::Module &module_;
    ExecConfig config_;
    Rng rng_;

    std::vector<Attachment> attachments_;
    TraceRecorder *recorder_ = nullptr;
    /** Per-instruction dispatch word: low byte is the OR of attachment
     *  cover bits (bit i set iff attachment i's plan covers the site;
     *  0 = no tool listens and the event path is skipped wholesale),
     *  high byte the precomputed EventClass.  One load serves both the
     *  coverage test and the event-class accounting. */
    std::vector<std::uint16_t> dispatch_;
    std::vector<std::uint8_t> blockMask_;
    std::vector<ThreadCtx> threads_;
    std::vector<HeapObject> heap_;
    /** obj -> owning thread + 1, or 0 when free. */
    std::vector<std::uint32_t> lockOwner_;

    std::uint64_t nextFrameId_ = 1;
    std::uint64_t steps_ = 0;
    std::size_t scheduleCursor_ = 0;
    std::vector<ScheduleStep> schedule_;
    EventCounts totalEvents_;
    std::vector<EventCounts> delivered_;
    std::vector<std::pair<InstrId, std::int64_t>> outputs_;

    bool abortRequested_ = false;
    std::string abortReason_;
    AbortMetadata abortMeta_;
    bool guestFault_ = false;
    std::string faultReason_;
};

} // namespace oha::exec
