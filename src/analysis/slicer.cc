#include "analysis/slicer.h"

#include <deque>
#include <unordered_set>

#include "support/bdd.h"

namespace oha::analysis {

namespace {

/** Visited-node set: hashed bitset or ROBDD, behind one interface. */
class VisitedSet
{
  public:
    VisitedSet(std::uint64_t numNodes, bool useBdd)
    {
        if (useBdd) {
            unsigned bits = 1;
            while ((1ULL << bits) < numNodes)
                ++bits;
            universe_ = std::make_unique<BddSetUniverse>(bits);
            set_ = universe_->empty();
        }
    }

    /** Insert; true if the node was new. */
    bool
    insert(std::uint64_t node)
    {
        if (universe_) {
            const std::uint32_t id = static_cast<std::uint32_t>(node);
            if (universe_->contains(set_, id))
                return false;
            set_ = universe_->insert(set_, id);
            ++count_;
            return true;
        }
        return hashed_.insert(node).second;
    }

    std::uint64_t
    size() const
    {
        return universe_ ? count_ : hashed_.size();
    }

  private:
    std::unordered_set<std::uint64_t> hashed_;
    std::unique_ptr<BddSetUniverse> universe_;
    BddRef set_ = 0;
    std::uint64_t count_ = 0;
};

std::size_t
indexInBlock(const ir::Module &module, const ir::Instruction &ins)
{
    return ins.id - module.block(ins.block)->instructions().front().id;
}

} // namespace

StaticSlicer::StaticSlicer(const ir::Module &module,
                           const AndersenResult &andersen,
                           SlicerOptions options)
    : module_(module), andersen_(andersen), options_(options)
{
    OHA_ASSERT(andersen.completed,
               "slicer requires a completed points-to result");

    defs_.resize(module.numFunctions());
    retsOf_.resize(module.numFunctions());

    for (const auto &func : module.functions()) {
        for (const auto &block : func->blocks()) {
            if (!live(block->id()))
                continue;
            for (const ir::Instruction &ins : block->instructions()) {
                if (ins.dest != ir::kNoReg)
                    defs_[func->id()][ins.dest].push_back(ins.id);
                if (ins.op == ir::Opcode::Ret)
                    retsOf_[func->id()].push_back(ins.id);
                if (ins.op == ir::Opcode::Spawn)
                    spawnSites_.push_back(ins.id);
            }
        }
    }

    // Stores indexed by target cell, per context instance.
    for (const ContextInstance &inst : andersen.contexts) {
        const ir::Function *func = module.function(inst.func);
        for (const auto &block : func->blocks()) {
            if (!live(block->id()))
                continue;
            for (const ir::Instruction &ins : block->instructions()) {
                if (ins.op != ir::Opcode::Store)
                    continue;
                andersen.pts(inst.id, ins.a).forEach([&](CellId cell) {
                    cellStores_[cell].push_back({inst.id, ins.id});
                });
            }
        }
    }

    for (const auto &[key, calleeCtx] : andersen.callEdges()) {
        const auto &[callerCtx, site, callee] = key;
        (void)callee;
        reverseCalls_[calleeCtx].push_back({callerCtx, site});
        forwardCalls_[{callerCtx, site}].push_back(calleeCtx);
    }

    // Flow-sensitive load/store filtering is only sound in a function
    // that executes at most once per analyzed run: in a re-entered
    // function a store placed *after* a load still feeds the next
    // invocation's load through shared memory.  The entry function
    // qualifies when nothing calls, spawns or takes its address.
    const FuncId mainId = module.entryFunction()->id();
    flowSensitiveFunc_ = mainId;
    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        const ir::Instruction &ins = module.instr(id);
        const bool referencesMain =
            (ins.op == ir::Opcode::Call || ins.op == ir::Opcode::Spawn ||
             ins.op == ir::Opcode::FuncAddr) &&
            ins.callee == mainId;
        if (referencesMain) {
            flowSensitiveFunc_ = kNoFunc;
            break;
        }
    }
}

bool
StaticSlicer::live(BlockId block) const
{
    return !options_.invariants || options_.invariants->blockVisited(block);
}

const ir::Cfg &
StaticSlicer::cfgOf(FuncId func) const
{
    std::lock_guard<std::mutex> lock(cfgMutex_);
    auto it = cfgs_.find(func);
    if (it == cfgs_.end()) {
        it = cfgs_.emplace(func, std::make_unique<ir::Cfg>(
                                     *module_.function(func)))
                 .first;
    }
    return *it->second;
}

StaticSliceResult
StaticSlicer::slice(InstrId endpoint) const
{
    StaticSliceResult result;
    const std::uint64_t numInstrs = module_.numInstrs();
    const std::uint64_t numNodes =
        2 * numInstrs * andersen_.contexts.size();

    // Call instructions play two roles and are tracked as two nodes:
    // as *argument providers* for a callee's parameters (only the
    // argument defs matter) and as *value producers* for their
    // destination register (the callee's returns matter too).
    // Conflating the roles would drag every target of a hot indirect
    // call site into any slice that crosses one of its callees.
    VisitedSet visited(std::max<std::uint64_t>(numNodes, 2),
                       options_.useBddVisitedSet);
    std::deque<std::tuple<std::uint32_t, InstrId, bool>> work;

    auto pushNode = [&](std::uint32_t ctx, InstrId instr,
                        bool valueRole) {
        const ir::Instruction &ins = module_.instr(instr);
        if (!live(ins.block))
            return;
        const std::uint64_t node =
            (ctx * numInstrs + instr) * 2 + (valueRole ? 1 : 0);
        if (visited.insert(node)) {
            work.push_back({ctx, instr, valueRole});
            result.instructions.insert(instr);
        }
    };

    // The endpoint exists once per context instance of its function.
    const ir::Instruction &endIns = module_.instr(endpoint);
    for (std::uint32_t ctx : andersen_.instancesOf(endIns.func))
        pushNode(ctx, endpoint, true);

    std::vector<ir::Reg> uses;
    while (!work.empty()) {
        if (result.workUnits > options_.maxWork) {
            result.completed = false;
            break;
        }
        const auto [ctx, instrId, valueRole] = work.front();
        work.pop_front();
        const ir::Instruction &ins = module_.instr(instrId);
        const ir::Function *func = module_.function(ins.func);

        // 1. Register uses -> local defs; parameters -> call sites.
        ins.usedRegs(uses);
        for (ir::Reg reg : uses) {
            ++result.workUnits;
            auto defIt = defs_[ins.func].find(reg);
            if (defIt != defs_[ins.func].end()) {
                for (InstrId def : defIt->second)
                    pushNode(ctx, def, true);
            }
            if (reg < func->numParams()) {
                auto rcIt = reverseCalls_.find(ctx);
                if (rcIt != reverseCalls_.end()) {
                    for (const auto &[callerCtx, site] : rcIt->second)
                        pushNode(callerCtx, site, false);
                }
            }
        }

        // 2. Opcode-specific backward edges.
        switch (ins.op) {
          case ir::Opcode::Load: {
            andersen_.pts(ctx, ins.a).forEach([&](CellId cell) {
                auto it = cellStores_.find(cell);
                if (it == cellStores_.end())
                    return;
                for (const auto &[sctx, sid] : it->second) {
                    ++result.workUnits;
                    const ir::Instruction &store = module_.instr(sid);
                    if (sctx == ctx && store.func == ins.func &&
                        ins.func == flowSensitiveFunc_) {
                        // Flow-sensitive filter (single-invocation
                        // function only): the store must be able to
                        // precede the load.
                        if (!cfgOf(ins.func).mayPrecede(
                                store.block, indexInBlock(module_, store),
                                ins.block, indexInBlock(module_, ins))) {
                            continue;
                        }
                    }
                    pushNode(sctx, sid, true);
                }
            });
            break;
          }
          case ir::Opcode::Call:
          case ir::Opcode::ICall: {
            if (!valueRole)
                break; // argument-provider role: args only
            // The call's value comes from the callee's returns.
            auto it = forwardCalls_.find({ctx, instrId});
            if (it != forwardCalls_.end()) {
                for (std::uint32_t calleeCtx : it->second) {
                    const FuncId callee =
                        andersen_.contexts[calleeCtx].func;
                    for (InstrId ret : retsOf_[callee])
                        pushNode(calleeCtx, ret, true);
                }
            }
            break;
          }
          case ir::Opcode::Join: {
            // The join's value is some spawned thread's return value.
            for (InstrId site : spawnSites_) {
                const ir::Instruction &spawn = module_.instr(site);
                for (std::uint32_t spawnerCtx :
                     andersen_.instancesOf(spawn.func)) {
                    auto it = forwardCalls_.find({spawnerCtx, site});
                    if (it == forwardCalls_.end())
                        continue;
                    for (std::uint32_t rootCtx : it->second)
                        for (InstrId ret : retsOf_[spawn.callee])
                            pushNode(rootCtx, ret, true);
                }
            }
            break;
          }
          default:
            break;
        }
    }

    result.nodesVisited = visited.size();
    return result;
}

} // namespace oha::analysis
