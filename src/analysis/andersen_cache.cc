#include "analysis/andersen_cache.h"

#include <map>
#include <mutex>
#include <string>
#include <tuple>

#include "invariants/invariant_set.h"
#include "ir/printer.h"

namespace oha::analysis {

namespace {

std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : text)
        h = (h ^ c) * 0x100000001b3ULL;
    return h;
}

/** Solver options packed into a comparable key. */
std::uint64_t
optionsKey(const AndersenOptions &options)
{
    std::uint64_t key = 0;
    key |= options.contextSensitive ? 1u : 0u;
    key |= options.useHvn ? 2u : 0u;
    key |= options.cycleCollapse ? 4u : 0u;
    key |= options.referenceSolver ? 8u : 0u;
    key |= static_cast<std::uint64_t>(options.maxContexts) << 4;
    key ^= static_cast<std::uint64_t>(options.maxContextDepth) << 40;
    return key;
}

struct CacheKey
{
    std::uint64_t moduleFp;
    std::uint64_t invariantFp;
    std::uint64_t options;

    bool
    operator<(const CacheKey &other) const
    {
        return std::tie(moduleFp, invariantFp, options) <
               std::tie(other.moduleFp, other.invariantFp, other.options);
    }
};

struct CacheEntry
{
    /** Results reference the module internally; keep it alive. */
    std::shared_ptr<const ir::Module> module;
    std::shared_ptr<const AndersenResult> result;
};

/** Key for the higher-level (detector / slice-set) memo layers. */
struct StaticKey
{
    std::uint64_t moduleFp;
    std::uint64_t invariantFp;
    std::uint64_t configKey;
    std::uint64_t auxFp;

    bool
    operator<(const StaticKey &other) const
    {
        return std::tie(moduleFp, invariantFp, configKey, auxFp) <
               std::tie(other.moduleFp, other.invariantFp,
                        other.configKey, other.auxFp);
    }
};

struct RaceEntry
{
    std::shared_ptr<const ir::Module> module;
    std::shared_ptr<const StaticRaceResult> result;
};

struct SliceEntry
{
    std::shared_ptr<const ir::Module> module;
    std::shared_ptr<const SliceSetResult> result;
};

struct Cache
{
    std::mutex mutex;
    std::map<CacheKey, CacheEntry> entries;
    std::map<StaticKey, RaceEntry> raceEntries;
    std::map<StaticKey, SliceEntry> sliceEntries;
    /** Module fingerprints are expensive (they print the module);
     *  memoize by object identity, kept valid by the keepalive. */
    std::map<const ir::Module *, std::pair<std::shared_ptr<const ir::Module>,
                                           std::uint64_t>>
        moduleFps;
    AndersenCacheStats stats;
};

Cache &
cache()
{
    static Cache instance;
    return instance;
}

std::uint64_t
moduleFingerprint(const std::shared_ptr<const ir::Module> &module)
{
    {
        std::lock_guard<std::mutex> lock(cache().mutex);
        auto it = cache().moduleFps.find(module.get());
        if (it != cache().moduleFps.end())
            return it->second.second;
    }
    const std::uint64_t fp = fnv1a(ir::printModule(*module));
    std::lock_guard<std::mutex> lock(cache().mutex);
    cache().moduleFps.emplace(module.get(), std::make_pair(module, fp));
    return fp;
}

} // namespace

std::shared_ptr<const AndersenResult>
runAndersenMemo(const std::shared_ptr<const ir::Module> &module,
                const AndersenOptions &options)
{
    OHA_ASSERT(module && module->finalized());

    CacheKey key;
    key.moduleFp = moduleFingerprint(module);
    key.invariantFp =
        options.invariants ? fnv1a(options.invariants->saveText()) : 0;
    key.options = optionsKey(options);

    {
        std::lock_guard<std::mutex> lock(cache().mutex);
        auto it = cache().entries.find(key);
        if (it != cache().entries.end()) {
            ++cache().stats.hits;
            return it->second.result;
        }
        ++cache().stats.misses;
    }

    // Solve outside the lock.  Sound CS runs reuse the memoized CI
    // pre-pass instead of recomputing it (runAndersen folds the
    // pre-pass's workUnits into its result; mirror that here so the
    // reported cost model output is identical with or without hits).
    AndersenResult computed;
    if (options.contextSensitive && !options.invariants) {
        AndersenOptions ciOptions = options;
        ciOptions.contextSensitive = false;
        const std::shared_ptr<const AndersenResult> ci =
            runAndersenMemo(module, ciOptions);
        computed = runAndersenPrepassed(*module, options, ci.get());
        computed.workUnits += ci->workUnits;
    } else {
        computed = runAndersen(*module, options);
    }

    auto result =
        std::make_shared<const AndersenResult>(std::move(computed));
    std::lock_guard<std::mutex> lock(cache().mutex);
    auto [it, inserted] =
        cache().entries.emplace(key, CacheEntry{module, result});
    // First insert wins: a concurrent solver may have beaten us here;
    // everyone shares its result so clients see one object per key.
    return it->second.result;
}

std::shared_ptr<const StaticRaceResult>
runStaticRaceDetectorMemo(const std::shared_ptr<const ir::Module> &module,
                          const inv::InvariantSet *invariants)
{
    OHA_ASSERT(module && module->finalized());

    StaticKey key;
    key.moduleFp = moduleFingerprint(module);
    key.invariantFp = invariants ? fnv1a(invariants->saveText()) : 0;
    key.configKey = 0;
    key.auxFp = 0;

    {
        std::lock_guard<std::mutex> lock(cache().mutex);
        auto it = cache().raceEntries.find(key);
        if (it != cache().raceEntries.end()) {
            ++cache().stats.hits;
            return it->second.result;
        }
        ++cache().stats.misses;
    }

    // The detector's own points-to solve still goes through the
    // Andersen memo (shared with calibration and the slicer picks).
    auto result = std::make_shared<const StaticRaceResult>(
        runStaticRaceDetector(*module, invariants, module));
    std::lock_guard<std::mutex> lock(cache().mutex);
    auto [it, inserted] =
        cache().raceEntries.emplace(key, RaceEntry{module, result});
    return it->second.result;
}

std::shared_ptr<const SliceSetResult>
sliceSetMemo(const std::shared_ptr<const ir::Module> &module,
             const inv::InvariantSet *invariants, std::uint64_t configKey,
             const std::vector<InstrId> &endpoints,
             const std::function<SliceSetResult()> &compute)
{
    OHA_ASSERT(module && module->finalized());

    StaticKey key;
    key.moduleFp = moduleFingerprint(module);
    key.invariantFp = invariants ? fnv1a(invariants->saveText()) : 0;
    key.configKey = configKey;
    std::uint64_t auxFp = 0xcbf29ce484222325ULL;
    for (InstrId endpoint : endpoints)
        auxFp = (auxFp ^ endpoint) * 0x100000001b3ULL;
    key.auxFp = auxFp;

    {
        std::lock_guard<std::mutex> lock(cache().mutex);
        auto it = cache().sliceEntries.find(key);
        if (it != cache().sliceEntries.end()) {
            ++cache().stats.hits;
            return it->second.result;
        }
        ++cache().stats.misses;
    }

    auto result = std::make_shared<const SliceSetResult>(compute());
    std::lock_guard<std::mutex> lock(cache().mutex);
    auto [it, inserted] =
        cache().sliceEntries.emplace(key, SliceEntry{module, result});
    return it->second.result;
}

AndersenCacheStats
andersenCacheStats()
{
    std::lock_guard<std::mutex> lock(cache().mutex);
    return cache().stats;
}

void
resetAndersenCache()
{
    std::lock_guard<std::mutex> lock(cache().mutex);
    cache().entries.clear();
    cache().raceEntries.clear();
    cache().sliceEntries.clear();
    cache().moduleFps.clear();
    cache().stats = {};
}

} // namespace oha::analysis
