#include "analysis/andersen_cache.h"

#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "analysis/constraint_diff.h"
#include "invariants/invariant_set.h"
#include "ir/module_diff.h"
#include "ir/printer.h"
#include "service/shared_cache.h"
#include "support/env.h"

namespace oha::analysis {

namespace {

using service::Fingerprint;
using service::LruList;
using service::SharedCache;

/** Solver options packed into a comparable key.  solverThreads and
 *  waveShuffleSeed are deliberately excluded: the wavefront solver is
 *  deterministic across both, so results computed at any thread count
 *  or shuffle seed are interchangeable cache entries. */
std::uint64_t
optionsKey(const AndersenOptions &options)
{
    std::uint64_t key = 0;
    key |= options.contextSensitive ? 1u : 0u;
    key |= options.useHvn ? 2u : 0u;
    key |= options.cycleCollapse ? 4u : 0u;
    key |= options.referenceSolver ? 8u : 0u;
    key |= static_cast<std::uint64_t>(options.maxContexts) << 4;
    key ^= static_cast<std::uint64_t>(options.maxContextDepth) << 40;
    return key;
}

Fingerprint
invariantFingerprint(const inv::InvariantSet *invariants)
{
    return invariants ? service::fingerprintText(invariants->saveText())
                      : Fingerprint{};
}

Fingerprint
endpointsFingerprint(const std::vector<InstrId> &endpoints)
{
    std::string packed;
    packed.reserve(endpoints.size() * sizeof(InstrId));
    for (InstrId endpoint : endpoints) {
        for (unsigned shift = 0; shift < 32; shift += 8)
            packed.push_back(
                static_cast<char>((endpoint >> shift) & 0xff));
    }
    return service::fingerprintText(packed);
}

struct CacheKey
{
    std::uint64_t moduleFp;
    std::uint64_t invariantFp;
    std::uint64_t options;

    bool
    operator<(const CacheKey &other) const
    {
        return std::tie(moduleFp, invariantFp, options) <
               std::tie(other.moduleFp, other.invariantFp, other.options);
    }
};

/** Key for the higher-level (detector / slice-set) memo layers. */
struct StaticKey
{
    std::uint64_t moduleFp;
    std::uint64_t invariantFp;
    std::uint64_t configKey;
    std::uint64_t auxFp;

    bool
    operator<(const StaticKey &other) const
    {
        return std::tie(moduleFp, invariantFp, configKey, auxFp) <
               std::tie(other.moduleFp, other.invariantFp,
                        other.configKey, other.auxFp);
    }
};

/** The independent second fingerprints verified on every hit.  The
 *  primary fingerprints form the map key; a key match with a
 *  verification mismatch is a real 64-bit collision and is served as
 *  a fresh solve (the colliding entry is evicted). */
struct VerifyFps
{
    std::uint64_t module = 0;
    std::uint64_t invariant = 0;
    std::uint64_t aux = 0;

    bool
    operator==(const VerifyFps &other) const
    {
        return module == other.module && invariant == other.invariant &&
               aux == other.aux;
    }
};

template <typename Result>
struct Entry
{
    VerifyFps verify;
    /** Results reference the module internally; the entry keeps it
     *  alive until evicted. */
    std::shared_ptr<const ir::Module> module;
    std::shared_ptr<const Result> result;
    /** Copy of the invariant set the result was computed under (null
     *  = sound).  Needed when the entry serves as a patch *base* for
     *  an edited module: lowering the cross-version diff to
     *  constraints compares the base and next invariant slices. */
    std::shared_ptr<const inv::InvariantSet> invariants;
    LruList::Handle handle;
};

/** The andersen_cache section of the shared cache: typed maps whose
 *  entries are linked into the shared LRU/byte-budget spine. */
struct Section
{
    std::map<CacheKey, Entry<AndersenResult>> andersen;
    std::map<StaticKey, Entry<StaticRaceResult>> race;
    std::map<StaticKey, Entry<SliceSetResult>> slice;
    /** Version lineage: fingerprints of recently-inserted module
     *  versions, most recent first.  A miss for an edited module
     *  scans this list for a cached ancestor to patch from.  Bounded
     *  by OHA_LINEAGE_DEPTH; cleared (like every map) on reset, so a
     *  pre-reset version is never served as a patch base. */
    std::deque<Fingerprint> lineage;
};

/** Bounded depth of the version-lineage list (0 disables lineage
 *  patching entirely). */
std::size_t
lineageDepth()
{
    return support::envSizeBytes("OHA_LINEAGE_DEPTH", 8, 0, 64);
}

/** Record @p fp as the most recent known module version.  Spine
 *  mutex held. */
void
registerLineageLocked(Section &sec, const Fingerprint &fp)
{
    const std::size_t depth = lineageDepth();
    for (auto it = sec.lineage.begin(); it != sec.lineage.end(); ++it) {
        if (it->primary == fp.primary && it->secondary == fp.secondary) {
            sec.lineage.erase(it);
            break;
        }
    }
    sec.lineage.push_front(fp);
    while (sec.lineage.size() > depth)
        sec.lineage.pop_back();
}

/** A cached ancestor version usable as an incremental patch base. */
struct LineageBase
{
    std::shared_ptr<const ir::Module> module;
    std::shared_ptr<const AndersenResult> result;
    std::shared_ptr<const inv::InvariantSet> invariants;
};

/** A cached ancestor detector run, for the race-memo lineage path. */
struct RaceBase
{
    std::shared_ptr<const ir::Module> module;
    std::shared_ptr<const StaticRaceResult> race;
    std::shared_ptr<const inv::InvariantSet> invariants;
};

/**
 * Collect cached Andersen results for ancestor versions of the module
 * with fingerprint @p moduleFp, solved with the same options key.
 * Spine mutex held; the returned shared_ptrs keep the candidates
 * alive after it is released (entries may be evicted concurrently).
 */
std::vector<LineageBase>
collectAncestorsLocked(Section &sec, std::uint64_t moduleFp,
                       std::uint64_t optionsKey)
{
    std::vector<LineageBase> out;
    for (const Fingerprint &fp : sec.lineage) {
        if (fp.primary == moduleFp)
            continue;
        auto it = sec.andersen.lower_bound(CacheKey{fp.primary, 0, 0});
        for (; it != sec.andersen.end() &&
               it->first.moduleFp == fp.primary;
             ++it) {
            if (it->first.options != optionsKey)
                continue;
            if (it->second.verify.module != fp.secondary)
                continue;
            // Snapshot-restored entries carry no module object: they
            // serve verified hits only, never patch bases.
            if (!it->second.module)
                continue;
            out.push_back({it->second.module, it->second.result,
                           it->second.invariants});
        }
    }
    return out;
}

/**
 * The section singleton, registered with the shared cache on first
 * use.  Callers MUST materialize this before taking the spine mutex
 * (registration itself takes that mutex).
 */
Section &
section()
{
    static Section *instance = [] {
        auto *s = new Section;
        SharedCache::instance().registerSection([s] {
            s->andersen.clear();
            s->race.clear();
            s->slice.clear();
            s->lineage.clear();
        });
        return s;
    }();
    return *instance;
}

/**
 * Probe @p map for @p key under the (held) spine lock.  A hit is
 * verified against @p verify; a verification mismatch evicts the
 * colliding entry and reports a miss.  Returns null on miss.
 */
template <typename Map>
auto
probeLocked(SharedCache &sc, Map &map,
            const typename Map::key_type &key, const VerifyFps &verify)
    -> decltype(map.begin()->second.result)
{
    auto it = map.find(key);
    if (it == map.end()) {
        sc.noteMiss();
        return nullptr;
    }
    if (!(it->second.verify == verify)) {
        sc.noteVerifiedMiss();
        sc.lru().remove(it->second.handle);
        map.erase(it);
        return nullptr;
    }
    sc.noteHit();
    sc.lru().touch(it->second.handle);
    return it->second.result;
}

/**
 * Insert a freshly-computed entry under the (held) spine lock.
 *
 *  - If @p gen no longer matches the cache generation, a reset
 *    happened while the solve ran: the result is returned to the
 *    caller but NOT cached (a stale insert would pin a pre-reset
 *    result under first-insert-wins).
 *  - If a concurrent solver won the race to this key, its (verified)
 *    result is shared and ours discarded — one object per key.
 *  - Otherwise the entry joins the LRU spine with @p bytes charged
 *    against the shared budget, evicting cold entries as needed.
 */
template <typename Map, typename Result>
std::shared_ptr<const Result>
insertLocked(SharedCache &sc, Map &map,
             const typename Map::key_type &key, VerifyFps verify,
             std::shared_ptr<const ir::Module> module,
             std::shared_ptr<const Result> result,
             std::shared_ptr<const inv::InvariantSet> invariants,
             std::size_t bytes, std::uint64_t gen)
{
    if (gen != sc.generation()) {
        sc.noteStaleDrop();
        return result;
    }
    auto it = map.find(key);
    if (it != map.end()) {
        if (it->second.verify == verify)
            return it->second.result; // first insert wins
        // The concurrent winner is a colliding entry (different
        // verification fingerprints): replace it with ours.
        sc.lru().remove(it->second.handle);
        map.erase(it);
    }
    Entry<Result> entry;
    entry.verify = verify;
    entry.module = std::move(module);
    entry.result = std::move(result);
    entry.invariants = std::move(invariants);
    auto [pos, inserted] = map.emplace(key, std::move(entry));
    OHA_ASSERT(inserted);
    pos->second.handle =
        sc.lru().insert(bytes, [&map, key] { map.erase(key); });
    std::shared_ptr<const Result> shared = pos->second.result;
    // May evict anything cold — including, for an oversized result,
    // the entry just inserted; `shared` keeps the result valid.
    sc.enforceBudget();
    return shared;
}

/** Deep-copy the (caller-owned) invariant set for storage in an
 *  entry; null stays null (sound). */
std::shared_ptr<const inv::InvariantSet>
copyInvariants(const inv::InvariantSet *invariants)
{
    return invariants
               ? std::make_shared<const inv::InvariantSet>(*invariants)
               : nullptr;
}

/** A chosen patch base: the ancestor plus its lowered diff (which
 *  carries the structural diff inside). */
struct PatchPlan
{
    LineageBase base;
    ConstraintDiff diff;
};

/**
 * Diff @p module against every cached ancestor and pick the usable
 * candidate with the fewest seed functions (ties: most recent).
 * Runs outside the spine lock — diffing prints modules.  Returns
 * nullptr when no ancestor admits incremental patching.
 */
std::unique_ptr<PatchPlan>
planPatch(const std::vector<LineageBase> &ancestors,
          const std::shared_ptr<const ir::Module> &module,
          const inv::InvariantSet *nextInvariants)
{
    std::unique_ptr<PatchPlan> best;
    for (const LineageBase &ancestor : ancestors) {
        ir::ModuleDiff structural =
            ir::computeModuleDiff(*ancestor.module, *module);
        ConstraintDiff diff = lowerToConstraints(
            *ancestor.module, *module, structural,
            ancestor.invariants.get(), nextInvariants);
        if (!diff.usable)
            continue;
        const std::size_t cost = diff.seedNames().size();
        if (best && best->diff.seedNames().size() <= cost)
            continue;
        best = std::make_unique<PatchPlan>();
        best->base = ancestor;
        best->diff = std::move(diff);
    }
    return best;
}

} // namespace

std::shared_ptr<const AndersenResult>
runAndersenMemo(const std::shared_ptr<const ir::Module> &module,
                const AndersenOptions &options)
{
    OHA_ASSERT(module && module->finalized());

    Section &sec = section();
    SharedCache &sc = SharedCache::instance();

    const Fingerprint moduleFp = service::fingerprintModule(module);
    const Fingerprint invariantFp = invariantFingerprint(options.invariants);

    CacheKey key;
    key.moduleFp = moduleFp.primary;
    key.invariantFp = invariantFp.primary;
    key.options = optionsKey(options);
    VerifyFps verify;
    verify.module = moduleFp.secondary;
    verify.invariant = invariantFp.secondary;

    std::uint64_t gen = 0;
    std::vector<LineageBase> ancestors;
    {
        std::lock_guard<std::mutex> lock(sc.mutex());
        gen = sc.generation();
        if (auto hit = probeLocked(sc, sec.andersen, key, verify))
            return hit;
        // Miss: snapshot cached ancestor versions of this module for
        // the incremental path (reference-solver runs exist to check
        // the production solver and always solve from scratch).
        if (!options.referenceSolver)
            ancestors = collectAncestorsLocked(sec, moduleFp.primary,
                                               key.options);
    }

    // Solve outside the lock.  Sound CS runs reuse the memoized CI
    // pre-pass instead of recomputing it (runAndersen folds the
    // pre-pass's workUnits into its result; mirror that here so the
    // reported cost model output is identical with or without hits).
    const std::unique_ptr<PatchPlan> plan =
        ancestors.empty() ? nullptr
                          : planPatch(ancestors, module, options.invariants);
    bool patched = false;
    AndersenResult computed;
    if (options.contextSensitive && !options.invariants) {
        AndersenOptions ciOptions = options;
        ciOptions.contextSensitive = false;
        const std::shared_ptr<const AndersenResult> ci =
            runAndersenMemo(module, ciOptions);
        if (plan) {
            IncrementalInput input;
            input.baseModule = plan->base.module.get();
            input.base = plan->base.result.get();
            input.diff = &plan->diff;
            input.baseInvariants = plan->base.invariants.get();
            computed = runAndersenIncremental(*module, options, input,
                                              ci.get(), &patched);
        } else {
            computed = runAndersenPrepassed(*module, options, ci.get());
        }
        computed.workUnits += ci->workUnits;
    } else if (plan) {
        IncrementalInput input;
        input.baseModule = plan->base.module.get();
        input.base = plan->base.result.get();
        input.diff = &plan->diff;
        input.baseInvariants = plan->base.invariants.get();
        computed = runAndersenIncremental(*module, options, input,
                                          nullptr, &patched);
    } else {
        computed = runAndersen(*module, options);
    }

    auto result =
        std::make_shared<const AndersenResult>(std::move(computed));
    const std::size_t bytes = result->byteSizeEstimate();
    std::lock_guard<std::mutex> lock(sc.mutex());
    if (patched)
        sc.noteLineageHit();
    if (gen == sc.generation())
        registerLineageLocked(sec, moduleFp);
    return insertLocked(sc, sec.andersen, key, verify, module,
                        std::move(result),
                        copyInvariants(options.invariants), bytes, gen);
}

std::shared_ptr<const StaticRaceResult>
runStaticRaceDetectorMemo(const std::shared_ptr<const ir::Module> &module,
                          const inv::InvariantSet *invariants,
                          std::uint32_t solverThreads)
{
    OHA_ASSERT(module && module->finalized());

    Section &sec = section();
    SharedCache &sc = SharedCache::instance();

    const Fingerprint moduleFp = service::fingerprintModule(module);
    const Fingerprint invariantFp = invariantFingerprint(invariants);

    StaticKey key;
    key.moduleFp = moduleFp.primary;
    key.invariantFp = invariantFp.primary;
    key.configKey = 0;
    key.auxFp = 0;
    VerifyFps verify;
    verify.module = moduleFp.secondary;
    verify.invariant = invariantFp.secondary;

    std::uint64_t gen = 0;
    std::vector<RaceBase> ancestors;
    {
        std::lock_guard<std::mutex> lock(sc.mutex());
        gen = sc.generation();
        if (auto hit = probeLocked(sc, sec.race, key, verify))
            return hit;
        // Miss: snapshot cached detector runs for ancestor versions.
        for (const Fingerprint &fp : sec.lineage) {
            if (fp.primary == moduleFp.primary)
                continue;
            auto it = sec.race.lower_bound(StaticKey{fp.primary, 0, 0, 0});
            for (; it != sec.race.end() &&
                   it->first.moduleFp == fp.primary;
                 ++it) {
                if (it->first.configKey != 0 || it->first.auxFp != 0)
                    continue;
                if (it->second.verify.module != fp.secondary)
                    continue;
                // Snapshot-restored entries (null module) serve
                // verified hits only, never patch bases.
                if (!it->second.module)
                    continue;
                ancestors.push_back({it->second.module,
                                     it->second.result,
                                     it->second.invariants});
            }
        }
    }

    // The detector's own points-to solve still goes through the
    // Andersen memo (shared with calibration and the slicer picks).
    // With a cached ancestor run, the pair matrix itself is patched
    // per-function instead of recomputed per-module.
    bool patched = false;
    std::shared_ptr<const StaticRaceResult> result;
    for (const RaceBase &ancestor : ancestors) {
        const ir::ModuleDiff structural =
            ir::computeModuleDiff(*ancestor.module, *module);
        const ConstraintDiff diff = lowerToConstraints(
            *ancestor.module, *module, structural,
            ancestor.invariants.get(), invariants);
        if (!diff.usable)
            continue;
        RaceIncrementalInput patch;
        patch.baseModule = ancestor.module;
        patch.baseRace = ancestor.race;
        patch.baseInvariants = ancestor.invariants;
        patch.diff = &diff;
        result = std::make_shared<const StaticRaceResult>(
            runStaticRaceDetectorIncremental(module, invariants, patch,
                                             &patched, solverThreads));
        break;
    }
    if (!result)
        result = std::make_shared<const StaticRaceResult>(
            runStaticRaceDetector(*module, invariants, module, false,
                                  solverThreads));
    const std::size_t bytes = byteSizeEstimate(*result);
    std::lock_guard<std::mutex> lock(sc.mutex());
    if (patched)
        sc.noteLineageHit();
    if (gen == sc.generation())
        registerLineageLocked(sec, moduleFp);
    return insertLocked(sc, sec.race, key, verify, module,
                        std::move(result), copyInvariants(invariants),
                        bytes, gen);
}

std::shared_ptr<const SliceSetResult>
sliceSetMemo(const std::shared_ptr<const ir::Module> &module,
             const inv::InvariantSet *invariants, std::uint64_t configKey,
             const std::vector<InstrId> &endpoints,
             const std::function<SliceSetResult()> &compute,
             const std::function<std::optional<SliceSetResult>(
                 const SliceLineageBase &)> &computeIncremental)
{
    OHA_ASSERT(module && module->finalized());

    Section &sec = section();
    SharedCache &sc = SharedCache::instance();

    const Fingerprint moduleFp = service::fingerprintModule(module);
    const Fingerprint invariantFp = invariantFingerprint(invariants);
    const Fingerprint auxFp = endpointsFingerprint(endpoints);

    StaticKey key;
    key.moduleFp = moduleFp.primary;
    key.invariantFp = invariantFp.primary;
    key.configKey = configKey;
    key.auxFp = auxFp.primary;
    VerifyFps verify;
    verify.module = moduleFp.secondary;
    verify.invariant = invariantFp.secondary;
    verify.aux = auxFp.secondary;

    std::uint64_t gen = 0;
    std::vector<SliceLineageBase> ancestors;
    {
        std::lock_guard<std::mutex> lock(sc.mutex());
        gen = sc.generation();
        if (auto hit = probeLocked(sc, sec.slice, key, verify))
            return hit;
        // Miss: snapshot cached slice sets for ancestor versions with
        // the same slicing configuration (their endpoint aux keys
        // necessarily differ — ids are reassigned by every edit).
        if (computeIncremental) {
            for (const Fingerprint &fp : sec.lineage) {
                if (fp.primary == moduleFp.primary)
                    continue;
                auto it =
                    sec.slice.lower_bound(StaticKey{fp.primary, 0, 0, 0});
                for (; it != sec.slice.end() &&
                       it->first.moduleFp == fp.primary;
                     ++it) {
                    if (it->first.configKey != configKey)
                        continue;
                    if (it->second.verify.module != fp.secondary)
                        continue;
                    // Snapshot-restored entries (null module) serve
                    // verified hits only, never patch bases.
                    if (!it->second.module)
                        continue;
                    ancestors.push_back({it->second.module,
                                         it->second.result,
                                         it->second.invariants, nullptr});
                }
            }
        }
    }

    bool patched = false;
    SliceSetResult computed;
    for (SliceLineageBase &ancestor : ancestors) {
        const ir::ModuleDiff structural =
            ir::computeModuleDiff(*ancestor.module, *module);
        const ConstraintDiff diff = lowerToConstraints(
            *ancestor.module, *module, structural,
            ancestor.invariants.get(), invariants);
        if (!diff.usable)
            continue;
        ancestor.diff = &diff;
        if (std::optional<SliceSetResult> out =
                computeIncremental(ancestor)) {
            computed = std::move(*out);
            patched = true;
            break;
        }
    }
    if (!patched)
        computed = compute();
    computed.endpoints = endpoints;

    auto result =
        std::make_shared<const SliceSetResult>(std::move(computed));
    const std::size_t bytes = byteSizeEstimate(*result);
    std::lock_guard<std::mutex> lock(sc.mutex());
    if (patched)
        sc.noteLineageHit();
    if (gen == sc.generation())
        registerLineageLocked(sec, moduleFp);
    return insertLocked(sc, sec.slice, key, verify, module,
                        std::move(result), copyInvariants(invariants),
                        bytes, gen);
}

std::vector<RaceSectionEntry>
exportRaceSection()
{
    Section &sec = section();
    SharedCache &sc = SharedCache::instance();
    std::vector<RaceSectionEntry> out;
    std::lock_guard<std::mutex> lock(sc.mutex());
    out.reserve(sec.race.size());
    for (const auto &[key, entry] : sec.race) {
        if (key.configKey != 0 || key.auxFp != 0)
            continue; // detector entries only (defensive)
        out.push_back({{key.moduleFp, entry.verify.module},
                       {key.invariantFp, entry.verify.invariant},
                       entry.result});
    }
    return out;
}

std::vector<SliceSectionEntry>
exportSliceSection()
{
    Section &sec = section();
    SharedCache &sc = SharedCache::instance();
    std::vector<SliceSectionEntry> out;
    std::lock_guard<std::mutex> lock(sc.mutex());
    out.reserve(sec.slice.size());
    for (const auto &[key, entry] : sec.slice) {
        out.push_back({{key.moduleFp, entry.verify.module},
                       {key.invariantFp, entry.verify.invariant},
                       key.configKey,
                       {key.auxFp, entry.verify.aux},
                       entry.result});
    }
    return out;
}

void
admitRaceSectionEntry(const RaceSectionEntry &entry)
{
    if (!entry.result)
        return;
    Section &sec = section();
    SharedCache &sc = SharedCache::instance();
    StaticKey key;
    key.moduleFp = entry.moduleFp.primary;
    key.invariantFp = entry.invariantFp.primary;
    key.configKey = 0;
    key.auxFp = 0;
    VerifyFps verify;
    verify.module = entry.moduleFp.secondary;
    verify.invariant = entry.invariantFp.secondary;
    const std::size_t bytes = byteSizeEstimate(*entry.result);
    std::lock_guard<std::mutex> lock(sc.mutex());
    // Restored entries carry null module/invariants pointers and are
    // NOT lineage-registered: they serve verified hits only.
    insertLocked(sc, sec.race, key, verify, nullptr, entry.result,
                 nullptr, bytes, sc.generation());
}

void
admitSliceSectionEntry(const SliceSectionEntry &entry)
{
    if (!entry.result)
        return;
    Section &sec = section();
    SharedCache &sc = SharedCache::instance();
    StaticKey key;
    key.moduleFp = entry.moduleFp.primary;
    key.invariantFp = entry.invariantFp.primary;
    key.configKey = entry.configKey;
    key.auxFp = entry.auxFp.primary;
    VerifyFps verify;
    verify.module = entry.moduleFp.secondary;
    verify.invariant = entry.invariantFp.secondary;
    verify.aux = entry.auxFp.secondary;
    const std::size_t bytes = byteSizeEstimate(*entry.result);
    std::lock_guard<std::mutex> lock(sc.mutex());
    insertLocked(sc, sec.slice, key, verify, nullptr, entry.result,
                 nullptr, bytes, sc.generation());
}

AndersenCacheStats
andersenCacheStats()
{
    const service::SharedCacheStats stats =
        SharedCache::instance().stats();
    AndersenCacheStats out;
    out.hits = stats.hits;
    out.misses = stats.misses;
    out.verifiedMisses = stats.verifiedMisses;
    out.evictions = stats.evictions;
    out.staleDrops = stats.staleDrops;
    out.lineageHits = stats.lineageHits;
    out.entries = stats.entries;
    out.bytesCached = stats.bytesCached;
    out.byteBudget = stats.byteBudget;
    const SolverStats solver = andersenSolverStats();
    out.solverSolves = solver.solves;
    out.solverWaves = solver.waves;
    out.solverCycleMerges = solver.cycleMerges;
    out.solverMaxWaveImbalance = solver.maxWaveImbalance;
    return out;
}

void
setStaticCacheByteBudget(std::size_t bytes)
{
    SharedCache::instance().setByteBudget(bytes);
}

std::size_t
staticCacheByteBudget()
{
    return SharedCache::instance().byteBudget();
}

void
resetAndersenCache()
{
    // Materialize the section first: reset() runs registered clears,
    // and registration takes the spine mutex.
    section();
    SharedCache::instance().reset();
    resetAndersenSolverStats();
}

} // namespace oha::analysis
