#include "analysis/andersen_cache.h"

#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <utility>

#include "invariants/invariant_set.h"
#include "ir/printer.h"
#include "service/shared_cache.h"

namespace oha::analysis {

namespace {

using service::Fingerprint;
using service::LruList;
using service::SharedCache;

/** Solver options packed into a comparable key. */
std::uint64_t
optionsKey(const AndersenOptions &options)
{
    std::uint64_t key = 0;
    key |= options.contextSensitive ? 1u : 0u;
    key |= options.useHvn ? 2u : 0u;
    key |= options.cycleCollapse ? 4u : 0u;
    key |= options.referenceSolver ? 8u : 0u;
    key |= static_cast<std::uint64_t>(options.maxContexts) << 4;
    key ^= static_cast<std::uint64_t>(options.maxContextDepth) << 40;
    return key;
}

Fingerprint
invariantFingerprint(const inv::InvariantSet *invariants)
{
    return invariants ? service::fingerprintText(invariants->saveText())
                      : Fingerprint{};
}

Fingerprint
endpointsFingerprint(const std::vector<InstrId> &endpoints)
{
    std::string packed;
    packed.reserve(endpoints.size() * sizeof(InstrId));
    for (InstrId endpoint : endpoints) {
        for (unsigned shift = 0; shift < 32; shift += 8)
            packed.push_back(
                static_cast<char>((endpoint >> shift) & 0xff));
    }
    return service::fingerprintText(packed);
}

struct CacheKey
{
    std::uint64_t moduleFp;
    std::uint64_t invariantFp;
    std::uint64_t options;

    bool
    operator<(const CacheKey &other) const
    {
        return std::tie(moduleFp, invariantFp, options) <
               std::tie(other.moduleFp, other.invariantFp, other.options);
    }
};

/** Key for the higher-level (detector / slice-set) memo layers. */
struct StaticKey
{
    std::uint64_t moduleFp;
    std::uint64_t invariantFp;
    std::uint64_t configKey;
    std::uint64_t auxFp;

    bool
    operator<(const StaticKey &other) const
    {
        return std::tie(moduleFp, invariantFp, configKey, auxFp) <
               std::tie(other.moduleFp, other.invariantFp,
                        other.configKey, other.auxFp);
    }
};

/** The independent second fingerprints verified on every hit.  The
 *  primary fingerprints form the map key; a key match with a
 *  verification mismatch is a real 64-bit collision and is served as
 *  a fresh solve (the colliding entry is evicted). */
struct VerifyFps
{
    std::uint64_t module = 0;
    std::uint64_t invariant = 0;
    std::uint64_t aux = 0;

    bool
    operator==(const VerifyFps &other) const
    {
        return module == other.module && invariant == other.invariant &&
               aux == other.aux;
    }
};

template <typename Result>
struct Entry
{
    VerifyFps verify;
    /** Results reference the module internally; the entry keeps it
     *  alive until evicted. */
    std::shared_ptr<const ir::Module> module;
    std::shared_ptr<const Result> result;
    LruList::Handle handle;
};

/** The andersen_cache section of the shared cache: typed maps whose
 *  entries are linked into the shared LRU/byte-budget spine. */
struct Section
{
    std::map<CacheKey, Entry<AndersenResult>> andersen;
    std::map<StaticKey, Entry<StaticRaceResult>> race;
    std::map<StaticKey, Entry<SliceSetResult>> slice;
};

/**
 * The section singleton, registered with the shared cache on first
 * use.  Callers MUST materialize this before taking the spine mutex
 * (registration itself takes that mutex).
 */
Section &
section()
{
    static Section *instance = [] {
        auto *s = new Section;
        SharedCache::instance().registerSection([s] {
            s->andersen.clear();
            s->race.clear();
            s->slice.clear();
        });
        return s;
    }();
    return *instance;
}

/**
 * Probe @p map for @p key under the (held) spine lock.  A hit is
 * verified against @p verify; a verification mismatch evicts the
 * colliding entry and reports a miss.  Returns null on miss.
 */
template <typename Map>
auto
probeLocked(SharedCache &sc, Map &map,
            const typename Map::key_type &key, const VerifyFps &verify)
    -> decltype(map.begin()->second.result)
{
    auto it = map.find(key);
    if (it == map.end()) {
        sc.noteMiss();
        return nullptr;
    }
    if (!(it->second.verify == verify)) {
        sc.noteVerifiedMiss();
        sc.lru().remove(it->second.handle);
        map.erase(it);
        return nullptr;
    }
    sc.noteHit();
    sc.lru().touch(it->second.handle);
    return it->second.result;
}

/**
 * Insert a freshly-computed entry under the (held) spine lock.
 *
 *  - If @p gen no longer matches the cache generation, a reset
 *    happened while the solve ran: the result is returned to the
 *    caller but NOT cached (a stale insert would pin a pre-reset
 *    result under first-insert-wins).
 *  - If a concurrent solver won the race to this key, its (verified)
 *    result is shared and ours discarded — one object per key.
 *  - Otherwise the entry joins the LRU spine with @p bytes charged
 *    against the shared budget, evicting cold entries as needed.
 */
template <typename Map, typename Result>
std::shared_ptr<const Result>
insertLocked(SharedCache &sc, Map &map,
             const typename Map::key_type &key, VerifyFps verify,
             std::shared_ptr<const ir::Module> module,
             std::shared_ptr<const Result> result, std::size_t bytes,
             std::uint64_t gen)
{
    if (gen != sc.generation()) {
        sc.noteStaleDrop();
        return result;
    }
    auto it = map.find(key);
    if (it != map.end()) {
        if (it->second.verify == verify)
            return it->second.result; // first insert wins
        // The concurrent winner is a colliding entry (different
        // verification fingerprints): replace it with ours.
        sc.lru().remove(it->second.handle);
        map.erase(it);
    }
    Entry<Result> entry;
    entry.verify = verify;
    entry.module = std::move(module);
    entry.result = std::move(result);
    auto [pos, inserted] = map.emplace(key, std::move(entry));
    OHA_ASSERT(inserted);
    pos->second.handle =
        sc.lru().insert(bytes, [&map, key] { map.erase(key); });
    std::shared_ptr<const Result> shared = pos->second.result;
    // May evict anything cold — including, for an oversized result,
    // the entry just inserted; `shared` keeps the result valid.
    sc.enforceBudget();
    return shared;
}

} // namespace

std::shared_ptr<const AndersenResult>
runAndersenMemo(const std::shared_ptr<const ir::Module> &module,
                const AndersenOptions &options)
{
    OHA_ASSERT(module && module->finalized());

    Section &sec = section();
    SharedCache &sc = SharedCache::instance();

    const Fingerprint moduleFp = service::fingerprintModule(module);
    const Fingerprint invariantFp = invariantFingerprint(options.invariants);

    CacheKey key;
    key.moduleFp = moduleFp.primary;
    key.invariantFp = invariantFp.primary;
    key.options = optionsKey(options);
    VerifyFps verify;
    verify.module = moduleFp.secondary;
    verify.invariant = invariantFp.secondary;

    std::uint64_t gen = 0;
    {
        std::lock_guard<std::mutex> lock(sc.mutex());
        gen = sc.generation();
        if (auto hit = probeLocked(sc, sec.andersen, key, verify))
            return hit;
    }

    // Solve outside the lock.  Sound CS runs reuse the memoized CI
    // pre-pass instead of recomputing it (runAndersen folds the
    // pre-pass's workUnits into its result; mirror that here so the
    // reported cost model output is identical with or without hits).
    AndersenResult computed;
    if (options.contextSensitive && !options.invariants) {
        AndersenOptions ciOptions = options;
        ciOptions.contextSensitive = false;
        const std::shared_ptr<const AndersenResult> ci =
            runAndersenMemo(module, ciOptions);
        computed = runAndersenPrepassed(*module, options, ci.get());
        computed.workUnits += ci->workUnits;
    } else {
        computed = runAndersen(*module, options);
    }

    auto result =
        std::make_shared<const AndersenResult>(std::move(computed));
    const std::size_t bytes = result->byteSizeEstimate();
    std::lock_guard<std::mutex> lock(sc.mutex());
    return insertLocked(sc, sec.andersen, key, verify, module,
                        std::move(result), bytes, gen);
}

std::shared_ptr<const StaticRaceResult>
runStaticRaceDetectorMemo(const std::shared_ptr<const ir::Module> &module,
                          const inv::InvariantSet *invariants)
{
    OHA_ASSERT(module && module->finalized());

    Section &sec = section();
    SharedCache &sc = SharedCache::instance();

    const Fingerprint moduleFp = service::fingerprintModule(module);
    const Fingerprint invariantFp = invariantFingerprint(invariants);

    StaticKey key;
    key.moduleFp = moduleFp.primary;
    key.invariantFp = invariantFp.primary;
    key.configKey = 0;
    key.auxFp = 0;
    VerifyFps verify;
    verify.module = moduleFp.secondary;
    verify.invariant = invariantFp.secondary;

    std::uint64_t gen = 0;
    {
        std::lock_guard<std::mutex> lock(sc.mutex());
        gen = sc.generation();
        if (auto hit = probeLocked(sc, sec.race, key, verify))
            return hit;
    }

    // The detector's own points-to solve still goes through the
    // Andersen memo (shared with calibration and the slicer picks).
    auto result = std::make_shared<const StaticRaceResult>(
        runStaticRaceDetector(*module, invariants, module));
    const std::size_t bytes = byteSizeEstimate(*result);
    std::lock_guard<std::mutex> lock(sc.mutex());
    return insertLocked(sc, sec.race, key, verify, module,
                        std::move(result), bytes, gen);
}

std::shared_ptr<const SliceSetResult>
sliceSetMemo(const std::shared_ptr<const ir::Module> &module,
             const inv::InvariantSet *invariants, std::uint64_t configKey,
             const std::vector<InstrId> &endpoints,
             const std::function<SliceSetResult()> &compute)
{
    OHA_ASSERT(module && module->finalized());

    Section &sec = section();
    SharedCache &sc = SharedCache::instance();

    const Fingerprint moduleFp = service::fingerprintModule(module);
    const Fingerprint invariantFp = invariantFingerprint(invariants);
    const Fingerprint auxFp = endpointsFingerprint(endpoints);

    StaticKey key;
    key.moduleFp = moduleFp.primary;
    key.invariantFp = invariantFp.primary;
    key.configKey = configKey;
    key.auxFp = auxFp.primary;
    VerifyFps verify;
    verify.module = moduleFp.secondary;
    verify.invariant = invariantFp.secondary;
    verify.aux = auxFp.secondary;

    std::uint64_t gen = 0;
    {
        std::lock_guard<std::mutex> lock(sc.mutex());
        gen = sc.generation();
        if (auto hit = probeLocked(sc, sec.slice, key, verify))
            return hit;
    }

    auto result = std::make_shared<const SliceSetResult>(compute());
    const std::size_t bytes = byteSizeEstimate(*result);
    std::lock_guard<std::mutex> lock(sc.mutex());
    return insertLocked(sc, sec.slice, key, verify, module,
                        std::move(result), bytes, gen);
}

AndersenCacheStats
andersenCacheStats()
{
    const service::SharedCacheStats stats =
        SharedCache::instance().stats();
    AndersenCacheStats out;
    out.hits = stats.hits;
    out.misses = stats.misses;
    out.verifiedMisses = stats.verifiedMisses;
    out.evictions = stats.evictions;
    out.staleDrops = stats.staleDrops;
    out.entries = stats.entries;
    out.bytesCached = stats.bytesCached;
    out.byteBudget = stats.byteBudget;
    return out;
}

void
setStaticCacheByteBudget(std::size_t bytes)
{
    SharedCache::instance().setByteBudget(bytes);
}

std::size_t
staticCacheByteBudget()
{
    return SharedCache::instance().byteBudget();
}

void
resetAndersenCache()
{
    // Materialize the section first: reset() runs registered clears,
    // and registration takes the spine mutex.
    section();
    SharedCache::instance().reset();
}

} // namespace oha::analysis
