/**
 * @file
 * Call-graph utilities over an Andersen result: per-function callee
 * sets (with indirect calls resolved by points-to or likely callee
 * sets) and reachability queries used to delimit thread regions.
 */

#pragma once

#include <set>
#include <vector>

#include "analysis/andersen.h"
#include "ir/module.h"

namespace oha::analysis {

/** Context-insensitive call graph (spawn edges kept separate). */
class CallGraph
{
  public:
    CallGraph(const ir::Module &module, const AndersenResult &andersen,
              const inv::InvariantSet *invariants);

    /** Functions called (not spawned) from @p func via live code. */
    const std::set<FuncId> &callees(FuncId func) const
    {
        return callees_[func];
    }

    /** All Spawn instructions in live code, module-wide. */
    const std::vector<InstrId> &spawnSites() const { return spawnSites_; }

    /** Functions reachable from @p root through call edges only. */
    std::set<FuncId> reachableFrom(FuncId root) const;

    /** True if @p func can be invoked as an ordinary callee (used to
     *  rule out re-entrant main when proving spawn-once). */
    bool isCalleeSomewhere(FuncId func) const
    {
        return calledFuncs_.count(func) > 0;
    }

  private:
    std::vector<std::set<FuncId>> callees_;
    std::vector<InstrId> spawnSites_;
    std::set<FuncId> calledFuncs_;
};

} // namespace oha::analysis
