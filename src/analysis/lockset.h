/**
 * @file
 * Static lockset analysis: which lock sites are held at each
 * instruction (Section 4.1).
 *
 * Flow-sensitive within a function (forward dataflow, meet =
 * intersection) and context-insensitive across calls: a callee's
 * entry lockset is the intersection of the locksets at every live
 * call site.  Lockset elements are Lock instruction ids; whether two
 * held sites actually guard with the *same* dynamic lock is a
 * must-alias question the sound analysis cannot answer — that is the
 * likely-guarding-locks invariant's job (Section 4.2.2).
 */

#pragma once

#include <map>
#include <set>
#include <vector>

#include "analysis/andersen.h"
#include "ir/module.h"

namespace oha::analysis {

/** Computes held-lock-site sets per instruction. */
class LocksetAnalysis
{
  public:
    LocksetAnalysis(const ir::Module &module,
                    const AndersenResult &andersen,
                    const inv::InvariantSet *invariants);

    /** Lock sites held immediately before @p instr executes. */
    const std::set<InstrId> &
    locksHeldAt(InstrId instr) const
    {
        static const std::set<InstrId> kEmpty;
        auto it = held_.find(instr);
        return it == held_.end() ? kEmpty : it->second;
    }

  private:
    std::map<InstrId, std::set<InstrId>> held_;
};

} // namespace oha::analysis
