/**
 * @file
 * Andersen-style inclusion-based points-to analysis (Section 5.1.2).
 *
 * Features mirroring the paper's implementation:
 *  - field-sensitive, with heap cloning in the context-sensitive mode;
 *  - context-insensitive (CI) and call-site context-sensitive (CS)
 *    variants; CS clones function node blocks per acyclic call chain,
 *    connecting recursive calls back to the enclosing instance;
 *  - offline HVN variable substitution and periodic online cycle
 *    collapse (in the spirit of HVN/HRU [30] and LCD/HCD [29]);
 *  - *predicated* operation when an InvariantSet is supplied: code in
 *    likely-unreachable blocks is ignored, indirect calls are resolved
 *    to their likely callee sets, and (in CS mode) only observed call
 *    contexts are cloned (Figure 3).
 *
 * The CS variant carries a context budget: exceeding it marks the
 * result incomplete, modelling the paper's "most accurate analysis
 * that will run on a given benchmark" selection (Table 2).
 */

#pragma once

#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "analysis/memory_model.h"
#include "invariants/invariant_set.h"
#include "ir/module.h"
#include "support/sparse_bit_set.h"

namespace oha::analysis {

/** Context instance of a function in the CS analysis. */
struct ContextInstance
{
    std::uint32_t id = 0;
    FuncId func = kNoFunc;
    /** Chain of call-site instruction ids from the root (empty for
     *  main; [spawnSite] for thread roots; truncated at the
     *  fallback). */
    inv::CallContext chain;
    std::uint32_t parent = 0;
    InstrId callSite = kNoInstr;
    /** True for the per-function context-insensitive fallback
     *  instance used for recursion / depth overflow. */
    bool fallback = false;
};

/** Analysis configuration. */
struct AndersenOptions
{
    bool contextSensitive = false;
    /** Non-null => predicated analysis assuming these invariants. */
    const inv::InvariantSet *invariants = nullptr;
    /** Apply offline HVN variable substitution. */
    bool useHvn = true;
    /** Collapse copy-graph SCCs periodically while solving. */
    bool cycleCollapse = true;
    /** CS context budget; exceeding it aborts the analysis. */
    std::uint32_t maxContexts = 20000;
    std::uint32_t maxContextDepth = 64;
    /**
     * Run the pre-overhaul solver: FIFO worklist, full points-to
     * sets re-unioned along every copy edge, no offline constraint
     * reduction.  The two solvers compute the same fixpoint (results
     * from either are hash-consed and query-cached identically); this
     * path exists so the parity test and the static-phase
     * microbenchmark can compare the production delta solver against
     * it.
     */
    bool referenceSolver = false;
    /**
     * Worker-thread count for the wavefront-parallel solve; 0 = the
     * OHA_THREADS pool size (support::configuredThreads()).  The
     * solver is deterministic by construction — results are
     * byte-identical at every value — so this knob (like
     * waveShuffleSeed) is deliberately excluded from the static memo
     * cache key.
     */
    std::uint32_t solverThreads = 0;
    /**
     * Nonzero: deterministically permute the order wave tasks are
     * handed to the worker pool.  Purely a verification aid — the
     * parity suite uses it to prove that task/chunk layout cannot
     * leak into results.
     */
    std::uint64_t waveShuffleSeed = 0;
};

/**
 * Process-wide wavefront-solver counters, accumulated across every
 * completed delta-mode solve since the last reset (the reference
 * solver contributes nothing).  Surfaced through the andersen_cache
 * stats and the fig9 bench; reset together with the static caches.
 */
struct SolverStats
{
    std::uint64_t solves = 0;
    std::uint64_t waves = 0;
    std::uint64_t cycleMerges = 0;
    /** Max over all waves of ready-nodes / fired-nodes (1.0 = every
     *  ready node fired in its wave; higher = level order serialized
     *  more of the ready work). */
    double maxWaveImbalance = 0.0;
};

SolverStats andersenSolverStats();
void resetAndersenSolverStats();

/** Result of a points-to run. */
class AndersenResult
{
  public:
    AndersenResult();
    ~AndersenResult();
    AndersenResult(AndersenResult &&) noexcept;
    AndersenResult &operator=(AndersenResult &&) noexcept;

    /** False when the CS context budget was exhausted. */
    bool completed = false;

    MemoryModel memory;

    /** All context instances (CS mode; CI has one per function). */
    std::vector<ContextInstance> contexts;

    /** Solver effort in abstract units (for Table 1/2 modelling). */
    std::uint64_t workUnits = 0;

    /** Wavefront-solver shape for this solve (delta mode only): level
     *  batches fired, online cycle merges, and the max ready-to-fired
     *  ratio across waves (see SolverStats::maxWaveImbalance). */
    std::uint64_t solverWaves = 0;
    std::uint64_t solverCycleMerges = 0;
    double solverWaveImbalance = 0.0;

    /** Points-to set of register @p reg of context instance @p ctx. */
    const SparseBitSet &pts(std::uint32_t ctx, ir::Reg reg) const;

    /** Points-to set of an abstract memory cell (what may be stored
     *  in it) — used by escape analysis. */
    const SparseBitSet &
    cellPts(CellId cell) const
    {
        return ptsPool_[ptsIdx_[repr_[cell]]];
    }

    /** All call/spawn edges: (callerCtx, site, callee) -> calleeCtx. */
    const std::map<std::tuple<std::uint32_t, InstrId, FuncId>,
                   std::uint32_t> &
    callEdges() const
    {
        return callEdges_;
    }

    /**
     * Union of pts over every context instance of the register's
     * function (the CI view of a CS result).  Results are immutable
     * after solving, so the flattened set is computed once per
     * (func, reg) and served from a cache thereafter — the slicer
     * and detector hot loops issue these queries per instruction.
     * Thread-safe.
     */
    const SparseBitSet &ptsAllContexts(FuncId func, ir::Reg reg) const;

    /** Cells the pointer operand of @p instr (Load/Store/Lock/Unlock/
     *  Gep base) may point to, over all contexts. */
    const SparseBitSet &pointerTargets(InstrId instr) const;

    /** Possible targets of an indirect call, over all contexts,
     *  sorted ascending and deduplicated. */
    std::vector<FuncId> icallTargets(InstrId instr) const;

    /** Context instances of @p func. */
    const std::vector<std::uint32_t> &instancesOf(FuncId func) const;

    /** Instance reached from @p ctx through call site @p site, or
     *  ~0u if that edge was pruned / never built. */
    std::uint32_t calleeInstance(std::uint32_t ctx, InstrId site,
                                 FuncId callee) const;

    /**
     * Probability that a random (load, store) pair may alias — the
     * metric of Figure 9.  When @p filter is non-null only accesses
     * in blocks it marks visited are considered (the paper compares
     * base and optimistic analyses over the optimistic access set).
     */
    double aliasRate(const ir::Module &module,
                     const inv::InvariantSet *filter = nullptr) const;

    /** Approximate heap footprint (excluding the module and the
     *  lazily-filled query cache), for cache byte budgeting. */
    std::size_t byteSizeEstimate() const;

  private:
    friend class AndersenSolver;

    const ir::Module *module_ = nullptr;
    /** node id = regBase_[ctx] + reg; ret node = regBase + numRegs. */
    std::vector<std::uint32_t> regBase_;
    std::vector<std::vector<std::uint32_t>> funcInstances_;
    /** (ctx, callsite, callee) -> callee ctx. */
    std::map<std::tuple<std::uint32_t, InstrId, FuncId>, std::uint32_t>
        callEdges_;
    /**
     * Final pts storage, hash-consed: pool of unique sets (index 0
     * is the empty set) and a node -> pool-index map.  The many
     * singleton and duplicate sets a solve produces share one copy.
     */
    std::vector<SparseBitSet> ptsPool_;
    std::vector<std::uint32_t> ptsIdx_;
    /** Node representative map from cycle/HVN merging. */
    std::vector<std::uint32_t> repr_;
    /** Lazily-filled flattened per-(func, reg) query cache. */
    struct QueryCache;
    std::unique_ptr<QueryCache> cache_;

    std::uint32_t nodeOf(std::uint32_t ctx, ir::Reg reg) const;
};

/** Run Andersen analysis over @p module. */
AndersenResult runAndersen(const ir::Module &module,
                           const AndersenOptions &options);

struct ConstraintDiff;

/**
 * Inputs for an incremental re-solve against a cached base result
 * (AndersenSolver::resolveIncremental).  @p base must be a completed
 * result for @p baseModule computed with the same options and with
 * @p baseInvariants as its invariant set (null = sound).
 */
struct IncrementalInput
{
    const ir::Module *baseModule = nullptr;
    const AndersenResult *base = nullptr;
    const ConstraintDiff *diff = nullptr;
    const inv::InvariantSet *baseInvariants = nullptr;
};

/**
 * Solve @p module by patching @p input.base: the full constraint graph
 * for the new version is built, but every node outside the diff's
 * taint closure is seeded with its (translated) base points-to set and
 * never re-derived — the difference-propagation worklist starts from
 * the affected region only.  Removed constraints are handled by
 * recomputing the dirtied region from the sound base, never by
 * deleting bits.  Falls back to a from-scratch solve (reporting
 * @p usedIncremental = false) whenever patching would be unsound or
 * has no stable cross-version mapping: unusable diff, incomplete base,
 * reference solver, CS with call-context invariants, or untranslatable
 * cells.  Either way the returned views (pts / icall targets / ...)
 * equal a from-scratch solve's; only workUnits reflects the actual
 * (incremental) effort.
 */
AndersenResult runAndersenIncremental(const ir::Module &module,
                                      const AndersenOptions &options,
                                      const IncrementalInput &input,
                                      const AndersenResult *ciPrepass,
                                      bool *usedIncremental);

/**
 * As runAndersen, but with a caller-supplied CI pre-pass for sound CS
 * runs (the pre-pass resolves indirect calls).  Lets the memoizing
 * wrapper reuse a cached CI result instead of recomputing it inside
 * every sound CS solve.  The pre-pass's workUnits are NOT folded in —
 * the caller owns that accounting.
 */
AndersenResult runAndersenPrepassed(const ir::Module &module,
                                    const AndersenOptions &options,
                                    const AndersenResult *ciPrepass);

} // namespace oha::analysis
