#include "analysis/andersen.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "analysis/constraint_diff.h"
#include "support/thread_pool.h"
#include "support/union_find.h"

namespace oha::analysis {

namespace {

/** Marker call-site used in the chain of fallback instances. */
constexpr InstrId kFallbackMarker = kNoInstr;

} // namespace

// ---------------------------------------------------------------------
// AndersenResult queries
// ---------------------------------------------------------------------

/**
 * Flattened-query memo.  Results are immutable after solving, so an
 * entry, once computed, is valid forever; the mutex only serializes
 * the lazy fills so concurrent static-phase clients (parallel lockset
 * dataflow, batched slicers) can share one result object.
 */
struct AndersenResult::QueryCache
{
    std::mutex mutex;
    /** (func << 32 | reg) -> flattened all-contexts set. */
    std::unordered_map<std::uint64_t, SparseBitSet> flat;
};

AndersenResult::AndersenResult()
    : cache_(std::make_unique<QueryCache>())
{}

AndersenResult::~AndersenResult() = default;
AndersenResult::AndersenResult(AndersenResult &&) noexcept = default;
AndersenResult &
AndersenResult::operator=(AndersenResult &&) noexcept = default;

std::size_t
AndersenResult::byteSizeEstimate() const
{
    // Deliberately rough: the point is that big results charge the
    // shared cache budget in proportion to their real footprint, not
    // byte-exact accounting.  The hash-consed pts pool dominates.
    std::size_t bytes = sizeof(*this);
    bytes += regBase_.capacity() * sizeof(std::uint32_t);
    bytes += ptsIdx_.capacity() * sizeof(std::uint32_t);
    bytes += repr_.capacity() * sizeof(std::uint32_t);
    for (const SparseBitSet &set : ptsPool_)
        bytes += set.byteSizeEstimate();
    for (const std::vector<std::uint32_t> &instances : funcInstances_)
        bytes += sizeof(instances) +
                 instances.capacity() * sizeof(std::uint32_t);
    // Red-black tree node overhead on top of the payload.
    bytes += callEdges_.size() *
             (sizeof(std::tuple<std::uint32_t, InstrId, FuncId>) +
              sizeof(std::uint32_t) + 48);
    for (const ContextInstance &ctx : contexts)
        bytes += sizeof(ctx) + ctx.chain.size() * sizeof(InstrId);
    return bytes;
}

std::uint32_t
AndersenResult::nodeOf(std::uint32_t ctx, ir::Reg reg) const
{
    OHA_ASSERT(ctx < regBase_.size());
    return regBase_[ctx] + reg;
}

const SparseBitSet &
AndersenResult::pts(std::uint32_t ctx, ir::Reg reg) const
{
    const std::uint32_t node = repr_[nodeOf(ctx, reg)];
    return ptsPool_[ptsIdx_[node]];
}

const SparseBitSet &
AndersenResult::ptsAllContexts(FuncId func, ir::Reg reg) const
{
    const auto &instances = instancesOf(func);
    // Single-instance functions (every function in CI mode) need no
    // flattening: serve the hash-consed set directly.
    if (instances.size() == 1)
        return pts(instances.front(), reg);

    const std::uint64_t key =
        (static_cast<std::uint64_t>(func) << 32) | reg;
    std::lock_guard<std::mutex> lock(cache_->mutex);
    auto it = cache_->flat.find(key);
    if (it == cache_->flat.end()) {
        SparseBitSet out;
        for (std::uint32_t ctx : instances)
            out.unionWith(pts(ctx, reg));
        it = cache_->flat.emplace(key, std::move(out)).first;
    }
    return it->second;
}

const SparseBitSet &
AndersenResult::pointerTargets(InstrId instr) const
{
    const ir::Instruction &ins = module_->instr(instr);
    OHA_ASSERT(ins.a != ir::kNoReg, "instruction has no pointer operand");
    return ptsAllContexts(ins.func, ins.a);
}

std::vector<FuncId>
AndersenResult::icallTargets(InstrId instr) const
{
    const ir::Instruction &ins = module_->instr(instr);
    OHA_ASSERT(ins.op == ir::Opcode::ICall);
    std::vector<FuncId> out;
    ptsAllContexts(ins.func, ins.a).forEach([&](CellId cell) {
        if (memory.isFunctionCell(cell))
            out.push_back(memory.functionOfCell(cell));
    });
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

const std::vector<std::uint32_t> &
AndersenResult::instancesOf(FuncId func) const
{
    OHA_ASSERT(func < funcInstances_.size());
    return funcInstances_[func];
}

std::uint32_t
AndersenResult::calleeInstance(std::uint32_t ctx, InstrId site,
                               FuncId callee) const
{
    auto it = callEdges_.find({ctx, site, callee});
    return it == callEdges_.end() ? static_cast<std::uint32_t>(-1)
                                  : it->second;
}

double
AndersenResult::aliasRate(const ir::Module &module,
                          const inv::InvariantSet *filter) const
{
    std::vector<SparseBitSet> loads;
    std::vector<SparseBitSet> stores;
    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        const ir::Instruction &ins = module.instr(id);
        if (filter && !filter->blockVisited(ins.block))
            continue;
        if (ins.op == ir::Opcode::Load)
            loads.push_back(pointerTargets(id));
        else if (ins.op == ir::Opcode::Store)
            stores.push_back(pointerTargets(id));
    }
    if (loads.empty() || stores.empty())
        return 0.0;
    std::uint64_t aliasing = 0;
    for (const auto &load : loads)
        for (const auto &store : stores)
            aliasing += load.intersects(store);
    return static_cast<double>(aliasing) /
           (static_cast<double>(loads.size()) *
            static_cast<double>(stores.size()));
}

// ---------------------------------------------------------------------
// Solver
// ---------------------------------------------------------------------

/** Internal constraint-graph builder and worklist solver. */
class AndersenSolver
{
  public:
    AndersenSolver(const ir::Module &module, const AndersenOptions &options,
                   const AndersenResult *ciPrepass)
        : module_(module), options_(options), ciPrepass_(ciPrepass),
          useDelta_(!options.referenceSolver)
    {}

    AndersenResult run();
    AndersenResult resolveIncremental(const IncrementalInput &input,
                                      bool *usedIncremental);

  private:
    struct GepCons
    {
        std::uint32_t dest;
        std::int64_t delta;
        bool variable;
    };

    struct IcallCons
    {
        std::uint32_t ctx;
        const ir::Instruction *instr;
    };

    // -- construction ------------------------------------------------
    bool blockLive(BlockId block) const;
    bool contextObserved(const inv::CallContext &chain) const;
    std::uint32_t makeInstance(FuncId func, inv::CallContext chain,
                               std::uint32_t parent, InstrId site,
                               bool fallback);
    std::uint32_t fallbackInstance(FuncId func);
    std::vector<FuncId> staticCallees(std::uint32_t ctx,
                                      const ir::Instruction &ins) const;
    bool buildContexts();
    void allocateNodes();
    void generateConstraints();
    void connectCall(std::uint32_t callerCtx, const ir::Instruction &ins,
                     std::uint32_t calleeCtx);

    // -- solving -----------------------------------------------------
    std::uint32_t find(std::uint32_t node) { return uf_.find(node); }
    void push(std::uint32_t node);
    void addCopyEdge(std::uint32_t from, std::uint32_t to);
    void mergeNodes(std::uint32_t a, std::uint32_t b);
    void hvn();
    void offlineReduce();
    void collapseSccs();
    void solve();
    void solveWavefront();
    void rebuildSchedule();
    std::size_t effectiveSolverThreads() const;
    void resolveIcallTarget(const IcallCons &icall, CellId cell);
    AndersenResult assembleResult();

    std::uint32_t
    regNode(std::uint32_t ctx, ir::Reg reg) const
    {
        return regBase_[ctx] + reg;
    }

    std::uint32_t
    retNode(std::uint32_t ctx) const
    {
        const FuncId func = contexts_[ctx].func;
        return regBase_[ctx] + module_.function(func)->numRegs();
    }

    const ir::Module &module_;
    const AndersenOptions &options_;
    const AndersenResult *ciPrepass_;

    MemoryModel memory_;
    std::vector<ContextInstance> contexts_;
    std::vector<std::vector<std::uint32_t>> funcInstances_;
    std::map<std::pair<FuncId, inv::CallContext>, std::uint32_t> instanceKey_;
    std::vector<std::uint32_t> fallback_;
    std::map<std::tuple<std::uint32_t, InstrId, FuncId>, std::uint32_t>
        callEdges_;
    /** (allocSite, ctx) -> abstract object. */
    std::map<std::pair<InstrId, std::uint32_t>, AbsObjectId> allocObjects_;
    std::vector<AbsObjectId> globalObjects_;
    std::vector<AbsObjectId> funcObjects_;

    std::vector<std::uint32_t> regBase_;
    std::uint32_t numNodes_ = 0;

    std::vector<SparseBitSet> pts_;
    std::vector<SparseBitSet> succs_;
    std::vector<std::vector<std::uint32_t>> loadCons_;
    std::vector<std::vector<std::uint32_t>> storeCons_;
    std::vector<std::vector<GepCons>> gepCons_;
    std::vector<std::vector<IcallCons>> icallCons_;
    /** Icall sites already connected to a resolved callee. */
    std::set<std::pair<InstrId, FuncId>> icallConnected_;
    /** Functions appearing in any Spawn (for Join constraints). */
    std::set<FuncId> spawnedFuncs_;

    UnionFind uf_;
    std::deque<std::uint32_t> worklist_;
    std::vector<bool> inWorklist_;
    std::uint64_t workUnits_ = 0;
    bool budgetExceeded_ = false;

    // -- wavefront delta-propagation state (unused when
    //    referenceSolver) ---------------------------------------------
    /** Whether to run the wavefront delta solver (production) or the
     *  FIFO full-propagation reference path. */
    bool useDelta_ = true;
    /** Bits added to pts_[u] since u last fired. */
    std::vector<SparseBitSet> delta_;
    bool seeded_ = false;
    /** Nodes with (possibly) pending deltas, deduplicated through
     *  inWorklist_; drained and re-filtered at every wave. */
    std::vector<std::uint32_t> readyList_;
    /** Longest-path topological level of each representative over the
     *  condensed copy DAG; valid while !graphDirty_. */
    std::vector<std::uint32_t> level_;
    /** A merge or a level-order-violating new edge invalidated
     *  level_; rebuildSchedule() clears it. */
    bool graphDirty_ = true;
    /** Lazily created wave pool — tiny solves never spawn threads. */
    std::unique_ptr<support::ThreadPool> pool_;
    // Wave-shape counters, surfaced via AndersenResult and the
    // process-wide SolverStats accumulator.
    std::uint64_t waves_ = 0;
    std::uint64_t cycleMerges_ = 0;
    double waveImbalance_ = 0.0;
};

namespace {

/** Process-wide SolverStats accumulator (andersenSolverStats()). */
struct GlobalSolverStats
{
    std::mutex mutex;
    SolverStats value;
};

GlobalSolverStats &
globalSolverStats()
{
    static GlobalSolverStats stats;
    return stats;
}

} // namespace

SolverStats
andersenSolverStats()
{
    GlobalSolverStats &g = globalSolverStats();
    std::lock_guard<std::mutex> lock(g.mutex);
    return g.value;
}

void
resetAndersenSolverStats()
{
    GlobalSolverStats &g = globalSolverStats();
    std::lock_guard<std::mutex> lock(g.mutex);
    g.value = SolverStats{};
}

bool
AndersenSolver::blockLive(BlockId block) const
{
    return !options_.invariants || options_.invariants->blockVisited(block);
}

bool
AndersenSolver::contextObserved(const inv::CallContext &chain) const
{
    if (!options_.invariants || !options_.invariants->hasCallContexts)
        return true;
    return options_.invariants->callContexts.count(chain) > 0;
}

std::uint32_t
AndersenSolver::makeInstance(FuncId func, inv::CallContext chain,
                             std::uint32_t parent, InstrId site,
                             bool fallback)
{
    ContextInstance inst;
    inst.id = static_cast<std::uint32_t>(contexts_.size());
    inst.func = func;
    inst.chain = std::move(chain);
    inst.parent = parent;
    inst.callSite = site;
    inst.fallback = fallback;
    contexts_.push_back(inst);
    funcInstances_[func].push_back(inst.id);
    instanceKey_.emplace(std::make_pair(func, contexts_.back().chain),
                         inst.id);
    return inst.id;
}

std::uint32_t
AndersenSolver::fallbackInstance(FuncId func)
{
    if (fallback_[func] != static_cast<std::uint32_t>(-1))
        return fallback_[func];
    const std::uint32_t inst = makeInstance(
        func, inv::CallContext{kFallbackMarker}, 0, kNoInstr, true);
    fallback_[func] = inst;
    return inst;
}

std::vector<FuncId>
AndersenSolver::staticCallees(std::uint32_t ctx,
                              const ir::Instruction &ins) const
{
    (void)ctx;
    switch (ins.op) {
      case ir::Opcode::Call:
      case ir::Opcode::Spawn:
        return {ins.callee};
      case ir::Opcode::ICall: {
        std::vector<FuncId> out;
        if (options_.invariants) {
            // Predicated: likely callee sets resolve the indirection.
            auto it = options_.invariants->calleeSets.find(ins.id);
            if (it != options_.invariants->calleeSets.end())
                out.assign(it->second.begin(), it->second.end());
        } else if (ciPrepass_) {
            // Sound CS: resolved by the CI pre-pass.
            const auto targets = ciPrepass_->icallTargets(ins.id);
            out.assign(targets.begin(), targets.end());
        }
        // Sound CI resolves icalls on the fly during solving instead.
        for (FuncId f : out) {
            if (module_.function(f)->numParams() != ins.args.size())
                OHA_WARN("icall target arity mismatch (func %u)", f);
        }
        return out;
      }
      default:
        return {};
    }
}

bool
AndersenSolver::buildContexts()
{
    const std::size_t numFuncs = module_.numFunctions();
    funcInstances_.assign(numFuncs, {});
    fallback_.assign(numFuncs, static_cast<std::uint32_t>(-1));

    if (!options_.contextSensitive) {
        // CI: exactly one instance per function, empty chain.
        for (FuncId f = 0; f < numFuncs; ++f)
            makeInstance(f, {}, 0, kNoInstr, false);
        // Call edges are still recorded so clients can navigate.
        for (FuncId f = 0; f < numFuncs; ++f) {
            for (const auto &block : module_.function(f)->blocks()) {
                if (!blockLive(block->id()))
                    continue;
                for (const ir::Instruction &ins : block->instructions()) {
                    for (FuncId callee : staticCallees(f, ins))
                        callEdges_[{f, ins.id, callee}] = callee;
                }
            }
        }
        return true;
    }

    // CS: BFS expansion from main (and from every spawn site).
    struct WorkItem
    {
        std::uint32_t ctx;
    };
    std::deque<WorkItem> work;

    const FuncId mainId = module_.entryFunction()->id();
    work.push_back({makeInstance(mainId, {}, 0, kNoInstr, false)});

    // Track per-instance ancestor functions for recursion folding.
    auto ancestorWithFunc = [&](std::uint32_t ctx,
                                FuncId func) -> std::uint32_t {
        std::uint32_t cur = ctx;
        while (true) {
            if (contexts_[cur].func == func)
                return cur;
            if (contexts_[cur].chain.empty() || contexts_[cur].fallback)
                return static_cast<std::uint32_t>(-1);
            cur = contexts_[cur].parent;
        }
    };

    std::set<std::uint32_t> expanded;
    while (!work.empty()) {
        if (contexts_.size() > options_.maxContexts) {
            budgetExceeded_ = true;
            return false;
        }
        const std::uint32_t ctx = work.front().ctx;
        work.pop_front();
        if (!expanded.insert(ctx).second)
            continue;

        const ContextInstance inst = contexts_[ctx];
        const ir::Function *func = module_.function(inst.func);
        for (const auto &block : func->blocks()) {
            if (!blockLive(block->id()))
                continue;
            for (const ir::Instruction &ins : block->instructions()) {
                if (ins.op == ir::Opcode::Spawn) {
                    // Thread roots restart the context chain, matching
                    // the profiler's per-thread call stacks.
                    const FuncId callee = ins.callee;
                    auto it = instanceKey_.find({callee, {}});
                    std::uint32_t calleeCtx;
                    if (it != instanceKey_.end()) {
                        calleeCtx = it->second;
                    } else {
                        calleeCtx = makeInstance(callee, {}, ctx, ins.id,
                                                 false);
                        work.push_back({calleeCtx});
                    }
                    callEdges_[{ctx, ins.id, callee}] = calleeCtx;
                    continue;
                }
                if (ins.op != ir::Opcode::Call &&
                    ins.op != ir::Opcode::ICall) {
                    continue;
                }
                for (FuncId callee : staticCallees(ctx, ins)) {
                    // Recursive call: connect to the enclosing
                    // instance instead of cloning (Section 5.1.2).
                    const std::uint32_t anc = ancestorWithFunc(ctx, callee);
                    if (anc != static_cast<std::uint32_t>(-1)) {
                        callEdges_[{ctx, ins.id, callee}] = anc;
                        continue;
                    }
                    if (inst.fallback ||
                        inst.chain.size() >= options_.maxContextDepth) {
                        const std::uint32_t fb = fallbackInstance(callee);
                        callEdges_[{ctx, ins.id, callee}] = fb;
                        work.push_back({fb});
                        continue;
                    }
                    inv::CallContext chain = inst.chain;
                    chain.push_back(ins.id);
                    if (!contextObserved(chain)) {
                        // Likely-unused call context: prune entirely
                        // (Figure 3, right).
                        continue;
                    }
                    auto it = instanceKey_.find({callee, chain});
                    std::uint32_t calleeCtx;
                    if (it != instanceKey_.end()) {
                        calleeCtx = it->second;
                    } else {
                        calleeCtx = makeInstance(callee, std::move(chain),
                                                 ctx, ins.id, false);
                        work.push_back({calleeCtx});
                    }
                    callEdges_[{ctx, ins.id, callee}] = calleeCtx;
                }
            }
        }
    }
    return true;
}

void
AndersenSolver::allocateNodes()
{
    // Cells: globals, then functions, then per-context alloc sites.
    for (std::uint32_t g = 0; g < module_.globals().size(); ++g) {
        globalObjects_.push_back(memory_.addObject(
            AbsObjectKind::Global, g, module_.globals()[g].size));
    }
    for (FuncId f = 0; f < module_.numFunctions(); ++f) {
        funcObjects_.push_back(
            memory_.addObject(AbsObjectKind::Function, f, 1));
    }
    for (const ContextInstance &inst : contexts_) {
        const ir::Function *func = module_.function(inst.func);
        for (const auto &block : func->blocks()) {
            if (!blockLive(block->id()))
                continue;
            for (const ir::Instruction &ins : block->instructions()) {
                if (ins.op != ir::Opcode::Alloc)
                    continue;
                allocObjects_[{ins.id, inst.id}] = memory_.addObject(
                    AbsObjectKind::AllocSite, ins.id,
                    std::max<std::uint32_t>(
                        1, static_cast<std::uint32_t>(ins.imm)),
                    inst.id);
            }
        }
    }

    // Node ids: cells first, then per-instance register blocks
    // (numRegs + 1, the extra slot being the return-value node).
    regBase_.resize(contexts_.size());
    std::uint32_t next = memory_.numCells();
    for (const ContextInstance &inst : contexts_) {
        regBase_[inst.id] = next;
        next += module_.function(inst.func)->numRegs() + 1;
    }
    numNodes_ = next;

    pts_.resize(numNodes_);
    succs_.resize(numNodes_);
    loadCons_.resize(numNodes_);
    storeCons_.resize(numNodes_);
    gepCons_.resize(numNodes_);
    icallCons_.resize(numNodes_);
    uf_.reset(numNodes_);
    inWorklist_.assign(numNodes_, false);
    if (useDelta_)
        delta_.resize(numNodes_);
}

void
AndersenSolver::connectCall(std::uint32_t callerCtx,
                            const ir::Instruction &ins,
                            std::uint32_t calleeCtx)
{
    const ir::Function *callee =
        module_.function(contexts_[calleeCtx].func);
    const std::size_t n =
        std::min<std::size_t>(ins.args.size(), callee->numParams());
    for (std::size_t i = 0; i < n; ++i) {
        addCopyEdge(regNode(callerCtx, ins.args[i]),
                    regNode(calleeCtx, static_cast<ir::Reg>(i)));
    }
    if (ins.dest != ir::kNoReg && ins.op != ir::Opcode::Spawn) {
        addCopyEdge(retNode(calleeCtx), regNode(callerCtx, ins.dest));
    }
}

void
AndersenSolver::generateConstraints()
{
    using ir::Opcode;

    // Collect spawned functions first (Join constraints need them).
    for (InstrId id = 0; id < module_.numInstrs(); ++id) {
        const ir::Instruction &ins = module_.instr(id);
        if (ins.op == Opcode::Spawn && blockLive(ins.block))
            spawnedFuncs_.insert(ins.callee);
    }

    for (const ContextInstance &inst : contexts_) {
        const std::uint32_t ctx = inst.id;
        const ir::Function *func = module_.function(inst.func);
        for (const auto &block : func->blocks()) {
            if (!blockLive(block->id()))
                continue;
            for (const ir::Instruction &ins : block->instructions()) {
                switch (ins.op) {
                  case Opcode::Alloc: {
                    const AbsObjectId obj = allocObjects_.at({ins.id, ctx});
                    pts_[regNode(ctx, ins.dest)].insert(
                        memory_.cellOf(obj, 0));
                    break;
                  }
                  case Opcode::GlobalAddr:
                    pts_[regNode(ctx, ins.dest)].insert(memory_.cellOf(
                        globalObjects_[ins.globalId], 0));
                    break;
                  case Opcode::FuncAddr:
                    pts_[regNode(ctx, ins.dest)].insert(
                        memory_.cellOf(funcObjects_[ins.callee], 0));
                    break;
                  case Opcode::Assign:
                    addCopyEdge(regNode(ctx, ins.a),
                                regNode(ctx, ins.dest));
                    break;
                  case Opcode::Gep:
                    gepCons_[regNode(ctx, ins.a)].push_back(
                        {regNode(ctx, ins.dest), ins.imm,
                         ins.b != ir::kNoReg});
                    break;
                  case Opcode::Load:
                    loadCons_[regNode(ctx, ins.a)].push_back(
                        regNode(ctx, ins.dest));
                    break;
                  case Opcode::Store:
                    storeCons_[regNode(ctx, ins.a)].push_back(
                        regNode(ctx, ins.b));
                    break;
                  case Opcode::Call:
                  case Opcode::Spawn:
                  case Opcode::ICall: {
                    bool connectedAny = false;
                    for (FuncId callee : staticCallees(ctx, ins)) {
                        auto it = callEdges_.find({ctx, ins.id, callee});
                        if (it == callEdges_.end())
                            continue; // pruned context
                        connectCall(ctx, ins, it->second);
                        connectedAny = true;
                        icallConnected_.insert({ins.id, callee});
                    }
                    (void)connectedAny;
                    if (ins.op == Opcode::ICall && !ciPrepass_ &&
                        !options_.contextSensitive) {
                        // CI: resolve on the fly as pts(fp) grows —
                        // both in the sound analysis and in predicated
                        // runs whose invariant set carries no likely
                        // callee set for this site (e.g. the Figure 11
                        // ablation with only LUC assumed).
                        const bool coveredByInvariant =
                            options_.invariants &&
                            options_.invariants->calleeSets.count(ins.id);
                        if (!coveredByInvariant) {
                            icallCons_[regNode(ctx, ins.a)].push_back(
                                {ctx, &ins});
                        }
                    }
                    break;
                  }
                  case Opcode::Ret:
                    if (ins.a != ir::kNoReg)
                        addCopyEdge(regNode(ctx, ins.a), retNode(ctx));
                    break;
                  case Opcode::Join:
                    // The joined thread's return value flows into the
                    // join destination; thread identity is resolved
                    // conservatively over every spawned function.
                    if (ins.dest != ir::kNoReg) {
                        for (FuncId f : spawnedFuncs_) {
                            for (std::uint32_t fc : funcInstances_[f]) {
                                addCopyEdge(retNode(fc),
                                            regNode(ctx, ins.dest));
                            }
                        }
                    }
                    break;
                  default:
                    break;
                }
            }
        }
    }
}

void
AndersenSolver::push(std::uint32_t node)
{
    node = find(node);
    if (inWorklist_[node])
        return;
    inWorklist_[node] = true;
    if (useDelta_)
        readyList_.push_back(node);
    else
        worklist_.push_back(node);
}

void
AndersenSolver::addCopyEdge(std::uint32_t from, std::uint32_t to)
{
    from = find(from);
    to = find(to);
    if (from == to)
        return;
    if (!succs_[from].insert(to))
        return;
    ++workUnits_;
    // The wave schedule stays valid as long as every edge climbs in
    // level; a back- or same-level edge forces a re-level (and, if it
    // closed a cycle, a collapse) before the next wave fires.
    if (useDelta_ && !graphDirty_ && level_[to] <= level_[from])
        graphDirty_ = true;
    if (useDelta_) {
        // A new edge must carry the source's full current set — the
        // destination has seen none of it.  The gained bits land in
        // the destination's delta for onward propagation.
        if (pts_[to].unionWithDiff(pts_[from], delta_[to]))
            push(to);
    } else {
        if (pts_[to].unionWith(pts_[from]))
            push(to);
    }
}

void
AndersenSolver::mergeNodes(std::uint32_t a, std::uint32_t b)
{
    a = find(a);
    b = find(b);
    if (a == b)
        return;
    // Deterministic representative: the minimum member id survives.
    // Cycle-collapse outcomes are then a pure function of the graph —
    // independent of merge discovery order and union-find rank
    // evolution — which is what lets parallel and serial wave solves
    // agree on node naming byte for byte.
    const std::uint32_t keep = std::min(a, b);
    const std::uint32_t drop = keep == a ? b : a;
    uf_.mergeInto(keep, drop);
    graphDirty_ = true;

    // Quiescent merge: both members sit at the fixpoint with equal
    // sets and nothing pending (the usual case for cycles among
    // incremental-solve seeded nodes).  The merged node satisfies the
    // union of their constraint lists with that same set already, so
    // it need not re-fire — without this, online collapse during an
    // incremental solve would re-propagate full seeded sets.
    const bool quiescent = useDelta_ && delta_[keep].empty() &&
                           delta_[drop].empty() &&
                           pts_[keep] == pts_[drop];

    pts_[keep].unionWith(pts_[drop]);
    pts_[drop].clear();
    if (useDelta_) {
        if (!quiescent) {
            // Merges are rare; reprocess the merged node in full so
            // its combined constraint lists all see the combined set.
            delta_[keep] = pts_[keep];
        }
        delta_[drop].clear();
    }
    succs_[keep].unionWith(succs_[drop]);
    succs_[drop].clear();
    auto moveInto = [](auto &dst, auto &src) {
        dst.insert(dst.end(), src.begin(), src.end());
        src.clear();
        src.shrink_to_fit();
    };
    moveInto(loadCons_[keep], loadCons_[drop]);
    moveInto(storeCons_[keep], storeCons_[drop]);
    moveInto(gepCons_[keep], gepCons_[drop]);
    moveInto(icallCons_[keep], icallCons_[drop]);
    if (!quiescent)
        push(keep);
}

void
AndersenSolver::hvn()
{
    // Offline variable substitution (HVN).  Nodes whose value is
    // fully determined by identical sets of copy-predecessor labels —
    // and that have no address-taken seeds and are not targets of
    // load/gep constraints — are pointer-equivalent and merged.
    const std::uint32_t n = numNodes_;

    std::vector<bool> indirect(n, false);
    // Cell nodes can be written through stores; load destinations and
    // gep destinations derive pts indirectly.
    for (std::uint32_t i = 0; i < memory_.numCells(); ++i)
        indirect[i] = true;
    for (std::uint32_t u = 0; u < n; ++u) {
        for (std::uint32_t dst : loadCons_[u])
            indirect[dst] = true;
        for (const GepCons &gep : gepCons_[u])
            indirect[gep.dest] = true;
        if (!icallCons_[u].empty())
            indirect[u] = true;
    }
    // Call-connected nodes acquire edges dynamically in sound CI mode;
    // keep icall argument flow conservative by marking params of
    // every function reachable via function pointers as indirect.
    for (std::uint32_t u = 0; u < n; ++u) {
        if (!pts_[u].empty())
            indirect[u] = true; // address-taken seeds
    }

    // Build predecessor lists from copy edges.
    std::vector<std::vector<std::uint32_t>> preds(n);
    for (std::uint32_t u = 0; u < n; ++u)
        succs_[u].forEach(
            [&](std::uint32_t v) { preds[v].push_back(u); });

    // Iterative label refinement to a fixpoint (equivalent to the
    // topological pass on the offline SCC DAG for our acyclic builder
    // graphs; cyclic parts simply converge).
    std::vector<std::uint64_t> label(n);
    std::uint64_t nextFresh = 1;
    for (std::uint32_t u = 0; u < n; ++u)
        label[u] = indirect[u] ? nextFresh++ : 0;

    for (int iter = 0; iter < 8; ++iter) {
        bool changed = false;
        std::unordered_map<std::uint64_t, std::uint64_t> dedup;
        std::vector<std::uint64_t> next(n);
        for (std::uint32_t u = 0; u < n; ++u) {
            if (indirect[u]) {
                next[u] = label[u];
                continue;
            }
            // Hash the multiset of predecessor labels.
            std::vector<std::uint64_t> in;
            in.reserve(preds[u].size());
            for (std::uint32_t p : preds[u])
                in.push_back(label[p]);
            std::sort(in.begin(), in.end());
            in.erase(std::unique(in.begin(), in.end()), in.end());
            std::uint64_t h = 0x9e3779b97f4a7c15ULL + in.size();
            for (std::uint64_t l : in) {
                h ^= l + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
            }
            if (in.empty())
                h = 0; // never points to anything
            auto [it, inserted] = dedup.emplace(h, nextFresh);
            if (inserted)
                ++nextFresh;
            next[u] = it->second;
            if (next[u] != label[u])
                changed = true;
        }
        label = std::move(next);
        if (!changed)
            break;
    }

    // Merge direct nodes with equal labels.
    std::unordered_map<std::uint64_t, std::uint32_t> leader;
    for (std::uint32_t u = 0; u < n; ++u) {
        if (indirect[u] || label[u] == 0)
            continue;
        auto [it, inserted] = leader.emplace(label[u], u);
        if (!inserted)
            mergeNodes(it->second, u);
        ++workUnits_;
    }
}

void
AndersenSolver::offlineReduce()
{
    // Offline constraint reduction, run once between constraint
    // generation and solving: collapse copy-graph cycles that already
    // exist (their members are pointer-equivalent by construction),
    // then rewrite every constraint to union-find representatives and
    // deduplicate.  The online solver then walks a strictly smaller
    // graph and never revisits a constraint HVN/SCC merging proved
    // redundant.
    collapseSccs();

    for (std::uint32_t u = 0; u < numNodes_; ++u) {
        if (find(u) != u)
            continue;
        SparseBitSet canonSuccs;
        succs_[u].forEach([&](std::uint32_t v) {
            v = find(v);
            if (v != u)
                canonSuccs.insert(v);
        });
        succs_[u].swap(canonSuccs);

        auto canon = [&](std::vector<std::uint32_t> &list) {
            for (std::uint32_t &x : list)
                x = find(x);
            std::sort(list.begin(), list.end());
            list.erase(std::unique(list.begin(), list.end()), list.end());
        };
        canon(loadCons_[u]);
        canon(storeCons_[u]);

        auto &geps = gepCons_[u];
        for (GepCons &g : geps)
            g.dest = find(g.dest);
        std::sort(geps.begin(), geps.end(),
                  [](const GepCons &x, const GepCons &y) {
                      return std::tie(x.dest, x.delta, x.variable) <
                             std::tie(y.dest, y.delta, y.variable);
                  });
        geps.erase(std::unique(geps.begin(), geps.end(),
                               [](const GepCons &x, const GepCons &y) {
                                   return x.dest == y.dest &&
                                          x.delta == y.delta &&
                                          x.variable == y.variable;
                               }),
                   geps.end());
    }
}

void
AndersenSolver::collapseSccs()
{
    // Iterative Tarjan over representative copy edges; collapse every
    // multi-node SCC (online cycle detection in the LCD/HCD spirit).
    const std::uint32_t n = numNodes_;
    std::vector<std::uint32_t> index(n, 0), low(n, 0);
    std::vector<bool> onStack(n, false);
    std::vector<std::uint32_t> stack;
    std::uint32_t counter = 1;

    struct DfsFrame
    {
        std::uint32_t node;
        std::vector<std::uint32_t> succ;
        std::size_t next;
    };

    std::vector<DfsFrame> dfs;
    for (std::uint32_t root = 0; root < n; ++root) {
        if (find(root) != root || index[root] != 0)
            continue;
        dfs.push_back({root, {}, 0});
        index[root] = low[root] = counter++;
        stack.push_back(root);
        onStack[root] = true;
        succs_[root].forEach([&](std::uint32_t v) {
            dfs.back().succ.push_back(find(v));
        });

        while (!dfs.empty()) {
            DfsFrame &frame = dfs.back();
            if (frame.next < frame.succ.size()) {
                const std::uint32_t v = find(frame.succ[frame.next++]);
                if (index[v] == 0) {
                    index[v] = low[v] = counter++;
                    stack.push_back(v);
                    onStack[v] = true;
                    dfs.push_back({v, {}, 0});
                    succs_[v].forEach([&](std::uint32_t w) {
                        dfs.back().succ.push_back(find(w));
                    });
                } else if (onStack[v]) {
                    low[frame.node] = std::min(low[frame.node], index[v]);
                }
            } else {
                const std::uint32_t u = frame.node;
                if (low[u] == index[u]) {
                    std::vector<std::uint32_t> scc;
                    while (true) {
                        const std::uint32_t w = stack.back();
                        stack.pop_back();
                        onStack[w] = false;
                        scc.push_back(w);
                        if (w == u)
                            break;
                    }
                    // Collapse to the minimum member id (mergeNodes
                    // keeps the smaller representative, so any merge
                    // order lands on the same survivor).
                    if (scc.size() > 1) {
                        cycleMerges_ += scc.size() - 1;
                        for (std::size_t i = 1; i < scc.size(); ++i)
                            mergeNodes(scc[0], scc[i]);
                    }
                }
                dfs.pop_back();
                if (!dfs.empty()) {
                    low[dfs.back().node] =
                        std::min(low[dfs.back().node], low[u]);
                }
            }
        }
    }
}

void
AndersenSolver::solve()
{
    if (useDelta_) {
        solveWavefront();
        return;
    }

    for (std::uint32_t u = 0; u < numNodes_; ++u) {
        if (find(u) == u && !pts_[u].empty())
            push(u);
    }

    std::uint64_t pops = 0;
    const std::uint64_t collapseEvery =
        options_.cycleCollapse ? std::max<std::uint64_t>(numNodes_, 512)
                               : ~0ULL;

    while (!worklist_.empty()) {
        std::uint32_t u = worklist_.front();
        worklist_.pop_front();
        inWorklist_[u] = false;
        if (find(u) != u)
            continue;
        ++pops;
        ++workUnits_;

        if (pops % collapseEvery == 0)
            collapseSccs();

        // Gep constraints: dest ⊇ shift(pts(u)).
        for (const GepCons &gep : gepCons_[u]) {
            SparseBitSet shifted;
            pts_[u].forEach([&](CellId cell) {
                if (memory_.isFunctionCell(cell)) {
                    shifted.insert(cell);
                    return;
                }
                if (gep.variable) {
                    const AbsObjectId obj = memory_.objectOfCell(cell);
                    const AbsObject &o = memory_.object(obj);
                    for (std::uint32_t f = 0; f < o.size; ++f)
                        shifted.insert(o.baseCell + f);
                } else {
                    const CellId target = memory_.shiftCell(cell, gep.delta);
                    if (target != kNoCell)
                        shifted.insert(target);
                }
            });
            const std::uint32_t dest = find(gep.dest);
            ++workUnits_;
            if (pts_[dest].unionWith(shifted))
                push(dest);
        }

        // Load constraints: dest ⊇ *u.
        for (std::uint32_t dst : loadCons_[u]) {
            pts_[u].forEach([&](CellId cell) {
                addCopyEdge(cell, dst);
            });
        }

        // Store constraints: *u ⊇ src.
        for (std::uint32_t src : storeCons_[u]) {
            pts_[u].forEach([&](CellId cell) {
                addCopyEdge(src, cell);
            });
        }

        // On-the-fly icall resolution (sound CI).
        for (const IcallCons &icall : icallCons_[u]) {
            pts_[u].forEach(
                [&](CellId cell) { resolveIcallTarget(icall, cell); });
        }

        // Copy edges.
        SparseBitSet snapshot = succs_[u];
        snapshot.forEach([&](std::uint32_t v) {
            v = find(v);
            if (v == u)
                return;
            ++workUnits_;
            if (pts_[v].unionWith(pts_[u]))
                push(v);
        });
    }
}

std::size_t
AndersenSolver::effectiveSolverThreads() const
{
    if (options_.solverThreads > 0) {
        return support::clampCount("solverThreads",
                                   options_.solverThreads, 1,
                                   support::maxSaneThreads());
    }
    return support::configuredThreads();
}

void
AndersenSolver::rebuildSchedule()
{
    // Canonicalize the copy graph to union-find representatives, then
    // assign longest-path topological levels (Kahn).  Leveling needs
    // acyclicity: when load/store edges materialized a cycle
    // mid-solve, collapse it to its minimum-id member and re-level.
    // From-scratch solves arrive pre-condensed by offlineReduce, so
    // the collapse branch runs only for genuinely new cycles.
    for (int attempt = 0;; ++attempt) {
        OHA_ASSERT(attempt < 2, "copy graph still cyclic after collapse");
        std::vector<std::uint32_t> indeg(numNodes_, 0);
        std::size_t reps = 0;
        for (std::uint32_t u = 0; u < numNodes_; ++u) {
            if (find(u) != u)
                continue;
            ++reps;
            SparseBitSet canon;
            succs_[u].forEach([&](std::uint32_t v) {
                v = find(v);
                if (v != u)
                    canon.insert(v);
            });
            succs_[u].swap(canon);
            succs_[u].forEach([&](std::uint32_t v) { ++indeg[v]; });
        }
        level_.assign(numNodes_, 0);
        std::vector<std::uint32_t> order;
        order.reserve(reps);
        for (std::uint32_t u = 0; u < numNodes_; ++u) {
            if (find(u) == u && indeg[u] == 0)
                order.push_back(u);
        }
        for (std::size_t head = 0; head < order.size(); ++head) {
            const std::uint32_t u = order[head];
            succs_[u].forEach([&](std::uint32_t v) {
                level_[v] = std::max(level_[v], level_[u] + 1);
                if (--indeg[v] == 0)
                    order.push_back(v);
            });
        }
        if (order.size() == reps)
            break;
        collapseSccs();
    }
    graphDirty_ = false;
}

void
AndersenSolver::solveWavefront()
{
    // Wavefront-parallel difference propagation.  Ready nodes are
    // grouped by topological level of the condensed copy DAG and the
    // minimum level fires as one wave: because every copy edge climbs
    // strictly in level, no firing node is another's copy target, so
    // each target's unions and each firer's gep shifts run as
    // exclusive-writer tasks on the pool.  All shared-state mutation
    // (new edges, icall linkage, delta consumption, counters) happens
    // serially between waves in node-id order — results are therefore
    // byte-identical for any thread count, grain, or task shuffle,
    // and match the reference solver's fixpoint.
    if (!seeded_) {
        seeded_ = true;
        for (std::uint32_t u = 0; u < numNodes_; ++u) {
            if (find(u) == u && !pts_[u].empty()) {
                delta_[u] = pts_[u];
                push(u);
            }
        }
    }

    const std::size_t threads = effectiveSolverThreads();
    // Waves narrower than this run inline: spawning/waking workers
    // costs more than the unions they would share.
    constexpr std::size_t kParallelCutoff = 32;

    std::uint64_t shuffleState = options_.waveShuffleSeed;
    auto nextRand = [&shuffleState] {
        shuffleState ^= shuffleState << 13;
        shuffleState ^= shuffleState >> 7;
        shuffleState ^= shuffleState << 17;
        return shuffleState;
    };

    // Per-wave scratch, hoisted so capacity persists across waves.
    std::vector<char> activeMark(numNodes_, 0);
    std::vector<std::uint32_t> active, batch, targets, taskOrder;
    std::vector<std::vector<std::uint32_t>> pulls(numNodes_);
    std::vector<char> targetChanged;
    std::vector<SparseBitSet> firedDelta;
    std::vector<std::vector<std::pair<std::uint32_t, SparseBitSet>>>
        gepOuts;
    std::vector<std::uint32_t> gepFirers;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> newEdges;
    std::vector<std::vector<std::uint32_t>> matPulls(numNodes_);
    std::vector<std::uint32_t> matTargets;
    std::vector<SparseBitSet> matOuts;

    while (!readyList_.empty()) {
        if (graphDirty_)
            rebuildSchedule();

        // Drain the ready list into the deduplicated active set of
        // representatives with pending deltas.
        active.clear();
        for (std::uint32_t raw : readyList_) {
            inWorklist_[raw] = false;
            const std::uint32_t u = find(raw);
            if (!delta_[u].empty() && !activeMark[u]) {
                activeMark[u] = 1;
                active.push_back(u);
            }
        }
        readyList_.clear();
        if (active.empty())
            break;
        std::sort(active.begin(), active.end());

        std::uint32_t minLevel = ~0u;
        for (std::uint32_t u : active)
            minLevel = std::min(minLevel, level_[u]);
        batch.clear();
        for (std::uint32_t u : active) {
            activeMark[u] = 0;
            if (level_[u] == minLevel)
                batch.push_back(u);
            else
                push(u); // deeper levels wait for a later wave
        }
        ++waves_;
        waveImbalance_ =
            std::max(waveImbalance_, static_cast<double>(active.size()) /
                                         static_cast<double>(batch.size()));

        // Pull lists: for every copy target of the batch, the ordered
        // list of firing predecessors whose deltas it absorbs.  Built
        // serially in batch id order, so each target's update sequence
        // is fixed regardless of how tasks land on threads.
        targets.clear();
        for (std::uint32_t u : batch) {
            succs_[u].forEach([&](std::uint32_t v) {
                v = find(v);
                if (v == u)
                    return;
                if (pulls[v].empty())
                    targets.push_back(v);
                pulls[v].push_back(u);
            });
        }
        gepFirers.clear();
        for (std::uint32_t u : batch) {
            if (!gepCons_[u].empty())
                gepFirers.push_back(u);
        }

        // Parallel phase: one task per copy target (exclusive writer
        // of its pts/delta) plus one per gep-bearing firer (writes
        // only its private output).  Reads — the batch's frozen
        // deltas and the memory model — are untouched until apply.
        const std::size_t numTasks = targets.size() + gepFirers.size();
        targetChanged.assign(targets.size(), 0);
        gepOuts.assign(gepFirers.size(), {});
        auto runTask = [&](std::size_t t) {
            if (t < targets.size()) {
                const std::uint32_t v = targets[t];
                bool gained = false;
                for (std::uint32_t p : pulls[v])
                    gained |= pts_[v].unionWithDiff(delta_[p], delta_[v]);
                targetChanged[t] = gained;
                return 0;
            }
            const std::size_t g = t - targets.size();
            const std::uint32_t u = gepFirers[g];
            gepOuts[g].reserve(gepCons_[u].size());
            for (const GepCons &gep : gepCons_[u]) {
                SparseBitSet shifted;
                delta_[u].forEach([&](CellId cell) {
                    if (memory_.isFunctionCell(cell)) {
                        shifted.insert(cell);
                        return;
                    }
                    if (gep.variable) {
                        const AbsObjectId obj = memory_.objectOfCell(cell);
                        const AbsObject &o = memory_.object(obj);
                        for (std::uint32_t f = 0; f < o.size; ++f)
                            shifted.insert(o.baseCell + f);
                    } else {
                        const CellId target =
                            memory_.shiftCell(cell, gep.delta);
                        if (target != kNoCell)
                            shifted.insert(target);
                    }
                });
                gepOuts[g].emplace_back(gep.dest, std::move(shifted));
            }
            return 0;
        };

        taskOrder.resize(numTasks);
        for (std::size_t i = 0; i < numTasks; ++i)
            taskOrder[i] = static_cast<std::uint32_t>(i);
        if (options_.waveShuffleSeed != 0) {
            for (std::size_t i = numTasks; i > 1; --i) {
                std::swap(taskOrder[i - 1],
                          taskOrder[nextRand() % i]);
            }
        }
        if (threads > 1 && numTasks >= kParallelCutoff) {
            if (!pool_)
                pool_ = std::make_unique<support::ThreadPool>(threads);
            const std::size_t grain = std::max<std::size_t>(
                1, numTasks / (pool_->numThreads() * 4));
            support::runBatchOn(
                *pool_, numTasks,
                [&](std::size_t i) { return runTask(taskOrder[i]); },
                grain);
        } else {
            for (std::size_t i = 0; i < numTasks; ++i)
                runTask(taskOrder[i]);
        }

        // Serial apply, in deterministic order.  The batch's deltas
        // are consumed first: anything the apply loops add back —
        // gep results, full-set transfer along a new edge — is a
        // fresh gain that re-queues its node.
        firedDelta.resize(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
            firedDelta[i].clear();
            firedDelta[i].swap(delta_[batch[i]]);
        }
        for (std::size_t t = 0; t < targets.size(); ++t) {
            workUnits_ += pulls[targets[t]].size();
            pulls[targets[t]].clear();
            if (targetChanged[t])
                push(targets[t]);
        }
        std::size_t gepIdx = 0;
        newEdges.clear();
        for (std::size_t i = 0; i < batch.size(); ++i) {
            const std::uint32_t u = batch[i];
            const SparseBitSet &d = firedDelta[i];
            ++workUnits_;
            if (!gepCons_[u].empty()) {
                for (auto &[destRaw, shifted] : gepOuts[gepIdx++]) {
                    const std::uint32_t dest = find(destRaw);
                    ++workUnits_;
                    if (pts_[dest].unionWithDiff(shifted, delta_[dest]))
                        push(dest);
                }
            }
            // Load/store constraints materialize copy edges.  Record
            // them here; the expensive part — carrying each new
            // source's full set across its edge — is staged below so
            // it can fan out.
            for (std::uint32_t dst : loadCons_[u])
                d.forEach([&](CellId cell) {
                    newEdges.emplace_back(cell, dst);
                });
            for (std::uint32_t src : storeCons_[u])
                d.forEach([&](CellId cell) {
                    newEdges.emplace_back(src, cell);
                });
            for (const IcallCons &icall : icallCons_[u]) {
                d.forEach([&](CellId cell) {
                    resolveIcallTarget(icall, cell);
                });
            }
        }

        // Deduplicate the recorded edges into the copy graph and
        // group the genuinely new ones by destination — all serial,
        // in recording order, so the grouping (and the workUnits
        // count) is a pure function of the batch.
        matTargets.clear();
        for (const auto &[fromRaw, toRaw] : newEdges) {
            const std::uint32_t from = find(fromRaw);
            const std::uint32_t to = find(toRaw);
            if (from == to)
                continue;
            if (!succs_[from].insert(to))
                continue;
            ++workUnits_;
            if (!graphDirty_ && level_[to] <= level_[from])
                graphDirty_ = true;
            if (matPulls[to].empty())
                matTargets.push_back(to);
            matPulls[to].push_back(from);
        }

        // A new edge must carry its source's full current set — the
        // destination has seen none of it.  Sources are frozen during
        // this stage (nothing writes pts_), so each destination's
        // union runs as an exclusive-writer task over a private
        // output set; the gained bits merge serially below.
        matOuts.resize(matTargets.size());
        auto matTask = [&](std::size_t i) {
            SparseBitSet &outSet = matOuts[i];
            outSet.clear();
            for (std::uint32_t f : matPulls[matTargets[i]])
                outSet.unionWith(pts_[f]);
            return 0;
        };
        if (threads > 1 && matTargets.size() >= kParallelCutoff) {
            if (!pool_)
                pool_ = std::make_unique<support::ThreadPool>(threads);
            const std::size_t grain = std::max<std::size_t>(
                1, matTargets.size() / (pool_->numThreads() * 4));
            support::runBatchOn(*pool_, matTargets.size(), matTask,
                                grain);
        } else {
            for (std::size_t i = 0; i < matTargets.size(); ++i)
                matTask(i);
        }
        for (std::size_t i = 0; i < matTargets.size(); ++i) {
            const std::uint32_t to = matTargets[i];
            matPulls[to].clear();
            if (pts_[to].unionWithDiff(matOuts[i], delta_[to]))
                push(to);
        }
    }
}

void
AndersenSolver::resolveIcallTarget(const IcallCons &icall, CellId cell)
{
    if (!memory_.isFunctionCell(cell))
        return;
    const FuncId callee = memory_.functionOfCell(cell);
    if (module_.function(callee)->numParams() != icall.instr->args.size())
        return;
    if (!icallConnected_.insert({icall.instr->id, callee}).second)
        return;
    const std::uint32_t calleeCtx = funcInstances_[callee][0];
    callEdges_[{icall.ctx, icall.instr->id, callee}] = calleeCtx;
    connectCall(icall.ctx, *icall.instr, calleeCtx);
}

AndersenResult
AndersenSolver::assembleResult()
{
    AndersenResult result;
    result.module_ = &module_;
    result.completed = true;
    result.memory = std::move(memory_);
    result.contexts = std::move(contexts_);
    result.funcInstances_ = std::move(funcInstances_);
    result.callEdges_ = std::move(callEdges_);
    result.regBase_ = std::move(regBase_);
    result.workUnits = workUnits_;
    result.solverWaves = waves_;
    result.solverCycleMerges = cycleMerges_;
    result.solverWaveImbalance = waveImbalance_;
    if (useDelta_) {
        GlobalSolverStats &g = globalSolverStats();
        std::lock_guard<std::mutex> lock(g.mutex);
        ++g.value.solves;
        g.value.waves += waves_;
        g.value.cycleMerges += cycleMerges_;
        g.value.maxWaveImbalance =
            std::max(g.value.maxWaveImbalance, waveImbalance_);
    }
    result.repr_.resize(numNodes_);
    for (std::uint32_t u = 0; u < numNodes_; ++u)
        result.repr_[u] = uf_.find(u);

    // Hash-cons the final sets: representative nodes intern their set
    // in a pool of unique values (index 0 = the empty set), and every
    // node maps to its representative's pool slot.  A solve produces
    // many identical singleton/duplicate sets; they now share storage.
    result.ptsPool_.emplace_back();
    result.ptsIdx_.assign(numNodes_, 0);
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> interned;
    for (std::uint32_t u = 0; u < numNodes_; ++u) {
        if (result.repr_[u] != u || pts_[u].empty())
            continue;
        std::vector<std::uint32_t> &bucket = interned[pts_[u].hash()];
        std::uint32_t idx = 0;
        for (std::uint32_t cand : bucket) {
            if (result.ptsPool_[cand] == pts_[u]) {
                idx = cand;
                break;
            }
        }
        if (idx == 0) {
            idx = static_cast<std::uint32_t>(result.ptsPool_.size());
            result.ptsPool_.push_back(std::move(pts_[u]));
            bucket.push_back(idx);
        }
        result.ptsIdx_[u] = idx;
    }
    for (std::uint32_t u = 0; u < numNodes_; ++u) {
        if (result.repr_[u] != u)
            result.ptsIdx_[u] = result.ptsIdx_[result.repr_[u]];
    }
    return result;
}

AndersenResult
AndersenSolver::run()
{
    if (!buildContexts()) {
        // Context budget exhausted: the analysis "fails to run" on
        // this program (Table 2 falls back to a cheaper variant).
        AndersenResult result;
        result.module_ = &module_;
        result.completed = false;
        result.workUnits = contexts_.size();
        return result;
    }

    allocateNodes();
    generateConstraints();
    if (options_.useHvn)
        hvn();
    if (useDelta_)
        offlineReduce();
    solve();
    if (options_.cycleCollapse) {
        collapseSccs();
        solve();
    }

    return assembleResult();
}

AndersenResult
AndersenSolver::resolveIncremental(const IncrementalInput &input,
                                   bool *usedIncremental)
{
    *usedIncremental = false;

    // Feasibility gates that need no solver state yet.  The reference
    // solver exists to be a from-scratch ground truth; CS cloning
    // pruned by call-context invariants gives contexts no stable
    // cross-version identity.
    if (!input.base || !input.baseModule || !input.diff ||
        !input.diff->usable || !input.base->completed ||
        options_.referenceSolver ||
        (options_.contextSensitive && input.diff->hasCallContextsEither)) {
        return run();
    }

    const ir::Module &baseModule = *input.baseModule;
    const AndersenResult &base = *input.base;
    const ConstraintDiff &diff = *input.diff;

    // Which base nodes may hold a different value in the new
    // fixpoint: directed forward reachability from the diff's seed
    // functions over the base value flow.  Everything outside keeps
    // its base value verbatim (additions re-propagate monotonically
    // below).
    const NodeTaint taint =
        nodeTaintClosure(baseModule, base, diff, input.baseInvariants);

    // Build the complete constraint graph for the new version — this
    // is the cheap O(instructions) part; what the incremental path
    // saves is the propagation rounds.
    if (!buildContexts()) {
        AndersenResult result;
        result.module_ = &module_;
        result.completed = false;
        result.workUnits = contexts_.size();
        return result;
    }
    allocateNodes();
    generateConstraints();
    // No HVN / offline reduction / pre-collapse: seeds are per
    // original node and the fixpoint is solver-strategy independent,
    // so skipping the merges changes nothing observable.

    // Cross-version identity: contexts match by (function name,
    // mapped call-site chain, fallback flag); cells by (kind, mapped
    // source, mapped context).
    const VersionMap vmap = buildVersionMap(baseModule, module_);
    const std::vector<std::uint32_t> ctxMap =
        mapContexts(baseModule, module_, vmap, base.contexts, contexts_);
    const std::vector<CellId> cellMap =
        mapCells(base.memory, memory_, vmap, ctxMap);

    // A context is seedable when it maps and its function's body is
    // unchanged; individual nodes inside it are still subject to the
    // per-node taint below.
    std::vector<std::uint32_t> seedCtxOf(contexts_.size(), ~0u);
    for (const ContextInstance &ctx : base.contexts) {
        if (ctxMap[ctx.id] == ~0u)
            continue;
        if (!vmap.bodyUnchanged[ctx.func])
            continue;
        seedCtxOf[ctxMap[ctx.id]] = ctx.id;
    }
    std::vector<CellId> cellPre(memory_.numCells(), kNoCell);
    for (CellId cell = 0; cell < cellMap.size(); ++cell)
        if (cellMap[cell] != kNoCell)
            cellPre[cellMap[cell]] = cell;

    // Translate base pool entries on demand (sets are hash-consed, so
    // each distinct set translates once).  An untranslatable cell
    // inside a set we need would make the seed unsound — fall back to
    // a from-scratch solve on a fresh solver instead.
    std::vector<char> poolTried(base.ptsPool_.size(), 0);
    std::vector<char> poolOk(base.ptsPool_.size(), 0);
    std::vector<SparseBitSet> poolXlate(base.ptsPool_.size());
    bool translationFailed = false;
    auto translated = [&](std::uint32_t poolIdx) -> const SparseBitSet * {
        if (!poolTried[poolIdx]) {
            poolTried[poolIdx] = 1;
            poolOk[poolIdx] = translateCellSet(base.ptsPool_[poolIdx],
                                               cellMap, poolXlate[poolIdx])
                                  ? 1
                                  : 0;
        }
        if (!poolOk[poolIdx]) {
            translationFailed = true;
            return nullptr;
        }
        return &poolXlate[poolIdx];
    };
    auto basePoolIdxOf = [&](std::uint32_t baseNode) {
        return base.ptsIdx_[base.repr_[baseNode]];
    };

    // Seed: overwrite every mapped clean node with its translated
    // base value and clear its delta — it is already at the new
    // fixpoint, so it never fires.  Everything else (the dirtied
    // region) keeps its generation-time state and is recomputed from
    // scratch, monotonically, from the sound base below.
    std::vector<char> seededNode(numNodes_, 0);
    for (std::uint32_t nctx = 0;
         nctx < contexts_.size() && !translationFailed; ++nctx) {
        const std::uint32_t bctx = seedCtxOf[nctx];
        if (bctx == ~0u)
            continue;
        const ir::Function *baseFunc =
            baseModule.function(base.contexts[bctx].func);
        const ir::Function *nextFunc =
            module_.function(contexts_[nctx].func);
        const ir::Reg common = std::min(baseFunc->numRegs(),
                                        nextFunc->numRegs());
        auto seedOne = [&](std::uint32_t node, std::uint32_t baseNode) {
            const SparseBitSet *value = translated(basePoolIdxOf(baseNode));
            if (!value)
                return;
            pts_[node] = *value;
            delta_[node].clear();
            seededNode[node] = 1;
        };
        for (ir::Reg reg = 0; reg < common && !translationFailed; ++reg)
            if (!taint.regs[bctx][reg])
                seedOne(regNode(nctx, reg), base.regBase_[bctx] + reg);
        if (!translationFailed && !taint.regs[bctx][baseFunc->numRegs()])
            seedOne(retNode(nctx),
                    base.regBase_[bctx] + baseFunc->numRegs());
    }
    for (CellId cell = 0; cell < memory_.numCells() && !translationFailed;
         ++cell) {
        const CellId pre = cellPre[cell];
        if (pre == kNoCell || taint.cells.contains(pre))
            continue;
        const SparseBitSet *value =
            translated(base.ptsIdx_[base.repr_[pre]]);
        if (!value)
            continue;
        pts_[cell] = *value;
        delta_[cell].clear();
        seededNode[cell] = 1;
    }
    if (translationFailed) {
        AndersenSolver fresh(module_, options_, ciPrepass_);
        return fresh.run();
    }

    // Seeded nodes never fire, so the derived edges a from-scratch
    // solve would discover from their sets must be materialized up
    // front: load/store edges through their cells, icall linkage, and
    // value injection across every seeded -> dirty boundary.  Edges
    // between two seeded endpoints need no value transfer (the base
    // fixpoint already satisfies them); addCopyEdge handles dirty
    // endpoints by unioning the full source set and queueing the
    // target.
    // An edge between two seeded endpoints is dead weight: a seeded
    // node is outside the taint closure, so no new value can ever
    // reach it and neither endpoint fires during the delta solve —
    // skip those entirely instead of materializing them.
    for (std::uint32_t u = 0; u < numNodes_; ++u) {
        if (!seededNode[u])
            continue;
        for (std::uint32_t dst : loadCons_[u]) {
            // A seeded dst implies every cell in the (base-valued) set
            // is seeded too: a dirtied cell feeding dst would have
            // tainted it.
            if (seededNode[dst])
                continue;
            pts_[u].forEach(
                [&](CellId cell) { addCopyEdge(cell, dst); });
        }
        for (std::uint32_t src : storeCons_[u]) {
            pts_[u].forEach([&](CellId cell) {
                if (!seededNode[src] || !seededNode[cell])
                    addCopyEdge(src, cell);
            });
        }
        for (const IcallCons &icall : icallCons_[u]) {
            pts_[u].forEach(
                [&](CellId cell) { resolveIcallTarget(icall, cell); });
        }
        for (const GepCons &gep : gepCons_[u]) {
            if (seededNode[gep.dest])
                continue; // same-context destination, base-covered
            SparseBitSet shifted;
            pts_[u].forEach([&](CellId cell) {
                if (memory_.isFunctionCell(cell)) {
                    shifted.insert(cell);
                    return;
                }
                if (gep.variable) {
                    const AbsObject &o =
                        memory_.object(memory_.objectOfCell(cell));
                    for (std::uint32_t f = 0; f < o.size; ++f)
                        shifted.insert(o.baseCell + f);
                } else {
                    const CellId target =
                        memory_.shiftCell(cell, gep.delta);
                    if (target != kNoCell)
                        shifted.insert(target);
                }
            });
            if (pts_[gep.dest].unionWithDiff(shifted, delta_[gep.dest]))
                push(gep.dest);
        }
        succs_[u].forEach([&](std::uint32_t v) {
            if (seededNode[v] || v == u)
                return;
            if (pts_[v].unionWithDiff(pts_[u], delta_[v]))
                push(v);
        });
    }

    // Queue the dirty region with full deltas; the worklist then runs
    // a normal difference-propagation solve over it.
    for (std::uint32_t u = 0; u < numNodes_; ++u) {
        if (!seededNode[u] && !pts_[u].empty()) {
            delta_[u] = pts_[u];
            push(u);
        }
    }
    seeded_ = true;
    solveWavefront();

    *usedIncremental = true;
    return assembleResult();
}

AndersenResult
runAndersen(const ir::Module &module, const AndersenOptions &options)
{
    OHA_ASSERT(module.finalized());

    // Sound context-sensitive analysis needs indirect calls resolved
    // up front; run a CI pre-pass for that (standard practice).
    if (options.contextSensitive && !options.invariants) {
        AndersenOptions ciOptions = options;
        ciOptions.contextSensitive = false;
        AndersenSolver ciSolver(module, ciOptions, nullptr);
        const AndersenResult ciResult = ciSolver.run();
        AndersenResult result =
            runAndersenPrepassed(module, options, &ciResult);
        result.workUnits += ciResult.workUnits;
        return result;
    }

    AndersenSolver solver(module, options, nullptr);
    return solver.run();
}

AndersenResult
runAndersenPrepassed(const ir::Module &module,
                     const AndersenOptions &options,
                     const AndersenResult *ciPrepass)
{
    OHA_ASSERT(module.finalized());
    AndersenSolver solver(module, options, ciPrepass);
    return solver.run();
}

AndersenResult
runAndersenIncremental(const ir::Module &module,
                       const AndersenOptions &options,
                       const IncrementalInput &input,
                       const AndersenResult *ciPrepass,
                       bool *usedIncremental)
{
    OHA_ASSERT(module.finalized());
    bool localUsed = false;
    if (!usedIncremental)
        usedIncremental = &localUsed;

    // Sound CS needs a CI pre-pass for indirect calls, exactly as in
    // runAndersen.  When the caller does not supply one it is computed
    // here (from scratch — the memoizing cache layer passes its own
    // incrementally-patched CI result instead) and its effort folded
    // into workUnits.
    if (options.contextSensitive && !options.invariants && !ciPrepass) {
        AndersenOptions ciOptions = options;
        ciOptions.contextSensitive = false;
        AndersenSolver ciSolver(module, ciOptions, nullptr);
        const AndersenResult ciResult = ciSolver.run();
        AndersenSolver solver(module, options, &ciResult);
        AndersenResult result =
            solver.resolveIncremental(input, usedIncremental);
        result.workUnits += ciResult.workUnits;
        return result;
    }

    AndersenSolver solver(module, options, ciPrepass);
    return solver.resolveIncremental(input, usedIncremental);
}

} // namespace oha::analysis
