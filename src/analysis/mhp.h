/**
 * @file
 * Static may-happen-in-parallel (MHP) analysis (Section 4.1).
 *
 * The program is partitioned into thread regions: the main region and
 * one region per Spawn site (the functions reachable from the spawned
 * function).  Two instructions may happen in parallel unless their
 * regions are provably ordered:
 *  - an access in the main function is ordered before a thread if it
 *    must precede the spawn, and after it if it is dominated by the
 *    matching join (requires the spawn to be provably single-shot);
 *  - two different spawn sites are ordered when one's matching join
 *    dominates the other's spawn;
 *  - two accesses of the *same* spawn site are ordered only when the
 *    site creates exactly one thread — statically provable only in
 *    trivial cases, which is precisely what the likely-singleton-
 *    thread invariant supplies to the predicated analysis
 *    (Section 4.2.3).
 */

#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "analysis/callgraph.h"
#include "ir/cfg.h"

namespace oha::analysis {

/** MHP facts over a module. */
class MhpAnalysis
{
  public:
    MhpAnalysis(const ir::Module &module, const AndersenResult &andersen,
                const CallGraph &callGraph,
                const inv::InvariantSet *invariants);

    /** Conservative MHP query for two instructions. */
    bool mayHappenInParallel(InstrId a, InstrId b) const;

    /** Spawn sites the analysis could prove single-shot. */
    const std::set<InstrId> &singletonSites() const { return singleton_; }

    /** Join instruction matched to @p spawnSite, or kNoInstr. */
    InstrId
    matchedJoin(InstrId spawnSite) const
    {
        auto it = joinOf_.find(spawnSite);
        return it == joinOf_.end() ? kNoInstr : it->second;
    }

  private:
    /** Region 0 is the main thread; region i+1 is spawn site i. */
    using RegionId = std::uint32_t;

    bool orderedRegions(RegionId a, InstrId ia, RegionId b,
                        InstrId ib) const;
    bool mustPrecedeInFunction(InstrId a, InstrId b) const;
    bool dominatesInFunction(InstrId a, InstrId b) const;
    const ir::Cfg &cfgOf(FuncId func) const;

    const ir::Module &module_;
    /** The single-invocation function where before-spawn ordering is
     *  sound (the non-re-entrant entry function), or kNoFunc. */
    FuncId orderingFunc_ = kNoFunc;
    std::vector<InstrId> spawnSites_;
    /** func -> regions containing it. */
    std::vector<std::set<RegionId>> funcRegions_;
    std::set<InstrId> singleton_;
    std::map<InstrId, InstrId> joinOf_;
    /** Lazily-built per-function CFGs; the mutex makes concurrent
     *  const MHP queries (the batched race-pair loop) safe. */
    mutable std::mutex cfgMutex_;
    mutable std::map<FuncId, std::unique_ptr<ir::Cfg>> cfgs_;
};

} // namespace oha::analysis
