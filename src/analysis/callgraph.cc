#include "analysis/callgraph.h"

#include <deque>

namespace oha::analysis {

CallGraph::CallGraph(const ir::Module &module,
                     const AndersenResult &andersen,
                     const inv::InvariantSet *invariants)
{
    callees_.resize(module.numFunctions());

    auto live = [&](BlockId block) {
        return !invariants || invariants->blockVisited(block);
    };

    for (const auto &func : module.functions()) {
        for (const auto &block : func->blocks()) {
            if (!live(block->id()))
                continue;
            for (const ir::Instruction &ins : block->instructions()) {
                switch (ins.op) {
                  case ir::Opcode::Call:
                    callees_[func->id()].insert(ins.callee);
                    break;
                  case ir::Opcode::ICall: {
                    if (invariants) {
                        auto it = invariants->calleeSets.find(ins.id);
                        if (it != invariants->calleeSets.end()) {
                            callees_[func->id()].insert(it->second.begin(),
                                                        it->second.end());
                        }
                    } else {
                        const auto targets = andersen.icallTargets(ins.id);
                        callees_[func->id()].insert(targets.begin(),
                                                    targets.end());
                    }
                    break;
                  }
                  case ir::Opcode::Spawn:
                    spawnSites_.push_back(ins.id);
                    break;
                  default:
                    break;
                }
            }
        }
    }

    for (const auto &callees : callees_)
        calledFuncs_.insert(callees.begin(), callees.end());
}

std::set<FuncId>
CallGraph::reachableFrom(FuncId root) const
{
    std::set<FuncId> seen = {root};
    std::deque<FuncId> work = {root};
    while (!work.empty()) {
        const FuncId cur = work.front();
        work.pop_front();
        for (FuncId next : callees_[cur]) {
            if (seen.insert(next).second)
                work.push_back(next);
        }
    }
    return seen;
}

} // namespace oha::analysis
