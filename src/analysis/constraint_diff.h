/**
 * @file
 * Constraint-level lowering of an ir::ModuleDiff, plus the
 * cross-version mapping utilities shared by the incremental Andersen
 * solve (AndersenSolver::resolveIncremental) and the downstream
 * per-function invalidation in the detector / slicer memo layer.
 *
 * The central object is the *taint closure*: starting from the
 * functions whose constraints differ between two module versions
 * (changed bodies, removed/added functions, functions whose invariant
 * slice differs), close over the flow edges of a completed base solve —
 * call/spawn edges in both directions, and store -> load edges through
 * abstract cells — to find every function whose points-to values could
 * differ in the new fixpoint.  Everything outside the closure keeps its
 * base values verbatim; everything inside is recomputed from the sound
 * base (the "dirtied SCC region" is recomputed, never patched by
 * deleting bits, which would be unsound).
 */

#pragma once

#include <set>
#include <string>
#include <vector>

#include "analysis/andersen.h"
#include "ir/module_diff.h"

namespace oha::analysis {

/** An ir::ModuleDiff lowered to constraint granularity. */
struct ConstraintDiff
{
    /** The structural diff this was lowered from. */
    ir::ModuleDiff structural;

    /**
     * Functions present in both versions whose constraint set differs:
     * changed bodies plus functions whose per-function invariant slice
     * (visited blocks, callee sets, singleton/elidable/must-alias
     * facts) differs between the two invariant sets.
     */
    std::set<std::string> seeds;

    bool globalsChanged = false;

    /** Either invariant set records call-context invariants (CS
     *  predicated cloning is pruned by them; contexts then have no
     *  stable cross-version identity, so CS patching falls back). */
    bool hasCallContextsEither = false;

    /** Any function with differing constraints contains a live Spawn
     *  or Join in either version — join edges connect *all* spawned
     *  functions to *every* joiner, so joiners must be recomputed. */
    bool spawnStructureTouched = false;

    /** Constraint-generating instructions on the next/base side of the
     *  differing functions (reporting only). */
    std::size_t constraintsAdded = 0;
    std::size_t constraintsRemoved = 0;

    /** False when incremental patching cannot be attempted at all
     *  (globals changed, or exactly one side is predicated). */
    bool usable = false;

    /** Seed names for the taint closure on either side: differing
     *  constraints plus functions that exist in only one version. */
    std::set<std::string>
    seedNames() const
    {
        std::set<std::string> names = seeds;
        names.insert(structural.added.begin(), structural.added.end());
        names.insert(structural.removed.begin(), structural.removed.end());
        return names;
    }
};

/**
 * Lower @p diff to constraint granularity under the two invariant sets
 * (null = sound).  @p baseInv must be the set the cached base result
 * was solved with; @p nextInv the set the new solve will assume.
 */
ConstraintDiff lowerToConstraints(const ir::Module &base,
                                  const ir::Module &next,
                                  const ir::ModuleDiff &diff,
                                  const inv::InvariantSet *baseInv,
                                  const inv::InvariantSet *nextInv);

/**
 * Per-node taint of a completed solve, in public coordinates: which
 * register/return slots of which context instances, and which cells,
 * may hold a DIFFERENT value once the diff is applied.
 *
 * Taint is directed forward reachability in the value-flow graph of
 * the base solve (copy edges, pts-derived load/store edges, gep
 * edges, call/ret/join plumbing, indirect-call resolution) from every
 * node of the seed functions.  Downstream-only: a caller's unrelated
 * registers, and sibling callees whose inputs don't derive from a
 * seed, stay clean — this is what keeps the recomputed region small
 * (a per-function undirected closure would flood the entire connected
 * call component).
 *
 * Everything clean keeps its base value verbatim in the new fixpoint
 * provided additions are re-propagated monotonically (the incremental
 * solver does exactly that); everything tainted must be recomputed
 * from the sound base.
 */
struct NodeTaint
{
    /** Cells whose contents may shrink (targets of possibly-removed
     *  or re-pointed stores, transitively). */
    SparseBitSet cells;
    /** Per context instance: numRegs+1 flags, last one the return
     *  node. */
    std::vector<std::vector<char>> regs;
};

NodeTaint nodeTaintClosure(const ir::Module &module,
                           const AndersenResult &pts,
                           const ConstraintDiff &diff,
                           const inv::InvariantSet *inv);

/**
 * Per-FuncId projection of nodeTaintClosure: a function is tainted
 * when any of its nodes (any context) is, or it is a seed.  @p pts
 * must be a completed result for @p module; @p inv the invariant set
 * it was solved under.  Runs on the base side to bound what the
 * incremental solver may reuse, and on the next side (unioned) to
 * bound what the detector / slicer patchers may reuse.
 */
std::vector<bool> constraintTaintClosure(const ir::Module &module,
                                         const AndersenResult &pts,
                                         const ConstraintDiff &diff,
                                         const inv::InvariantSet *inv);

/** Cross-version id maps for body-unchanged functions. */
struct VersionMap
{
    /** base FuncId -> next FuncId for name-matched functions (any
     *  body), else kNoFunc. */
    std::vector<FuncId> funcMap;
    /** Per base FuncId: name-matched and fingerprint-identical. */
    std::vector<char> bodyUnchanged;
    /** base -> next instruction ids, body-unchanged functions only
     *  (positional: identical canonical text implies identical
     *  shape); kNoInstr elsewhere. */
    std::vector<InstrId> instrMap;
    /** base -> next block ids, likewise; kNoBlock elsewhere. */
    std::vector<BlockId> blockMap;
};

VersionMap buildVersionMap(const ir::Module &base, const ir::Module &next);

/**
 * Map base context-instance ids onto next ones by signature (function
 * name + call-site chain mapped through @p map + fallback flag).
 * Unmappable contexts (chains through changed functions, or shapes the
 * next solve did not build) get ~0u.
 */
std::vector<std::uint32_t>
mapContexts(const ir::Module &base, const ir::Module &next,
            const VersionMap &map,
            const std::vector<ContextInstance> &baseCtxs,
            const std::vector<ContextInstance> &nextCtxs);

/**
 * Map base abstract-memory cells onto next cells: globals by index
 * (caller must have rejected globalsChanged), functions by name,
 * allocation sites by (mapped instruction, mapped context).
 * Unmappable cells get kNoCell.
 */
std::vector<CellId> mapCells(const MemoryModel &baseMem,
                             const MemoryModel &nextMem,
                             const VersionMap &map,
                             const std::vector<std::uint32_t> &ctxMap);

/**
 * Translate a base-side cell set through @p cellMap into @p out.
 * Returns false (leaving @p out unspecified) if any element is
 * unmappable.
 */
bool translateCellSet(const SparseBitSet &in,
                      const std::vector<CellId> &cellMap,
                      SparseBitSet &out);

/**
 * Per-next-FuncId dirty flags for downstream (lockset/MHP/slice)
 * per-function invalidation: the union of the base-side taint closure
 * (mapped across versions) and the next-side closure, so removals
 * travelling base flow and additions travelling new flow are both
 * covered.  Functions without a body-unchanged base counterpart are
 * always dirty.
 */
std::vector<bool> unionDirtyClosure(const ir::Module &base,
                                    const AndersenResult &basePts,
                                    const ir::Module &next,
                                    const AndersenResult &nextPts,
                                    const ConstraintDiff &diff,
                                    const inv::InvariantSet *baseInv,
                                    const inv::InvariantSet *nextInv);

} // namespace oha::analysis
