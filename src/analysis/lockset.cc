#include "analysis/lockset.h"

#include <optional>

namespace oha::analysis {

namespace {

using LockSet = std::set<InstrId>;

LockSet
intersect(const LockSet &a, const LockSet &b)
{
    LockSet out;
    for (InstrId x : a)
        if (b.count(x))
            out.insert(x);
    return out;
}

} // namespace

LocksetAnalysis::LocksetAnalysis(const ir::Module &module,
                                 const AndersenResult &andersen,
                                 const inv::InvariantSet *invariants)
{
    auto live = [&](BlockId block) {
        return !invariants || invariants->blockVisited(block);
    };

    // Pre-resolve lock-object target sets so Unlock can conservatively
    // release every may-aliasing held site.
    std::map<InstrId, SparseBitSet> lockTargets;
    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        const ir::Instruction &ins = module.instr(id);
        if ((ins.op == ir::Opcode::Lock || ins.op == ir::Opcode::Unlock) &&
            live(ins.block)) {
            lockTargets.emplace(id, andersen.pointerTargets(id));
        }
    }

    // Entry lockset per function: ⊤ until constrained by call sites;
    // main and spawned roots start with ∅.  Iterate to a (decreasing)
    // fixpoint across the call graph.
    const std::size_t numFuncs = module.numFunctions();
    std::vector<std::optional<LockSet>> entry(numFuncs);
    entry[module.entryFunction()->id()] = LockSet{};
    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        const ir::Instruction &ins = module.instr(id);
        if (ins.op == ir::Opcode::Spawn && live(ins.block))
            entry[ins.callee] = LockSet{};
    }

    for (int pass = 0; pass < 16; ++pass) {
        bool changed = false;
        std::vector<std::optional<LockSet>> callMeet(numFuncs);
        held_.clear();

        for (const auto &func : module.functions()) {
            if (!entry[func->id()].has_value())
                continue; // not yet known reachable

            // Forward dataflow over the function's blocks.
            std::map<BlockId, std::optional<LockSet>> blockIn;
            blockIn[func->entry()->id()] = *entry[func->id()];
            bool localChanged = true;
            int guard = 0;
            while (localChanged && guard++ < 64) {
                localChanged = false;
                for (const auto &block : func->blocks()) {
                    if (!live(block->id()))
                        continue;
                    auto inIt = blockIn.find(block->id());
                    if (inIt == blockIn.end() || !inIt->second.has_value())
                        continue;
                    LockSet state = *inIt->second;
                    for (const ir::Instruction &ins :
                         block->instructions()) {
                        held_[ins.id] = state;
                        if (ins.op == ir::Opcode::Lock) {
                            state.insert(ins.id);
                        } else if (ins.op == ir::Opcode::Unlock) {
                            const SparseBitSet &rel = lockTargets[ins.id];
                            for (auto it = state.begin();
                                 it != state.end();) {
                                if (lockTargets[*it].intersects(rel))
                                    it = state.erase(it);
                                else
                                    ++it;
                            }
                        } else if (ins.op == ir::Opcode::Call ||
                                   ins.op == ir::Opcode::ICall) {
                            // Record the meet for callee entry states.
                            std::set<FuncId> targets;
                            if (ins.op == ir::Opcode::Call) {
                                targets.insert(ins.callee);
                            } else if (invariants) {
                                auto cs =
                                    invariants->calleeSets.find(ins.id);
                                if (cs != invariants->calleeSets.end())
                                    targets = cs->second;
                            } else {
                                targets = andersen.icallTargets(ins.id);
                            }
                            for (FuncId callee : targets) {
                                if (!callMeet[callee].has_value())
                                    callMeet[callee] = state;
                                else
                                    callMeet[callee] = intersect(
                                        *callMeet[callee], state);
                            }
                        }
                    }
                    // Propagate to successors (meet = intersection).
                    for (BlockId succ : block->successors()) {
                        if (!live(succ))
                            continue;
                        auto &succIn = blockIn[succ];
                        if (!succIn.has_value()) {
                            succIn = state;
                            localChanged = true;
                        } else {
                            LockSet met = intersect(*succIn, state);
                            if (met != *succIn) {
                                succIn = std::move(met);
                                localChanged = true;
                            }
                        }
                    }
                }
            }
        }

        // Update entry states from call meets.  main keeps ∅; spawn
        // roots (already ∅) meet with any ordinary call sites.
        for (FuncId f = 0; f < numFuncs; ++f) {
            if (!callMeet[f].has_value() ||
                f == module.entryFunction()->id()) {
                continue;
            }
            LockSet next = *callMeet[f];
            if (entry[f].has_value())
                next = intersect(*entry[f], next);
            if (!entry[f].has_value() || next != *entry[f]) {
                entry[f] = std::move(next);
                changed = true;
            }
        }
        if (!changed)
            break;
    }
}

} // namespace oha::analysis
