#include "analysis/lockset.h"

#include <optional>

#include "support/thread_pool.h"

namespace oha::analysis {

namespace {

using LockSet = std::set<InstrId>;

LockSet
intersect(const LockSet &a, const LockSet &b)
{
    LockSet out;
    for (InstrId x : a)
        if (b.count(x))
            out.insert(x);
    return out;
}

/** Per-function dataflow output of one fixpoint pass. */
struct FuncFlow
{
    std::vector<std::pair<InstrId, LockSet>> held;
    std::vector<std::optional<LockSet>> callMeet;
};

} // namespace

LocksetAnalysis::LocksetAnalysis(const ir::Module &module,
                                 const AndersenResult &andersen,
                                 const inv::InvariantSet *invariants)
{
    auto live = [&](BlockId block) {
        return !invariants || invariants->blockVisited(block);
    };

    // Pre-resolve lock-object target sets so Unlock can conservatively
    // release every may-aliasing held site.
    std::map<InstrId, SparseBitSet> lockTargets;
    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        const ir::Instruction &ins = module.instr(id);
        if ((ins.op == ir::Opcode::Lock || ins.op == ir::Opcode::Unlock) &&
            live(ins.block)) {
            lockTargets.emplace(id, andersen.pointerTargets(id));
        }
    }

    // Entry lockset per function: ⊤ until constrained by call sites;
    // main and spawned roots start with ∅.  Iterate to a (decreasing)
    // fixpoint across the call graph.
    const std::size_t numFuncs = module.numFunctions();
    std::vector<std::optional<LockSet>> entry(numFuncs);
    entry[module.entryFunction()->id()] = LockSet{};
    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        const ir::Instruction &ins = module.instr(id);
        if (ins.op == ir::Opcode::Spawn && live(ins.block))
            entry[ins.callee] = LockSet{};
    }

    for (int pass = 0; pass < 16; ++pass) {
        bool changed = false;

        // Functions are independent within a pass: each one's forward
        // dataflow reads only the (frozen) entry states, and writes
        // held-sets for its own instructions plus local call meets.
        // Run them batched; folding the per-function outputs in
        // function order reproduces the serial pass exactly (held-set
        // keys are disjoint across functions, and the callee-entry
        // meet is a commutative, associative intersection).
        const std::vector<FuncFlow> flows = support::runBatch(
            numFuncs, [&](std::size_t f) {
                FuncFlow flow;
                const ir::Function *func =
                    module.function(static_cast<FuncId>(f));
                if (!entry[func->id()].has_value())
                    return flow; // not yet known reachable
                flow.callMeet.resize(numFuncs);

                std::map<InstrId, LockSet> held;
                // Forward dataflow over the function's blocks.
                std::map<BlockId, std::optional<LockSet>> blockIn;
                blockIn[func->entry()->id()] = *entry[func->id()];
                bool localChanged = true;
                int guard = 0;
                while (localChanged && guard++ < 64) {
                    localChanged = false;
                    for (const auto &block : func->blocks()) {
                        if (!live(block->id()))
                            continue;
                        auto inIt = blockIn.find(block->id());
                        if (inIt == blockIn.end() ||
                            !inIt->second.has_value())
                            continue;
                        LockSet state = *inIt->second;
                        for (const ir::Instruction &ins :
                             block->instructions()) {
                            held[ins.id] = state;
                            if (ins.op == ir::Opcode::Lock) {
                                state.insert(ins.id);
                            } else if (ins.op == ir::Opcode::Unlock) {
                                const SparseBitSet &rel =
                                    lockTargets.at(ins.id);
                                for (auto it = state.begin();
                                     it != state.end();) {
                                    if (lockTargets.at(*it).intersects(
                                            rel))
                                        it = state.erase(it);
                                    else
                                        ++it;
                                }
                            } else if (ins.op == ir::Opcode::Call ||
                                       ins.op == ir::Opcode::ICall) {
                                // Record the meet for callee entry
                                // states.
                                std::set<FuncId> targets;
                                if (ins.op == ir::Opcode::Call) {
                                    targets.insert(ins.callee);
                                } else if (invariants) {
                                    auto cs =
                                        invariants->calleeSets.find(
                                            ins.id);
                                    if (cs !=
                                        invariants->calleeSets.end())
                                        targets = cs->second;
                                } else {
                                    const auto resolved =
                                        andersen.icallTargets(ins.id);
                                    targets.insert(resolved.begin(),
                                                   resolved.end());
                                }
                                for (FuncId callee : targets) {
                                    auto &meet = flow.callMeet[callee];
                                    if (!meet.has_value())
                                        meet = state;
                                    else
                                        meet = intersect(*meet, state);
                                }
                            }
                        }
                        // Propagate to successors (meet =
                        // intersection).
                        for (BlockId succ : block->successors()) {
                            if (!live(succ))
                                continue;
                            auto &succIn = blockIn[succ];
                            if (!succIn.has_value()) {
                                succIn = state;
                                localChanged = true;
                            } else {
                                LockSet met = intersect(*succIn, state);
                                if (met != *succIn) {
                                    succIn = std::move(met);
                                    localChanged = true;
                                }
                            }
                        }
                    }
                }
                flow.held.assign(held.begin(), held.end());
                return flow;
            });

        std::vector<std::optional<LockSet>> callMeet(numFuncs);
        held_.clear();
        for (const FuncFlow &flow : flows) {
            for (const auto &[id, locks] : flow.held)
                held_[id] = locks;
            for (FuncId callee = 0;
                 callee < static_cast<FuncId>(flow.callMeet.size());
                 ++callee) {
                if (!flow.callMeet[callee].has_value())
                    continue;
                if (!callMeet[callee].has_value())
                    callMeet[callee] = flow.callMeet[callee];
                else
                    callMeet[callee] = intersect(
                        *callMeet[callee], *flow.callMeet[callee]);
            }
        }

        // Update entry states from call meets.  main keeps ∅; spawn
        // roots (already ∅) meet with any ordinary call sites.
        for (FuncId f = 0; f < numFuncs; ++f) {
            if (!callMeet[f].has_value() ||
                f == module.entryFunction()->id()) {
                continue;
            }
            LockSet next = *callMeet[f];
            if (entry[f].has_value())
                next = intersect(*entry[f], next);
            if (!entry[f].has_value() || next != *entry[f]) {
                entry[f] = std::move(next);
                changed = true;
            }
        }
        if (!changed)
            break;
    }
}

} // namespace oha::analysis
