/**
 * @file
 * Chord-style static data-race detector (Section 4.1).
 *
 * Pipeline: points-to (Andersen, CI) → thread-escape filtering →
 * may-happen-in-parallel pairing → lockset pruning.  The lockset
 * phase needs must-alias lock information, which a sound may-alias
 * analysis cannot provide — so, exactly as in the paper, the *sound*
 * detector skips lockset pruning (prior hybrid analyses removed it
 * for soundness [47]) and the *predicated* detector re-enables it
 * using the likely-guarding-locks invariant.
 *
 * The output is the set of accesses that may race; a hybrid FastTrack
 * elides read/write instrumentation everywhere else.
 */

#pragma once

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "analysis/andersen.h"

namespace oha::analysis {

/** Result of static race analysis. */
struct StaticRaceResult
{
    /** Load/Store instructions that may participate in a race. */
    std::set<InstrId> racyAccesses;
    /** The may-race pairs themselves (a <= b). */
    std::set<std::pair<InstrId, InstrId>> racyPairs;
    /** Pre-lockset candidates: pairs that passed alias ∧ MHP ∧
     *  at-least-one-write, racy or guarded alike.  Stored so the
     *  incremental re-analysis of an edited module can reuse the
     *  clean-region verdicts and re-evaluate only the lock guard
     *  (which depends on the new invariant set) per candidate. */
    std::set<std::pair<InstrId, InstrId>> candidatePairs;
    /** Must-alias lock pairs the pruning actually relied on; the
     *  runtime must verify exactly these (Section 4.2.2). */
    std::set<std::pair<InstrId, InstrId>> usedLockAliases;
    /** Singleton-spawn sites the MHP pruning relied on. */
    std::set<InstrId> usedSingletonSites;
    /** Total analysis effort (points-to + detector), abstract units. */
    std::uint64_t workUnits = 0;
    /** Number of memory accesses considered. */
    std::size_t accessesConsidered = 0;
};

/** Approximate heap footprint, for cache byte budgeting.  std::set
 *  nodes cost roughly payload + two pointers + color + allocator
 *  overhead; 48 bytes is a sane per-node charge. */
inline std::size_t
byteSizeEstimate(const StaticRaceResult &result)
{
    return sizeof(result) +
           result.racyAccesses.size() * (sizeof(InstrId) + 48) +
           (result.racyPairs.size() + result.candidatePairs.size() +
            result.usedLockAliases.size()) *
               (sizeof(std::pair<InstrId, InstrId>) + 48) +
           result.usedSingletonSites.size() * (sizeof(InstrId) + 48);
}

/**
 * Run the static race detector.
 * @param invariants null => sound analysis (no lockset pruning, no
 *        invariant-based MHP refinement); non-null => predicated.
 * @param shared when non-null (and pointing at @p module), the
 *        points-to phase goes through the process-wide memo cache
 *        (andersen_cache.h) so repeated configurations — calibration
 *        sweeps, the lock-elision pass — reuse one solve.
 * @param referenceSolver run the points-to phase on the pre-overhaul
 *        solver (AndersenOptions::referenceSolver); exists for the
 *        delta-solver parity test.
 * @param solverThreads wavefront-solver worker count (0 = the
 *        OHA_THREADS pool size); results are byte-identical at every
 *        value (AndersenOptions::solverThreads).
 */
StaticRaceResult
runStaticRaceDetector(const ir::Module &module,
                      const inv::InvariantSet *invariants,
                      const std::shared_ptr<const ir::Module> &shared =
                          nullptr,
                      bool referenceSolver = false,
                      std::uint32_t solverThreads = 0);

struct ConstraintDiff; // analysis/constraint_diff.h

/** A cached detector run for an ancestor version of the module,
 *  usable as a patch base. */
struct RaceIncrementalInput
{
    std::shared_ptr<const ir::Module> baseModule;
    std::shared_ptr<const StaticRaceResult> baseRace;
    /** Invariant set the base detector ran under (null = sound). */
    std::shared_ptr<const inv::InvariantSet> baseInvariants;
    /** Lowered diff base -> module, usable. */
    const ConstraintDiff *diff = nullptr;
};

/**
 * Re-run the detector on an edited module by patching @p input: the
 * points-to phase goes through the incremental solver (via the memo
 * layer), and the O(accesses²) pair matrix is evaluated only for
 * pairs touching a *dirty* function — a function whose constraints,
 * points-to values or invariant slice differ between the versions.
 * Clean-pair alias/MHP verdicts are reused from the base run's
 * candidatePairs; the lock guard (which depends on the new invariant
 * set) is re-evaluated for every candidate.  Falls back to the full
 * detector — reporting @p usedIncremental = false — whenever a
 * global structure guard fails: unusable diff, edited entry function
 * (body, invariant slice or re-entrancy determination), edited
 * spawn/join structure, call-graph or thread-escape drift.
 * Either way the reported races equal a from-scratch run's.
 */
StaticRaceResult runStaticRaceDetectorIncremental(
    const std::shared_ptr<const ir::Module> &module,
    const inv::InvariantSet *invariants,
    const RaceIncrementalInput &input, bool *usedIncremental = nullptr,
    std::uint32_t solverThreads = 0);

} // namespace oha::analysis
