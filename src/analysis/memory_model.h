/**
 * @file
 * The abstract memory model shared by the static analyses.
 *
 * Abstract objects are globals, allocation sites (optionally cloned
 * per calling context — "heap cloning", Section 5.1.2) and functions
 * (so function pointers flow through the same points-to machinery).
 * The analyses are structure-field sensitive: an object with N cells
 * contributes N distinct points-to elements ("cells"), and a constant
 * Gep shifts within the object.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/common.h"

namespace oha::analysis {

/** Index of an abstract memory cell (the element type of pts sets). */
using CellId = std::uint32_t;

/** Index of an abstract object. */
using AbsObjectId = std::uint32_t;

constexpr CellId kNoCell = static_cast<CellId>(-1);

/** What an abstract object models. */
enum class AbsObjectKind : std::uint8_t
{
    Global,   ///< a module global
    AllocSite, ///< an Alloc instruction (per context when cloned)
    Function, ///< a function (target of function pointers)
};

/** One abstract object and its cell range. */
struct AbsObject
{
    AbsObjectKind kind = AbsObjectKind::Global;
    /** Global id, Alloc InstrId, or FuncId depending on kind. */
    std::uint32_t srcId = 0;
    /** Heap-cloning context instance (0 = context-insensitive). */
    std::uint32_t contextId = 0;
    std::uint32_t size = 1;
    CellId baseCell = 0;
};

/** Registry of abstract objects and their cells. */
class MemoryModel
{
  public:
    /** Create an object; returns its id.  Cells are assigned densely. */
    AbsObjectId
    addObject(AbsObjectKind kind, std::uint32_t srcId, std::uint32_t size,
              std::uint32_t contextId = 0)
    {
        OHA_ASSERT(size >= 1);
        AbsObject object;
        object.kind = kind;
        object.srcId = srcId;
        object.contextId = contextId;
        object.size = size;
        object.baseCell = nextCell_;
        const AbsObjectId id = static_cast<AbsObjectId>(objects_.size());
        objects_.push_back(object);
        for (std::uint32_t i = 0; i < size; ++i)
            cellObject_.push_back(id);
        nextCell_ += size;
        return id;
    }

    const AbsObject &
    object(AbsObjectId id) const
    {
        OHA_ASSERT(id < objects_.size());
        return objects_[id];
    }

    std::size_t numObjects() const { return objects_.size(); }
    CellId numCells() const { return nextCell_; }

    /** Cell for (object, field); kNoCell if the field is out of range. */
    CellId
    cellOf(AbsObjectId id, std::uint32_t field) const
    {
        const AbsObject &obj = object(id);
        if (field >= obj.size)
            return kNoCell;
        return obj.baseCell + field;
    }

    /** Object owning @p cell. */
    AbsObjectId
    objectOfCell(CellId cell) const
    {
        OHA_ASSERT(cell < cellObject_.size());
        return cellObject_[cell];
    }

    /** Field index of @p cell within its object. */
    std::uint32_t
    fieldOfCell(CellId cell) const
    {
        return cell - object(objectOfCell(cell)).baseCell;
    }

    /** Shift @p cell by @p delta fields; kNoCell when out of range. */
    CellId
    shiftCell(CellId cell, std::int64_t delta) const
    {
        const AbsObject &obj = object(objectOfCell(cell));
        const std::int64_t field =
            static_cast<std::int64_t>(fieldOfCell(cell)) + delta;
        if (field < 0 || field >= static_cast<std::int64_t>(obj.size))
            return kNoCell;
        return obj.baseCell + static_cast<std::uint32_t>(field);
    }

    /** True if @p cell belongs to a Function object. */
    bool
    isFunctionCell(CellId cell) const
    {
        return object(objectOfCell(cell)).kind == AbsObjectKind::Function;
    }

    /** FuncId of a function cell. */
    FuncId
    functionOfCell(CellId cell) const
    {
        const AbsObject &obj = object(objectOfCell(cell));
        OHA_ASSERT(obj.kind == AbsObjectKind::Function);
        return obj.srcId;
    }

  private:
    std::vector<AbsObject> objects_;
    std::vector<AbsObjectId> cellObject_;
    CellId nextCell_ = 0;
};

} // namespace oha::analysis
