/**
 * @file
 * Memoized points-to analysis for the static phase.
 *
 * The pipeline and the calibration sweeps (Figures 7/8, Table 2) run
 * the same Andersen configurations repeatedly: the sound analyses are
 * identical across every sweep point, the predicated ones repeat
 * whenever the profiled invariant set has converged, and a single
 * OptFT/OptSlice invocation itself re-runs configurations (the CI
 * pre-pass of a sound CS solve doubles as the endpoint-ranking
 * analysis; lock-elision calibration re-runs the predicated CI
 * analysis the race detector already solved).  Results are immutable
 * after solving, so they are cached process-wide, keyed by
 *
 *   (module fingerprint, invariant-set fingerprint, solver options)
 *
 * where the fingerprints hash the module's printed form and the
 * invariant set's canonical text serialization — value identity, not
 * object identity, so sweeps that rebuild equal workloads still hit.
 * Entries hold the module alive (results reference it internally).
 *
 * Thread-safe; solves run outside the cache lock and the first insert
 * wins, so concurrent clients share one result object.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "analysis/andersen.h"
#include "analysis/race_detector.h"
#include "ir/module.h"

namespace oha::analysis {

/** Hit/miss counters for bench reporting. */
struct AndersenCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};

/**
 * Memoized runAndersen.  @p module must be the module the options'
 * invariants were profiled on; the returned result (and the cache
 * entry behind it) keeps it alive.
 */
std::shared_ptr<const AndersenResult>
runAndersenMemo(const std::shared_ptr<const ir::Module> &module,
                const AndersenOptions &options);

/**
 * Memoized runStaticRaceDetector on the production solver, keyed by
 * (module fingerprint, invariant fingerprint).  Beyond the points-to
 * reuse of runAndersenMemo this caches the *whole* detector output —
 * escape analysis, MHP, locksets and the pair matrix — so calibration
 * sweeps whose invariant sets have converged skip the detector
 * entirely.  The stored workUnits are the deterministic cost of the
 * one real computation, so modeled static-phase costs are identical
 * with or without hits.
 */
std::shared_ptr<const StaticRaceResult>
runStaticRaceDetectorMemo(const std::shared_ptr<const ir::Module> &module,
                          const inv::InvariantSet *invariants);

/** Static slices over a fixed endpoint list at one analysis level
 *  (OptSlice phase 3), in memoizable form. */
struct SliceSetResult
{
    std::vector<std::set<InstrId>> slices;
    bool contextSensitive = false;
    bool complete = false;
    std::uint64_t workUnits = 0;
};

/**
 * Memoize a slice-set computation.  Keyed by (module, invariants,
 * configKey, endpoints); @p configKey must encode every slicing knob
 * that can change the output (work budget, picked analysis level).
 * On a miss @p compute runs outside the cache lock; first insert
 * wins.
 */
std::shared_ptr<const SliceSetResult>
sliceSetMemo(const std::shared_ptr<const ir::Module> &module,
             const inv::InvariantSet *invariants, std::uint64_t configKey,
             const std::vector<InstrId> &endpoints,
             const std::function<SliceSetResult()> &compute);

/** Process-wide cache counters since start / last reset. */
AndersenCacheStats andersenCacheStats();

/** Drop all cached results and zero the counters (tests, benchmarks). */
void resetAndersenCache();

} // namespace oha::analysis
