/**
 * @file
 * Memoized static-phase results, backed by the shared cross-request
 * cache (service/shared_cache.h).
 *
 * The pipeline and the calibration sweeps (Figures 7/8, Table 2) run
 * the same Andersen configurations repeatedly: the sound analyses are
 * identical across every sweep point, the predicated ones repeat
 * whenever the profiled invariant set has converged, and a single
 * OptFT/OptSlice invocation itself re-runs configurations (the CI
 * pre-pass of a sound CS solve doubles as the endpoint-ranking
 * analysis; lock-elision calibration re-runs the predicated CI
 * analysis the race detector already solved).  In service mode
 * (service/analysis_service.h) the same sharing happens *across
 * requests*: the Nth request for a hot (module, invariant-set) pair
 * skips its static phase entirely.
 *
 * Results are immutable after solving, so they are cached
 * process-wide, keyed by
 *
 *   (module fingerprint, invariant-set fingerprint, solver options)
 *
 * where the fingerprints hash the module's printed form and the
 * invariant set's canonical text serialization — value identity, not
 * object identity, so sweeps (and requests) that rebuild equal
 * workloads still hit.  Entries hold the module alive (results
 * reference it internally) until they are evicted: the shared cache
 * is LRU-evicting against a configurable byte budget, so a long-lived
 * daemon's memory is bounded.
 *
 * Correctness properties of the cache layer:
 *  - every hit verifies a second, independent fingerprint stored in
 *    the entry, so a 64-bit key collision degrades to a counted
 *    verified-miss + fresh solve instead of silently returning the
 *    wrong result;
 *  - inserts are generation-stamped: a solve that started before a
 *    resetAndersenCache() is dropped (counted as staleDrop) instead
 *    of re-populating the fresh cache with a pre-reset result;
 *  - solves run outside the cache lock and the first insert wins, so
 *    concurrent clients share one result object.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "analysis/andersen.h"
#include "analysis/race_detector.h"
#include "ir/module.h"
#include "service/shared_cache.h"

namespace oha::analysis {

/** Cache counters for bench reporting (a view of the shared cache's
 *  counters — see service::SharedCacheStats for field semantics). */
struct AndersenCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /** Primary-fingerprint hits rejected by the secondary-fingerprint
     *  verification (real collisions, served as fresh solves). */
    std::uint64_t verifiedMisses = 0;
    std::uint64_t evictions = 0;
    /** Inserts dropped because a reset intervened mid-solve. */
    std::uint64_t staleDrops = 0;
    /** Misses served by patching a cached ancestor version's result
     *  through the incremental solver instead of solving from
     *  scratch (version lineage; see runAndersenMemo). */
    std::uint64_t lineageHits = 0;
    std::size_t entries = 0;
    std::size_t bytesCached = 0;
    std::size_t byteBudget = 0;
    /** Wavefront-solver shape since the last reset (a copy of
     *  analysis::andersenSolverStats(); solver work happens only on
     *  misses, so reading them alongside hit rates shows what the
     *  cache actually saved). */
    std::uint64_t solverSolves = 0;
    std::uint64_t solverWaves = 0;
    std::uint64_t solverCycleMerges = 0;
    double solverMaxWaveImbalance = 0.0;
};

/**
 * Memoized runAndersen.  @p module must be the module the options'
 * invariants were profiled on; the returned result (and the cache
 * entry behind it, until evicted) keeps it alive.
 *
 * Version lineage: every insert also records the module in a bounded
 * recency list of known versions (depth OHA_LINEAGE_DEPTH, default 8;
 * 0 disables).  A miss for an *edited* module first looks for a
 * cached ancestor version, diffs the two modules (ir::ModuleDiff →
 * analysis::ConstraintDiff) and, when the diff is usable, patches the
 * ancestor's result through AndersenSolver::resolveIncremental
 * instead of solving from scratch — counted as a lineageHit, results
 * identical to a cold solve (only workUnits reflects the smaller
 * incremental effort).  Lineage entries are generation-stamped like
 * everything else: a reset() drops them, so a stale version is never
 * used as a patch base.
 */
std::shared_ptr<const AndersenResult>
runAndersenMemo(const std::shared_ptr<const ir::Module> &module,
                const AndersenOptions &options);

/**
 * Memoized runStaticRaceDetector on the production solver, keyed by
 * (module fingerprint, invariant fingerprint).  Beyond the points-to
 * reuse of runAndersenMemo this caches the *whole* detector output —
 * escape analysis, MHP, locksets and the pair matrix — so calibration
 * sweeps whose invariant sets have converged skip the detector
 * entirely.  The stored workUnits are the deterministic cost of the
 * one real computation, so modeled static-phase costs are identical
 * with or without hits.  @p solverThreads feeds
 * AndersenOptions::solverThreads on misses; it is not part of the
 * cache key (results are byte-identical at every value).
 */
std::shared_ptr<const StaticRaceResult>
runStaticRaceDetectorMemo(const std::shared_ptr<const ir::Module> &module,
                          const inv::InvariantSet *invariants,
                          std::uint32_t solverThreads = 0);

/** Static slices over a fixed endpoint list at one analysis level
 *  (OptSlice phase 3), in memoizable form. */
struct SliceSetResult
{
    std::vector<std::set<InstrId>> slices;
    /** The endpoint instruction slices[i] was computed for (filled by
     *  the memo layer on insert).  Cached entries need them so a
     *  lineage patch for an edited module can match endpoints across
     *  versions — instruction ids are reassigned by every edit. */
    std::vector<InstrId> endpoints;
    bool contextSensitive = false;
    bool complete = false;
    std::uint64_t workUnits = 0;
};

/** Approximate heap footprint, for cache byte budgeting. */
inline std::size_t
byteSizeEstimate(const SliceSetResult &result)
{
    std::size_t bytes =
        sizeof(result) + result.endpoints.size() * sizeof(InstrId);
    for (const std::set<InstrId> &slice : result.slices)
        bytes += sizeof(slice) + slice.size() * (sizeof(InstrId) + 48);
    return bytes;
}

struct ConstraintDiff; // analysis/constraint_diff.h

/** A cached slice set for an ancestor version of the module, offered
 *  to sliceSetMemo's computeIncremental callback as a patch base
 *  (version lineage — see runAndersenMemo). */
struct SliceLineageBase
{
    std::shared_ptr<const ir::Module> module;
    std::shared_ptr<const SliceSetResult> slices;
    /** Invariant set the base slices were computed under (null =
     *  sound). */
    std::shared_ptr<const inv::InvariantSet> invariants;
    /** Lowered diff base -> requested module, usable. */
    const ConstraintDiff *diff = nullptr;
};

/**
 * Memoize a slice-set computation.  Keyed by (module, invariants,
 * configKey, endpoints); @p configKey must encode every slicing knob
 * that can change the output (work budget, picked analysis level).
 * On a miss @p compute runs outside the cache lock; first insert
 * wins.
 *
 * When @p computeIncremental is provided, a miss for an *edited*
 * module first offers cached ancestor-version slice sets (same
 * configKey, usable constraint diff, in lineage recency order) to the
 * callback; a non-nullopt return is cached as the result and counted
 * as a lineageHit, so per-endpoint patching (core/optslice.cc)
 * composes with the cache exactly like the Andersen and detector
 * lineage paths.  The callback must return slices identical to what
 * @p compute would produce.
 */
std::shared_ptr<const SliceSetResult>
sliceSetMemo(const std::shared_ptr<const ir::Module> &module,
             const inv::InvariantSet *invariants, std::uint64_t configKey,
             const std::vector<InstrId> &endpoints,
             const std::function<SliceSetResult()> &compute,
             const std::function<std::optional<SliceSetResult>(
                 const SliceLineageBase &)> &computeIncremental = {});

/**
 * Snapshot-portable view of one cached detector run: both
 * fingerprints of each key component plus the plain-data result.
 * Restored entries are admitted without a module object, so they can
 * serve dual-fingerprint-verified hits but are excluded from version
 * lineage (they can never be incremental patch bases).  Opaque
 * AndersenResult entries are deliberately NOT exportable — points-to
 * graphs reference hash-consed pools and the live module and are
 * recomputed after a restart.
 */
struct RaceSectionEntry
{
    service::Fingerprint moduleFp;
    service::Fingerprint invariantFp;
    std::shared_ptr<const StaticRaceResult> result;
};

/** Slice-set twin of RaceSectionEntry (adds the slicing config key
 *  and the endpoint-list fingerprint). */
struct SliceSectionEntry
{
    service::Fingerprint moduleFp;
    service::Fingerprint invariantFp;
    std::uint64_t configKey = 0;
    service::Fingerprint auxFp;
    std::shared_ptr<const SliceSetResult> result;
};

/** Copy the cached detector / slice-set entries out for snapshotting
 *  (service/snapshot.cc).  Safe to call concurrently with requests. */
std::vector<RaceSectionEntry> exportRaceSection();
std::vector<SliceSectionEntry> exportSliceSection();

/** Re-admit a restored entry (warm start).  First insert wins: a live
 *  entry for the same key is never displaced.  The entry joins the
 *  LRU spine with its byte estimate charged against the budget. */
void admitRaceSectionEntry(const RaceSectionEntry &entry);
void admitSliceSectionEntry(const SliceSectionEntry &entry);

/** Process-wide cache counters since start / last reset. */
AndersenCacheStats andersenCacheStats();

/** Byte budget the shared cache evicts against.  Convenience
 *  forwarders to service::SharedCache::instance(). */
void setStaticCacheByteBudget(std::size_t bytes);
std::size_t staticCacheByteBudget();

/** Drop all cached results (static results AND recorded traces — the
 *  whole shared cache) and zero the counters (tests, benchmarks). */
void resetAndersenCache();

} // namespace oha::analysis
