#include "analysis/mhp.h"

#include "support/thread_pool.h"

namespace oha::analysis {

namespace {

/** Index of @p instr within its block (ids are dense per block). */
std::size_t
indexInBlock(const ir::Module &module, const ir::Instruction &ins)
{
    const ir::BasicBlock *block = module.block(ins.block);
    return ins.id - block->instructions().front().id;
}

} // namespace

MhpAnalysis::MhpAnalysis(const ir::Module &module,
                         const AndersenResult &andersen,
                         const CallGraph &callGraph,
                         const inv::InvariantSet *invariants)
    : module_(module)
{
    (void)andersen;
    spawnSites_ = callGraph.spawnSites();
    funcRegions_.resize(module.numFunctions());

    const FuncId mainId = module.entryFunction()->id();
    for (FuncId f : callGraph.reachableFrom(mainId))
        funcRegions_[f].insert(0);
    for (std::size_t i = 0; i < spawnSites_.size(); ++i) {
        const ir::Instruction &spawn = module_.instr(spawnSites_[i]);
        for (FuncId f : callGraph.reachableFrom(spawn.callee))
            funcRegions_[f].insert(static_cast<RegionId>(i + 1));
    }

    // Match each spawn to a join in the same function whose handle
    // register is defined solely by that spawn (through Assign
    // chains).  Sites are independent; compute the matches batched
    // and record them in site order.
    const std::vector<InstrId> joins = support::runBatch(
        spawnSites_.size(), [&](std::size_t s) -> InstrId {
            const InstrId site = spawnSites_[s];
            const ir::Instruction &spawn = module_.instr(site);
            const ir::Function *func = module_.function(spawn.func);

            // Gather defs per register once per function.
            std::map<ir::Reg, std::vector<const ir::Instruction *>> defs;
            for (const auto &block : func->blocks())
                for (const ir::Instruction &ins : block->instructions())
                    if (ins.dest != ir::kNoReg)
                        defs[ins.dest].push_back(&ins);

            auto traceToSpawn =
                [&](ir::Reg reg) -> const ir::Instruction * {
                for (int depth = 0; depth < 8; ++depth) {
                    auto it = defs.find(reg);
                    if (it == defs.end() || it->second.size() != 1)
                        return nullptr;
                    const ir::Instruction *def = it->second.front();
                    if (def->op == ir::Opcode::Spawn)
                        return def;
                    if (def->op == ir::Opcode::Assign) {
                        reg = def->a;
                        continue;
                    }
                    return nullptr;
                }
                return nullptr;
            };

            InstrId match = kNoInstr;
            for (const auto &block : func->blocks()) {
                for (const ir::Instruction &ins :
                     block->instructions()) {
                    if (ins.op != ir::Opcode::Join)
                        continue;
                    const ir::Instruction *src = traceToSpawn(ins.a);
                    if (src && src->id == site) {
                        match = ins.id;
                        break;
                    }
                }
            }
            return match;
        });
    for (std::size_t s = 0; s < spawnSites_.size(); ++s)
        if (joins[s] != kNoInstr)
            joinOf_[spawnSites_[s]] = joins[s];

    // Ordering claims like "access must precede spawn" are only sound
    // inside a function that executes at most once: re-entering the
    // function re-runs the "earlier" access after the spawn.  main
    // qualifies when nothing calls, spawns, or takes its address.
    orderingFunc_ = mainId;
    if (callGraph.isCalleeSomewhere(mainId))
        orderingFunc_ = kNoFunc;
    for (InstrId id = 0;
         orderingFunc_ != kNoFunc && id < module.numInstrs(); ++id) {
        const ir::Instruction &ins = module.instr(id);
        if ((ins.op == ir::Opcode::Spawn ||
             ins.op == ir::Opcode::FuncAddr) &&
            ins.callee == mainId) {
            orderingFunc_ = kNoFunc;
        }
    }

    // Single-shot spawn sites.  Statically provable only in the
    // trivial case: the spawn sits in non-re-entrant main outside any
    // CFG cycle.  The likely-singleton-thread invariant supplies the
    // rest.
    for (InstrId site : spawnSites_) {
        const ir::Instruction &spawn = module_.instr(site);
        if (spawn.func == orderingFunc_ &&
            !cfgOf(spawn.func).reaches(spawn.block, spawn.block)) {
            singleton_.insert(site);
        }
        if (invariants && invariants->singletonSpawnSites.count(site))
            singleton_.insert(site);
    }
}

const ir::Cfg &
MhpAnalysis::cfgOf(FuncId func) const
{
    std::lock_guard<std::mutex> lock(cfgMutex_);
    auto it = cfgs_.find(func);
    if (it == cfgs_.end()) {
        it = cfgs_.emplace(func, std::make_unique<ir::Cfg>(
                                     *module_.function(func)))
                 .first;
    }
    return *it->second;
}

bool
MhpAnalysis::mustPrecedeInFunction(InstrId a, InstrId b) const
{
    const ir::Instruction &ia = module_.instr(a);
    const ir::Instruction &ib = module_.instr(b);
    // Sound only in the single-invocation entry function: a re-entered
    // function runs its "earlier" instructions again, after b.
    if (ia.func != ib.func || ia.func != orderingFunc_)
        return false;
    const ir::Cfg &cfg = cfgOf(ia.func);
    // "a can never execute after b": rule out b-to-a control flow.
    if (cfg.reaches(ib.block, ia.block))
        return false;
    if (ia.block == ib.block) {
        if (cfg.reaches(ia.block, ia.block))
            return false; // shared loop block: either order possible
        return indexInBlock(module_, ia) < indexInBlock(module_, ib);
    }
    return true;
}

bool
MhpAnalysis::dominatesInFunction(InstrId a, InstrId b) const
{
    const ir::Instruction &ia = module_.instr(a);
    const ir::Instruction &ib = module_.instr(b);
    if (ia.func != ib.func)
        return false;
    if (ia.block == ib.block)
        return indexInBlock(module_, ia) < indexInBlock(module_, ib);
    return cfgOf(ia.func).dominates(ia.block, ib.block);
}

bool
MhpAnalysis::orderedRegions(RegionId ra, InstrId ia, RegionId rb,
                            InstrId ib) const
{
    if (ra == rb) {
        if (ra == 0)
            return true; // both on the main thread
        // Same spawn site: ordered only when the site provably
        // creates a single thread.
        return singleton_.count(spawnSites_[ra - 1]) > 0;
    }
    if (rb == 0)
        return orderedRegions(rb, ib, ra, ia);

    const InstrId siteB = spawnSites_[rb - 1];
    if (ra == 0) {
        // Main-thread access vs. thread of siteB.
        if (mustPrecedeInFunction(ia, siteB))
            return true;
        const InstrId joinB = matchedJoin(siteB);
        if (joinB != kNoInstr && singleton_.count(siteB) &&
            dominatesInFunction(joinB, ia)) {
            return true;
        }
        return false;
    }

    // Thread vs. thread: ordered when one side's join dominates the
    // other side's spawn (both single-shot; sound in any function —
    // the joined singleton thread has retired once the join ran, and
    // the dominated spawn can only execute afterwards).
    const InstrId siteA = spawnSites_[ra - 1];
    const InstrId joinA = matchedJoin(siteA);
    if (joinA != kNoInstr && singleton_.count(siteA) &&
        singleton_.count(siteB) && dominatesInFunction(joinA, siteB)) {
        return true;
    }
    const InstrId joinB = matchedJoin(siteB);
    if (joinB != kNoInstr && singleton_.count(siteB) &&
        singleton_.count(siteA) && dominatesInFunction(joinB, siteA)) {
        return true;
    }
    return false;
}

bool
MhpAnalysis::mayHappenInParallel(InstrId a, InstrId b) const
{
    const auto &regionsA = funcRegions_[module_.instr(a).func];
    const auto &regionsB = funcRegions_[module_.instr(b).func];
    if (regionsA.empty() || regionsB.empty())
        return false; // unreachable code never runs
    for (RegionId ra : regionsA)
        for (RegionId rb : regionsB)
            if (!orderedRegions(ra, a, rb, b))
                return true;
    return false;
}

} // namespace oha::analysis
