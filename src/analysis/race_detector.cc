#include "analysis/race_detector.h"

#include <deque>

#include "analysis/andersen_cache.h"
#include "analysis/callgraph.h"
#include "analysis/lockset.h"
#include "analysis/mhp.h"
#include "support/thread_pool.h"

namespace oha::analysis {

namespace {

/** Compute the set of cells reachable by more than one thread. */
SparseBitSet
escapedCells(const ir::Module &module, const AndersenResult &andersen,
             const CallGraph &callGraph)
{
    SparseBitSet escaped;
    std::deque<CellId> work;

    auto escapeCell = [&](CellId cell) {
        if (escaped.insert(cell))
            work.push_back(cell);
    };
    auto escapeObjectOf = [&](CellId cell) {
        const AbsObjectId obj = andersen.memory.objectOfCell(cell);
        const AbsObject &o = andersen.memory.object(obj);
        for (std::uint32_t f = 0; f < o.size; ++f)
            escapeCell(o.baseCell + f);
    };

    // Seeds: every global cell, and everything a spawn argument may
    // point to.
    for (AbsObjectId obj = 0; obj < andersen.memory.numObjects(); ++obj) {
        const AbsObject &o = andersen.memory.object(obj);
        if (o.kind == AbsObjectKind::Global)
            for (std::uint32_t f = 0; f < o.size; ++f)
                escapeCell(o.baseCell + f);
    }
    for (InstrId site : callGraph.spawnSites()) {
        const ir::Instruction &spawn = module.instr(site);
        for (ir::Reg arg : spawn.args) {
            andersen.ptsAllContexts(spawn.func, arg)
                .forEach([&](CellId cell) { escapeObjectOf(cell); });
        }
    }

    // Closure: anything stored in an escaped cell escapes.
    while (!work.empty()) {
        const CellId cell = work.front();
        work.pop_front();
        andersen.cellPts(cell).forEach(
            [&](CellId target) { escapeObjectOf(target); });
    }
    return escaped;
}

} // namespace

StaticRaceResult
runStaticRaceDetector(const ir::Module &module,
                      const inv::InvariantSet *invariants,
                      const std::shared_ptr<const ir::Module> &shared,
                      bool referenceSolver)
{
    OHA_ASSERT(!shared || shared.get() == &module,
               "shared must alias module");
    StaticRaceResult result;

    AndersenOptions ptsOptions;
    ptsOptions.invariants = invariants;
    ptsOptions.referenceSolver = referenceSolver;
    std::shared_ptr<const AndersenResult> memoized;
    if (shared)
        memoized = runAndersenMemo(shared, ptsOptions);
    const AndersenResult andersen =
        memoized ? AndersenResult() : runAndersen(module, ptsOptions);
    const AndersenResult &pts = memoized ? *memoized : andersen;
    result.workUnits += pts.workUnits;

    const CallGraph callGraph(module, pts, invariants);
    const MhpAnalysis mhp(module, pts, callGraph, invariants);
    const LocksetAnalysis locksets(module, pts, invariants);

    const SparseBitSet escaped = escapedCells(module, pts, callGraph);

    auto live = [&](BlockId block) {
        return !invariants || invariants->blockVisited(block);
    };

    // Accesses worth considering: live loads/stores whose targets
    // include an escaped cell.
    struct Access
    {
        InstrId id;
        bool isStore;
        SparseBitSet targets;
    };
    std::vector<Access> accesses;
    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        const ir::Instruction &ins = module.instr(id);
        if (!ins.isMemAccess() || !live(ins.block))
            continue;
        SparseBitSet targets = pts.pointerTargets(id);
        targets.intersectWith(escaped);
        if (targets.empty())
            continue;
        accesses.push_back(
            {id, ins.op == ir::Opcode::Store, std::move(targets)});
    }
    result.accessesConsidered = accesses.size();

    // Pair construction: alias ∧ MHP ∧ at least one write, then
    // lockset pruning (predicated only).  Rows of the upper-triangular
    // pair matrix are independent; run them batched and fold the
    // per-row findings in row order (every accumulator is a set or a
    // commutative sum, so the fold matches the serial double loop for
    // any thread count).
    struct RowFindings
    {
        std::uint64_t workUnits = 0;
        std::vector<std::pair<InstrId, InstrId>> racyPairs;
        std::vector<std::pair<InstrId, InstrId>> usedLockAliases;
    };
    const std::vector<RowFindings> rows = support::runBatch(
        accesses.size(), [&](std::size_t i) {
            RowFindings row;
            for (std::size_t j = i; j < accesses.size(); ++j) {
                ++row.workUnits;
                const Access &a = accesses[i];
                const Access &b = accesses[j];
                if (!a.isStore && !b.isStore)
                    continue;
                if (!a.targets.intersects(b.targets))
                    continue;
                if (!mhp.mayHappenInParallel(a.id, b.id))
                    continue;

                if (invariants) {
                    // Likely-guarding-locks pruning: some held pair
                    // must must-alias.
                    const auto &heldA = locksets.locksHeldAt(a.id);
                    const auto &heldB = locksets.locksHeldAt(b.id);
                    bool guarded = false;
                    InstrId gA = kNoInstr, gB = kNoInstr;
                    for (InstrId la : heldA) {
                        for (InstrId lb : heldB) {
                            if (invariants->locksMustAlias(la, lb)) {
                                guarded = true;
                                gA = std::min(la, lb);
                                gB = std::max(la, lb);
                                break;
                            }
                        }
                        if (guarded)
                            break;
                    }
                    if (guarded) {
                        row.usedLockAliases.push_back({gA, gB});
                        continue;
                    }
                }

                row.racyPairs.push_back(
                    {std::min(a.id, b.id), std::max(a.id, b.id)});
            }
            return row;
        });
    for (const RowFindings &row : rows) {
        result.workUnits += row.workUnits;
        for (const auto &pair : row.racyPairs) {
            result.racyPairs.insert(pair);
            result.racyAccesses.insert(pair.first);
            result.racyAccesses.insert(pair.second);
        }
        result.usedLockAliases.insert(row.usedLockAliases.begin(),
                                      row.usedLockAliases.end());
    }

    // Record which singleton assumptions mattered: any invariant
    // singleton site that is not statically provable must be checked
    // at runtime.  (Checking all of them is cheap; we report the set
    // the MHP analysis consumed.)
    if (invariants) {
        for (InstrId site : invariants->singletonSpawnSites)
            if (mhp.singletonSites().count(site))
                result.usedSingletonSites.insert(site);
    }

    return result;
}

} // namespace oha::analysis
