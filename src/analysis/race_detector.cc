#include "analysis/race_detector.h"

#include <deque>

#include "analysis/callgraph.h"
#include "analysis/lockset.h"
#include "analysis/mhp.h"

namespace oha::analysis {

namespace {

/** Compute the set of cells reachable by more than one thread. */
SparseBitSet
escapedCells(const ir::Module &module, const AndersenResult &andersen,
             const CallGraph &callGraph)
{
    SparseBitSet escaped;
    std::deque<CellId> work;

    auto escapeCell = [&](CellId cell) {
        if (escaped.insert(cell))
            work.push_back(cell);
    };
    auto escapeObjectOf = [&](CellId cell) {
        const AbsObjectId obj = andersen.memory.objectOfCell(cell);
        const AbsObject &o = andersen.memory.object(obj);
        for (std::uint32_t f = 0; f < o.size; ++f)
            escapeCell(o.baseCell + f);
    };

    // Seeds: every global cell, and everything a spawn argument may
    // point to.
    for (AbsObjectId obj = 0; obj < andersen.memory.numObjects(); ++obj) {
        const AbsObject &o = andersen.memory.object(obj);
        if (o.kind == AbsObjectKind::Global)
            for (std::uint32_t f = 0; f < o.size; ++f)
                escapeCell(o.baseCell + f);
    }
    for (InstrId site : callGraph.spawnSites()) {
        const ir::Instruction &spawn = module.instr(site);
        for (ir::Reg arg : spawn.args) {
            andersen.ptsAllContexts(spawn.func, arg)
                .forEach([&](CellId cell) { escapeObjectOf(cell); });
        }
    }

    // Closure: anything stored in an escaped cell escapes.
    while (!work.empty()) {
        const CellId cell = work.front();
        work.pop_front();
        andersen.cellPts(cell).forEach(
            [&](CellId target) { escapeObjectOf(target); });
    }
    return escaped;
}

} // namespace

StaticRaceResult
runStaticRaceDetector(const ir::Module &module,
                      const inv::InvariantSet *invariants)
{
    StaticRaceResult result;

    AndersenOptions ptsOptions;
    ptsOptions.invariants = invariants;
    const AndersenResult andersen = runAndersen(module, ptsOptions);
    result.workUnits += andersen.workUnits;

    const CallGraph callGraph(module, andersen, invariants);
    const MhpAnalysis mhp(module, andersen, callGraph, invariants);
    const LocksetAnalysis locksets(module, andersen, invariants);

    const SparseBitSet escaped = escapedCells(module, andersen, callGraph);

    auto live = [&](BlockId block) {
        return !invariants || invariants->blockVisited(block);
    };

    // Accesses worth considering: live loads/stores whose targets
    // include an escaped cell.
    struct Access
    {
        InstrId id;
        bool isStore;
        SparseBitSet targets;
    };
    std::vector<Access> accesses;
    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        const ir::Instruction &ins = module.instr(id);
        if (!ins.isMemAccess() || !live(ins.block))
            continue;
        SparseBitSet targets = andersen.pointerTargets(id);
        targets.intersectWith(escaped);
        if (targets.empty())
            continue;
        accesses.push_back(
            {id, ins.op == ir::Opcode::Store, std::move(targets)});
    }
    result.accessesConsidered = accesses.size();

    // Pair construction: alias ∧ MHP ∧ at least one write, then
    // lockset pruning (predicated only).
    for (std::size_t i = 0; i < accesses.size(); ++i) {
        for (std::size_t j = i; j < accesses.size(); ++j) {
            ++result.workUnits;
            const Access &a = accesses[i];
            const Access &b = accesses[j];
            if (!a.isStore && !b.isStore)
                continue;
            if (!a.targets.intersects(b.targets))
                continue;
            if (!mhp.mayHappenInParallel(a.id, b.id))
                continue;

            if (invariants) {
                // Likely-guarding-locks pruning: some held pair must
                // must-alias.
                const auto &heldA = locksets.locksHeldAt(a.id);
                const auto &heldB = locksets.locksHeldAt(b.id);
                bool guarded = false;
                InstrId gA = kNoInstr, gB = kNoInstr;
                for (InstrId la : heldA) {
                    for (InstrId lb : heldB) {
                        if (invariants->locksMustAlias(la, lb)) {
                            guarded = true;
                            gA = std::min(la, lb);
                            gB = std::max(la, lb);
                            break;
                        }
                    }
                    if (guarded)
                        break;
                }
                if (guarded) {
                    result.usedLockAliases.insert({gA, gB});
                    continue;
                }
            }

            result.racyPairs.insert(
                {std::min(a.id, b.id), std::max(a.id, b.id)});
            result.racyAccesses.insert(a.id);
            result.racyAccesses.insert(b.id);
        }
    }

    // Record which singleton assumptions mattered: any invariant
    // singleton site that is not statically provable must be checked
    // at runtime.  (Checking all of them is cheap; we report the set
    // the MHP analysis consumed.)
    if (invariants) {
        for (InstrId site : invariants->singletonSpawnSites)
            if (mhp.singletonSites().count(site))
                result.usedSingletonSites.insert(site);
    }

    return result;
}

} // namespace oha::analysis
