#include "analysis/race_detector.h"

#include <algorithm>
#include <deque>
#include <map>
#include <string>

#include "analysis/andersen_cache.h"
#include "analysis/callgraph.h"
#include "analysis/constraint_diff.h"
#include "analysis/lockset.h"
#include "analysis/mhp.h"
#include "support/thread_pool.h"

namespace oha::analysis {

namespace {

/** Compute the set of cells reachable by more than one thread. */
SparseBitSet
escapedCells(const ir::Module &module, const AndersenResult &andersen,
             const CallGraph &callGraph)
{
    SparseBitSet escaped;
    std::deque<CellId> work;

    auto escapeCell = [&](CellId cell) {
        if (escaped.insert(cell))
            work.push_back(cell);
    };
    auto escapeObjectOf = [&](CellId cell) {
        const AbsObjectId obj = andersen.memory.objectOfCell(cell);
        const AbsObject &o = andersen.memory.object(obj);
        for (std::uint32_t f = 0; f < o.size; ++f)
            escapeCell(o.baseCell + f);
    };

    // Seeds: every global cell, and everything a spawn argument may
    // point to.
    for (AbsObjectId obj = 0; obj < andersen.memory.numObjects(); ++obj) {
        const AbsObject &o = andersen.memory.object(obj);
        if (o.kind == AbsObjectKind::Global)
            for (std::uint32_t f = 0; f < o.size; ++f)
                escapeCell(o.baseCell + f);
    }
    for (InstrId site : callGraph.spawnSites()) {
        const ir::Instruction &spawn = module.instr(site);
        for (ir::Reg arg : spawn.args) {
            andersen.ptsAllContexts(spawn.func, arg)
                .forEach([&](CellId cell) { escapeObjectOf(cell); });
        }
    }

    // Closure: anything stored in an escaped cell escapes.
    while (!work.empty()) {
        const CellId cell = work.front();
        work.pop_front();
        andersen.cellPts(cell).forEach(
            [&](CellId target) { escapeObjectOf(target); });
    }
    return escaped;
}

/** A memory access worth considering: live, targets escape. */
struct Access
{
    InstrId id;
    bool isStore;
    SparseBitSet targets;
};

std::vector<Access>
collectAccesses(const ir::Module &module, const AndersenResult &pts,
                const SparseBitSet &escaped,
                const inv::InvariantSet *invariants)
{
    std::vector<Access> accesses;
    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        const ir::Instruction &ins = module.instr(id);
        if (!ins.isMemAccess())
            continue;
        if (invariants && !invariants->blockVisited(ins.block))
            continue;
        SparseBitSet targets = pts.pointerTargets(id);
        targets.intersectWith(escaped);
        if (targets.empty())
            continue;
        accesses.push_back(
            {id, ins.op == ir::Opcode::Store, std::move(targets)});
    }
    return accesses;
}

/**
 * Likely-guarding-locks check for one candidate pair: true (and the
 * used alias pair reported through @p gA/@p gB) when some pair of
 * held locks must-alias under @p invariants.
 */
bool
pairGuarded(const LocksetAnalysis &locksets,
            const inv::InvariantSet &invariants, InstrId a, InstrId b,
            InstrId &gA, InstrId &gB)
{
    const auto &heldA = locksets.locksHeldAt(a);
    const auto &heldB = locksets.locksHeldAt(b);
    for (InstrId la : heldA) {
        for (InstrId lb : heldB) {
            if (invariants.locksMustAlias(la, lb)) {
                gA = std::min(la, lb);
                gB = std::max(la, lb);
                return true;
            }
        }
    }
    return false;
}

} // namespace

StaticRaceResult
runStaticRaceDetector(const ir::Module &module,
                      const inv::InvariantSet *invariants,
                      const std::shared_ptr<const ir::Module> &shared,
                      bool referenceSolver, std::uint32_t solverThreads)
{
    OHA_ASSERT(!shared || shared.get() == &module,
               "shared must alias module");
    StaticRaceResult result;

    AndersenOptions ptsOptions;
    ptsOptions.invariants = invariants;
    ptsOptions.referenceSolver = referenceSolver;
    ptsOptions.solverThreads = solverThreads;
    std::shared_ptr<const AndersenResult> memoized;
    if (shared)
        memoized = runAndersenMemo(shared, ptsOptions);
    const AndersenResult andersen =
        memoized ? AndersenResult() : runAndersen(module, ptsOptions);
    const AndersenResult &pts = memoized ? *memoized : andersen;
    result.workUnits += pts.workUnits;

    const CallGraph callGraph(module, pts, invariants);
    const MhpAnalysis mhp(module, pts, callGraph, invariants);
    const LocksetAnalysis locksets(module, pts, invariants);

    const SparseBitSet escaped = escapedCells(module, pts, callGraph);

    // Accesses worth considering: live loads/stores whose targets
    // include an escaped cell.
    const std::vector<Access> accesses =
        collectAccesses(module, pts, escaped, invariants);
    result.accessesConsidered = accesses.size();

    // Pair construction: alias ∧ MHP ∧ at least one write, then
    // lockset pruning (predicated only).  Rows of the upper-triangular
    // pair matrix are independent; run them batched and fold the
    // per-row findings in row order (every accumulator is a set or a
    // commutative sum, so the fold matches the serial double loop for
    // any thread count).
    struct RowFindings
    {
        std::uint64_t workUnits = 0;
        std::vector<std::pair<InstrId, InstrId>> candidatePairs;
        std::vector<std::pair<InstrId, InstrId>> racyPairs;
        std::vector<std::pair<InstrId, InstrId>> usedLockAliases;
    };
    const std::vector<RowFindings> rows = support::runBatch(
        accesses.size(), [&](std::size_t i) {
            RowFindings row;
            for (std::size_t j = i; j < accesses.size(); ++j) {
                ++row.workUnits;
                const Access &a = accesses[i];
                const Access &b = accesses[j];
                if (!a.isStore && !b.isStore)
                    continue;
                if (!a.targets.intersects(b.targets))
                    continue;
                if (!mhp.mayHappenInParallel(a.id, b.id))
                    continue;
                row.candidatePairs.push_back(
                    {std::min(a.id, b.id), std::max(a.id, b.id)});

                if (invariants) {
                    // Likely-guarding-locks pruning: some held pair
                    // must must-alias.
                    InstrId gA = kNoInstr, gB = kNoInstr;
                    if (pairGuarded(locksets, *invariants, a.id, b.id,
                                    gA, gB)) {
                        row.usedLockAliases.push_back({gA, gB});
                        continue;
                    }
                }

                row.racyPairs.push_back(
                    {std::min(a.id, b.id), std::max(a.id, b.id)});
            }
            return row;
        });
    for (const RowFindings &row : rows) {
        result.workUnits += row.workUnits;
        result.candidatePairs.insert(row.candidatePairs.begin(),
                                     row.candidatePairs.end());
        for (const auto &pair : row.racyPairs) {
            result.racyPairs.insert(pair);
            result.racyAccesses.insert(pair.first);
            result.racyAccesses.insert(pair.second);
        }
        result.usedLockAliases.insert(row.usedLockAliases.begin(),
                                      row.usedLockAliases.end());
    }

    // Record which singleton assumptions mattered: any invariant
    // singleton site that is not statically provable must be checked
    // at runtime.  (Checking all of them is cheap; we report the set
    // the MHP analysis consumed.)
    if (invariants) {
        for (InstrId site : invariants->singletonSpawnSites)
            if (mhp.singletonSites().count(site))
                result.usedSingletonSites.insert(site);
    }

    return result;
}

namespace {

/** (caller name, callee name) pairs of every resolved call/spawn
 *  connection — the function-level call structure MHP regions and
 *  escape seeding depend on. */
std::set<std::pair<std::string, std::string>>
callEdgeNames(const ir::Module &module, const AndersenResult &pts)
{
    std::set<std::pair<std::string, std::string>> names;
    for (const auto &[edge, calleeCtx] : pts.callEdges()) {
        const auto &[ctx, site, callee] = edge;
        (void)site;
        (void)calleeCtx;
        names.insert({module.function(pts.contexts[ctx].func)->name(),
                      module.function(callee)->name()});
    }
    return names;
}

/** True if any live Spawn/Join of @p module sits in a function the
 *  predicate rejects. */
template <typename Reject>
bool
spawnStructureRejected(const ir::Module &module,
                       const inv::InvariantSet *invariants,
                       const Reject &reject)
{
    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        const ir::Instruction &ins = module.instr(id);
        if (ins.op != ir::Opcode::Spawn && ins.op != ir::Opcode::Join)
            continue;
        if (invariants && !invariants->blockVisited(ins.block))
            continue;
        if (reject(ins.func))
            return true;
    }
    return false;
}

/** True if anything spawns @p target or takes its address — the
 *  syntactic half of MhpAnalysis's re-entrancy test for the ordering
 *  function (the call-edge half is compared via the call graphs). */
bool
spawnsOrTakesAddressOf(const ir::Module &module, FuncId target)
{
    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        const ir::Instruction &ins = module.instr(id);
        if ((ins.op == ir::Opcode::Spawn ||
             ins.op == ir::Opcode::FuncAddr) &&
            ins.callee == target)
            return true;
    }
    return false;
}

} // namespace

StaticRaceResult
runStaticRaceDetectorIncremental(
    const std::shared_ptr<const ir::Module> &module,
    const inv::InvariantSet *invariants,
    const RaceIncrementalInput &input, bool *usedIncremental,
    std::uint32_t solverThreads)
{
    bool localUsed = false;
    if (!usedIncremental)
        usedIncremental = &localUsed;
    *usedIncremental = false;

    OHA_ASSERT(module && input.baseModule && input.baseRace &&
               input.diff);
    const ir::Module &next = *module;
    const ir::Module &base = *input.baseModule;
    const ConstraintDiff &diff = *input.diff;
    const inv::InvariantSet *baseInv = input.baseInvariants.get();

    auto fallback = [&] {
        return runStaticRaceDetector(next, invariants, module, false,
                                     solverThreads);
    };
    if (!diff.usable)
        return fallback();

    // Points-to for both versions through the memo: the next side
    // takes the lineage-patched incremental path; the base side is a
    // warm hit whenever the base detector's solve is still cached.
    AndersenOptions nextOptions;
    nextOptions.invariants = invariants;
    nextOptions.solverThreads = solverThreads;
    const std::shared_ptr<const AndersenResult> nextPts =
        runAndersenMemo(module, nextOptions);
    AndersenOptions baseOptions;
    baseOptions.invariants = baseInv;
    baseOptions.solverThreads = solverThreads;
    const std::shared_ptr<const AndersenResult> basePts =
        runAndersenMemo(input.baseModule, baseOptions);
    if (!nextPts->completed || !basePts->completed)
        return fallback();

    // Cross-version identity and the dirty region: functions whose
    // constraints, points-to values or invariant slice may differ.
    const VersionMap vmap = buildVersionMap(base, next);
    const std::vector<std::uint32_t> ctxMap = mapContexts(
        base, next, vmap, basePts->contexts, nextPts->contexts);
    const std::vector<CellId> cellMap =
        mapCells(basePts->memory, nextPts->memory, vmap, ctxMap);
    const std::vector<bool> dirty = unionDirtyClosure(
        base, *basePts, next, *nextPts, diff, baseInv, invariants);

    // ---- Global structure guards --------------------------------------
    // MHP verdicts for clean pairs carry over only when the global
    // thread structure is version-stable.  MHP never reads points-to
    // values directly, so the guards are body/invariant-slice level,
    // not node-taint level: the ordering (entry) function's body and
    // invariant slice are unchanged (regions depend on its spawn/join
    // positions), its re-entrancy determination is identical on both
    // sides, every live Spawn/Join sits in a body- and slice-stable
    // function, the function-level call structure is identical, and
    // the thread-escape set translates exactly.  Any drift falls back
    // to the full pair matrix (still cheap — the points-to phase above
    // was incremental).
    const std::set<std::string> seedNames = diff.seedNames();
    const ir::Function *nextMain = next.functionByName("main");
    const ir::Function *baseMain = base.functionByName("main");
    if (!nextMain || !baseMain ||
        !vmap.bodyUnchanged[baseMain->id()] ||
        vmap.funcMap[baseMain->id()] != nextMain->id() ||
        seedNames.count("main"))
        return fallback();
    if (spawnsOrTakesAddressOf(base, baseMain->id()) !=
        spawnsOrTakesAddressOf(next, nextMain->id()))
        return fallback();
    std::vector<char> nextUnchanged(dirty.size(), 0);
    for (FuncId f = 0; f < vmap.funcMap.size(); ++f)
        if (vmap.bodyUnchanged[f])
            nextUnchanged[vmap.funcMap[f]] = 1;
    auto baseFuncRejected = [&](FuncId f) {
        return !vmap.bodyUnchanged[f] ||
               seedNames.count(base.function(f)->name()) != 0;
    };
    auto nextFuncRejected = [&](FuncId f) {
        return !nextUnchanged[f] ||
               seedNames.count(next.function(f)->name()) != 0;
    };
    if (spawnStructureRejected(base, baseInv, baseFuncRejected) ||
        spawnStructureRejected(next, invariants, nextFuncRejected))
        return fallback();
    if (callEdgeNames(base, *basePts) != callEdgeNames(next, *nextPts))
        return fallback();

    const CallGraph baseCallGraph(base, *basePts, baseInv);
    const CallGraph callGraph(next, *nextPts, invariants);
    if (baseCallGraph.isCalleeSomewhere(baseMain->id()) !=
        callGraph.isCalleeSomewhere(nextMain->id()))
        return fallback();
    const SparseBitSet escapedBase =
        escapedCells(base, *basePts, baseCallGraph);
    const SparseBitSet escaped = escapedCells(next, *nextPts, callGraph);
    SparseBitSet escapedTranslated;
    if (!translateCellSet(escapedBase, cellMap, escapedTranslated) ||
        !(escapedTranslated == escaped))
        return fallback();

    // ---- Patched pair construction ------------------------------------
    StaticRaceResult result;
    result.workUnits += nextPts->workUnits;

    const MhpAnalysis mhp(next, *nextPts, callGraph, invariants);
    const LocksetAnalysis locksets(next, *nextPts, invariants);
    const std::vector<Access> accesses =
        collectAccesses(next, *nextPts, escaped, invariants);
    result.accessesConsidered = accesses.size();

    // Clean-pair candidates carry over from the base run, mapped
    // through the cross-version instruction map.
    std::set<std::pair<InstrId, InstrId>> candidates;
    for (const auto &[x, y] : input.baseRace->candidatePairs) {
        ++result.workUnits;
        const InstrId nx = vmap.instrMap[x];
        const InstrId ny = vmap.instrMap[y];
        if (nx == kNoInstr || ny == kNoInstr)
            continue;
        if (dirty[next.instr(nx).func] || dirty[next.instr(ny).func])
            continue;
        candidates.insert({std::min(nx, ny), std::max(nx, ny)});
    }
    // Pairs touching a dirty function are evaluated in full — this
    // rectangle (dirty × all) is the only surviving slice of the
    // O(accesses²) matrix.
    for (std::size_t i = 0; i < accesses.size(); ++i) {
        for (std::size_t j = i; j < accesses.size(); ++j) {
            const Access &a = accesses[i];
            const Access &b = accesses[j];
            if (!dirty[next.instr(a.id).func] &&
                !dirty[next.instr(b.id).func])
                continue;
            ++result.workUnits;
            if (!a.isStore && !b.isStore)
                continue;
            if (!a.targets.intersects(b.targets))
                continue;
            if (!mhp.mayHappenInParallel(a.id, b.id))
                continue;
            candidates.insert(
                {std::min(a.id, b.id), std::max(a.id, b.id)});
        }
    }

    // Lock-guard pruning depends on the NEW invariant set, so it is
    // re-evaluated for every candidate, clean or dirty.
    for (const auto &pair : candidates) {
        result.candidatePairs.insert(pair);
        if (invariants) {
            InstrId gA = kNoInstr, gB = kNoInstr;
            if (pairGuarded(locksets, *invariants, pair.first,
                            pair.second, gA, gB)) {
                result.usedLockAliases.insert({gA, gB});
                continue;
            }
        }
        result.racyPairs.insert(pair);
        result.racyAccesses.insert(pair.first);
        result.racyAccesses.insert(pair.second);
    }

    if (invariants) {
        for (InstrId site : invariants->singletonSpawnSites)
            if (mhp.singletonSites().count(site))
                result.usedSingletonSites.insert(site);
    }

    *usedIncremental = true;
    return result;
}

} // namespace oha::analysis
