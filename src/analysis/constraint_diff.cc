#include "analysis/constraint_diff.h"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <tuple>

#include "support/thread_pool.h"

namespace oha::analysis {

namespace {

bool
blockLive(const inv::InvariantSet *inv, const ir::BasicBlock &block)
{
    return !inv || inv->blockVisited(block.id());
}

bool
generatesConstraint(ir::Opcode op)
{
    switch (op) {
      case ir::Opcode::Alloc:
      case ir::Opcode::GlobalAddr:
      case ir::Opcode::FuncAddr:
      case ir::Opcode::Assign:
      case ir::Opcode::Gep:
      case ir::Opcode::Load:
      case ir::Opcode::Store:
      case ir::Opcode::Call:
      case ir::Opcode::ICall:
      case ir::Opcode::Spawn:
      case ir::Opcode::Join:
      case ir::Opcode::Ret:
        return true;
      default:
        return false;
    }
}

std::size_t
countConstraints(const ir::Module &module, const std::string &name,
                 const inv::InvariantSet *inv)
{
    const ir::Function *func = module.functionByName(name);
    if (!func)
        return 0;
    std::size_t count = 0;
    for (const auto &block : func->blocks()) {
        if (!blockLive(inv, *block))
            continue;
        for (const ir::Instruction &instr : block->instructions())
            if (generatesConstraint(instr.op))
                ++count;
    }
    return count;
}

bool
hasLiveSpawnOrJoin(const ir::Module &module, const std::string &name,
                   const inv::InvariantSet *inv)
{
    const ir::Function *func = module.functionByName(name);
    if (!func)
        return false;
    for (const auto &block : func->blocks()) {
        if (!blockLive(inv, *block))
            continue;
        for (const ir::Instruction &instr : block->instructions())
            if (instr.op == ir::Opcode::Spawn ||
                instr.op == ir::Opcode::Join)
                return true;
    }
    return false;
}

/**
 * Per-function slice of an invariant set, expressed in next-side ids
 * so the base summary (translated through the VersionMap) and the
 * next summary compare directly.  kNoInstr / kNoFunc mark facts whose
 * ids do not translate (they reference changed functions); the next
 * side never contains those sentinels, so any untranslatable fact
 * makes the summaries differ, which is the conservative outcome.
 */
struct InvariantSlice
{
    std::vector<char> blockBits;
    std::map<InstrId, std::set<FuncId>> callees;
    std::set<InstrId> singletons;
    std::set<InstrId> elidable;
    std::set<std::pair<InstrId, InstrId>> lockAliases;

    bool
    operator==(const InvariantSlice &other) const
    {
        return blockBits == other.blockBits && callees == other.callees &&
               singletons == other.singletons &&
               elidable == other.elidable &&
               lockAliases == other.lockAliases;
    }
};

/**
 * Build per-function invariant slices for @p module under @p inv.
 * @p toNextInstr / @p toNextFunc translate ids into next-side space
 * (identity for the next module itself).
 */
std::map<std::string, InvariantSlice>
invariantSlices(const ir::Module &module, const inv::InvariantSet &inv,
                const std::vector<InstrId> *toNextInstr,
                const std::vector<FuncId> *toNextFunc)
{
    auto mapInstr = [&](InstrId id) {
        return toNextInstr ? (*toNextInstr)[id] : id;
    };
    auto mapFunc = [&](FuncId id) {
        return toNextFunc ? (*toNextFunc)[id] : id;
    };

    std::map<std::string, InvariantSlice> slices;
    for (const auto &func : module.functions()) {
        InvariantSlice &slice = slices[func->name()];
        for (const auto &block : func->blocks())
            slice.blockBits.push_back(inv.blockVisited(block->id()) ? 1 : 0);
    }
    for (const auto &[site, targets] : inv.calleeSets) {
        const ir::Instruction &instr = module.instr(site);
        InvariantSlice &slice =
            slices[module.function(instr.func)->name()];
        std::set<FuncId> mapped;
        for (FuncId target : targets)
            mapped.insert(mapFunc(target));
        slice.callees[mapInstr(site)] = std::move(mapped);
    }
    for (InstrId site : inv.singletonSpawnSites) {
        const ir::Instruction &instr = module.instr(site);
        slices[module.function(instr.func)->name()].singletons.insert(
            mapInstr(site));
    }
    for (InstrId site : inv.elidableLockSites) {
        const ir::Instruction &instr = module.instr(site);
        slices[module.function(instr.func)->name()].elidable.insert(
            mapInstr(site));
    }
    for (const auto &[a, b] : inv.mustAliasLocks) {
        InstrId ma = mapInstr(a);
        InstrId mb = mapInstr(b);
        if (ma > mb)
            std::swap(ma, mb);
        const std::pair<InstrId, InstrId> pair{ma, mb};
        slices[module.function(module.instr(a).func)->name()]
            .lockAliases.insert(pair);
        slices[module.function(module.instr(b).func)->name()]
            .lockAliases.insert(pair);
    }
    return slices;
}

} // namespace

VersionMap
buildVersionMap(const ir::Module &base, const ir::Module &next)
{
    VersionMap map;
    map.funcMap.assign(base.numFunctions(), kNoFunc);
    map.bodyUnchanged.assign(base.numFunctions(), 0);
    map.instrMap.assign(base.numInstrs(), kNoInstr);
    map.blockMap.assign(base.numBlocks(), kNoBlock);

    for (const auto &func : base.functions()) {
        const ir::Function *other = next.functionByName(func->name());
        if (!other)
            continue;
        map.funcMap[func->id()] = other->id();
        if (base.functionFingerprint(func->id()) !=
            next.functionFingerprint(other->id()))
            continue;
        // Identical canonical text implies identical shape; the checks
        // below only guard against a (dual-64-bit) fingerprint
        // collision, in which case the function is treated as changed.
        const auto &baseBlocks = func->blocks();
        const auto &nextBlocks = other->blocks();
        if (baseBlocks.size() != nextBlocks.size())
            continue;
        bool shapeOk = true;
        for (std::size_t i = 0; i < baseBlocks.size() && shapeOk; ++i)
            shapeOk = baseBlocks[i]->instructions().size() ==
                      nextBlocks[i]->instructions().size();
        if (!shapeOk)
            continue;
        map.bodyUnchanged[func->id()] = 1;
        for (std::size_t i = 0; i < baseBlocks.size(); ++i) {
            map.blockMap[baseBlocks[i]->id()] = nextBlocks[i]->id();
            const auto &baseInstrs = baseBlocks[i]->instructions();
            const auto &nextInstrs = nextBlocks[i]->instructions();
            for (std::size_t j = 0; j < baseInstrs.size(); ++j)
                map.instrMap[baseInstrs[j].id] = nextInstrs[j].id;
        }
    }
    return map;
}

ConstraintDiff
lowerToConstraints(const ir::Module &base, const ir::Module &next,
                   const ir::ModuleDiff &diff,
                   const inv::InvariantSet *baseInv,
                   const inv::InvariantSet *nextInv)
{
    ConstraintDiff lowered;
    lowered.structural = diff;
    lowered.globalsChanged = diff.globalsChanged;
    lowered.hasCallContextsEither =
        (baseInv && baseInv->hasCallContexts) ||
        (nextInv && nextInv->hasCallContexts);
    lowered.seeds.insert(diff.changed.begin(), diff.changed.end());

    const bool mixedPredication = (baseInv == nullptr) != (nextInv == nullptr);
    if (baseInv && nextInv) {
        const VersionMap map = buildVersionMap(base, next);
        const auto baseSlices =
            invariantSlices(base, *baseInv, &map.instrMap, &map.funcMap);
        const auto nextSlices =
            invariantSlices(next, *nextInv, nullptr, nullptr);
        for (const std::string &name : diff.unchanged) {
            const auto baseIt = baseSlices.find(name);
            const auto nextIt = nextSlices.find(name);
            const bool equal = baseIt != baseSlices.end() &&
                               nextIt != nextSlices.end() &&
                               baseIt->second == nextIt->second;
            if (!equal)
                lowered.seeds.insert(name);
        }
    }

    const std::set<std::string> seedNames = lowered.seedNames();
    for (const std::string &name : seedNames) {
        lowered.constraintsRemoved += countConstraints(base, name, baseInv);
        lowered.constraintsAdded += countConstraints(next, name, nextInv);
        if (hasLiveSpawnOrJoin(base, name, baseInv) ||
            hasLiveSpawnOrJoin(next, name, nextInv))
            lowered.spawnStructureTouched = true;
    }

    lowered.usable = !lowered.globalsChanged && !mixedPredication;
    return lowered;
}

NodeTaint
nodeTaintClosure(const ir::Module &module, const AndersenResult &pts,
                 const ConstraintDiff &diff, const inv::InvariantSet *inv)
{
    NodeTaint taint;
    const std::size_t numCtxs = pts.contexts.size();
    taint.regs.resize(numCtxs);

    // Private node space: cells first, then numRegs+1 slots per
    // context instance (the last one the return node).
    const std::uint32_t numCells = pts.memory.numCells();
    std::vector<std::uint32_t> nodeBase(numCtxs, 0);
    std::uint32_t total = numCells;
    for (const ContextInstance &ctx : pts.contexts) {
        nodeBase[ctx.id] = total;
        total += module.function(ctx.func)->numRegs() + 1;
    }
    auto reg = [&](std::uint32_t ctx, ir::Reg r) {
        return nodeBase[ctx] + r;
    };
    auto ret = [&](std::uint32_t ctx) {
        return nodeBase[ctx] +
               module.function(pts.contexts[ctx].func)->numRegs();
    };

    // The closure only ever visits the tainted region, which a small
    // edit keeps small — so the value-flow graph is materialized on
    // demand, one context at a time, instead of eagerly for the whole
    // module.  The edge *relation* is identical to an eager build; only
    // construction order differs, so the reachable set is unchanged.
    std::vector<std::vector<std::uint32_t>> out(total);
    auto edge = [&](std::uint32_t from, std::uint32_t to) {
        if (from != to)
            out[from].push_back(to);
    };

    std::vector<char> mark(total, 0);
    std::deque<std::uint32_t> queue;
    auto push = [&](std::uint32_t node) {
        if (!mark[node]) {
            mark[node] = 1;
            queue.push_back(node);
        }
    };

    // Cheap O(instructions) indexes — none of these walk a pts set.
    // Call edges grouped by (caller context, site), and reversed so a
    // callee context finds its return-value destinations.
    std::map<std::pair<std::uint32_t, InstrId>,
             std::vector<std::uint32_t>>
        callees;
    std::vector<std::vector<std::pair<std::uint32_t, InstrId>>>
        callersOf(numCtxs);
    for (const auto &[key, calleeCtx] : pts.callEdges()) {
        callees[{std::get<0>(key), std::get<1>(key)}].push_back(
            calleeCtx);
        callersOf[calleeCtx].push_back(
            {std::get<0>(key), std::get<1>(key)});
    }

    // Spawned functions (live spawns) feed every join destination.
    std::set<FuncId> spawned;
    std::vector<std::uint32_t> joinDests;
    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        const ir::Instruction &ins = module.instr(id);
        if (!blockLive(inv, *module.block(ins.block)))
            continue;
        if (ins.op == ir::Opcode::Spawn)
            spawned.insert(ins.callee);
        else if (ins.op == ir::Opcode::Join && ins.dest != ir::kNoReg)
            for (std::uint32_t ctx : pts.instancesOf(ins.func))
                joinDests.push_back(reg(ctx, ins.dest));
    }
    std::vector<char> isSpawnedFunc(module.numFunctions(), 0);
    for (FuncId f : spawned)
        isSpawnedFunc[f] = 1;

    // Loads grouped by the identity of their pointer's (hash-consed)
    // final set: when a cell is tainted, only distinct sets are probed
    // for membership instead of walking every set up front.
    std::map<const SparseBitSet *, std::vector<std::uint32_t>>
        loadsBySet;
    for (const ContextInstance &inst : pts.contexts) {
        const std::uint32_t ctx = inst.id;
        const ir::Function *func = module.function(inst.func);
        for (const auto &block : func->blocks()) {
            if (!blockLive(inv, *block))
                continue;
            for (const ir::Instruction &ins : block->instructions())
                if (ins.op == ir::Opcode::Load)
                    loadsBySet[&pts.pts(ctx, ins.a)].push_back(
                        reg(ctx, ins.dest));
        }
    }

    // Materialize the edges sourced at @p ctx's reg/ret nodes: its own
    // instructions (store edges walk the final pts sets — a superset
    // of every edge the solve actually fired), argument passing into
    // its callees, and its return value into its callers (and into
    // every join destination when it is spawned).
    std::vector<char> materialized(numCtxs, 0);
    auto materialize = [&](std::uint32_t ctx) {
        if (materialized[ctx])
            return;
        materialized[ctx] = 1;
        const ir::Function *func =
            module.function(pts.contexts[ctx].func);
        for (const auto &block : func->blocks()) {
            if (!blockLive(inv, *block))
                continue;
            for (const ir::Instruction &ins : block->instructions()) {
                switch (ins.op) {
                  case ir::Opcode::Assign:
                  case ir::Opcode::Gep:
                  case ir::Opcode::Load:
                    edge(reg(ctx, ins.a), reg(ctx, ins.dest));
                    break;
                  case ir::Opcode::Store:
                    pts.pts(ctx, ins.a).forEach([&](CellId cell) {
                        edge(reg(ctx, ins.b), cell);
                        // A re-pointed store stops feeding old cells.
                        edge(reg(ctx, ins.a), cell);
                    });
                    break;
                  case ir::Opcode::Call:
                  case ir::Opcode::Spawn:
                  case ir::Opcode::ICall: {
                    auto it = callees.find({ctx, ins.id});
                    if (it == callees.end())
                        break;
                    for (std::uint32_t calleeCtx : it->second) {
                        const ir::Function *callee = module.function(
                            pts.contexts[calleeCtx].func);
                        const std::size_t n = std::min<std::size_t>(
                            ins.args.size(), callee->numParams());
                        for (std::size_t i = 0; i < n; ++i)
                            edge(reg(ctx, ins.args[i]),
                                 reg(calleeCtx,
                                     static_cast<ir::Reg>(i)));
                        if (ins.op == ir::Opcode::ICall) {
                            // A shrinking function-pointer set can
                            // remove this resolution entirely: the
                            // callee\'s params and the destination
                            // then lose its contribution.
                            for (std::size_t i = 0; i < n; ++i)
                                edge(reg(ctx, ins.a),
                                     reg(calleeCtx,
                                         static_cast<ir::Reg>(i)));
                            if (ins.dest != ir::kNoReg)
                                edge(reg(ctx, ins.a),
                                     reg(ctx, ins.dest));
                        }
                    }
                    break;
                  }
                  case ir::Opcode::Ret:
                    if (ins.a != ir::kNoReg)
                        edge(reg(ctx, ins.a), ret(ctx));
                    break;
                  default:
                    break;
                }
            }
        }
        for (const auto &[callerCtx, site] : callersOf[ctx]) {
            const ir::Instruction &ins = module.instr(site);
            if (ins.dest != ir::kNoReg && ins.op != ir::Opcode::Spawn)
                edge(ret(ctx), reg(callerCtx, ins.dest));
        }
        if (isSpawnedFunc[pts.contexts[ctx].func])
            for (std::uint32_t dest : joinDests)
                edge(ret(ctx), dest);
    };

    // The join edge set itself depends on the spawn structure.
    if (diff.spawnStructureTouched)
        for (std::uint32_t dest : joinDests)
            push(dest);

    // Seeds: every node of every context of a seed function.
    std::vector<char> seedFunc(module.numFunctions(), 0);
    for (const std::string &name : diff.seedNames()) {
        const ir::Function *func = module.functionByName(name);
        if (func)
            seedFunc[func->id()] = 1;
    }
    for (const ContextInstance &inst : pts.contexts) {
        if (!seedFunc[inst.func])
            continue;
        const unsigned numRegs = module.function(inst.func)->numRegs();
        for (unsigned r = 0; r <= numRegs; ++r)
            push(nodeBase[inst.id] + r);
    }

    // Which context a reg/ret node belongs to, for lazy
    // materialization (binary search over the nodeBase partition).
    std::vector<std::uint32_t> ctxByBase(numCtxs);
    for (std::uint32_t c = 0; c < numCtxs; ++c)
        ctxByBase[c] = c;
    std::sort(ctxByBase.begin(), ctxByBase.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return nodeBase[a] < nodeBase[b];
              });
    auto ctxOfNode = [&](std::uint32_t node) {
        auto it = std::upper_bound(
            ctxByBase.begin(), ctxByBase.end(), node,
            [&](std::uint32_t n, std::uint32_t c) {
                return n < nodeBase[c];
            });
        OHA_ASSERT(it != ctxByBase.begin());
        return *(it - 1);
    };

    // Flat view of the distinct load-pointer sets so a frontier
    // round's membership probes can index them as parallel tasks.
    // (The map's pointer-keyed order is arbitrary, but marking is
    // idempotent, so the reachable set does not depend on it.)
    std::vector<std::pair<const SparseBitSet *,
                          const std::vector<std::uint32_t> *>>
        loadProbes;
    loadProbes.reserve(loadsBySet.size());
    for (const auto &[set, dests] : loadsBySet)
        loadProbes.push_back({set, &dests});

    // Frontier rounds instead of node-at-a-time BFS.  The expensive
    // step — probing every distinct load-pointer set for membership
    // of each newly tainted cell — reads only immutable hash-consed
    // sets, so one round's probes fan out over worker threads with a
    // private hit flag per set.  Everything that mutates (edge
    // materialization, marking, pushing) stays serial, and BFS
    // reachability is round-order independent, so the closure is
    // byte-identical to the serial walk at any thread count.
    std::unique_ptr<support::ThreadPool> pool;
    const std::size_t probeThreads = support::configuredThreads();
    constexpr std::size_t kParallelProbeCutoff = 16;
    std::vector<std::uint32_t> frontier, frontierCells;
    std::vector<char> probeHit;
    while (!queue.empty()) {
        frontier.assign(queue.begin(), queue.end());
        queue.clear();
        frontierCells.clear();
        for (std::uint32_t u : frontier) {
            if (u < numCells)
                frontierCells.push_back(u);
            else
                materialize(ctxOfNode(u)); // serial: grows out[]
        }
        if (!frontierCells.empty() && !loadProbes.empty()) {
            // Cell out-edges: every load whose pointer's final set
            // contains a tainted frontier cell reads from it.
            probeHit.assign(loadProbes.size(), 0);
            auto probe = [&](std::size_t i) {
                const SparseBitSet &set = *loadProbes[i].first;
                for (std::uint32_t cell : frontierCells)
                    if (set.contains(cell)) {
                        probeHit[i] = 1;
                        break;
                    }
                return 0;
            };
            if (probeThreads > 1 &&
                loadProbes.size() >= kParallelProbeCutoff) {
                if (!pool)
                    pool = std::make_unique<support::ThreadPool>(
                        probeThreads);
                support::runBatchOn(
                    *pool, loadProbes.size(), probe,
                    std::max<std::size_t>(
                        1, loadProbes.size() / (probeThreads * 4)));
            } else {
                for (std::size_t i = 0; i < loadProbes.size(); ++i)
                    probe(i);
            }
            for (std::size_t i = 0; i < loadProbes.size(); ++i)
                if (probeHit[i])
                    for (std::uint32_t dest : *loadProbes[i].second)
                        push(dest);
        }
        for (std::uint32_t u : frontier)
            for (std::uint32_t v : out[u])
                push(v);
    }

    for (std::uint32_t cell = 0; cell < numCells; ++cell)
        if (mark[cell])
            taint.cells.insert(cell);
    for (const ContextInstance &inst : pts.contexts) {
        const unsigned numRegs = module.function(inst.func)->numRegs();
        std::vector<char> &flags = taint.regs[inst.id];
        flags.assign(numRegs + 1, 0);
        for (unsigned r = 0; r <= numRegs; ++r)
            flags[r] = mark[nodeBase[inst.id] + r];
    }
    return taint;
}

std::vector<bool>
constraintTaintClosure(const ir::Module &module, const AndersenResult &pts,
                       const ConstraintDiff &diff,
                       const inv::InvariantSet *inv)
{
    const NodeTaint taint = nodeTaintClosure(module, pts, diff, inv);
    std::vector<bool> tainted(module.numFunctions(), false);
    for (const std::string &name : diff.seedNames()) {
        const ir::Function *func = module.functionByName(name);
        if (func)
            tainted[func->id()] = true;
    }
    for (const ContextInstance &inst : pts.contexts) {
        for (const char flag : taint.regs[inst.id]) {
            if (flag) {
                tainted[inst.func] = true;
                break;
            }
        }
    }
    return tainted;
}

std::vector<std::uint32_t>
mapContexts(const ir::Module &base, const ir::Module &next,
            const VersionMap &map,
            const std::vector<ContextInstance> &baseCtxs,
            const std::vector<ContextInstance> &nextCtxs)
{
    (void)base;
    (void)next;
    std::map<std::tuple<FuncId, inv::CallContext, bool>, std::uint32_t>
        index;
    for (const ContextInstance &ctx : nextCtxs)
        index[{ctx.func, ctx.chain, ctx.fallback}] = ctx.id;

    std::vector<std::uint32_t> ctxMap(baseCtxs.size(), ~0u);
    for (const ContextInstance &ctx : baseCtxs) {
        if (ctx.func >= map.funcMap.size())
            continue;
        const FuncId nextFunc = map.funcMap[ctx.func];
        if (nextFunc == kNoFunc)
            continue;
        inv::CallContext chain;
        chain.reserve(ctx.chain.size());
        bool ok = true;
        for (InstrId site : ctx.chain) {
            if (site == kNoInstr) {
                chain.push_back(kNoInstr); // fallback marker
                continue;
            }
            const InstrId mapped =
                site < map.instrMap.size() ? map.instrMap[site] : kNoInstr;
            if (mapped == kNoInstr) {
                ok = false;
                break;
            }
            chain.push_back(mapped);
        }
        if (!ok)
            continue;
        auto it = index.find({nextFunc, chain, ctx.fallback});
        if (it != index.end())
            ctxMap[ctx.id] = it->second;
    }
    return ctxMap;
}

std::vector<CellId>
mapCells(const MemoryModel &baseMem, const MemoryModel &nextMem,
         const VersionMap &map, const std::vector<std::uint32_t> &ctxMap)
{
    std::map<std::tuple<int, std::uint32_t, std::uint32_t>, AbsObjectId>
        index;
    for (AbsObjectId id = 0; id < nextMem.numObjects(); ++id) {
        const AbsObject &obj = nextMem.object(id);
        index[{static_cast<int>(obj.kind), obj.srcId, obj.contextId}] = id;
    }

    std::vector<CellId> cellMap(baseMem.numCells(), kNoCell);
    for (AbsObjectId id = 0; id < baseMem.numObjects(); ++id) {
        const AbsObject &obj = baseMem.object(id);
        std::uint32_t srcId = obj.srcId;
        std::uint32_t contextId = obj.contextId;
        switch (obj.kind) {
          case AbsObjectKind::Global:
            break; // identity: caller rejected globalsChanged
          case AbsObjectKind::Function:
            srcId = srcId < map.funcMap.size() ? map.funcMap[srcId]
                                               : kNoFunc;
            if (srcId == kNoFunc)
                continue;
            break;
          case AbsObjectKind::AllocSite:
            srcId = srcId < map.instrMap.size() ? map.instrMap[srcId]
                                                : kNoInstr;
            if (srcId == kNoInstr)
                continue;
            if (contextId != 0) {
                contextId = contextId < ctxMap.size() ? ctxMap[contextId]
                                                      : ~0u;
                if (contextId == ~0u)
                    continue;
            }
            break;
        }
        auto it =
            index.find({static_cast<int>(obj.kind), srcId, contextId});
        if (it == index.end())
            continue;
        const AbsObject &other = nextMem.object(it->second);
        if (other.size != obj.size)
            continue;
        for (std::uint32_t field = 0; field < obj.size; ++field)
            cellMap[obj.baseCell + field] = other.baseCell + field;
    }
    return cellMap;
}

bool
translateCellSet(const SparseBitSet &in, const std::vector<CellId> &cellMap,
                 SparseBitSet &out)
{
    out.clear();
    bool ok = true;
    in.forEach([&](std::uint32_t cell) {
        const CellId mapped =
            cell < cellMap.size() ? cellMap[cell] : kNoCell;
        if (mapped == kNoCell)
            ok = false;
        else
            out.insert(mapped);
    });
    return ok;
}

std::vector<bool>
unionDirtyClosure(const ir::Module &base, const AndersenResult &basePts,
                  const ir::Module &next, const AndersenResult &nextPts,
                  const ConstraintDiff &diff, const inv::InvariantSet *baseInv,
                  const inv::InvariantSet *nextInv)
{
    const std::vector<bool> baseTaint =
        constraintTaintClosure(base, basePts, diff, baseInv);
    std::vector<bool> dirty =
        constraintTaintClosure(next, nextPts, diff, nextInv);

    const VersionMap map = buildVersionMap(base, next);
    std::vector<bool> hasCleanBase(next.numFunctions(), false);
    for (const auto &func : base.functions()) {
        const FuncId nextFunc = map.funcMap[func->id()];
        if (nextFunc == kNoFunc)
            continue;
        if (map.bodyUnchanged[func->id()] && !baseTaint[func->id()])
            hasCleanBase[nextFunc] = true;
    }
    for (FuncId func = 0; func < next.numFunctions(); ++func)
        if (!hasCleanBase[func])
            dirty[func] = true;
    return dirty;
}

} // namespace oha::analysis
