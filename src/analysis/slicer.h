/**
 * @file
 * Static backward (data-flow) slicing in the style of Weiser [52],
 * as used by OptSlice (Section 5.1.1).
 *
 * The slicer lazily explores a definition-use graph whose nodes are
 * (context instance, instruction) pairs.  Edges run backwards:
 *  - register uses to the defs of those registers (parameters route
 *    through call sites; call results route through callee returns);
 *  - loads to may-aliasing stores, resolved with the points-to
 *    analysis and filtered flow-sensitively within a function (only
 *    stores whose block may precede the load's block are considered);
 *  - joins to the returns of spawned thread functions.
 *
 * Context sensitivity comes for free from the Andersen context
 * instances.  The visited set can be tracked with the ROBDD package,
 * mirroring the paper's use of BDDs [6, 9].  Predicated slicing
 * (invariants present in the Andersen result's construction) simply
 * never sees pruned blocks/contexts because the underlying DUG lacks
 * them.
 */

#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "analysis/andersen.h"
#include "ir/cfg.h"

namespace oha::analysis {

/** Slicer configuration. */
struct SlicerOptions
{
    /** Invariants assumed (must match those given to Andersen). */
    const inv::InvariantSet *invariants = nullptr;
    /** Track the visited-node set with BDDs instead of a bitset. */
    bool useBddVisitedSet = false;
    /** Work budget; exceeding it marks the slice incomplete. */
    std::uint64_t maxWork = 200'000'000;
};

/** One computed slice. */
struct StaticSliceResult
{
    bool completed = true;
    /** Instructions in the slice (projected over contexts). */
    std::set<InstrId> instructions;
    std::uint64_t workUnits = 0;
    std::uint64_t nodesVisited = 0;
};

/**
 * Reusable slicer over one (module, points-to result) pair.  Whether
 * slicing is context-sensitive / predicated is inherited from how
 * @p andersen was computed.
 */
class StaticSlicer
{
  public:
    StaticSlicer(const ir::Module &module, const AndersenResult &andersen,
                 SlicerOptions options);

    /** Backward slice from @p endpoint (typically an Output). */
    StaticSliceResult slice(InstrId endpoint) const;

  private:
    bool live(BlockId block) const;
    const ir::Cfg &cfgOf(FuncId func) const;

    const ir::Module &module_;
    const AndersenResult &andersen_;
    SlicerOptions options_;

    /** defs[func][reg] = live instructions defining reg. */
    std::vector<std::map<ir::Reg, std::vector<InstrId>>> defs_;
    /** cell -> (ctx, store) pairs that may write it. */
    std::map<CellId, std::vector<std::pair<std::uint32_t, InstrId>>>
        cellStores_;
    /** calleeCtx -> (callerCtx, call site). */
    std::map<std::uint32_t,
             std::vector<std::pair<std::uint32_t, InstrId>>>
        reverseCalls_;
    /** (ctx, call site) -> callee ctx instances. */
    std::map<std::pair<std::uint32_t, InstrId>, std::vector<std::uint32_t>>
        forwardCalls_;
    /** Live Ret instructions per function. */
    std::vector<std::vector<InstrId>> retsOf_;
    /** Live Spawn sites. */
    std::vector<InstrId> spawnSites_;
    /** The only function where intra-procedural flow-sensitive
     *  load/store filtering is sound (runs at most once), or kNoFunc. */
    FuncId flowSensitiveFunc_ = kNoFunc;

    /** Lazily-built per-function CFGs; the mutex makes concurrent
     *  const slice() calls (batched per-endpoint slicing) safe. */
    mutable std::mutex cfgMutex_;
    mutable std::map<FuncId, std::unique_ptr<ir::Cfg>> cfgs_;
};

} // namespace oha::analysis
