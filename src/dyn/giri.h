/**
 * @file
 * A Giri-style dynamic backward slicer (Sahoo et al. [45]) as an
 * interpreter Tool.
 *
 * During execution it appends one trace entry per instrumented
 * instruction, linking each entry to the entries that produced its
 * register operands (and, for loads, the entry of the last store to
 * the loaded address; for calls/returns/joins, the matching
 * inter-procedural producer).  A backward slice is then the BFS
 * closure over those links from an Output endpoint.
 *
 * When instrumentation is elided (hybrid / optimistic modes), entries
 * for elided instructions are simply never created.  If a needed
 * producer is missing the dependency is dropped and counted in
 * missingDependencies() — with a sound (closed) static slice this
 * never happens; with a predicated slice it can only happen when a
 * likely invariant was violated, which triggers rollback instead
 * (Figure 2).
 */

#pragma once

#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "exec/event.h"

namespace oha::dyn {

/** Dynamic data-flow backward slicer. */
class GiriSlicer : public exec::Tool
{
  public:
    explicit GiriSlicer(const ir::Module &module) : module_(module) {}

    void onEvent(const exec::EventCtx &ctx) override;

    /** Dynamic backward slice (instruction ids) from every dynamic
     *  occurrence of @p endpoint. */
    std::set<InstrId> slice(InstrId endpoint) const;

    /** Entries recorded (the dominant dynamic cost). */
    std::uint64_t traceLength() const { return trace_.size(); }

    /** Operand producers that were not instrumented. */
    std::uint64_t missingDependencies() const { return missing_; }

  private:
    static constexpr std::uint32_t kNoEntry =
        static_cast<std::uint32_t>(-1);

    struct TraceEntry
    {
        InstrId instr;
        std::vector<std::uint32_t> deps;
    };

    static std::uint64_t
    slotKey(std::uint64_t frameId, ir::Reg reg)
    {
        return frameId * 0x10000ULL + reg;
    }

    static std::uint64_t
    addrKey(exec::ObjectId obj, std::uint32_t off)
    {
        return (static_cast<std::uint64_t>(obj) << 32) | off;
    }

    /** Producer of (frame, reg), or kNoEntry (counted as missing). */
    std::uint32_t lookupReg(std::uint64_t frameId, ir::Reg reg);

    std::uint32_t append(InstrId instr, std::vector<std::uint32_t> deps);

    const ir::Module &module_;
    std::vector<TraceEntry> trace_;
    std::unordered_map<std::uint64_t, std::uint32_t> regDef_;
    std::unordered_map<std::uint64_t, std::uint32_t> memDef_;
    std::unordered_map<ThreadId, std::uint32_t> threadRet_;
    std::map<InstrId, std::vector<std::uint32_t>> outputs_;
    std::uint64_t missing_ = 0;
};

} // namespace oha::dyn
