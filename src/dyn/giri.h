/**
 * @file
 * A Giri-style dynamic backward slicer (Sahoo et al. [45]) as an
 * interpreter Tool.
 *
 * During execution it appends one trace entry per instrumented
 * instruction, linking each entry to the entries that produced its
 * register operands (and, for loads, the entry of the last store to
 * the loaded address; for calls/returns/joins, the matching
 * inter-procedural producer).  A backward slice is then the closure
 * over those links from an Output endpoint.
 *
 * The trace is the dominant dynamic cost, so its storage is flat: one
 * CSR-style dependency pool shared by the whole trace (entry i's deps
 * are depsPool_[depsOffset_[i] .. depsOffset_[i+1])) instead of one
 * heap-allocated vector per entry, and register definitions live in
 * dense per-frame arrays carved from a bump arena and recycled when
 * the frame returns, instead of a (frame, reg) hash map probed on
 * every operand.
 *
 * When instrumentation is elided (hybrid / optimistic modes), entries
 * for elided instructions are simply never created.  If a needed
 * producer is missing the dependency is dropped and counted in
 * missingDependencies() — with a sound (closed) static slice this
 * never happens; with a predicated slice it can only happen when a
 * likely invariant was violated, which triggers rollback instead
 * (Figure 2).
 */

#pragma once

#include <map>
#include <set>
#include <vector>

#include "exec/event.h"
#include "support/arena.h"
#include "support/flat_map.h"

namespace oha::dyn {

/** Dynamic data-flow backward slicer. */
class GiriSlicer : public exec::Tool
{
  public:
    explicit GiriSlicer(const ir::Module &module) : module_(module)
    {
        depsOffset_.push_back(0);
    }

    void onEvent(const exec::EventCtx &ctx) override;

    /** Dynamic backward slice (instruction ids) from every dynamic
     *  occurrence of @p endpoint. */
    std::set<InstrId> slice(InstrId endpoint) const;

    /** Entries recorded (the dominant dynamic cost). */
    std::uint64_t traceLength() const { return traceInstr_.size(); }

    /** Operand producers that were not instrumented. */
    std::uint64_t missingDependencies() const { return missing_; }

  private:
    static constexpr std::uint32_t kNoEntry =
        static_cast<std::uint32_t>(-1);

    /**
     * Dense per-frame register-definition tables.  Frame ids are
     * assigned sequentially by the interpreter, so the frame lookup
     * is one vector index; each live frame owns a flat array of
     * trace-entry ids carved from the arena.  When a frame returns
     * its array goes on a free list and is reused by the next frame,
     * so steady-state execution allocates nothing.  Frames whose Ret
     * is elided simply stay resident — their ids are never looked up
     * again, so only memory (not correctness) is affected.
     */
    class FrameRegs
    {
      public:
        /** Producer entry of (frame, reg), or kNoEntry. */
        std::uint32_t
        get(std::uint64_t frameId, ir::Reg reg) const
        {
            if (frameId >= slotOfFrame_.size())
                return kNoEntry;
            const std::uint32_t slot = slotOfFrame_[frameId];
            if (slot == kNoSlot || reg >= slots_[slot].cap)
                return kNoEntry;
            return slots_[slot].data[reg];
        }

        void
        set(std::uint64_t frameId, ir::Reg reg, std::uint32_t entry)
        {
            if (frameId >= slotOfFrame_.size())
                slotOfFrame_.resize(frameId + 1, kNoSlot);
            std::uint32_t slot = slotOfFrame_[frameId];
            if (slot == kNoSlot) {
                slot = acquireSlot();
                slotOfFrame_[frameId] = slot;
            }
            if (reg >= slots_[slot].cap)
                growSlot(slots_[slot], reg + 1);
            slots_[slot].data[reg] = entry;
        }

        /** Return the frame's array to the free list (frame popped). */
        void
        release(std::uint64_t frameId)
        {
            if (frameId >= slotOfFrame_.size())
                return;
            const std::uint32_t slot = slotOfFrame_[frameId];
            if (slot == kNoSlot)
                return;
            // Wipe now so the next tenant starts undefined-everywhere.
            Slot &s = slots_[slot];
            for (std::uint32_t i = 0; i < s.cap; ++i)
                s.data[i] = kNoEntry;
            freeSlots_.push_back(slot);
            slotOfFrame_[frameId] = kNoSlot;
        }

      private:
        static constexpr std::uint32_t kNoSlot =
            static_cast<std::uint32_t>(-1);

        struct Slot
        {
            std::uint32_t *data = nullptr;
            std::uint32_t cap = 0;
        };

        std::uint32_t
        acquireSlot()
        {
            if (!freeSlots_.empty()) {
                const std::uint32_t slot = freeSlots_.back();
                freeSlots_.pop_back();
                return slot;
            }
            slots_.push_back({});
            return static_cast<std::uint32_t>(slots_.size() - 1);
        }

        void
        growSlot(Slot &slot, std::uint32_t needed)
        {
            std::uint32_t cap = slot.cap ? slot.cap * 2 : 8;
            while (cap < needed)
                cap *= 2;
            auto *data = arena_.allocateArray<std::uint32_t>(cap);
            for (std::uint32_t i = 0; i < slot.cap; ++i)
                data[i] = slot.data[i];
            for (std::uint32_t i = slot.cap; i < cap; ++i)
                data[i] = kNoEntry;
            slot.data = data;
            slot.cap = cap;
        }

        support::Arena arena_;
        std::vector<Slot> slots_;
        std::vector<std::uint32_t> freeSlots_;
        /** frameId -> slot index, kNoSlot when the frame has no defs. */
        std::vector<std::uint32_t> slotOfFrame_;
    };

    static std::uint64_t
    addrKey(exec::ObjectId obj, std::uint32_t off)
    {
        return (static_cast<std::uint64_t>(obj) << 32) | off;
    }

    /** Producer of (frame, reg), or kNoEntry (counted as missing). */
    std::uint32_t lookupReg(std::uint64_t frameId, ir::Reg reg);

    /** Stage @p entry as a dep of the entry being built, dropping
     *  kNoEntry and duplicates. */
    void pushDep(std::uint32_t entry);

    /** Append one trace entry with the staged deps; returns its id. */
    std::uint32_t append(InstrId instr);

    std::uint32_t threadRetOf(ThreadId tid) const;
    void setThreadRet(ThreadId tid, std::uint32_t entry);

    const ir::Module &module_;

    /** The trace in CSR form: instruction per entry plus one shared
     *  dependency pool (entry i's deps are the half-open offset range
     *  [depsOffset_[i], depsOffset_[i + 1])). */
    std::vector<InstrId> traceInstr_;
    std::vector<std::uint64_t> depsOffset_;
    std::vector<std::uint32_t> depsPool_;

    /** Per-event staging buffers (members, not thread_local statics,
     *  so two slicer instances on one thread cannot interleave). */
    std::vector<std::uint32_t> depsBuf_;
    std::vector<ir::Reg> usesBuf_;

    FrameRegs regDef_;
    /** Last store per (obj, off), open-addressed. */
    support::FlatMap<std::uint32_t> memDef_;
    /** Root-frame return entry per thread, dense by tid. */
    std::vector<std::uint32_t> threadRet_;
    std::map<InstrId, std::vector<std::uint32_t>> outputs_;
    std::uint64_t missing_ = 0;
};

} // namespace oha::dyn
