/**
 * @file
 * Typed mis-speculation reports.
 *
 * Section 2.3 of the paper makes rollback the safety net for every
 * optimistic assumption; what the driver does *after* rolling back
 * depends on knowing exactly which likely invariant lied.  A
 * Violation names the invariant family, the check site, and the
 * offending observed value, so:
 *  - inv::InvariantSet::demote() can remove precisely the violated
 *    fact and nothing else;
 *  - the adaptive drivers (core/optft, core/optslice) can re-run the
 *    predicated static phase and continue the corpus under a
 *    repaired plan;
 *  - recorded-trace replays can be checked field-for-field against
 *    live runs (the metadata round-trips through
 *    exec::AbortMetadata).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/event.h"
#include "support/common.h"

namespace oha::dyn {

/** Which likely-invariant family a violation falls in (the taxonomy
 *  of Section 3.1, plus the driver-level lock-elision rollback). */
enum class ViolationFamily : std::uint8_t
{
    None = 0,
    UnreachableBlock, ///< likely-unreachable block was entered
    CalleeSet,        ///< icall resolved outside its likely callee set
    CallContext,      ///< unprofiled calling context was pushed
    MustAliasLock,    ///< must-alias lock site/pair bound a new object
    SingletonSpawn,   ///< likely-singleton spawn site spawned again
    ElidedLockRace,   ///< race reported while lock elision was active
};

/** Stable display name for @p family ("callee-set", ...). */
const char *violationFamilyName(ViolationFamily family);

/**
 * One mis-speculation: which invariant lied, where, and what was
 * observed instead.  Field meanings by family:
 *  - UnreachableBlock: site is the BlockId entered; observed unused.
 *  - CalleeSet: site is the icall instruction, observed the resolved
 *    FuncId.
 *  - CallContext: site is the call instruction, observed the context
 *    hash, contextChain the full offending call-site chain
 *    (outermost first) — exactly what demote() must re-admit.
 *  - MustAliasLock: site is the lock site that tripped the check,
 *    partner the other pair member (== site for a single-site
 *    rebind), observed the newly locked ObjectId.
 *  - SingletonSpawn: site is the spawn instruction, observed the new
 *    spawn count.
 *  - ElidedLockRace: synthesized by the driver when
 *    optFtShouldRollBack fires on race reports under active lock
 *    elision; sites unused.
 */
struct Violation
{
    ViolationFamily family = ViolationFamily::None;
    InstrId site = kNoInstr;
    InstrId partner = kNoInstr;
    std::uint64_t observed = 0;
    ThreadId thread = 0;
    std::vector<InstrId> contextChain;

    /** Human-readable reason, identical to the historical string-only
     *  channel (drivers and tests match on these substrings). */
    std::string describe() const;

    /** Lossy plain-data image for RunResult::abortMeta (drops the
     *  context chain, which does not fit a POD). */
    exec::AbortMetadata toAbortMetadata() const;

    bool operator==(const Violation &other) const = default;
};

} // namespace oha::dyn
