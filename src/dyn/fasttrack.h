/**
 * @file
 * The FastTrack dynamic data-race detector (Flanagan & Freund, PLDI
 * 2009) as an interpreter Tool.
 *
 * Full epoch/vector-clock algorithm: adaptive read metadata (epoch in
 * the common same-epoch / ordered case, full vector clock for shared
 * reads), lock acquire/release transfer, fork/join transfer.  Which
 * accesses are checked is entirely governed by the attached
 * InstrumentationPlan: FastTrack = full plan over memory+sync events,
 * hybrid FastTrack = races-only plan from the sound static detector,
 * OptFT = races-only plan from the predicated detector plus elided
 * no-custom-sync lock sites (Section 4).
 */

#pragma once

#include <set>
#include <vector>

#include "exec/event.h"
#include "support/flat_map.h"
#include "support/vector_clock.h"

namespace oha::dyn {

/** One detected (or re-detected) race. */
struct RaceReport
{
    InstrId first;      ///< earlier access instruction
    InstrId second;     ///< later access instruction
    exec::ObjectId obj; ///< object raced on
    std::uint32_t off;  ///< cell raced on

    bool
    operator<(const RaceReport &other) const
    {
        return std::tie(first, second, obj, off) <
               std::tie(other.first, other.second, other.obj, other.off);
    }
};

/** FastTrack race detector tool. */
class FastTrack : public exec::Tool
{
  public:
    void onEvent(const exec::EventCtx &ctx) override;
    void onThreadStart(ThreadId tid, ThreadId parent,
                       InstrId spawnSite) override;

    /** All distinct races observed (instruction pairs + location). */
    const std::set<RaceReport> &races() const { return races_; }

    /**
     * Restrict memory-access analysis to one shard of shadow memory:
     * Load/Store events for objects with obj % numShards != shard
     * are dropped at delivery.  Sync, spawn/join and thread-lifecycle
     * events are always processed, so every shard maintains the full
     * thread/lock vector-clock state — accesses to an owned object
     * see exactly the clocks a serial detector would, which makes the
     * union of per-shard race sets equal the serial race set (each
     * (obj, off) is owned by exactly one shard).  No-op at
     * numShards <= 1 (the default).
     */
    void
    setShardFilter(std::uint32_t shard, std::uint32_t numShards)
    {
        OHA_ASSERT(numShards >= 1 && shard < numShards);
        shard_ = shard;
        numShards_ = numShards;
    }

    /** Distinct racing instruction pairs (order-normalized). */
    std::set<std::pair<InstrId, InstrId>> racePairs() const;

    /** Slow-path read-metadata updates (shared-read map writes and
     *  epoch-to-vector inflations).  The shared same-epoch read fast
     *  path keeps repeated reads by one thread at one epoch from
     *  inflating this count — the regression observable for the O(1)
     *  hot path. */
    std::uint64_t readSlowPathUpdates() const
    {
        return readSlowPathUpdates_;
    }

  private:
    /** One shared-read observation: the reader's clock component plus
     *  the racing-access attribution.  A dense array of these per
     *  variable replaces the old VectorClock + std::map<ThreadId,
     *  InstrId> pair — per-thread reader attribution matters so a
     *  write-read race reports the reader that actually raced (a
     *  single last-reader field would mis-attribute when an ordered
     *  reader follows the racing one), and keeping clock and instr in
     *  one entry means the write-race sweep touches one array. */
    struct ReadEntry
    {
        std::uint64_t clock = 0;
        InstrId instr = kNoInstr;
    };

    /** Shadow state of one memory cell.  Lives inline in the flat
     *  shadow table, so the common access touches one probe slot; the
     *  readers array only materializes for genuinely shared cells. */
    struct VarState
    {
        Epoch write;
        Epoch read;
        bool sharedRead = false;
        InstrId lastWriteInstr = kNoInstr;
        InstrId lastReadInstr = kNoInstr;
        /** Dense per-thread reader state, indexed by tid. */
        std::vector<ReadEntry> readers;
    };

    static std::uint64_t
    addrKey(exec::ObjectId obj, std::uint32_t off)
    {
        return (static_cast<std::uint64_t>(obj) << 32) | off;
    }

    VectorClock &clockOf(ThreadId tid);
    VectorClock &lockClockOf(exec::ObjectId obj);
    void read(ThreadId tid, const exec::EventCtx &ctx);
    void write(ThreadId tid, const exec::EventCtx &ctx);
    void report(InstrId prev, InstrId cur, const exec::EventCtx &ctx);

    bool
    ownsObject(exec::ObjectId obj) const
    {
        return numShards_ <= 1 || obj % numShards_ == shard_;
    }

    std::uint32_t shard_ = 0;
    std::uint32_t numShards_ = 1;
    std::vector<VectorClock> threads_;
    /** Lock release clocks, dense by object id (objects are heap
     *  indices, so the table is as compact as the heap itself). */
    std::vector<VectorClock> locks_;
    /** Shadow memory: (obj, off) -> VarState, open-addressed. */
    support::FlatMap<VarState> vars_;
    std::set<RaceReport> races_;
    std::uint64_t readSlowPathUpdates_ = 0;
};

/**
 * Deterministic merge of per-shard race sets from a sharded replay.
 * Each shard owns a disjoint slice of shadow memory, so the shard
 * sets are disjoint-by-location and their union under RaceReport's
 * total order (first, second, obj, off — instruction pairs are
 * recorded epoch-ordered and normalized by the detector) reproduces
 * the serial detector's race set byte-for-byte, independent of shard
 * count and completion order.
 */
std::set<RaceReport>
mergeShardRaces(const std::vector<std::set<RaceReport>> &shardRaces);

} // namespace oha::dyn
