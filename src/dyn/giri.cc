#include "dyn/giri.h"

#include <algorithm>
#include <deque>

namespace oha::dyn {

std::uint32_t
GiriSlicer::lookupReg(std::uint64_t frameId, ir::Reg reg)
{
    auto it = regDef_.find(slotKey(frameId, reg));
    if (it == regDef_.end()) {
        ++missing_;
        return kNoEntry;
    }
    return it->second;
}

std::uint32_t
GiriSlicer::append(InstrId instr, std::vector<std::uint32_t> deps)
{
    deps.erase(std::remove(deps.begin(), deps.end(), kNoEntry),
               deps.end());
    trace_.push_back({instr, std::move(deps)});
    return static_cast<std::uint32_t>(trace_.size() - 1);
}

void
GiriSlicer::onEvent(const exec::EventCtx &ctx)
{
    using ir::Opcode;
    const ir::Instruction &ins = *ctx.instr;

    std::vector<std::uint32_t> deps;
    static thread_local std::vector<ir::Reg> uses;
    ins.usedRegs(uses);
    for (ir::Reg reg : uses)
        deps.push_back(lookupReg(ctx.frameId, reg));

    switch (ins.op) {
      case Opcode::Load: {
        auto it = memDef_.find(addrKey(ctx.obj, ctx.off));
        if (it != memDef_.end())
            deps.push_back(it->second);
        const std::uint32_t entry = append(ins.id, std::move(deps));
        regDef_[slotKey(ctx.frameId, ins.dest)] = entry;
        break;
      }
      case Opcode::Store: {
        const std::uint32_t entry = append(ins.id, std::move(deps));
        memDef_[addrKey(ctx.obj, ctx.off)] = entry;
        break;
      }
      case Opcode::Call:
      case Opcode::ICall: {
        const std::uint32_t entry = append(ins.id, std::move(deps));
        // Callee parameters are defined by this call entry.
        const ir::Function *callee =
            module_.function(ctx.calleeResolved);
        for (ir::Reg p = 0; p < callee->numParams(); ++p)
            regDef_[slotKey(ctx.frame2, p)] = entry;
        break;
      }
      case Opcode::Spawn: {
        const std::uint32_t entry = append(ins.id, std::move(deps));
        const ir::Function *callee = module_.function(ins.callee);
        for (ir::Reg p = 0; p < callee->numParams(); ++p)
            regDef_[slotKey(ctx.frame2, p)] = entry;
        if (ins.dest != ir::kNoReg)
            regDef_[slotKey(ctx.frameId, ins.dest)] = entry;
        break;
      }
      case Opcode::Ret: {
        const std::uint32_t entry = append(ins.id, std::move(deps));
        if (ctx.callInstr) {
            if (ctx.callInstr->dest != ir::kNoReg)
                regDef_[slotKey(ctx.frame2, ctx.callInstr->dest)] = entry;
        } else {
            threadRet_[ctx.tid] = entry;
        }
        break;
      }
      case Opcode::Join: {
        auto it = threadRet_.find(ctx.otherTid);
        if (it != threadRet_.end())
            deps.push_back(it->second);
        const std::uint32_t entry = append(ins.id, std::move(deps));
        if (ins.dest != ir::kNoReg)
            regDef_[slotKey(ctx.frameId, ins.dest)] = entry;
        break;
      }
      case Opcode::Output: {
        const std::uint32_t entry = append(ins.id, std::move(deps));
        outputs_[ins.id].push_back(entry);
        break;
      }
      case Opcode::Br:
      case Opcode::CondBr:
        break; // data-flow slices ignore control dependencies
      default: {
        // Plain value producers (const, binop, gep, alloc, input...).
        const std::uint32_t entry = append(ins.id, std::move(deps));
        if (ins.dest != ir::kNoReg)
            regDef_[slotKey(ctx.frameId, ins.dest)] = entry;
        break;
      }
    }
}

std::set<InstrId>
GiriSlicer::slice(InstrId endpoint) const
{
    std::set<InstrId> result;
    auto it = outputs_.find(endpoint);
    if (it == outputs_.end())
        return result;

    std::vector<bool> visited(trace_.size(), false);
    std::deque<std::uint32_t> work;
    for (std::uint32_t entry : it->second) {
        visited[entry] = true;
        work.push_back(entry);
    }
    while (!work.empty()) {
        const std::uint32_t cur = work.front();
        work.pop_front();
        result.insert(trace_[cur].instr);
        for (std::uint32_t dep : trace_[cur].deps) {
            if (!visited[dep]) {
                visited[dep] = true;
                work.push_back(dep);
            }
        }
    }
    return result;
}

} // namespace oha::dyn
