#include "dyn/giri.h"

namespace oha::dyn {

std::uint32_t
GiriSlicer::lookupReg(std::uint64_t frameId, ir::Reg reg)
{
    const std::uint32_t entry = regDef_.get(frameId, reg);
    if (entry == kNoEntry)
        ++missing_;
    return entry;
}

void
GiriSlicer::pushDep(std::uint32_t entry)
{
    if (entry == kNoEntry)
        return;
    // Dedupe: an instruction reading one producer through several
    // operands (x+x, or a load whose address and memory producer
    // coincide) should link to it once.  Entries have a handful of
    // deps, so the linear scan beats any set.
    for (std::uint32_t dep : depsBuf_)
        if (dep == entry)
            return;
    depsBuf_.push_back(entry);
}

std::uint32_t
GiriSlicer::append(InstrId instr)
{
    traceInstr_.push_back(instr);
    depsPool_.insert(depsPool_.end(), depsBuf_.begin(), depsBuf_.end());
    depsOffset_.push_back(depsPool_.size());
    return static_cast<std::uint32_t>(traceInstr_.size() - 1);
}

std::uint32_t
GiriSlicer::threadRetOf(ThreadId tid) const
{
    return tid < threadRet_.size() ? threadRet_[tid] : kNoEntry;
}

void
GiriSlicer::setThreadRet(ThreadId tid, std::uint32_t entry)
{
    if (tid >= threadRet_.size())
        threadRet_.resize(tid + 1, kNoEntry);
    threadRet_[tid] = entry;
}

void
GiriSlicer::onEvent(const exec::EventCtx &ctx)
{
    using ir::Opcode;
    const ir::Instruction &ins = *ctx.instr;

    depsBuf_.clear();
    ins.usedRegs(usesBuf_);
    for (ir::Reg reg : usesBuf_)
        pushDep(lookupReg(ctx.frameId, reg));

    switch (ins.op) {
      case Opcode::Load: {
        if (const std::uint32_t *def =
                memDef_.find(addrKey(ctx.obj, ctx.off)))
            pushDep(*def);
        const std::uint32_t entry = append(ins.id);
        regDef_.set(ctx.frameId, ins.dest, entry);
        break;
      }
      case Opcode::Store: {
        const std::uint32_t entry = append(ins.id);
        memDef_[addrKey(ctx.obj, ctx.off)] = entry;
        break;
      }
      case Opcode::Call:
      case Opcode::ICall: {
        const std::uint32_t entry = append(ins.id);
        // Callee parameters are defined by this call entry.
        const ir::Function *callee =
            module_.function(ctx.calleeResolved);
        for (ir::Reg p = 0; p < callee->numParams(); ++p)
            regDef_.set(ctx.frame2, p, entry);
        break;
      }
      case Opcode::Spawn: {
        const std::uint32_t entry = append(ins.id);
        const ir::Function *callee = module_.function(ins.callee);
        for (ir::Reg p = 0; p < callee->numParams(); ++p)
            regDef_.set(ctx.frame2, p, entry);
        if (ins.dest != ir::kNoReg)
            regDef_.set(ctx.frameId, ins.dest, entry);
        break;
      }
      case Opcode::Ret: {
        const std::uint32_t entry = append(ins.id);
        if (ctx.callInstr) {
            if (ctx.callInstr->dest != ir::kNoReg)
                regDef_.set(ctx.frame2, ctx.callInstr->dest, entry);
        } else {
            setThreadRet(ctx.tid, entry);
        }
        // The frame is gone; frame ids are never reused, so its
        // register table can be recycled.  (If the Ret is elided the
        // table merely stays resident — it is never read again.)
        regDef_.release(ctx.frameId);
        break;
      }
      case Opcode::Join: {
        pushDep(threadRetOf(ctx.otherTid));
        const std::uint32_t entry = append(ins.id);
        if (ins.dest != ir::kNoReg)
            regDef_.set(ctx.frameId, ins.dest, entry);
        break;
      }
      case Opcode::Output: {
        const std::uint32_t entry = append(ins.id);
        outputs_[ins.id].push_back(entry);
        break;
      }
      case Opcode::Br:
      case Opcode::CondBr:
        break; // data-flow slices ignore control dependencies
      default: {
        // Plain value producers (const, binop, gep, alloc, input...).
        const std::uint32_t entry = append(ins.id);
        if (ins.dest != ir::kNoReg)
            regDef_.set(ctx.frameId, ins.dest, entry);
        break;
      }
    }
}

std::set<InstrId>
GiriSlicer::slice(InstrId endpoint) const
{
    std::set<InstrId> result;
    auto it = outputs_.find(endpoint);
    if (it == outputs_.end())
        return result;

    // Closure over dependency links; visitation order is irrelevant
    // to the resulting set, so a plain stack serves as the worklist.
    std::vector<std::uint8_t> visited(traceInstr_.size(), 0);
    std::vector<std::uint32_t> work;
    for (std::uint32_t entry : it->second) {
        visited[entry] = 1;
        work.push_back(entry);
    }
    while (!work.empty()) {
        const std::uint32_t cur = work.back();
        work.pop_back();
        result.insert(traceInstr_[cur]);
        for (std::uint64_t i = depsOffset_[cur]; i < depsOffset_[cur + 1];
             ++i) {
            const std::uint32_t dep = depsPool_[i];
            if (!visited[dep]) {
                visited[dep] = 1;
                work.push_back(dep);
            }
        }
    }
    return result;
}

} // namespace oha::dyn
