#include "dyn/fault_injector.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <utility>

#include "profile/profiler.h"
#include "support/rng.h"

namespace oha::dyn {

std::string
FaultInjection::describe() const
{
    std::string out = "inject ";
    out += violationFamilyName(family);
    out += " @ site " + std::to_string(site);
    if (partner != kNoInstr && partner != site)
        out += " / " + std::to_string(partner);
    if (detail)
        out += " (detail " + std::to_string(detail) + ")";
    return out;
}

std::uint64_t
faultSeedFromEnv()
{
    const char *env = std::getenv("OHA_FAULT_SEED");
    if (!env || !*env)
        return 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(env, &end, 10);
    if (end == env || (end && *end))
        return 0;
    return static_cast<std::uint64_t>(value);
}

FaultInjector::FaultInjector(const ir::Module &module,
                             FaultInjectorOptions options)
    : module_(module), options_(std::move(options))
{
}

std::string
IoFaultPoint::describe() const
{
    std::string out = crash ? "crash at io op " : "fail io op ";
    out += std::to_string(failAfter);
    out += " (mask " + std::to_string(opMask) + ", errno " +
           std::to_string(error) + ")";
    return out;
}

std::uint64_t
countIoOps(const std::function<void()> &body)
{
    support::disarmIoFault();
    support::resetIoOpCount();
    body();
    return support::ioOpCount();
}

std::vector<IoFaultPoint>
pickIoFaultPoints(std::uint64_t opCount, std::size_t maxPoints,
                  std::uint64_t seed, std::uint32_t opMask, bool crash)
{
    std::vector<IoFaultPoint> points;
    if (opCount == 0 || maxPoints == 0)
        return points;

    std::set<std::uint64_t> chosen;
    if (opCount <= maxPoints) {
        for (std::uint64_t k = 0; k < opCount; ++k)
            chosen.insert(k);
    } else {
        // Always probe the edges; fill the rest from the seed.
        chosen.insert(0);
        chosen.insert(opCount - 1);
        Rng rng(seed ^ 0x10fa0175u);
        while (chosen.size() < maxPoints)
            chosen.insert(rng.below(opCount));
    }
    points.reserve(chosen.size());
    for (std::uint64_t k : chosen) {
        IoFaultPoint point;
        point.failAfter = k;
        point.opMask = opMask;
        point.crash = crash;
        points.push_back(point);
    }
    return points;
}

namespace {

/** Everything the corpus observably does, aggregated across runs. */
struct CorpusObservations
{
    std::set<BlockId> blocks;
    std::map<InstrId, std::set<FuncId>> calleeTargets;
    std::set<inv::CallContext> contexts;
    /** Sites binding >= 2 distinct objects within a single run. */
    std::set<InstrId> rebindSites;
    /** Normalized (a < b) site pairs observed bound to different
     *  single objects within the same run. */
    std::set<std::pair<InstrId, InstrId>> divergingPairs;
    /** Sites spawning >= 2 threads within a single run. */
    std::set<InstrId> multiSpawnSites;
};

CorpusObservations
observeCorpus(const ir::Module &module, bool wantContexts,
              const std::vector<exec::ExecConfig> &corpus)
{
    prof::ProfileOptions options;
    options.callContexts = wantContexts;
    options.threads = 1;
    const prof::ProfilingCampaign campaign(module, options);

    CorpusObservations out;
    for (const exec::ExecConfig &input : corpus) {
        const prof::RunObservations run = campaign.observeRun(input);
        for (const auto &[block, count] : run.blockCounts)
            if (count > 0)
                out.blocks.insert(block);
        for (const auto &[site, targets] : run.calleeSets)
            out.calleeTargets[site].insert(targets.begin(), targets.end());
        out.contexts.insert(run.callContexts.begin(),
                            run.callContexts.end());

        // Per-run single-object bindings feed the divergence pairs;
        // multi-object sites are rebinds in their own right.
        std::vector<std::pair<InstrId, exec::ObjectId>> singleBound;
        for (const auto &[site, objects] : run.lockObjects) {
            std::set<exec::ObjectId> distinct(objects.begin(),
                                              objects.end());
            if (distinct.size() >= 2)
                out.rebindSites.insert(site);
            else if (distinct.size() == 1)
                singleBound.emplace_back(site, *distinct.begin());
        }
        for (std::size_t i = 0; i < singleBound.size(); ++i) {
            for (std::size_t j = i + 1; j < singleBound.size(); ++j) {
                if (singleBound[i].second == singleBound[j].second)
                    continue;
                InstrId a = singleBound[i].first;
                InstrId b = singleBound[j].first;
                if (a > b)
                    std::swap(a, b);
                out.divergingPairs.insert({a, b});
            }
        }

        for (const auto &[site, count] : run.spawnCounts)
            if (count >= 2)
                out.multiSpawnSites.insert(site);
    }
    return out;
}

/** Pick one element of a sorted candidate vector, seed-deterministic. */
template <typename T>
const T *
pick(const std::vector<T> &candidates, Rng &rng)
{
    if (candidates.empty())
        return nullptr;
    return &candidates[rng.below(candidates.size())];
}

} // namespace

std::vector<FaultInjection>
FaultInjector::inject(inv::InvariantSet &invariants,
                      const std::vector<exec::ExecConfig> &corpus) const
{
    const bool wantContexts =
        std::find(options_.families.begin(), options_.families.end(),
                  ViolationFamily::CallContext) != options_.families.end();
    const CorpusObservations seen =
        observeCorpus(module_, wantContexts, corpus);

    Rng rng(options_.seed);
    std::vector<FaultInjection> applied;

    for (ViolationFamily family : options_.families) {
        switch (family) {
          case ViolationFamily::UnreachableBlock: {
            // Un-visit a block the corpus executes: the checker hooks
            // it as likely-unreachable and must fire.
            std::vector<BlockId> candidates;
            for (BlockId block : seen.blocks)
                if (invariants.blockVisited(block))
                    candidates.push_back(block);
            if (const BlockId *block = pick(candidates, rng)) {
                invariants.visitedBlocks.erase(*block);
                applied.push_back({family, *block, kNoInstr, 0});
            }
            break;
          }
          case ViolationFamily::CalleeSet: {
            // Drop a callee the corpus resolves at a checked site.
            std::vector<std::pair<InstrId, FuncId>> candidates;
            for (const auto &[site, targets] : seen.calleeTargets) {
                auto it = invariants.calleeSets.find(site);
                if (it == invariants.calleeSets.end())
                    continue;
                for (FuncId target : targets)
                    if (it->second.count(target))
                        candidates.push_back({site, target});
            }
            if (const auto *cand = pick(candidates, rng)) {
                invariants.calleeSets[cand->first].erase(cand->second);
                applied.push_back(
                    {family, cand->first, kNoInstr, cand->second});
            }
            break;
          }
          case ViolationFamily::CallContext: {
            // Forget a context the corpus pushes.  Only chains the
            // invariant set actually holds are viable (the checker
            // compares against the profiled hashes).
            if (!invariants.hasCallContexts)
                break;
            std::vector<inv::CallContext> candidates;
            for (const inv::CallContext &context : seen.contexts)
                if (!context.empty() &&
                    invariants.callContexts.count(context))
                    candidates.push_back(context);
            if (const inv::CallContext *context = pick(candidates, rng)) {
                invariants.callContexts.erase(*context);
                invariants.rehashContexts();
                applied.push_back({family, context->back(), kNoInstr,
                                   inv::contextHash(*context)});
            }
            break;
          }
          case ViolationFamily::MustAliasLock: {
            // Assert must-alias where the corpus observably disagrees:
            // prefer a site that re-binds within one run (reflexive
            // pair), else a pair of sites bound to different objects.
            std::vector<std::pair<InstrId, InstrId>> candidates;
            for (InstrId site : seen.rebindSites)
                if (!invariants.mustAliasLocks.count({site, site}))
                    candidates.push_back({site, site});
            if (candidates.empty()) {
                for (const auto &pair : seen.divergingPairs)
                    if (!invariants.mustAliasLocks.count(pair))
                        candidates.push_back(pair);
            }
            if (const auto *pair = pick(candidates, rng)) {
                invariants.mustAliasLocks.insert(*pair);
                applied.push_back({family, pair->first, pair->second, 0});
            }
            break;
          }
          case ViolationFamily::SingletonSpawn: {
            // Assert spawn-once at a site the corpus spawns from twice.
            std::vector<InstrId> candidates;
            for (InstrId site : seen.multiSpawnSites)
                if (!invariants.singletonSpawnSites.count(site))
                    candidates.push_back(site);
            if (const InstrId *site = pick(candidates, rng)) {
                invariants.singletonSpawnSites.insert(*site);
                applied.push_back({family, *site, kNoInstr, 0});
            }
            break;
          }
          case ViolationFamily::None:
          case ViolationFamily::ElidedLockRace:
            break; // not injectable at the invariant level
        }
    }
    return applied;
}

} // namespace oha::dyn
