#include "dyn/fasttrack.h"

#include <algorithm>

namespace oha::dyn {

VectorClock &
FastTrack::clockOf(ThreadId tid)
{
    if (tid >= threads_.size())
        threads_.resize(tid + 1);
    return threads_[tid];
}

VectorClock &
FastTrack::lockClockOf(exec::ObjectId obj)
{
    if (obj >= locks_.size())
        locks_.resize(obj + 1);
    return locks_[obj];
}

void
FastTrack::onThreadStart(ThreadId tid, ThreadId parent, InstrId spawnSite)
{
    // Grow the clock table for both ids up front: fetching the child's
    // clock and then letting clockOf(parent) resize the vector would
    // leave the child reference dangling.
    const ThreadId high =
        spawnSite != kNoInstr ? std::max(tid, parent) : tid;
    if (high >= threads_.size())
        threads_.resize(high + 1);
    VectorClock &clock = threads_[tid];
    if (spawnSite != kNoInstr) {
        // Fork: child inherits parent's clock; parent advances.
        clock.join(threads_[parent]);
        threads_[parent].incr(parent);
    }
    clock.incr(tid); // thread's own component starts at 1
}

void
FastTrack::report(InstrId prev, InstrId cur, const exec::EventCtx &ctx)
{
    if (prev == kNoInstr)
        return;
    races_.insert({std::min(prev, cur), std::max(prev, cur), ctx.obj,
                   ctx.off});
}

void
FastTrack::read(ThreadId tid, const exec::EventCtx &ctx)
{
    VarState &var = vars_[addrKey(ctx.obj, ctx.off)];
    const VectorClock &clock = clockOf(tid);
    const Epoch now = clock.epochOf(tid);

    // Same-epoch fast path.
    if (!var.sharedRead && var.read == now)
        return;

    // Shared same-epoch fast path (the paper's READ SHARED SAME
    // EPOCH): this thread already recorded a read at this epoch, so
    // the write-race check ran then, and no write can have intervened
    // — a write deflates sharedRead and clears the reader array.
    if (var.sharedRead &&
        (tid < var.readers.size() ? var.readers[tid].clock : 0) ==
            now.clock()) {
        return;
    }

    // Write-read race check.
    if (!clock.covers(var.write) && var.write.clock() != 0)
        report(var.lastWriteInstr, ctx.instr->id, ctx);

    if (var.sharedRead) {
        ++readSlowPathUpdates_;
        if (tid >= var.readers.size())
            var.readers.resize(tid + 1);
        var.readers[tid] = {now.clock(), ctx.instr->id};
    } else if (clock.covers(var.read) || var.read.clock() == 0) {
        // Exclusive ordered read: stay in epoch representation.
        var.read = now;
    } else {
        // Concurrent readers: inflate to the dense reader array.
        ++readSlowPathUpdates_;
        var.sharedRead = true;
        const ThreadId high = std::max(var.read.tid(), tid);
        if (high >= var.readers.size())
            var.readers.resize(high + 1);
        var.readers[var.read.tid()] = {var.read.clock(),
                                       var.lastReadInstr};
        var.readers[tid] = {now.clock(), ctx.instr->id};
    }
    var.lastReadInstr = ctx.instr->id;
}

void
FastTrack::write(ThreadId tid, const exec::EventCtx &ctx)
{
    VarState &var = vars_[addrKey(ctx.obj, ctx.off)];
    const VectorClock &clock = clockOf(tid);
    const Epoch now = clock.epochOf(tid);

    if (var.write == now)
        return; // same-epoch fast path

    if (!clock.covers(var.write) && var.write.clock() != 0)
        report(var.lastWriteInstr, ctx.instr->id, ctx);

    if (var.sharedRead) {
        // Report every reader the write is not ordered after.
        for (std::size_t t = 0; t < var.readers.size(); ++t) {
            const auto readerTid = static_cast<ThreadId>(t);
            const ReadEntry &entry = var.readers[t];
            const Epoch reader(readerTid, entry.clock);
            if (reader.clock() != 0 && !clock.covers(reader)) {
                report(entry.instr != kNoInstr ? entry.instr
                                               : var.lastReadInstr,
                       ctx.instr->id, ctx);
            }
        }
        // Deflate: clear() keeps the array's capacity, so a cell that
        // oscillates between shared and exclusive does not reallocate.
        var.sharedRead = false;
        var.readers.clear();
        var.read = Epoch::none();
    } else if (var.read.clock() != 0 && !clock.covers(var.read)) {
        report(var.lastReadInstr, ctx.instr->id, ctx);
    }
    var.write = now;
    var.lastWriteInstr = ctx.instr->id;
}

void
FastTrack::onEvent(const exec::EventCtx &ctx)
{
    switch (ctx.instr->op) {
      case ir::Opcode::Load:
        // Shard filter: memory accesses are analyzed only by the
        // owning shard; everything below (sync, join) mutates
        // thread/lock clocks and runs on every shard.
        if (ownsObject(ctx.obj))
            read(ctx.tid, ctx);
        break;
      case ir::Opcode::Store:
        if (ownsObject(ctx.obj))
            write(ctx.tid, ctx);
        break;
      case ir::Opcode::Lock:
        // Acquire: thread learns everything released at this lock.
        clockOf(ctx.tid).join(lockClockOf(ctx.obj));
        break;
      case ir::Opcode::Unlock:
        // Release: publish and advance.
        lockClockOf(ctx.obj) = clockOf(ctx.tid);
        clockOf(ctx.tid).incr(ctx.tid);
        break;
      case ir::Opcode::Spawn:
        // Fork edge handled in onThreadStart (unconditional), so the
        // happens-before edge survives even if this event is elided.
        break;
      case ir::Opcode::Join:
        clockOf(ctx.tid).join(clockOf(ctx.otherTid));
        break;
      default:
        break;
    }
}

std::set<std::pair<InstrId, InstrId>>
FastTrack::racePairs() const
{
    std::set<std::pair<InstrId, InstrId>> pairs;
    for (const RaceReport &race : races_)
        pairs.insert({race.first, race.second});
    return pairs;
}

std::set<RaceReport>
mergeShardRaces(const std::vector<std::set<RaceReport>> &shardRaces)
{
    std::set<RaceReport> merged;
    for (const std::set<RaceReport> &shard : shardRaces)
        merged.insert(shard.begin(), shard.end());
    return merged;
}

} // namespace oha::dyn
