/**
 * @file
 * Deterministic fault injection for the misspeculation recovery path.
 *
 * Rollback, demotion and the circuit breaker are safety mechanisms:
 * on well-profiled workloads they almost never fire, which means
 * nothing exercises them unless we make speculation lose on purpose.
 * The injector perturbs a profiled InvariantSet so that running the
 * given corpus *must* trip a chosen violation family:
 *  - UnreachableBlock: un-visit a block the corpus executes;
 *  - CalleeSet: drop a callee the corpus resolves at an icall site;
 *  - CallContext: forget a call context the corpus pushes;
 *  - MustAliasLock: assert must-alias for a site (or pair) the corpus
 *    observably re-binds (or diverges);
 *  - SingletonSpawn: assert spawn-once for a site the corpus spawns
 *    from more than once.
 *
 * Candidates come from profiling-instrumented observation runs of the
 * corpus itself, so every injected fault is guaranteed to be detected
 * by the InvariantChecker on some corpus input.  Selection is driven
 * by a seeded support::Rng (OHA_FAULT_SEED in CI), so sweeps are
 * reproducible and independent of thread count.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dyn/violation.h"
#include "exec/interpreter.h"
#include "invariants/invariant_set.h"

namespace oha::dyn {

/** One perturbation applied to an invariant set. */
struct FaultInjection
{
    ViolationFamily family = ViolationFamily::None;
    InstrId site = kNoInstr;    ///< perturbed site / block id
    InstrId partner = kNoInstr; ///< partner lock site (pair injections)
    std::uint64_t detail = 0;   ///< family-specific (e.g. dropped callee)

    std::string describe() const;
};

struct FaultInjectorOptions
{
    /** Selection seed; every choice derives from it deterministically. */
    std::uint64_t seed = 1;
    /** Families to perturb, in order.  Families without a viable
     *  candidate on the given corpus are skipped. */
    std::vector<ViolationFamily> families = {
        ViolationFamily::UnreachableBlock,
        ViolationFamily::CalleeSet,
        ViolationFamily::MustAliasLock,
        ViolationFamily::SingletonSpawn,
    };
};

/** OHA_FAULT_SEED environment value, or 0 when unset/invalid. */
std::uint64_t faultSeedFromEnv();

/** Perturbs invariant sets so a corpus provably mis-speculates. */
class FaultInjector
{
  public:
    FaultInjector(const ir::Module &module, FaultInjectorOptions options);

    /** Observe @p corpus under profiling instrumentation, then apply
     *  one perturbation per requested family to @p invariants.
     *  Returns the injections actually applied. */
    std::vector<FaultInjection>
    inject(inv::InvariantSet &invariants,
           const std::vector<exec::ExecConfig> &corpus) const;

  private:
    const ir::Module &module_;
    FaultInjectorOptions options_;
};

} // namespace oha::dyn
