/**
 * @file
 * Deterministic fault injection for the misspeculation recovery path.
 *
 * Rollback, demotion and the circuit breaker are safety mechanisms:
 * on well-profiled workloads they almost never fire, which means
 * nothing exercises them unless we make speculation lose on purpose.
 * The injector perturbs a profiled InvariantSet so that running the
 * given corpus *must* trip a chosen violation family:
 *  - UnreachableBlock: un-visit a block the corpus executes;
 *  - CalleeSet: drop a callee the corpus resolves at an icall site;
 *  - CallContext: forget a call context the corpus pushes;
 *  - MustAliasLock: assert must-alias for a site (or pair) the corpus
 *    observably re-binds (or diverges);
 *  - SingletonSpawn: assert spawn-once for a site the corpus spawns
 *    from more than once.
 *
 * Candidates come from profiling-instrumented observation runs of the
 * corpus itself, so every injected fault is guaranteed to be detected
 * by the InvariantChecker on some corpus input.  Selection is driven
 * by a seeded support::Rng (OHA_FAULT_SEED in CI), so sweeps are
 * reproducible and independent of thread count.
 *
 * A second fault domain targets the durability layer: the persist
 * paths (support/durable_file.h) issue every syscall through armable
 * wrappers, and the helpers below turn "fail the k-th I/O op" into
 * seeded, reproducible sweeps — measure a healthy run's op count,
 * pick fault points, arm one per run, and assert every interruption
 * degrades to reject-count-recompute.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dyn/violation.h"
#include "exec/interpreter.h"
#include "invariants/invariant_set.h"
#include "support/durable_file.h"

namespace oha::dyn {

/** One perturbation applied to an invariant set. */
struct FaultInjection
{
    ViolationFamily family = ViolationFamily::None;
    InstrId site = kNoInstr;    ///< perturbed site / block id
    InstrId partner = kNoInstr; ///< partner lock site (pair injections)
    std::uint64_t detail = 0;   ///< family-specific (e.g. dropped callee)

    std::string describe() const;
};

struct FaultInjectorOptions
{
    /** Selection seed; every choice derives from it deterministically. */
    std::uint64_t seed = 1;
    /** Families to perturb, in order.  Families without a viable
     *  candidate on the given corpus are skipped. */
    std::vector<ViolationFamily> families = {
        ViolationFamily::UnreachableBlock,
        ViolationFamily::CalleeSet,
        ViolationFamily::MustAliasLock,
        ViolationFamily::SingletonSpawn,
    };
};

/** OHA_FAULT_SEED environment value, or 0 when unset/invalid. */
std::uint64_t faultSeedFromEnv();

// ------------------------------------------------------ I/O fault domain

/** One point in an I/O fault sweep: the @p failAfter-th operation
 *  matching @p opMask fails with @p error — or, with @p crash, the
 *  process _exit()s there (support::kIoCrashExitCode). */
struct IoFaultPoint
{
    std::uint64_t failAfter = 0;
    std::uint32_t opMask = support::kIoAllOps;
    int error = 5; ///< EIO
    bool crash = false;

    std::string describe() const;
};

/** Run @p body with faults disarmed and return how many faultable
 *  I/O operations (all classes) it performed — the sweep's op-count
 *  baseline.  With a restricted opMask, points past the matching-op
 *  count simply never fire (check ScopedIoFault::fired()). */
std::uint64_t countIoOps(const std::function<void()> &body);

/**
 * Seed-deterministic fault points covering an op-count of @p opCount:
 * exhaustive when opCount <= maxPoints, otherwise a seeded sample
 * that always includes the first and last operation (the two edges
 * where partial state is most asymmetric).  Empty when opCount is 0.
 */
std::vector<IoFaultPoint>
pickIoFaultPoints(std::uint64_t opCount, std::size_t maxPoints,
                  std::uint64_t seed,
                  std::uint32_t opMask = support::kIoAllOps,
                  bool crash = false);

/** Arms one fault point for the current scope; disarms (and leaves
 *  the op counter readable) on destruction. */
class ScopedIoFault
{
  public:
    explicit ScopedIoFault(const IoFaultPoint &point)
    {
        support::IoFaultPlan plan;
        plan.failAfter = point.failAfter;
        plan.opMask = point.opMask;
        plan.error = point.error;
        plan.crash = point.crash;
        support::resetIoOpCount();
        support::armIoFault(plan);
    }

    ~ScopedIoFault() { support::disarmIoFault(); }

    ScopedIoFault(const ScopedIoFault &) = delete;
    ScopedIoFault &operator=(const ScopedIoFault &) = delete;

    /** Whether the armed fault actually fired. */
    bool
    fired() const
    {
        return support::ioFaultsInjected() > 0;
    }
};

/** Perturbs invariant sets so a corpus provably mis-speculates. */
class FaultInjector
{
  public:
    FaultInjector(const ir::Module &module, FaultInjectorOptions options);

    /** Observe @p corpus under profiling instrumentation, then apply
     *  one perturbation per requested family to @p invariants.
     *  Returns the injections actually applied. */
    std::vector<FaultInjection>
    inject(inv::InvariantSet &invariants,
           const std::vector<exec::ExecConfig> &corpus) const;

  private:
    const ir::Module &module_;
    FaultInjectorOptions options_;
};

} // namespace oha::dyn
