#include "dyn/plans.h"

namespace oha::dyn {

namespace {

bool
isSyncOp(ir::Opcode op)
{
    return op == ir::Opcode::Lock || op == ir::Opcode::Unlock ||
           op == ir::Opcode::Spawn || op == ir::Opcode::Join;
}

} // namespace

exec::InstrumentationPlan
fullFastTrackPlan(const ir::Module &module)
{
    auto plan = exec::InstrumentationPlan::none(module);
    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        const ir::Instruction &ins = module.instr(id);
        if (ins.isMemAccess() || isSyncOp(ins.op))
            plan.setInstr(id, true);
    }
    return plan;
}

exec::InstrumentationPlan
hybridFastTrackPlan(const ir::Module &module,
                    const std::set<InstrId> &racyAccesses)
{
    auto plan = exec::InstrumentationPlan::none(module);
    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        const ir::Instruction &ins = module.instr(id);
        if (ins.isMemAccess()) {
            if (racyAccesses.count(id))
                plan.setInstr(id, true);
        } else if (isSyncOp(ins.op)) {
            plan.setInstr(id, true);
        }
    }
    return plan;
}

exec::InstrumentationPlan
optimisticFastTrackPlan(const ir::Module &module,
                        const std::set<InstrId> &racyAccesses,
                        const inv::InvariantSet &invariants)
{
    auto plan = hybridFastTrackPlan(module, racyAccesses);
    for (InstrId site : invariants.elidableLockSites)
        plan.setInstr(site, false);
    return plan;
}

exec::InstrumentationPlan
fullGiriPlan(const ir::Module &module)
{
    auto plan = exec::InstrumentationPlan::none(module);
    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        const ir::Instruction &ins = module.instr(id);
        // Branches produce no trace entries; locks are irrelevant to
        // data-flow slices.
        if (ins.op == ir::Opcode::Br || ins.op == ir::Opcode::CondBr ||
            ins.op == ir::Opcode::Lock || ins.op == ir::Opcode::Unlock) {
            continue;
        }
        plan.setInstr(id, true);
    }
    return plan;
}

exec::InstrumentationPlan
sliceGiriPlan(const ir::Module &module,
              const std::set<InstrId> &staticSlice)
{
    auto plan = exec::InstrumentationPlan::none(module);
    for (InstrId id : staticSlice) {
        const ir::Instruction &ins = module.instr(id);
        if (ins.op == ir::Opcode::Br || ins.op == ir::Opcode::CondBr ||
            ins.op == ir::Opcode::Lock || ins.op == ir::Opcode::Unlock) {
            continue;
        }
        plan.setInstr(id, true);
    }
    return plan;
}

} // namespace oha::dyn
