#include "dyn/violation.h"

namespace oha::dyn {

const char *
violationFamilyName(ViolationFamily family)
{
    switch (family) {
      case ViolationFamily::None: return "none";
      case ViolationFamily::UnreachableBlock: return "unreachable-block";
      case ViolationFamily::CalleeSet: return "callee-set";
      case ViolationFamily::CallContext: return "call-context";
      case ViolationFamily::MustAliasLock: return "must-alias-lock";
      case ViolationFamily::SingletonSpawn: return "singleton-spawn";
      case ViolationFamily::ElidedLockRace: return "elided-lock-race";
    }
    return "none";
}

std::string
Violation::describe() const
{
    switch (family) {
      case ViolationFamily::None:
        return "no violation";
      case ViolationFamily::UnreachableBlock:
        return "likely-unreachable code reached (block " +
               std::to_string(site) + ")";
      case ViolationFamily::CalleeSet:
        return "unexpected indirect-call target at site " +
               std::to_string(site);
      case ViolationFamily::CallContext:
        return "unobserved call context at site " + std::to_string(site);
      case ViolationFamily::MustAliasLock:
        if (partner == site)
            return "lock site " + std::to_string(site) +
                   " locked a second object";
        return "must-alias lock pair (" + std::to_string(site) + ", " +
               std::to_string(partner) + ") diverged";
      case ViolationFamily::SingletonSpawn:
        return "singleton spawn site " + std::to_string(site) +
               " spawned again";
      case ViolationFamily::ElidedLockRace:
        return "race reported while lock elision was active";
    }
    return "no violation";
}

exec::AbortMetadata
Violation::toAbortMetadata() const
{
    exec::AbortMetadata meta;
    meta.kind = static_cast<std::uint32_t>(family);
    meta.site = site;
    meta.aux = partner;
    meta.observed = observed;
    meta.thread = thread;
    return meta;
}

} // namespace oha::dyn
