/**
 * @file
 * Runtime verification of likely invariants (the speculation checks
 * of Section 2.3).
 *
 * The checker is a Tool attached alongside the main dynamic analysis.
 * Its InstrumentationPlan covers exactly the cheap check sites:
 *  - entries of likely-unreachable blocks (a bare violation call);
 *  - indirect call sites with likely callee sets;
 *  - all call/return sites when call-context checking is on, with a
 *    per-thread incremental context hash, a confirmed-context cache,
 *    and a Bloom filter in front of the exact set (Section 5.2.3);
 *  - lock sites involved in must-alias pairs;
 *  - likely-singleton spawn sites.
 *
 * On the first violated check it aborts the execution; the driver
 * rolls back and re-runs under traditional hybrid analysis.
 */

#pragma once

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/interpreter.h"
#include "invariants/invariant_set.h"
#include "support/bloom_filter.h"

namespace oha::dyn {

/** Which invariant families the client analysis relies on. */
struct CheckerConfig
{
    bool unreachableCode = true;
    bool calleeSets = true;
    bool callContexts = false;
    bool guardingLocks = true;
    bool singletonThreads = true;
};

/** Runtime likely-invariant checker. */
class InvariantChecker : public exec::Tool
{
  public:
    InvariantChecker(const ir::Module &module,
                     const inv::InvariantSet &invariants,
                     CheckerConfig config);

    /** The plan covering exactly this checker's check sites. */
    const exec::InstrumentationPlan &plan() const { return plan_; }

    /** Must be set before the run so violations can abort it.  Takes
     *  the event source's control surface — a live Interpreter or a
     *  TraceReplayer — so speculation checking works identically on
     *  recorded traces. */
    void setControl(exec::ExecutionControl *control) { control_ = control; }

    void onEvent(const exec::EventCtx &ctx) override;
    void onBlockEnter(ThreadId tid, BlockId block) override;
    void onThreadStart(ThreadId tid, ThreadId parent,
                       InstrId spawnSite) override;

    bool violated() const { return violated_; }
    const std::string &violationReason() const { return reason_; }

    /** Exact-set context probes that the Bloom filter + confirmed
     *  cache could not elide (the expensive path of Section 5.2.3). */
    std::uint64_t slowContextChecks() const { return slowChecks_; }

  private:
    void violate(const std::string &reason);

    const ir::Module &module_;
    const inv::InvariantSet &invariants_;
    CheckerConfig config_;
    exec::InstrumentationPlan plan_;
    exec::ExecutionControl *control_ = nullptr;

    // Call-context tracking.
    struct ThreadCtxState
    {
        std::vector<std::uint64_t> hashStack; ///< hash per depth
    };
    std::unordered_map<ThreadId, ThreadCtxState> ctxState_;
    BloomFilter contextBloom_;
    std::unordered_set<std::uint64_t> confirmedContexts_;

    // Guarding-lock tracking: first object each checked site locked.
    std::map<InstrId, exec::ObjectId> boundLockObject_;
    /** site -> partner sites in must-alias pairs. */
    std::map<InstrId, std::vector<InstrId>> lockPartners_;

    // Singleton-spawn tracking.
    std::map<InstrId, std::uint32_t> spawnCounts_;

    bool violated_ = false;
    std::string reason_;
    std::uint64_t slowChecks_ = 0;
};

} // namespace oha::dyn
