/**
 * @file
 * Runtime verification of likely invariants (the speculation checks
 * of Section 2.3).
 *
 * The checker is a Tool attached alongside the main dynamic analysis.
 * Its InstrumentationPlan covers exactly the cheap check sites:
 *  - entries of likely-unreachable blocks (a bare violation call);
 *  - indirect call sites with likely callee sets;
 *  - all call/return sites when call-context checking is on, with a
 *    per-thread incremental context hash, a confirmed-context cache,
 *    and a Bloom filter in front of the exact set (Section 5.2.3);
 *  - lock sites involved in must-alias pairs;
 *  - likely-singleton spawn sites.
 *
 * On the first violated check it aborts the execution with a typed
 * dyn::Violation; the driver rolls back, re-runs under traditional
 * hybrid analysis and — in adaptive mode — demotes the lying
 * invariant so the rest of the corpus runs under a repaired plan.
 *
 * Per-event state lives in support::FlatMap / sorted flat vectors
 * (lock bindings, spawn counts, pair adjacency), not node-based maps:
 * these are touched on every delivered Lock/Spawn event, the same
 * hot-path discipline as the FastTrack/Giri shadow state.
 */

#pragma once

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dyn/violation.h"
#include "exec/interpreter.h"
#include "invariants/invariant_set.h"
#include "support/bloom_filter.h"
#include "support/flat_map.h"

namespace oha::dyn {

/** Which invariant families the client analysis relies on. */
struct CheckerConfig
{
    bool unreachableCode = true;
    bool calleeSets = true;
    bool callContexts = false;
    bool guardingLocks = true;
    bool singletonThreads = true;
};

/** Runtime likely-invariant checker. */
class InvariantChecker : public exec::Tool
{
  public:
    InvariantChecker(const ir::Module &module,
                     const inv::InvariantSet &invariants,
                     CheckerConfig config);

    /** The plan covering exactly this checker's check sites. */
    const exec::InstrumentationPlan &plan() const { return plan_; }

    /** Must be set before the run so violations can abort it.  Takes
     *  the event source's control surface — a live Interpreter or a
     *  TraceReplayer — so speculation checking works identically on
     *  recorded traces. */
    void setControl(exec::ExecutionControl *control) { control_ = control; }

    void onEvent(const exec::EventCtx &ctx) override;
    void onBlockEnter(ThreadId tid, BlockId block) override;
    void onThreadStart(ThreadId tid, ThreadId parent,
                       InstrId spawnSite) override;

    bool violated() const { return violated_; }
    const std::string &violationReason() const { return reason_; }

    /** The typed first violation (family None when !violated()). */
    const Violation &violation() const { return violation_; }

    /** Exact-set context probes that the Bloom filter + confirmed
     *  cache could not elide (the expensive path of Section 5.2.3). */
    std::uint64_t slowContextChecks() const { return slowChecks_; }

  private:
    void violate(Violation violation);

    const ir::Module &module_;
    const inv::InvariantSet &invariants_;
    CheckerConfig config_;
    exec::InstrumentationPlan plan_;
    exec::ExecutionControl *control_ = nullptr;

    // Call-context tracking.
    struct ThreadCtxState
    {
        std::vector<std::uint64_t> hashStack; ///< hash per depth
        std::vector<InstrId> siteStack;       ///< call site per depth
    };
    std::unordered_map<ThreadId, ThreadCtxState> ctxState_;
    BloomFilter contextBloom_;
    std::unordered_set<std::uint64_t> confirmedContexts_;

    // Guarding-lock tracking: first object each checked site locked.
    support::FlatMap<exec::ObjectId> boundLockObject_;
    /** Must-alias pair adjacency, CSR layout: pairSites_ sorted, the
     *  partners of pairSites_[i] are pairPartners_[pairOffsets_[i] ..
     *  pairOffsets_[i + 1]).  Single-object sites (reflexive pairs)
     *  appear with an empty partner range. */
    std::vector<InstrId> pairSites_;
    std::vector<std::uint32_t> pairOffsets_;
    std::vector<InstrId> pairPartners_;

    // Singleton-spawn tracking.
    support::FlatMap<std::uint32_t> spawnCounts_;

    bool violated_ = false;
    std::string reason_;
    Violation violation_;
    std::uint64_t slowChecks_ = 0;
};

} // namespace oha::dyn
