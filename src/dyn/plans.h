/**
 * @file
 * Instrumentation-plan builders: which runtime checks each dynamic
 * analysis configuration keeps (Section 2.3, "elide instrumentation
 * for checks that static analysis has proven unnecessary").
 */

#pragma once

#include <set>

#include "exec/event.h"
#include "invariants/invariant_set.h"

namespace oha::dyn {

/** Full FastTrack: every load/store/lock/unlock/spawn/join. */
exec::InstrumentationPlan fullFastTrackPlan(const ir::Module &module);

/**
 * Hybrid FastTrack: loads/stores restricted to @p racyAccesses (from
 * the sound static detector); all synchronization kept.
 */
exec::InstrumentationPlan
hybridFastTrackPlan(const ir::Module &module,
                    const std::set<InstrId> &racyAccesses);

/**
 * OptFT: loads/stores restricted to the predicated detector's
 * @p racyAccesses; lock/unlock sites in
 * @p invariants.elidableLockSites elided under the
 * no-custom-synchronization invariant (Section 4.2.4).
 */
exec::InstrumentationPlan
optimisticFastTrackPlan(const ir::Module &module,
                        const std::set<InstrId> &racyAccesses,
                        const inv::InvariantSet &invariants);

/** Full Giri: every instruction that produces a trace entry. */
exec::InstrumentationPlan fullGiriPlan(const ir::Module &module);

/** Hybrid/optimistic Giri: only instructions in the static slice. */
exec::InstrumentationPlan
sliceGiriPlan(const ir::Module &module,
              const std::set<InstrId> &staticSlice);

} // namespace oha::dyn
