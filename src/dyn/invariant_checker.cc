#include "dyn/invariant_checker.h"

#include <algorithm>

namespace oha::dyn {

InvariantChecker::InvariantChecker(const ir::Module &module,
                                   const inv::InvariantSet &invariants,
                                   CheckerConfig config)
    : module_(module), invariants_(invariants), config_(config),
      plan_(exec::InstrumentationPlan::none(module))
{
    // Likely-unreachable code: hook entries of unvisited blocks only —
    // the check is "if you ever get here, mis-speculate".
    if (config_.unreachableCode) {
        for (BlockId block = 0; block < module.numBlocks(); ++block)
            if (!invariants.blockVisited(block))
                plan_.setBlock(block, true);
    }

    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        const ir::Instruction &ins = module.instr(id);
        switch (ins.op) {
          case ir::Opcode::ICall:
            if (config_.calleeSets &&
                invariants.calleeSets.count(ins.id)) {
                plan_.setInstr(id, true);
            }
            if (config_.callContexts)
                plan_.setInstr(id, true);
            break;
          case ir::Opcode::Call:
          case ir::Opcode::Ret:
            if (config_.callContexts)
                plan_.setInstr(id, true);
            break;
          case ir::Opcode::Lock:
            break; // handled below via pair membership
          case ir::Opcode::Spawn:
            if (config_.singletonThreads &&
                invariants.singletonSpawnSites.count(ins.id)) {
                plan_.setInstr(id, true);
            }
            break;
          default:
            break;
        }
    }

    if (config_.guardingLocks) {
        // Collect the pair adjacency in a transient ordered map, then
        // flatten it into the CSR table probed on every Lock event.
        std::map<InstrId, std::vector<InstrId>> adjacency;
        for (const auto &[a, b] : invariants.mustAliasLocks) {
            plan_.setInstr(a, true);
            plan_.setInstr(b, true);
            if (a != b) {
                adjacency[a].push_back(b);
                adjacency[b].push_back(a);
            } else {
                adjacency[a]; // ensure single-object tracking
            }
        }
        pairSites_.reserve(adjacency.size());
        pairOffsets_.reserve(adjacency.size() + 1);
        pairOffsets_.push_back(0);
        for (auto &[site, partners] : adjacency) {
            pairSites_.push_back(site);
            pairPartners_.insert(pairPartners_.end(), partners.begin(),
                                 partners.end());
            pairOffsets_.push_back(
                static_cast<std::uint32_t>(pairPartners_.size()));
        }
        boundLockObject_.reserve(pairSites_.size());
    }

    if (config_.callContexts) {
        for (std::uint64_t hash : invariants.contextHashes)
            contextBloom_.insert(hash);
    }
}

void
InvariantChecker::violate(Violation violation)
{
    if (violated_)
        return;
    violated_ = true;
    violation_ = std::move(violation);
    reason_ = violation_.describe();
    if (control_)
        control_->requestAbort("invariant violation: " + reason_,
                               violation_.toAbortMetadata());
}

void
InvariantChecker::onBlockEnter(ThreadId tid, BlockId block)
{
    // Only likely-unreachable blocks are hooked.
    Violation v;
    v.family = ViolationFamily::UnreachableBlock;
    v.site = block;
    v.thread = tid;
    violate(std::move(v));
}

void
InvariantChecker::onThreadStart(ThreadId tid, ThreadId, InstrId)
{
    if (config_.callContexts) {
        ThreadCtxState &state = ctxState_[tid];
        state.hashStack.clear();
        state.siteStack.clear();
    }
}

void
InvariantChecker::onEvent(const exec::EventCtx &ctx)
{
    const ir::Instruction &ins = *ctx.instr;

    switch (ins.op) {
      case ir::Opcode::Call:
      case ir::Opcode::ICall: {
        if (ins.op == ir::Opcode::ICall && config_.calleeSets) {
            auto it = invariants_.calleeSets.find(ins.id);
            if (it != invariants_.calleeSets.end() &&
                !it->second.count(ctx.calleeResolved)) {
                Violation v;
                v.family = ViolationFamily::CalleeSet;
                v.site = ins.id;
                v.observed = ctx.calleeResolved;
                v.thread = ctx.tid;
                violate(std::move(v));
                return;
            }
        }
        if (config_.callContexts) {
            ThreadCtxState &state = ctxState_[ctx.tid];
            const std::uint64_t parent =
                state.hashStack.empty() ? 0x51ed270b0a1f39c1ULL
                                        : state.hashStack.back();
            const std::uint64_t hash =
                inv::contextHashPush(parent, ins.id);
            state.hashStack.push_back(hash);
            state.siteStack.push_back(ins.id);
            // Contexts deeper than the profiler records are exempt
            // (the profiler skips them symmetrically, by sharing
            // inv::kMaxContextDepth).
            if (state.hashStack.size() <= inv::kMaxContextDepth &&
                !confirmedContexts_.count(hash)) {
                const bool mayContain = contextBloom_.mayContain(hash);
                bool confirmed = false;
                if (mayContain) {
                    // Bloom positive: confirm against the exact set.
                    ++slowChecks_;
                    confirmed = invariants_.contextHashes.count(hash) > 0;
                }
                if (!confirmed) {
                    Violation v;
                    v.family = ViolationFamily::CallContext;
                    v.site = ins.id;
                    v.observed = hash;
                    v.thread = ctx.tid;
                    v.contextChain = state.siteStack;
                    violate(std::move(v));
                    return;
                }
                confirmedContexts_.insert(hash);
            }
        }
        break;
      }
      case ir::Opcode::Ret: {
        if (config_.callContexts) {
            ThreadCtxState &state = ctxState_[ctx.tid];
            if (!state.hashStack.empty()) {
                state.hashStack.pop_back();
                state.siteStack.pop_back();
            }
        }
        break;
      }
      case ir::Opcode::Lock: {
        const auto siteIt = std::lower_bound(pairSites_.begin(),
                                             pairSites_.end(), ins.id);
        if (siteIt == pairSites_.end() || *siteIt != ins.id)
            break;
        // Bindings are stored biased by +1: 0 means "not bound yet"
        // (ObjectId 0 is a real object — the first global).
        const exec::ObjectId biased = ctx.obj + 1;
        exec::ObjectId &bound = boundLockObject_[ins.id];
        if (bound == 0) {
            bound = biased;
        } else if (bound != biased) {
            Violation v;
            v.family = ViolationFamily::MustAliasLock;
            v.site = ins.id;
            v.partner = ins.id;
            v.observed = ctx.obj;
            v.thread = ctx.tid;
            violate(std::move(v));
            return;
        }
        const std::size_t idx = siteIt - pairSites_.begin();
        for (std::uint32_t p = pairOffsets_[idx];
             p < pairOffsets_[idx + 1]; ++p) {
            const InstrId partner = pairPartners_[p];
            const exec::ObjectId *other = boundLockObject_.find(partner);
            if (other && *other != 0 && *other != biased) {
                Violation v;
                v.family = ViolationFamily::MustAliasLock;
                v.site = ins.id;
                v.partner = partner;
                v.observed = ctx.obj;
                v.thread = ctx.tid;
                violate(std::move(v));
                return;
            }
        }
        break;
      }
      case ir::Opcode::Spawn: {
        if (++spawnCounts_[ins.id] > 1) {
            Violation v;
            v.family = ViolationFamily::SingletonSpawn;
            v.site = ins.id;
            v.observed = spawnCounts_[ins.id];
            v.thread = ctx.tid;
            violate(std::move(v));
        }
        break;
      }
      default:
        break;
    }
}

} // namespace oha::dyn
