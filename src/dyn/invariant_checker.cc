#include "dyn/invariant_checker.h"

namespace oha::dyn {

InvariantChecker::InvariantChecker(const ir::Module &module,
                                   const inv::InvariantSet &invariants,
                                   CheckerConfig config)
    : module_(module), invariants_(invariants), config_(config),
      plan_(exec::InstrumentationPlan::none(module))
{
    // Likely-unreachable code: hook entries of unvisited blocks only —
    // the check is "if you ever get here, mis-speculate".
    if (config_.unreachableCode) {
        for (BlockId block = 0; block < module.numBlocks(); ++block)
            if (!invariants.blockVisited(block))
                plan_.setBlock(block, true);
    }

    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        const ir::Instruction &ins = module.instr(id);
        switch (ins.op) {
          case ir::Opcode::ICall:
            if (config_.calleeSets &&
                invariants.calleeSets.count(ins.id)) {
                plan_.setInstr(id, true);
            }
            if (config_.callContexts)
                plan_.setInstr(id, true);
            break;
          case ir::Opcode::Call:
          case ir::Opcode::Ret:
            if (config_.callContexts)
                plan_.setInstr(id, true);
            break;
          case ir::Opcode::Lock:
            break; // handled below via pair membership
          case ir::Opcode::Spawn:
            if (config_.singletonThreads &&
                invariants.singletonSpawnSites.count(ins.id)) {
                plan_.setInstr(id, true);
            }
            break;
          default:
            break;
        }
    }

    if (config_.guardingLocks) {
        for (const auto &[a, b] : invariants.mustAliasLocks) {
            plan_.setInstr(a, true);
            plan_.setInstr(b, true);
            if (a != b) {
                lockPartners_[a].push_back(b);
                lockPartners_[b].push_back(a);
            } else {
                lockPartners_[a]; // ensure single-object tracking
            }
        }
    }

    if (config_.callContexts) {
        for (std::uint64_t hash : invariants.contextHashes)
            contextBloom_.insert(hash);
    }
}

void
InvariantChecker::violate(const std::string &reason)
{
    if (violated_)
        return;
    violated_ = true;
    reason_ = reason;
    if (control_)
        control_->requestAbort("invariant violation: " + reason);
}

void
InvariantChecker::onBlockEnter(ThreadId, BlockId block)
{
    // Only likely-unreachable blocks are hooked.
    violate("likely-unreachable code reached (block " +
            std::to_string(block) + ")");
}

void
InvariantChecker::onThreadStart(ThreadId tid, ThreadId, InstrId)
{
    if (config_.callContexts)
        ctxState_[tid].hashStack.clear();
}

void
InvariantChecker::onEvent(const exec::EventCtx &ctx)
{
    const ir::Instruction &ins = *ctx.instr;

    switch (ins.op) {
      case ir::Opcode::Call:
      case ir::Opcode::ICall: {
        if (ins.op == ir::Opcode::ICall && config_.calleeSets) {
            auto it = invariants_.calleeSets.find(ins.id);
            if (it != invariants_.calleeSets.end() &&
                !it->second.count(ctx.calleeResolved)) {
                violate("unexpected indirect-call target at site " +
                        std::to_string(ins.id));
                return;
            }
        }
        if (config_.callContexts) {
            auto &stack = ctxState_[ctx.tid].hashStack;
            const std::uint64_t parent =
                stack.empty() ? 0x51ed270b0a1f39c1ULL : stack.back();
            const std::uint64_t hash =
                inv::contextHashPush(parent, ins.id);
            stack.push_back(hash);
            // Contexts deeper than the profiler records are exempt
            // (the profiler skips them symmetrically, by sharing
            // inv::kMaxContextDepth).
            if (stack.size() <= inv::kMaxContextDepth &&
                !confirmedContexts_.count(hash)) {
                if (!contextBloom_.mayContain(hash)) {
                    violate("unobserved call context at site " +
                            std::to_string(ins.id));
                    return;
                }
                // Bloom positive: confirm against the exact set.
                ++slowChecks_;
                if (!invariants_.contextHashes.count(hash)) {
                    violate("unobserved call context at site " +
                            std::to_string(ins.id));
                    return;
                }
                confirmedContexts_.insert(hash);
            }
        }
        break;
      }
      case ir::Opcode::Ret: {
        if (config_.callContexts) {
            auto &stack = ctxState_[ctx.tid].hashStack;
            if (!stack.empty())
                stack.pop_back();
        }
        break;
      }
      case ir::Opcode::Lock: {
        auto partnersIt = lockPartners_.find(ins.id);
        if (partnersIt == lockPartners_.end())
            break;
        auto [boundIt, isNew] =
            boundLockObject_.emplace(ins.id, ctx.obj);
        if (!isNew && boundIt->second != ctx.obj) {
            violate("lock site " + std::to_string(ins.id) +
                    " locked a second object");
            return;
        }
        for (InstrId partner : partnersIt->second) {
            auto other = boundLockObject_.find(partner);
            if (other != boundLockObject_.end() &&
                other->second != ctx.obj) {
                violate("must-alias lock pair (" + std::to_string(ins.id) +
                        ", " + std::to_string(partner) + ") diverged");
                return;
            }
        }
        break;
      }
      case ir::Opcode::Spawn: {
        if (++spawnCounts_[ins.id] > 1) {
            violate("singleton spawn site " + std::to_string(ins.id) +
                    " spawned again");
        }
        break;
      }
      default:
        break;
    }
}

} // namespace oha::dyn
