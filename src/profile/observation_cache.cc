#include "profile/observation_cache.h"

#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <utility>

#include "service/shared_cache.h"

namespace oha::prof {

namespace {

using service::Fingerprint;
using service::LruList;
using service::SharedCache;

void
appendU64(std::string &out, std::uint64_t value)
{
    for (unsigned shift = 0; shift < 64; shift += 8)
        out.push_back(static_cast<char>((value >> shift) & 0xff));
}

/** Every ExecConfig field plus the observation-relevant profile
 *  option, packed for fingerprinting. */
Fingerprint
observationFingerprint(const ProfileOptions &options,
                       const exec::ExecConfig &config)
{
    std::string packed;
    packed.reserve((config.input.size() + config.replaySchedule.size() +
                    9) *
                   sizeof(std::uint64_t));
    appendU64(packed, options.callContexts ? 1 : 0);
    appendU64(packed, config.input.size());
    for (std::int64_t word : config.input)
        appendU64(packed, static_cast<std::uint64_t>(word));
    appendU64(packed, config.scheduleSeed);
    appendU64(packed, config.maxSteps);
    appendU64(packed, config.minQuantum);
    appendU64(packed, config.maxQuantum);
    appendU64(packed, config.recordSchedule ? 1 : 0);
    appendU64(packed, config.replaySchedule.size());
    for (const exec::ScheduleStep &step : config.replaySchedule) {
        appendU64(packed, step.thread);
        appendU64(packed, step.quantum);
    }
    return service::fingerprintText(packed);
}

struct ObservationKey
{
    std::uint64_t moduleFp;
    std::uint64_t observationFp;

    bool
    operator<(const ObservationKey &other) const
    {
        return std::tie(moduleFp, observationFp) <
               std::tie(other.moduleFp, other.observationFp);
    }
};

struct Entry
{
    std::uint64_t moduleSecondary = 0;
    std::uint64_t observationSecondary = 0;
    std::shared_ptr<const ir::Module> module;
    std::shared_ptr<const RunObservations> observations;
    LruList::Handle handle;
};

using ObservationMap = std::map<ObservationKey, Entry>;

/** The profiling section of the shared cache, registered on first
 *  use.  Callers MUST materialize this before taking the spine
 *  mutex. */
ObservationMap &
section()
{
    static ObservationMap *instance = [] {
        auto *map = new ObservationMap;
        SharedCache::instance().registerSection([map] { map->clear(); });
        return map;
    }();
    return *instance;
}

} // namespace

std::size_t
byteSizeEstimate(const RunObservations &observations)
{
    std::size_t bytes = sizeof(observations);
    bytes += observations.blockCounts.capacity() *
             sizeof(std::pair<BlockId, std::uint64_t>);
    bytes += observations.calleeSets.capacity() *
             sizeof(std::pair<InstrId, std::vector<FuncId>>);
    for (const auto &[instr, callees] : observations.calleeSets)
        bytes += callees.capacity() * sizeof(FuncId);
    // std::set node overhead plus the context vector payload.
    for (const inv::CallContext &context : observations.callContexts)
        bytes += 64 + context.capacity() * sizeof(InstrId);
    bytes += observations.lockObjects.capacity() *
             sizeof(std::pair<InstrId, std::vector<exec::ObjectId>>);
    for (const auto &[instr, objects] : observations.lockObjects)
        bytes += objects.capacity() * sizeof(exec::ObjectId);
    bytes += observations.spawnCounts.capacity() *
             sizeof(std::pair<InstrId, std::uint64_t>);
    return bytes;
}

std::shared_ptr<const RunObservations>
observeRunMemo(const std::shared_ptr<const ir::Module> &module,
               const ProfileOptions &options,
               const exec::ExecConfig &config)
{
    OHA_ASSERT(module && module->finalized());

    ObservationMap &map = section();
    SharedCache &sc = SharedCache::instance();

    const Fingerprint moduleFp = service::fingerprintModule(module);
    const Fingerprint observationFp =
        observationFingerprint(options, config);
    const ObservationKey key{moduleFp.primary, observationFp.primary};

    std::uint64_t gen = 0;
    {
        std::lock_guard<std::mutex> lock(sc.mutex());
        gen = sc.generation();
        auto it = map.find(key);
        if (it != map.end()) {
            if (it->second.moduleSecondary == moduleFp.secondary &&
                it->second.observationSecondary ==
                    observationFp.secondary) {
                sc.noteHit();
                sc.lru().touch(it->second.handle);
                return it->second.observations;
            }
            // 64-bit collision: evict the wrong-keyed entry, observe
            // fresh (counted, never silently served).
            sc.noteVerifiedMiss();
            sc.lru().remove(it->second.handle);
            map.erase(it);
        } else {
            sc.noteMiss();
        }
    }

    // The profiled run happens outside the lock.
    ProfilingCampaign scratch(*module, options);
    auto observations = std::make_shared<const RunObservations>(
        scratch.observeRun(config));
    const std::size_t bytes = byteSizeEstimate(*observations);

    std::lock_guard<std::mutex> lock(sc.mutex());
    if (gen != sc.generation()) {
        sc.noteStaleDrop();
        return observations;
    }
    auto it = map.find(key);
    if (it != map.end()) {
        if (it->second.moduleSecondary == moduleFp.secondary &&
            it->second.observationSecondary == observationFp.secondary)
            return it->second.observations; // first insert wins
        sc.lru().remove(it->second.handle);
        map.erase(it);
    }
    Entry entry;
    entry.moduleSecondary = moduleFp.secondary;
    entry.observationSecondary = observationFp.secondary;
    entry.module = module;
    entry.observations = std::move(observations);
    auto [pos, inserted] = map.emplace(key, std::move(entry));
    OHA_ASSERT(inserted);
    pos->second.handle =
        sc.lru().insert(bytes, [&map, key] { map.erase(key); });
    std::shared_ptr<const RunObservations> shared =
        pos->second.observations;
    sc.enforceBudget();
    return shared;
}

std::vector<ObservationSectionEntry>
exportObservationSection()
{
    ObservationMap &map = section();
    SharedCache &sc = SharedCache::instance();
    std::vector<ObservationSectionEntry> out;
    std::lock_guard<std::mutex> lock(sc.mutex());
    out.reserve(map.size());
    for (const auto &[key, entry] : map) {
        out.push_back({{key.moduleFp, entry.moduleSecondary},
                       {key.observationFp, entry.observationSecondary},
                       entry.observations});
    }
    return out;
}

void
admitObservationSectionEntry(const ObservationSectionEntry &entry)
{
    if (!entry.observations)
        return;
    ObservationMap &map = section();
    SharedCache &sc = SharedCache::instance();
    const ObservationKey key{entry.moduleFp.primary,
                             entry.observationFp.primary};
    const std::size_t bytes = byteSizeEstimate(*entry.observations);
    std::lock_guard<std::mutex> lock(sc.mutex());
    if (map.find(key) != map.end())
        return; // first insert wins: never displace a live entry
    Entry stored;
    stored.moduleSecondary = entry.moduleFp.secondary;
    stored.observationSecondary = entry.observationFp.secondary;
    // No module object: restored entries verify fingerprints only.
    stored.observations = entry.observations;
    auto [pos, inserted] = map.emplace(key, std::move(stored));
    OHA_ASSERT(inserted);
    pos->second.handle =
        sc.lru().insert(bytes, [&map, key] { map.erase(key); });
    sc.enforceBudget();
}

} // namespace oha::prof
