/**
 * @file
 * Shared-cache section for profiling-run observations.
 *
 * observeRun() is a pure function of (module, exec config, profile
 * options): the raw observations of a profiled run carry no campaign
 * state (merging them is where the statefulness lives).  That makes
 * each observation exactly as memoizable as a trace capture — and in
 * service mode the profiling campaign is the dominant *uncached* cost
 * of a warm request, so caching observations is what lets a repeated
 * (module, corpus) request skip the interpreter entirely.
 *
 * Entries live in the process-wide shared cross-request cache
 * (service/shared_cache.h): dual-fingerprint verified, LRU-evicted
 * under the global byte budget, dropped wholesale on
 * analysis::resetAndersenCache().
 */

#pragma once

#include <memory>
#include <vector>

#include "ir/module.h"
#include "profile/profiler.h"
#include "service/shared_cache.h"

namespace oha::prof {

/** Approximate heap footprint of one run's observations (byte-budget
 *  accounting in the shared cache). */
std::size_t byteSizeEstimate(const RunObservations &observations);

/**
 * Memoized observeRun.  Keyed on (module fingerprint, exec-config
 * fingerprint, callContexts); ProfileOptions::threads is irrelevant
 * to the observations and deliberately excluded from the key.
 * Results are identical to a fresh ProfilingCampaign::observeRun —
 * a cached observation merges byte-identically.
 */
std::shared_ptr<const RunObservations>
observeRunMemo(const std::shared_ptr<const ir::Module> &module,
               const ProfileOptions &options,
               const exec::ExecConfig &config);

/** Snapshot-portable view of one cached observation (both
 *  fingerprints of each key component + the plain-data result); see
 *  exec::TraceSectionEntry for the restore semantics. */
struct ObservationSectionEntry
{
    service::Fingerprint moduleFp;
    service::Fingerprint observationFp;
    std::shared_ptr<const RunObservations> observations;
};

/** Copy the cached observations out for snapshotting. */
std::vector<ObservationSectionEntry> exportObservationSection();

/** Re-admit a restored observation (warm start).  First insert wins;
 *  the entry joins the LRU spine with its byte estimate charged. */
void admitObservationSectionEntry(const ObservationSectionEntry &entry);

} // namespace oha::prof
