/**
 * @file
 * The likely-invariant profiling campaign (phase 1 of optimistic
 * hybrid analysis, Section 2.1).
 *
 * A campaign executes profiling inputs one at a time, merging each
 * run's observations into the accumulated InvariantSet:
 *  - reachable-style invariants (visited blocks, callee sets, call
 *    contexts) are unions across runs;
 *  - constraint-style invariants (must-alias lock pairs, singleton
 *    spawn sites) survive only if no run violated them.
 *
 * Callers typically addRun() until the invariant set stabilizes —
 * the "profile until the number of learned dynamic invariants
 * stabilizes" methodology of Section 6.1.
 */

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "exec/interpreter.h"
#include "invariants/invariant_set.h"

namespace oha::prof {

/** What to profile (contexts are only useful to OptSlice's CS client). */
struct ProfileOptions
{
    bool callContexts = false;
    /** Worker threads for batched profiling; 0 = OHA_THREADS env. */
    std::size_t threads = 0;
};

/**
 * The raw observations of a single profiled run, separated from the
 * campaign so runs can execute concurrently: gathering observations
 * is a pure function of (module, input), while merging them into the
 * campaign happens serially in input-index order.
 */
struct RunObservations
{
    // Keyed observations are flat vectors sorted by key (inner sets
    // are sorted-unique vectors): same iteration order the merge
    // loops saw with std::map/std::set, minus the per-node
    // allocations on the fully-instrumented profiling hot path.
    std::vector<std::pair<BlockId, std::uint64_t>> blockCounts;
    std::vector<std::pair<InstrId, std::vector<FuncId>>> calleeSets;
    std::set<inv::CallContext> callContexts;
    std::vector<std::pair<InstrId, std::vector<exec::ObjectId>>>
        lockObjects;
    std::vector<std::pair<InstrId, std::uint64_t>> spawnCounts;
    std::uint64_t steps = 0;
    exec::RunResult::Status status = exec::RunResult::Status::Finished;
};

/**
 * Pluggable source of per-run observations for
 * addRunsUntilConverged.  Observations are a pure function of
 * (module, input), so a campaign can be driven from a memo cache
 * (profile/observation_cache.h) instead of live profiled execution —
 * the merged result is identical either way.
 */
using Observer = std::function<std::shared_ptr<const RunObservations>(
    const exec::ExecConfig &)>;

/** Accumulates likely invariants over a sequence of profiled runs. */
class ProfilingCampaign
{
  public:
    ProfilingCampaign(const ir::Module &module, ProfileOptions options);

    /**
     * Execute the program on @p config with full profiling
     * instrumentation and merge the observations.
     * @return true if the merged invariant set changed.
     */
    bool addRun(const exec::ExecConfig &config);

    /**
     * Profile @p inputs in order until the invariant set has been
     * stable for @p convergenceWindow consecutive runs or @p maxRuns
     * runs merged, executing up to ProfileOptions::threads runs
     * concurrently.  Observations are merged in input-index order and
     * speculative surplus runs past the convergence point are
     * discarded, so the merged invariants, profiled-step total and
     * run count are byte-identical to the serial loop.
     *
     * When @p observe is set it replaces observeRun as the source of
     * each input's observations (e.g. the shared observation cache);
     * it must return exactly what observeRun would.
     * @return the number of runs merged.
     */
    std::size_t addRunsUntilConverged(
        const std::vector<exec::ExecConfig> &inputs, std::size_t maxRuns,
        std::size_t convergenceWindow, const Observer &observe = {});

    /** Execute one profiled run without merging it (thread-safe). */
    RunObservations observeRun(const exec::ExecConfig &config) const;

    /** Merge one run's observations; @return true if the invariant
     *  set changed.  Call in input-index order for determinism. */
    bool mergeRun(const RunObservations &run);

    /** The merged invariant set so far. */
    const inv::InvariantSet &invariants() const { return invariants_; }

    /**
     * The strength/stability trade-off of Section 2.1: "aggressively
     * assume a property that is infrequently violated during
     * profiling".  Returns the invariant set with likely-unreachable
     * code extended to blocks executed fewer than @p minVisits times
     * across the whole campaign — stronger pruning, more
     * mis-speculations.  minVisits <= 1 reproduces invariants().
     */
    inv::InvariantSet invariantsWithAggressiveLuc(
        std::uint64_t minVisits) const;

    /** Guest instructions executed across all profiled runs
     *  (profiling cost accounting). */
    std::uint64_t profiledSteps() const { return profiledSteps_; }

    std::size_t numRuns() const { return numRuns_; }

  private:
    void mergeLockObservations(
        const std::vector<std::pair<InstrId, std::vector<exec::ObjectId>>>
            &objects);

    const ir::Module &module_;
    ProfileOptions options_;
    inv::InvariantSet invariants_;

    /** Candidate and violated must-alias lock pairs across runs. */
    std::set<std::pair<InstrId, InstrId>> lockCandidates_;
    std::set<std::pair<InstrId, InstrId>> lockViolated_;
    /** Max spawn count per site across runs. */
    std::map<InstrId, std::uint64_t> maxSpawnCounts_;
    /** Total visit count per block across runs (aggressive LUC). */
    std::map<BlockId, std::uint64_t> blockCounts_;

    std::uint64_t profiledSteps_ = 0;
    std::size_t numRuns_ = 0;
};

} // namespace oha::prof
