/**
 * @file
 * Per-invariant profiling passes (Sections 4.2 and 5.2).
 *
 * Each profiler is an interpreter Tool run with full instrumentation;
 * it observes one kind of program behaviour during a single execution
 * and exposes the raw observations.  ProfilingCampaign (profiler.h)
 * merges observations across runs into an InvariantSet.
 *
 * Profiling runs everything fully instrumented, so these callbacks
 * are the hottest tool code in phase 1.  The per-event state is kept
 * in dense vectors (block counts) and open-addressed FlatMaps (keyed
 * observations) instead of node-based std::map/std::set; observations
 * are emitted as sorted flat vectors, which is exactly the key order
 * the campaign's merge loops relied on with std::map.
 */

#pragma once

#include <algorithm>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exec/event.h"
#include "invariants/invariant_set.h"
#include "support/flat_map.h"

namespace oha::prof {

/** Counts executions of each basic block (likely-unreachable code). */
class BlockCountProfiler : public exec::Tool
{
  public:
    void
    onBlockEnter(ThreadId, BlockId block) override
    {
        if (block >= counts_.size())
            counts_.resize(std::size_t{block} + 1, 0);
        ++counts_[block];
    }

    /** Dense counts indexed by block id (may be shorter than the
     *  module's block count; trailing never-entered blocks are
     *  simply absent). */
    const std::vector<std::uint64_t> &counts() const { return counts_; }

    /** Sorted (block, count) pairs over entered blocks only. */
    std::vector<std::pair<BlockId, std::uint64_t>>
    flatCounts() const
    {
        std::vector<std::pair<BlockId, std::uint64_t>> out;
        for (std::size_t block = 0; block < counts_.size(); ++block)
            if (counts_[block])
                out.push_back({static_cast<BlockId>(block),
                               counts_[block]});
        return out;
    }

  private:
    std::vector<std::uint64_t> counts_;
};

/** Records observed targets of each indirect call (likely callee sets). */
class CalleeSetProfiler : public exec::Tool
{
  public:
    void
    onEvent(const exec::EventCtx &ctx) override
    {
        if (ctx.instr->op != ir::Opcode::ICall)
            return;
        // Callee sets are tiny (a handful of targets), so a sorted
        // vector beats a node-based set on both insert and merge.
        std::vector<FuncId> &funcs = callees_[ctx.instr->id];
        const auto it = std::lower_bound(funcs.begin(), funcs.end(),
                                         ctx.calleeResolved);
        if (it == funcs.end() || *it != ctx.calleeResolved)
            funcs.insert(it, ctx.calleeResolved);
    }

    /** (site, sorted-unique callees) pairs, sorted by site. */
    std::vector<std::pair<InstrId, std::vector<FuncId>>>
    flatCallees() const
    {
        std::vector<std::pair<InstrId, std::vector<FuncId>>> out;
        out.reserve(callees_.size());
        callees_.forEach(
            [&](std::uint64_t site, const std::vector<FuncId> &funcs) {
                out.push_back({static_cast<InstrId>(site), funcs});
            });
        std::sort(out.begin(), out.end());
        return out;
    }

  private:
    support::FlatMap<std::vector<FuncId>> callees_;
};

/**
 * Records every distinct call stack, as a chain of call-site ids
 * (likely-unused call contexts).  Stacks deeper than kMaxDepth are
 * not recorded (and the matching runtime check skips them too).
 */
class CallContextProfiler : public exec::Tool
{
  public:
    /** Recording cap, shared with the runtime checker's exemption. */
    static constexpr std::size_t kMaxDepth = inv::kMaxContextDepth;

    void
    onEvent(const exec::EventCtx &ctx) override
    {
        switch (ctx.instr->op) {
          case ir::Opcode::Call:
          case ir::Opcode::ICall: {
            auto &stack = stacks_[ctx.tid];
            stack.push_back(ctx.instr->id);
            if (stack.size() <= kMaxDepth)
                contexts_.insert(stack);
            break;
          }
          case ir::Opcode::Ret: {
            auto &stack = stacks_[ctx.tid];
            if (!stack.empty())
                stack.pop_back();
            break;
          }
          default:
            break;
        }
    }

    void
    onThreadStart(ThreadId tid, ThreadId, InstrId) override
    {
        stacks_[tid].clear();
    }

    const std::set<inv::CallContext> &contexts() const { return contexts_; }

  private:
    std::unordered_map<ThreadId, inv::CallContext> stacks_;
    std::set<inv::CallContext> contexts_;
};

/** Records the dynamic objects locked at each lock site
 *  (likely guarding locks). */
class LockObjectProfiler : public exec::Tool
{
  public:
    void
    onEvent(const exec::EventCtx &ctx) override
    {
        if (ctx.instr->op != ir::Opcode::Lock)
            return;
        std::vector<exec::ObjectId> &objs = objects_[ctx.instr->id];
        const auto it =
            std::lower_bound(objs.begin(), objs.end(), ctx.obj);
        if (it == objs.end() || *it != ctx.obj)
            objs.insert(it, ctx.obj);
    }

    /** (site, sorted-unique objects) pairs, sorted by site. */
    std::vector<std::pair<InstrId, std::vector<exec::ObjectId>>>
    flatObjects() const
    {
        std::vector<std::pair<InstrId, std::vector<exec::ObjectId>>> out;
        out.reserve(objects_.size());
        objects_.forEach([&](std::uint64_t site,
                             const std::vector<exec::ObjectId> &objs) {
            out.push_back({static_cast<InstrId>(site), objs});
        });
        std::sort(out.begin(), out.end());
        return out;
    }

  private:
    support::FlatMap<std::vector<exec::ObjectId>> objects_;
};

/** Counts threads created at each spawn site (likely singleton thread). */
class SpawnCountProfiler : public exec::Tool
{
  public:
    void
    onEvent(const exec::EventCtx &ctx) override
    {
        if (ctx.instr->op == ir::Opcode::Spawn)
            ++counts_[ctx.instr->id];
    }

    /** (site, count) pairs, sorted by site. */
    std::vector<std::pair<InstrId, std::uint64_t>>
    flatCounts() const
    {
        std::vector<std::pair<InstrId, std::uint64_t>> out;
        out.reserve(counts_.size());
        counts_.forEach([&](std::uint64_t site, std::uint64_t count) {
            out.push_back({static_cast<InstrId>(site), count});
        });
        std::sort(out.begin(), out.end());
        return out;
    }

  private:
    support::FlatMap<std::uint64_t> counts_;
};

} // namespace oha::prof
