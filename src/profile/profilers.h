/**
 * @file
 * Per-invariant profiling passes (Sections 4.2 and 5.2).
 *
 * Each profiler is an interpreter Tool run with full instrumentation;
 * it observes one kind of program behaviour during a single execution
 * and exposes the raw observations.  ProfilingCampaign (profiler.h)
 * merges observations across runs into an InvariantSet.
 */

#pragma once

#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "exec/event.h"
#include "invariants/invariant_set.h"

namespace oha::prof {

/** Counts executions of each basic block (likely-unreachable code). */
class BlockCountProfiler : public exec::Tool
{
  public:
    void
    onBlockEnter(ThreadId, BlockId block) override
    {
        ++counts_[block];
    }

    const std::map<BlockId, std::uint64_t> &counts() const
    {
        return counts_;
    }

  private:
    std::map<BlockId, std::uint64_t> counts_;
};

/** Records observed targets of each indirect call (likely callee sets). */
class CalleeSetProfiler : public exec::Tool
{
  public:
    void
    onEvent(const exec::EventCtx &ctx) override
    {
        if (ctx.instr->op == ir::Opcode::ICall)
            callees_[ctx.instr->id].insert(ctx.calleeResolved);
    }

    const std::map<InstrId, std::set<FuncId>> &callees() const
    {
        return callees_;
    }

  private:
    std::map<InstrId, std::set<FuncId>> callees_;
};

/**
 * Records every distinct call stack, as a chain of call-site ids
 * (likely-unused call contexts).  Stacks deeper than kMaxDepth are
 * not recorded (and the matching runtime check skips them too).
 */
class CallContextProfiler : public exec::Tool
{
  public:
    /** Recording cap, shared with the runtime checker's exemption. */
    static constexpr std::size_t kMaxDepth = inv::kMaxContextDepth;

    void
    onEvent(const exec::EventCtx &ctx) override
    {
        switch (ctx.instr->op) {
          case ir::Opcode::Call:
          case ir::Opcode::ICall: {
            auto &stack = stacks_[ctx.tid];
            stack.push_back(ctx.instr->id);
            if (stack.size() <= kMaxDepth)
                contexts_.insert(stack);
            break;
          }
          case ir::Opcode::Ret: {
            auto &stack = stacks_[ctx.tid];
            if (!stack.empty())
                stack.pop_back();
            break;
          }
          default:
            break;
        }
    }

    void
    onThreadStart(ThreadId tid, ThreadId, InstrId) override
    {
        stacks_[tid].clear();
    }

    const std::set<inv::CallContext> &contexts() const { return contexts_; }

  private:
    std::unordered_map<ThreadId, inv::CallContext> stacks_;
    std::set<inv::CallContext> contexts_;
};

/** Records the dynamic objects locked at each lock site
 *  (likely guarding locks). */
class LockObjectProfiler : public exec::Tool
{
  public:
    void
    onEvent(const exec::EventCtx &ctx) override
    {
        if (ctx.instr->op == ir::Opcode::Lock)
            objects_[ctx.instr->id].insert(ctx.obj);
    }

    const std::map<InstrId, std::set<exec::ObjectId>> &objects() const
    {
        return objects_;
    }

  private:
    std::map<InstrId, std::set<exec::ObjectId>> objects_;
};

/** Counts threads created at each spawn site (likely singleton thread). */
class SpawnCountProfiler : public exec::Tool
{
  public:
    void
    onEvent(const exec::EventCtx &ctx) override
    {
        if (ctx.instr->op == ir::Opcode::Spawn)
            ++counts_[ctx.instr->id];
    }

    const std::map<InstrId, std::uint64_t> &counts() const
    {
        return counts_;
    }

  private:
    std::map<InstrId, std::uint64_t> counts_;
};

} // namespace oha::prof
