#include "profile/profiler.h"

#include <algorithm>

#include "profile/profilers.h"
#include "support/thread_pool.h"

namespace oha::prof {

ProfilingCampaign::ProfilingCampaign(const ir::Module &module,
                                     ProfileOptions options)
    : module_(module), options_(options)
{
    invariants_.numBlocks = static_cast<std::uint32_t>(module.numBlocks());
    invariants_.hasCallContexts = options.callContexts;
}

void
ProfilingCampaign::mergeLockObservations(
    const std::vector<std::pair<InstrId, std::vector<exec::ObjectId>>>
        &objects)
{
    // A pair (a, b) is a must-alias candidate in this run if both
    // sites locked exactly one object and it was the same one; it is
    // violated if either site locked several objects or the two
    // singleton objects differ.  Reflexive pairs (a, a) capture
    // "site always locks a single object".
    for (std::size_t a = 0; a < objects.size(); ++a) {
        for (std::size_t b = a; b < objects.size(); ++b) {
            const auto pair =
                std::make_pair(objects[a].first, objects[b].first);
            const bool bothSingle = objects[a].second.size() == 1 &&
                                    objects[b].second.size() == 1;
            if (bothSingle &&
                objects[a].second.front() == objects[b].second.front())
                lockCandidates_.insert(pair);
            else
                lockViolated_.insert(pair);
        }
    }

    invariants_.mustAliasLocks.clear();
    for (const auto &pair : lockCandidates_)
        if (!lockViolated_.count(pair))
            invariants_.mustAliasLocks.insert(pair);
}

inv::InvariantSet
ProfilingCampaign::invariantsWithAggressiveLuc(
    std::uint64_t minVisits) const
{
    inv::InvariantSet aggressive = invariants_;
    if (minVisits <= 1)
        return aggressive;
    aggressive.visitedBlocks.clear();
    for (const auto &[block, count] : blockCounts_)
        if (count >= minVisits)
            aggressive.visitedBlocks.insert(block);
    return aggressive;
}

RunObservations
ProfilingCampaign::observeRun(const exec::ExecConfig &config) const
{
    BlockCountProfiler blocks;
    CalleeSetProfiler callees;
    CallContextProfiler contexts;
    LockObjectProfiler locks;
    SpawnCountProfiler spawns;

    exec::Interpreter interp(module_, config);
    const exec::InstrumentationPlan plan =
        exec::InstrumentationPlan::all(module_);
    interp.attach(&blocks, &plan);
    interp.attach(&callees, &plan);
    if (options_.callContexts)
        interp.attach(&contexts, &plan);
    interp.attach(&locks, &plan);
    interp.attach(&spawns, &plan);

    const exec::RunResult result = interp.run();

    RunObservations run;
    run.blockCounts = blocks.flatCounts();
    run.calleeSets = callees.flatCallees();
    if (options_.callContexts)
        run.callContexts = contexts.contexts();
    run.lockObjects = locks.flatObjects();
    run.spawnCounts = spawns.flatCounts();
    run.steps = result.steps;
    run.status = result.status;
    return run;
}

bool
ProfilingCampaign::mergeRun(const RunObservations &run)
{
    if (run.status != exec::RunResult::Status::Finished) {
        OHA_WARN("profiling run did not finish cleanly (status %d)",
                 static_cast<int>(run.status));
    }

    const std::size_t before = invariants_.factCount();
    const auto beforeLocks = invariants_.mustAliasLocks;
    const auto beforeSingleton = invariants_.singletonSpawnSites;

    profiledSteps_ += run.steps;
    ++numRuns_;

    // Reachable-style invariants: union.
    for (const auto &[block, count] : run.blockCounts) {
        invariants_.visitedBlocks.insert(block);
        blockCounts_[block] += count;
    }
    for (const auto &[site, funcs] : run.calleeSets)
        invariants_.calleeSets[site].insert(funcs.begin(), funcs.end());
    if (options_.callContexts) {
        for (const auto &context : run.callContexts)
            invariants_.callContexts.insert(context);
        invariants_.rehashContexts();
    }

    // Constraint-style invariants: survive only if never violated.
    mergeLockObservations(run.lockObjects);

    for (const auto &[site, count] : run.spawnCounts) {
        auto &maxCount = maxSpawnCounts_[site];
        maxCount = std::max(maxCount, count);
    }
    invariants_.singletonSpawnSites.clear();
    for (const auto &[site, maxCount] : maxSpawnCounts_)
        if (maxCount == 1)
            invariants_.singletonSpawnSites.insert(site);

    return invariants_.factCount() != before ||
           invariants_.mustAliasLocks != beforeLocks ||
           invariants_.singletonSpawnSites != beforeSingleton;
}

bool
ProfilingCampaign::addRun(const exec::ExecConfig &config)
{
    return mergeRun(observeRun(config));
}

std::size_t
ProfilingCampaign::addRunsUntilConverged(
    const std::vector<exec::ExecConfig> &inputs, std::size_t maxRuns,
    std::size_t convergenceWindow, const Observer &observe)
{
    const std::size_t threads = support::configuredThreads(options_.threads);
    std::size_t unchanged = 0;
    std::size_t consumed = 0;
    while (consumed < inputs.size() && numRuns_ < maxRuns &&
           unchanged < convergenceWindow) {
        // Speculatively observe one batch of runs concurrently, then
        // merge them in input order, stopping exactly where the serial
        // loop would; surplus observations past that point are
        // discarded so the merged state is identical for any thread
        // count.
        const std::size_t batch = std::min(
            {threads, inputs.size() - consumed, maxRuns - numRuns_});
        const std::size_t base = consumed;
        const auto observations = support::runBatch(
            batch,
            [&, base](std::size_t i)
                -> std::shared_ptr<const RunObservations> {
                const exec::ExecConfig &input = inputs[base + i];
                return observe ? observe(input)
                               : std::make_shared<const RunObservations>(
                                     observeRun(input));
            },
            threads);
        for (const auto &run : observations) {
            if (numRuns_ >= maxRuns || unchanged >= convergenceWindow)
                break;
            unchanged = mergeRun(*run) ? 0 : unchanged + 1;
            ++consumed;
        }
    }
    return numRuns_;
}

} // namespace oha::prof
