/**
 * @file
 * Bounded multi-producer/multi-consumer request queue for the
 * analysis daemon (analysis_service.h).
 *
 * The queue is the daemon's admission-control point: its depth is
 * capped, and a producer hitting the cap either blocks until a shard
 * drains an item (AdmissionPolicy::Block) or is refused immediately
 * (tryPush -> Shed), so a burst of requests degrades into back
 * pressure or explicit load shedding instead of unbounded memory
 * growth.  close() wakes every waiter: blocked producers give up with
 * Closed, and consumers drain the remaining items before pop()
 * returns nullopt — shutdown never drops accepted work.
 */

#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "support/common.h"

namespace oha::service {

/** Outcome of a push attempt. */
enum class PushResult
{
    Ok,     ///< enqueued
    Shed,   ///< refused: queue full (tryPush only)
    Closed, ///< refused: queue closed
};

template <typename T>
class RequestQueue
{
  public:
    explicit RequestQueue(std::size_t maxDepth) : maxDepth_(maxDepth)
    {
        OHA_ASSERT(maxDepth > 0);
    }

    RequestQueue(const RequestQueue &) = delete;
    RequestQueue &operator=(const RequestQueue &) = delete;

    /** Enqueue, blocking while the queue is full.  Returns Closed if
     *  the queue closed before space freed up. */
    PushResult
    push(T item)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notFull_.wait(lock, [this] {
            return closed_ || items_.size() < maxDepth_;
        });
        if (closed_)
            return PushResult::Closed;
        items_.push_back(std::move(item));
        lock.unlock();
        notEmpty_.notify_one();
        return PushResult::Ok;
    }

    /** Enqueue without blocking: a full queue sheds the item. */
    PushResult
    tryPush(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_)
                return PushResult::Closed;
            if (items_.size() >= maxDepth_)
                return PushResult::Shed;
            items_.push_back(std::move(item));
        }
        notEmpty_.notify_one();
        return PushResult::Ok;
    }

    /** Dequeue, blocking while the queue is empty.  Returns nullopt
     *  once the queue is closed AND drained (consumers see every
     *  accepted item). */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notEmpty_.wait(lock,
                       [this] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return std::nullopt; // closed and drained
        T item = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        notFull_.notify_one();
        return item;
    }

    /** Refuse new items and wake every waiter.  Items already queued
     *  remain poppable. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        notEmpty_.notify_all();
        notFull_.notify_all();
    }

    std::size_t
    depth() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    std::size_t maxDepth() const { return maxDepth_; }

  private:
    const std::size_t maxDepth_;
    mutable std::mutex mutex_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace oha::service
