/**
 * @file
 * Byte-budgeted least-recently-used eviction engine.
 *
 * The shared analysis cache holds heterogeneous entries (points-to
 * results, whole static-race results, slice sets, recorded traces) in
 * per-kind maps, but evicts across all of them against one byte
 * budget.  LruList is the kind-agnostic spine: each cached entry
 * registers a node carrying its byte estimate and an erase callback
 * that removes the entry from its owning map; eviction pops nodes
 * from the cold end and runs the callbacks.
 *
 * Not thread-safe — the owner (service::SharedCache) serializes all
 * access under its mutex.
 */

#pragma once

#include <cstddef>
#include <functional>
#include <list>

#include "support/common.h"

namespace oha::service {

/** Recency list + byte accounting over externally-owned entries. */
class LruList
{
  public:
    struct Node
    {
        std::size_t bytes = 0;
        /** Erases the owning-map entry.  Must not call back into the
         *  list (the list removes the node itself). */
        std::function<void()> erase;
    };

    using Handle = std::list<Node>::iterator;

    /** Register a new entry as most-recently-used. */
    Handle
    insert(std::size_t bytes, std::function<void()> erase)
    {
        nodes_.push_front(Node{bytes, std::move(erase)});
        bytes_ += bytes;
        return nodes_.begin();
    }

    /** Mark @p handle most-recently-used. */
    void
    touch(Handle handle)
    {
        nodes_.splice(nodes_.begin(), nodes_, handle);
    }

    /** Drop @p handle without running its erase callback (the owner
     *  is removing its own map entry). */
    void
    remove(Handle handle)
    {
        OHA_ASSERT(bytes_ >= handle->bytes);
        bytes_ -= handle->bytes;
        nodes_.erase(handle);
    }

    /**
     * Evict cold entries (running their erase callbacks) until the
     * tracked bytes fit @p budget.  Returns the number of evictions.
     * A single entry larger than the whole budget is evicted too —
     * oversized results are simply not retained.
     */
    std::size_t
    evictToFit(std::size_t budget)
    {
        std::size_t evicted = 0;
        while (bytes_ > budget && !nodes_.empty()) {
            Node victim = std::move(nodes_.back());
            nodes_.pop_back();
            OHA_ASSERT(bytes_ >= victim.bytes);
            bytes_ -= victim.bytes;
            if (victim.erase)
                victim.erase();
            ++evicted;
        }
        return evicted;
    }

    /** Drop every node without running erase callbacks (the owner is
     *  clearing all maps wholesale). */
    void
    clear()
    {
        nodes_.clear();
        bytes_ = 0;
    }

    std::size_t bytes() const { return bytes_; }
    std::size_t size() const { return nodes_.size(); }

  private:
    /** Front = most recently used; back = eviction candidate. */
    std::list<Node> nodes_;
    std::size_t bytes_ = 0;
};

} // namespace oha::service
