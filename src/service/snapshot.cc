#include "service/snapshot.h"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include <sys/stat.h>

#include "analysis/andersen_cache.h"
#include "exec/trace_cache.h"
#include "profile/observation_cache.h"
#include "support/durable_file.h"

namespace oha::service {

namespace {

using support::ByteReader;
using support::ByteWriter;

// Bump when any entry encoding changes; readers reject other
// versions (recompute, don't guess).
constexpr std::uint32_t kSnapshotVersion = 1;

// Entry tags (first payload byte of every entry block).
constexpr std::uint8_t kTagTrace = 1;
constexpr std::uint8_t kTagObservation = 2;
constexpr std::uint8_t kTagRace = 3;
constexpr std::uint8_t kTagSlice = 4;

std::atomic<std::uint64_t> g_writes{0};
std::atomic<std::uint64_t> g_writeFailures{0};
std::atomic<std::uint64_t> g_loads{0};
std::atomic<std::uint64_t> g_loadRejects{0};
std::atomic<std::uint64_t> g_entriesRestored{0};
std::atomic<std::uint64_t> g_entriesRejected{0};
std::atomic<int> g_lastErrno{0};

void
putFingerprint(ByteWriter &out, const Fingerprint &fp)
{
    out.u64(fp.primary);
    out.u64(fp.secondary);
}

Fingerprint
getFingerprint(ByteReader &in)
{
    Fingerprint fp;
    fp.primary = in.u64();
    fp.secondary = in.u64();
    return fp;
}

// ----------------------------------------------------- section payloads

bool
putInstrSet(ByteWriter &out, const std::set<InstrId> &set)
{
    out.u64(set.size());
    for (InstrId id : set)
        out.u64(id);
    return true;
}

bool
getInstrSet(ByteReader &in, std::set<InstrId> &set)
{
    const std::uint64_t count = in.u64();
    if (count > in.remaining() / 8)
        return false;
    for (std::uint64_t i = 0; i < count && in.ok(); ++i) {
        const std::uint64_t id = in.u64();
        if (id > kNoInstr)
            return false;
        set.insert(set.end(), static_cast<InstrId>(id));
    }
    return in.ok();
}

void
putPairSet(ByteWriter &out, const std::set<std::pair<InstrId, InstrId>> &set)
{
    out.u64(set.size());
    for (const auto &[a, b] : set) {
        out.u64(a);
        out.u64(b);
    }
}

bool
getPairSet(ByteReader &in, std::set<std::pair<InstrId, InstrId>> &set)
{
    const std::uint64_t count = in.u64();
    if (count > in.remaining() / 16)
        return false;
    for (std::uint64_t i = 0; i < count && in.ok(); ++i) {
        const std::uint64_t a = in.u64();
        const std::uint64_t b = in.u64();
        if (a > kNoInstr || b > kNoInstr)
            return false;
        set.insert(set.end(),
                   {static_cast<InstrId>(a), static_cast<InstrId>(b)});
    }
    return in.ok();
}

void
serializeRace(ByteWriter &out, const analysis::StaticRaceResult &result)
{
    putInstrSet(out, result.racyAccesses);
    putPairSet(out, result.racyPairs);
    putPairSet(out, result.candidatePairs);
    putPairSet(out, result.usedLockAliases);
    putInstrSet(out, result.usedSingletonSites);
    out.u64(result.workUnits);
    out.u64(result.accessesConsidered);
}

bool
deserializeRace(ByteReader &in, analysis::StaticRaceResult &result)
{
    if (!getInstrSet(in, result.racyAccesses))
        return false;
    if (!getPairSet(in, result.racyPairs))
        return false;
    if (!getPairSet(in, result.candidatePairs))
        return false;
    if (!getPairSet(in, result.usedLockAliases))
        return false;
    if (!getInstrSet(in, result.usedSingletonSites))
        return false;
    result.workUnits = in.u64();
    result.accessesConsidered = static_cast<std::size_t>(in.u64());
    return in.ok();
}

void
serializeSlices(ByteWriter &out, const analysis::SliceSetResult &result)
{
    out.u64(result.slices.size());
    for (const std::set<InstrId> &slice : result.slices)
        putInstrSet(out, slice);
    out.u64(result.endpoints.size());
    for (InstrId endpoint : result.endpoints)
        out.u64(endpoint);
    out.u8(result.contextSensitive ? 1 : 0);
    out.u8(result.complete ? 1 : 0);
    out.u64(result.workUnits);
}

bool
deserializeSlices(ByteReader &in, analysis::SliceSetResult &result)
{
    const std::uint64_t numSlices = in.u64();
    // Each slice costs at least its count word.
    if (numSlices > in.remaining() / 8)
        return false;
    result.slices.resize(static_cast<std::size_t>(numSlices));
    for (std::set<InstrId> &slice : result.slices)
        if (!getInstrSet(in, slice))
            return false;
    const std::uint64_t numEndpoints = in.u64();
    if (numEndpoints > in.remaining() / 8)
        return false;
    result.endpoints.reserve(static_cast<std::size_t>(numEndpoints));
    for (std::uint64_t i = 0; i < numEndpoints && in.ok(); ++i) {
        const std::uint64_t id = in.u64();
        if (id > kNoInstr)
            return false;
        result.endpoints.push_back(static_cast<InstrId>(id));
    }
    // A slice set must map endpoints to slices one-to-one.
    if (result.endpoints.size() != result.slices.size())
        return false;
    const std::uint8_t contextSensitive = in.u8();
    const std::uint8_t complete = in.u8();
    if (contextSensitive > 1 || complete > 1)
        return false;
    result.contextSensitive = contextSensitive != 0;
    result.complete = complete != 0;
    result.workUnits = in.u64();
    return in.ok();
}

void
serializeObservations(ByteWriter &out,
                      const prof::RunObservations &observations)
{
    out.u64(observations.blockCounts.size());
    for (const auto &[block, count] : observations.blockCounts) {
        out.u64(block);
        out.u64(count);
    }
    out.u64(observations.calleeSets.size());
    for (const auto &[instr, callees] : observations.calleeSets) {
        out.u64(instr);
        out.u64(callees.size());
        for (FuncId callee : callees)
            out.u64(callee);
    }
    out.u64(observations.callContexts.size());
    for (const inv::CallContext &context : observations.callContexts) {
        out.u64(context.size());
        for (InstrId site : context)
            out.u64(site);
    }
    out.u64(observations.lockObjects.size());
    for (const auto &[instr, objects] : observations.lockObjects) {
        out.u64(instr);
        out.u64(objects.size());
        for (exec::ObjectId object : objects)
            out.u64(object);
    }
    out.u64(observations.spawnCounts.size());
    for (const auto &[instr, count] : observations.spawnCounts) {
        out.u64(instr);
        out.u64(count);
    }
    out.u64(observations.steps);
    out.u32(static_cast<std::uint32_t>(observations.status));
}

bool
deserializeObservations(ByteReader &in,
                        prof::RunObservations &observations)
{
    const std::uint64_t numBlocks = in.u64();
    if (numBlocks > in.remaining() / 16)
        return false;
    observations.blockCounts.reserve(
        static_cast<std::size_t>(numBlocks));
    for (std::uint64_t i = 0; i < numBlocks && in.ok(); ++i) {
        const std::uint64_t block = in.u64();
        const std::uint64_t count = in.u64();
        if (block > kNoInstr)
            return false;
        observations.blockCounts.push_back(
            {static_cast<BlockId>(block), count});
    }
    const std::uint64_t numCallees = in.u64();
    if (numCallees > in.remaining() / 16)
        return false;
    observations.calleeSets.reserve(
        static_cast<std::size_t>(numCallees));
    for (std::uint64_t i = 0; i < numCallees && in.ok(); ++i) {
        const std::uint64_t instr = in.u64();
        const std::uint64_t count = in.u64();
        if (instr > kNoInstr || count > in.remaining() / 8)
            return false;
        std::vector<FuncId> callees;
        callees.reserve(static_cast<std::size_t>(count));
        for (std::uint64_t j = 0; j < count && in.ok(); ++j) {
            const std::uint64_t callee = in.u64();
            if (callee > kNoInstr)
                return false;
            callees.push_back(static_cast<FuncId>(callee));
        }
        observations.calleeSets.push_back(
            {static_cast<InstrId>(instr), std::move(callees)});
    }
    const std::uint64_t numContexts = in.u64();
    if (numContexts > in.remaining() / 8)
        return false;
    for (std::uint64_t i = 0; i < numContexts && in.ok(); ++i) {
        const std::uint64_t length = in.u64();
        if (length > in.remaining() / 8)
            return false;
        inv::CallContext context;
        context.reserve(static_cast<std::size_t>(length));
        for (std::uint64_t j = 0; j < length && in.ok(); ++j) {
            const std::uint64_t site = in.u64();
            if (site > kNoInstr)
                return false;
            context.push_back(static_cast<InstrId>(site));
        }
        observations.callContexts.insert(std::move(context));
    }
    const std::uint64_t numLocks = in.u64();
    if (numLocks > in.remaining() / 16)
        return false;
    observations.lockObjects.reserve(static_cast<std::size_t>(numLocks));
    for (std::uint64_t i = 0; i < numLocks && in.ok(); ++i) {
        const std::uint64_t instr = in.u64();
        const std::uint64_t count = in.u64();
        if (instr > kNoInstr || count > in.remaining() / 8)
            return false;
        std::vector<exec::ObjectId> objects;
        objects.reserve(static_cast<std::size_t>(count));
        for (std::uint64_t j = 0; j < count && in.ok(); ++j) {
            const std::uint64_t object = in.u64();
            if (object > kNoInstr)
                return false;
            objects.push_back(static_cast<exec::ObjectId>(object));
        }
        observations.lockObjects.push_back(
            {static_cast<InstrId>(instr), std::move(objects)});
    }
    const std::uint64_t numSpawns = in.u64();
    if (numSpawns > in.remaining() / 16)
        return false;
    observations.spawnCounts.reserve(
        static_cast<std::size_t>(numSpawns));
    for (std::uint64_t i = 0; i < numSpawns && in.ok(); ++i) {
        const std::uint64_t instr = in.u64();
        const std::uint64_t count = in.u64();
        if (instr > kNoInstr)
            return false;
        observations.spawnCounts.push_back(
            {static_cast<InstrId>(instr), count});
    }
    observations.steps = in.u64();
    const std::uint32_t status = in.u32();
    if (status >
        static_cast<std::uint32_t>(exec::RunResult::Status::StepLimit))
        return false;
    observations.status = static_cast<exec::RunResult::Status>(status);
    return in.ok();
}

// ------------------------------------------------------ entry restore

/** Decode and admit one entry block; false = semantically invalid. */
bool
restoreEntry(const std::string &payload)
{
    ByteReader in(payload);
    const std::uint8_t tag = in.u8();
    switch (tag) {
      case kTagTrace: {
        exec::TraceSectionEntry entry;
        entry.moduleFp = getFingerprint(in);
        entry.configFp = getFingerprint(in);
        if (!in.ok())
            return false;
        entry.trace = exec::deserializeRecordedTrace(in);
        if (!entry.trace || in.remaining() != 0)
            return false;
        exec::admitTraceSectionEntry(entry);
        return true;
      }
      case kTagObservation: {
        prof::ObservationSectionEntry entry;
        entry.moduleFp = getFingerprint(in);
        entry.observationFp = getFingerprint(in);
        auto observations = std::make_shared<prof::RunObservations>();
        if (!in.ok() || !deserializeObservations(in, *observations) ||
            in.remaining() != 0)
            return false;
        entry.observations = std::move(observations);
        prof::admitObservationSectionEntry(entry);
        return true;
      }
      case kTagRace: {
        analysis::RaceSectionEntry entry;
        entry.moduleFp = getFingerprint(in);
        entry.invariantFp = getFingerprint(in);
        auto result = std::make_shared<analysis::StaticRaceResult>();
        if (!in.ok() || !deserializeRace(in, *result) ||
            in.remaining() != 0)
            return false;
        entry.result = std::move(result);
        analysis::admitRaceSectionEntry(entry);
        return true;
      }
      case kTagSlice: {
        analysis::SliceSectionEntry entry;
        entry.moduleFp = getFingerprint(in);
        entry.invariantFp = getFingerprint(in);
        entry.configKey = in.u64();
        entry.auxFp = getFingerprint(in);
        auto result = std::make_shared<analysis::SliceSetResult>();
        if (!in.ok() || !deserializeSlices(in, *result) ||
            in.remaining() != 0)
            return false;
        entry.result = std::move(result);
        analysis::admitSliceSectionEntry(entry);
        return true;
      }
      default:
        return false; // unknown tag: written by a newer version
    }
}

} // namespace

SnapshotStats
snapshotStats()
{
    SnapshotStats stats;
    stats.writes = g_writes.load(std::memory_order_relaxed);
    stats.writeFailures = g_writeFailures.load(std::memory_order_relaxed);
    stats.loads = g_loads.load(std::memory_order_relaxed);
    stats.loadRejects = g_loadRejects.load(std::memory_order_relaxed);
    stats.entriesRestored =
        g_entriesRestored.load(std::memory_order_relaxed);
    stats.entriesRejected =
        g_entriesRejected.load(std::memory_order_relaxed);
    stats.lastErrno = g_lastErrno.load(std::memory_order_relaxed);
    return stats;
}

void
resetSnapshotStats()
{
    g_writes.store(0, std::memory_order_relaxed);
    g_writeFailures.store(0, std::memory_order_relaxed);
    g_loads.store(0, std::memory_order_relaxed);
    g_loadRejects.store(0, std::memory_order_relaxed);
    g_entriesRestored.store(0, std::memory_order_relaxed);
    g_entriesRejected.store(0, std::memory_order_relaxed);
    g_lastErrno.store(0, std::memory_order_relaxed);
}

std::string
defaultSnapshotPath(const std::string &stateDir)
{
    return stateDir + "/oha-cache.snapshot";
}

bool
writeSnapshot(const std::string &path, std::string *errorOut)
{
    // Export under the spine lock (each export takes it once), then
    // serialize outside it — entries are immutable shared_ptrs, so
    // requests keep flowing while the snapshot is written.
    const auto traces = exec::exportTraceSection();
    const auto observations = prof::exportObservationSection();
    const auto races = analysis::exportRaceSection();
    const auto slices = analysis::exportSliceSection();

    std::vector<std::string> blocks;
    blocks.reserve(traces.size() + observations.size() + races.size() +
                   slices.size());
    std::size_t skipped = 0;
    for (const auto &entry : traces) {
        ByteWriter out;
        out.u8(kTagTrace);
        putFingerprint(out, entry.moduleFp);
        putFingerprint(out, entry.configFp);
        if (!exec::serializeRecordedTrace(*entry.trace, out)) {
            ++skipped; // unmappable spilled segment: skip this entry
            continue;
        }
        blocks.push_back(out.take());
    }
    for (const auto &entry : observations) {
        ByteWriter out;
        out.u8(kTagObservation);
        putFingerprint(out, entry.moduleFp);
        putFingerprint(out, entry.observationFp);
        serializeObservations(out, *entry.observations);
        blocks.push_back(out.take());
    }
    for (const auto &entry : races) {
        ByteWriter out;
        out.u8(kTagRace);
        putFingerprint(out, entry.moduleFp);
        putFingerprint(out, entry.invariantFp);
        serializeRace(out, *entry.result);
        blocks.push_back(out.take());
    }
    for (const auto &entry : slices) {
        ByteWriter out;
        out.u8(kTagSlice);
        putFingerprint(out, entry.moduleFp);
        putFingerprint(out, entry.invariantFp);
        out.u64(entry.configKey);
        putFingerprint(out, entry.auxFp);
        serializeSlices(out, *entry.result);
        blocks.push_back(out.take());
    }
    if (skipped > 0)
        OHA_WARN("snapshot to %s: skipped %zu unreadable cache entries",
                 path.c_str(), skipped);

    support::DurableWriter writer(path, support::kDurableKindSnapshot);
    ByteWriter meta;
    meta.u32(kSnapshotVersion);
    meta.u64(blocks.size());
    writer.addBlock(meta.data());
    for (const std::string &block : blocks)
        writer.addBlock(block);

    std::string error;
    if (!writer.commit(&error)) {
        g_writeFailures.fetch_add(1, std::memory_order_relaxed);
        g_lastErrno.store(writer.error(), std::memory_order_relaxed);
        if (errorOut)
            *errorOut = error;
        OHA_WARN("cache snapshot failed (continuing in-memory): %s",
                 error.c_str());
        return false;
    }
    g_writes.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool
loadSnapshot(const std::string &path, std::string *errorOut)
{
    // A missing snapshot is a normal cold start, not a defect.
    struct ::stat st;
    if (::stat(path.c_str(), &st) != 0 && errno == ENOENT) {
        if (errorOut)
            *errorOut = path + ": no snapshot";
        return false;
    }

    std::string error;
    auto reader = support::DurableReader::open(
        path, support::kDurableKindSnapshot, &error);
    if (!reader) {
        g_loadRejects.fetch_add(1, std::memory_order_relaxed);
        OHA_WARN("rejecting cache snapshot: %s", error.c_str());
        if (errorOut)
            *errorOut = error;
        return false;
    }

    const auto rejectAll = [&](const std::string &reason) {
        g_loadRejects.fetch_add(1, std::memory_order_relaxed);
        if (errorOut)
            *errorOut = path + ": " + reason;
        OHA_WARN("rejecting cache snapshot %s: %s", path.c_str(),
                 reason.c_str());
        return false;
    };

    if (reader->numBlocks() < 1)
        return rejectAll("no meta block");
    std::string metaBytes;
    if (!reader->readBlock(0, metaBytes))
        return rejectAll("meta block unreadable");
    ByteReader metaIn(metaBytes);
    if (metaIn.u32() != kSnapshotVersion)
        return rejectAll("unsupported snapshot version");
    const std::uint64_t numEntries = metaIn.u64();
    if (!metaIn.ok() || metaIn.remaining() != 0)
        return rejectAll("corrupt meta block");
    if (reader->numBlocks() != 1 + numEntries)
        return rejectAll("block count does not match entry count");

    std::uint64_t restored = 0;
    std::uint64_t rejected = 0;
    std::string payload;
    for (std::uint64_t i = 0; i < numEntries; ++i) {
        if (!reader->readBlock(static_cast<std::size_t>(1 + i),
                               payload)) {
            ++rejected;
            continue;
        }
        if (restoreEntry(payload))
            ++restored;
        else
            ++rejected;
    }
    g_loads.fetch_add(1, std::memory_order_relaxed);
    g_entriesRestored.fetch_add(restored, std::memory_order_relaxed);
    g_entriesRejected.fetch_add(rejected, std::memory_order_relaxed);
    if (rejected > 0)
        OHA_WARN("cache snapshot %s: restored %llu entries, rejected "
                 "%llu",
                 path.c_str(),
                 static_cast<unsigned long long>(restored),
                 static_cast<unsigned long long>(rejected));
    return true;
}

} // namespace oha::service
