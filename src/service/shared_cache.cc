#include "service/shared_cache.h"

#include <cstdlib>
#include <map>
#include <utility>

#include "ir/module.h"
#include "ir/printer.h"
#include "support/env.h"

namespace oha::service {

namespace {

std::atomic<bool> forceCollisions{false};

/** Default byte budget: OHA_CACHE_BUDGET_MB (validated + clamped to
 *  [1 MiB, 1 TiB] by the shared env helper), else 256 MiB. */
std::size_t
defaultByteBudget()
{
    return support::envSizeBytes("OHA_CACHE_BUDGET_MB",
                                 std::size_t{256} << 20, std::size_t{1} << 20,
                                 std::size_t{1} << 40,
                                 /*unit=*/std::size_t{1} << 20);
}

/**
 * Module-fingerprint memo, keyed by object identity.  Weak entries:
 * an expired slot means the module died (and its address may have
 * been reused), so it is recomputed.  Bounded by opportunistic
 * pruning — the memo must never be the thing that makes a daemon's
 * memory grow with its uptime.
 */
struct ModuleFpMemo
{
    std::mutex mutex;
    std::map<const ir::Module *,
             std::pair<std::weak_ptr<const ir::Module>, Fingerprint>>
        entries;

    void
    pruneExpiredLocked()
    {
        for (auto it = entries.begin(); it != entries.end();) {
            if (it->second.first.expired())
                it = entries.erase(it);
            else
                ++it;
        }
    }
};

ModuleFpMemo &
moduleFpMemo()
{
    static ModuleFpMemo memo;
    return memo;
}

} // namespace

Fingerprint
fingerprintText(const std::string &text)
{
    // Two structurally different hashes over one pass: FNV-1a and a
    // multiply-add polynomial with a splitmix64 finalizer.  A text
    // pair colliding on both is vanishingly unlikely, and the entry
    // verification turns a primary collision into a fresh solve
    // rather than a wrong result.
    std::uint64_t fnv = 0xcbf29ce484222325ULL;
    std::uint64_t poly = 0x9e3779b97f4a7c15ULL;
    for (unsigned char c : text) {
        fnv = (fnv ^ c) * 0x100000001b3ULL;
        poly = poly * 0x9e3779b97f4a7c15ULL + c + 1;
    }
    // splitmix64 finalization decorrelates the polynomial state.
    poly ^= poly >> 30;
    poly *= 0xbf58476d1ce4e5b9ULL;
    poly ^= poly >> 27;
    poly *= 0x94d049bb133111ebULL;
    poly ^= poly >> 31;

    Fingerprint fp;
    fp.primary = forceCollisions.load(std::memory_order_relaxed)
                     ? 0xC011151055ULL
                     : fnv;
    fp.secondary = poly;
    return fp;
}

Fingerprint
fingerprintModule(const std::shared_ptr<const ir::Module> &module)
{
    OHA_ASSERT(module);
    ModuleFpMemo &memo = moduleFpMemo();
    {
        std::lock_guard<std::mutex> lock(memo.mutex);
        auto it = memo.entries.find(module.get());
        if (it != memo.entries.end()) {
            if (!it->second.first.expired())
                return it->second.second;
            // The previous occupant of this address died; recompute.
            memo.entries.erase(it);
        }
    }
    // Print outside the lock (it dominates the cost).
    const Fingerprint fp = fingerprintText(ir::printModule(*module));
    std::lock_guard<std::mutex> lock(memo.mutex);
    if (memo.entries.size() >= 256)
        memo.pruneExpiredLocked();
    memo.entries[module.get()] = {module, fp};
    return fp;
}

SharedCache::SharedCache() : byteBudget_(defaultByteBudget())
{
    stats_.byteBudget = byteBudget_;
}

SharedCache &
SharedCache::instance()
{
    static SharedCache cache;
    return cache;
}

void
SharedCache::registerSection(std::function<void()> clear)
{
    std::lock_guard<std::mutex> lock(mutex_);
    sections_.push_back(std::move(clear));
}

void
SharedCache::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    generation_.fetch_add(1, std::memory_order_acq_rel);
    for (const std::function<void()> &clear : sections_)
        clear();
    lru_.clear();
    stats_ = {};
    stats_.byteBudget = byteBudget_;
    // The module-fingerprint memo holds no results, but clearing it
    // keeps reset() a full return-to-cold (and lets tests toggle the
    // collision seam between generations).
    ModuleFpMemo &memo = moduleFpMemo();
    std::lock_guard<std::mutex> memoLock(memo.mutex);
    memo.entries.clear();
}

void
SharedCache::setByteBudget(std::size_t bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    byteBudget_ = bytes;
    stats_.byteBudget = bytes;
    enforceBudget();
}

std::size_t
SharedCache::byteBudget() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return byteBudget_;
}

SharedCacheStats
SharedCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    SharedCacheStats out = stats_;
    out.entries = lru_.size();
    out.bytesCached = lru_.bytes();
    out.byteBudget = byteBudget_;
    out.generation = generation_.load(std::memory_order_acquire);
    return out;
}

namespace testing {

void
forcePrimaryFingerprintCollisions(bool enabled)
{
    forceCollisions.store(enabled, std::memory_order_relaxed);
}

} // namespace testing

} // namespace oha::service
