#include "service/analysis_service.h"

#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "service/request_queue.h"
#include "support/thread_pool.h"

namespace oha::service {

namespace {

using Clock = std::chrono::steady_clock;

double
millisSince(Clock::time_point start, Clock::time_point now)
{
    return std::chrono::duration<double, std::milli>(now - start).count();
}

} // namespace

struct AnalysisService::Impl
{
    struct Job
    {
        AnalysisRequest request;
        std::promise<ServiceRunResult> promise;
        Clock::time_point enqueuedAt;
        /** Expiry instant; time_point::max() = no deadline. */
        Clock::time_point expiresAt;
    };

    explicit Impl(ServiceConfig config)
        : config_(config),
          shardCount_(support::configuredThreads(config.shards)),
          queue_(config.maxQueueDepth)
    {
        shards_.reserve(shardCount_);
        for (std::size_t i = 0; i < shardCount_; ++i)
            shards_.emplace_back([this] { shardLoop(); });
    }

    void
    shardLoop()
    {
        while (std::optional<Job> job = queue_.pop()) {
            const Clock::time_point popped = Clock::now();
            ServiceRunResult out;
            out.queueMs = millisSince(job->enqueuedAt, popped);
            if (popped >= job->expiresAt) {
                out.outcome = RequestOutcome::Expired;
                out.error = "deadline expired while queued";
                finish(std::move(*job), std::move(out),
                       &ServiceCounters::expired);
                continue;
            }
            try {
                if (job->request.workload.race) {
                    out.ft = core::runOptFt(job->request.workload,
                                            job->request.ftConfig);
                } else {
                    out.slice = core::runOptSlice(
                        job->request.workload, job->request.sliceConfig);
                }
                out.outcome = RequestOutcome::Done;
                out.runMs = millisSince(popped, Clock::now());
                finish(std::move(*job), std::move(out),
                       &ServiceCounters::completed);
            } catch (const std::exception &e) {
                out.outcome = RequestOutcome::Failed;
                out.error = e.what();
                out.runMs = millisSince(popped, Clock::now());
                finish(std::move(*job), std::move(out),
                       &ServiceCounters::failed);
            }
        }
    }

    void
    finish(Job job, ServiceRunResult out,
           std::uint64_t ServiceCounters::*counter)
    {
        // Bump the counter BEFORE fulfilling the promise (anyone who
        // observed the future must see the count), and retire the
        // in-flight slot AFTER (drain() returning implies every
        // promise is set).
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++(counters_.*counter);
        }
        job.promise.set_value(std::move(out));
        std::lock_guard<std::mutex> lock(mutex_);
        OHA_ASSERT(inFlight_ > 0);
        if (--inFlight_ == 0)
            idle_.notify_all();
    }

    std::future<ServiceRunResult>
    submit(AnalysisRequest request)
    {
        Job job;
        job.request = std::move(request);
        job.enqueuedAt = Clock::now();
        job.expiresAt = job.request.deadline.count() > 0
                            ? job.enqueuedAt + job.request.deadline
                            : Clock::time_point::max();
        std::future<ServiceRunResult> future = job.promise.get_future();

        // Count the job in flight BEFORE enqueueing: a shard may pop
        // and finish it before push() even returns.
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++inFlight_;
            ++counters_.accepted;
        }
        const PushResult pushed =
            config_.admission == AdmissionPolicy::Block
                ? queue_.push(std::move(job))
                : queue_.tryPush(std::move(job));
        if (pushed == PushResult::Ok)
            return future;

        // Refused: the job never reached a shard — roll the
        // accounting back and complete it as Shed here.  The moved-
        // from job retains nothing; recreate the result directly.
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --counters_.accepted;
            ++counters_.shed;
            OHA_ASSERT(inFlight_ > 0);
            if (--inFlight_ == 0)
                idle_.notify_all();
        }
        ServiceRunResult out;
        out.outcome = RequestOutcome::Shed;
        out.error = pushed == PushResult::Closed
                        ? "service is shut down"
                        : "queue full";
        std::promise<ServiceRunResult> shed;
        std::future<ServiceRunResult> shedFuture = shed.get_future();
        shed.set_value(std::move(out));
        return shedFuture;
    }

    void
    drain()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idle_.wait(lock, [this] { return inFlight_ == 0; });
    }

    void
    shutdown()
    {
        queue_.close();
        for (std::thread &shard : shards_)
            if (shard.joinable())
                shard.join();
    }

    const ServiceConfig config_;
    const std::size_t shardCount_;
    RequestQueue<Job> queue_;
    std::vector<std::thread> shards_;

    mutable std::mutex mutex_;
    std::condition_variable idle_;
    /** Accepted but not yet completed (queued + running). */
    std::size_t inFlight_ = 0;
    ServiceCounters counters_;
};

AnalysisService::AnalysisService(ServiceConfig config)
    : impl_(std::make_unique<Impl>(config))
{
}

AnalysisService::~AnalysisService()
{
    impl_->shutdown();
}

std::future<ServiceRunResult>
AnalysisService::submit(AnalysisRequest request)
{
    return impl_->submit(std::move(request));
}

void
AnalysisService::drain()
{
    impl_->drain();
}

void
AnalysisService::shutdown()
{
    impl_->shutdown();
}

std::size_t
AnalysisService::queueDepth() const
{
    return impl_->queue_.depth();
}

std::size_t
AnalysisService::shards() const
{
    return impl_->shardCount_;
}

ServiceCounters
AnalysisService::counters() const
{
    std::lock_guard<std::mutex> lock(impl_->mutex_);
    return impl_->counters_;
}

} // namespace oha::service
