#include "service/analysis_service.h"

#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "service/request_queue.h"
#include "service/snapshot.h"
#include "support/env.h"
#include "support/thread_pool.h"

namespace oha::service {

namespace {

using Clock = std::chrono::steady_clock;

double
millisSince(Clock::time_point start, Clock::time_point now)
{
    return std::chrono::duration<double, std::milli>(now - start).count();
}

std::string
resolveStateDir(const ServiceConfig &config)
{
    if (!config.stateDir.empty())
        return config.stateDir;
    const char *env = std::getenv("OHA_STATE_DIR");
    return env ? std::string(env) : std::string();
}

std::uint64_t
resolveSnapshotInterval(const ServiceConfig &config)
{
    if (config.snapshotIntervalSeconds > 0)
        return config.snapshotIntervalSeconds;
    return support::envSizeBytes("OHA_SNAPSHOT_INTERVAL", 0, 0,
                                 365ull * 24 * 3600);
}

} // namespace

struct AnalysisService::Impl
{
    struct Job
    {
        AnalysisRequest request;
        std::promise<ServiceRunResult> promise;
        Clock::time_point enqueuedAt;
        /** Expiry instant; time_point::max() = no deadline. */
        Clock::time_point expiresAt;
    };

    explicit Impl(ServiceConfig config)
        : config_(config),
          shardCount_(support::configuredThreads(config.shards)),
          stateDir_(resolveStateDir(config)),
          snapshotInterval_(resolveSnapshotInterval(config)),
          queue_(config.maxQueueDepth)
    {
        // Warm start BEFORE the shards exist: the first request must
        // already see the restored cache (and a defective snapshot is
        // rejected wholesale — the daemon just starts cold).
        if (!stateDir_.empty())
            loadSnapshot(defaultSnapshotPath(stateDir_));
        shards_.reserve(shardCount_);
        for (std::size_t i = 0; i < shardCount_; ++i)
            shards_.emplace_back([this] { shardLoop(); });
        if (!stateDir_.empty() && snapshotInterval_ > 0)
            snapshotThread_ = std::thread([this] { snapshotLoop(); });
    }

    void
    snapshotLoop()
    {
        std::unique_lock<std::mutex> lock(snapshotMutex_);
        while (!stopSnapshots_) {
            snapshotCv_.wait_for(lock,
                                 std::chrono::seconds(snapshotInterval_),
                                 [this] { return stopSnapshots_; });
            if (stopSnapshots_)
                return;
            lock.unlock();
            writeSnapshot(defaultSnapshotPath(stateDir_));
            lock.lock();
        }
    }

    void
    shardLoop()
    {
        while (std::optional<Job> job = queue_.pop()) {
            const Clock::time_point popped = Clock::now();
            ServiceRunResult out;
            out.queueMs = millisSince(job->enqueuedAt, popped);
            if (popped >= job->expiresAt) {
                out.outcome = RequestOutcome::Expired;
                out.error = "deadline expired while queued";
                finish(std::move(*job), std::move(out),
                       &ServiceCounters::expired);
                continue;
            }
            try {
                if (job->request.workload.race) {
                    out.ft = core::runOptFt(job->request.workload,
                                            job->request.ftConfig);
                } else {
                    out.slice = core::runOptSlice(
                        job->request.workload, job->request.sliceConfig);
                }
                out.outcome = RequestOutcome::Done;
                out.runMs = millisSince(popped, Clock::now());
                finish(std::move(*job), std::move(out),
                       &ServiceCounters::completed);
            } catch (const std::exception &e) {
                out.outcome = RequestOutcome::Failed;
                out.error = e.what();
                out.runMs = millisSince(popped, Clock::now());
                finish(std::move(*job), std::move(out),
                       &ServiceCounters::failed);
            }
        }
    }

    void
    finish(Job job, ServiceRunResult out,
           std::uint64_t ServiceCounters::*counter)
    {
        // Bump the counter BEFORE fulfilling the promise (anyone who
        // observed the future must see the count), and retire the
        // in-flight slot AFTER (drain() returning implies every
        // promise is set).
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++(counters_.*counter);
        }
        job.promise.set_value(std::move(out));
        std::lock_guard<std::mutex> lock(mutex_);
        OHA_ASSERT(inFlight_ > 0);
        if (--inFlight_ == 0)
            idle_.notify_all();
    }

    std::future<ServiceRunResult>
    submit(AnalysisRequest request)
    {
        Job job;
        job.request = std::move(request);
        job.enqueuedAt = Clock::now();
        job.expiresAt = job.request.deadline.count() > 0
                            ? job.enqueuedAt + job.request.deadline
                            : Clock::time_point::max();
        std::future<ServiceRunResult> future = job.promise.get_future();

        // Count the job in flight BEFORE enqueueing: a shard may pop
        // and finish it before push() even returns.
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++inFlight_;
            ++counters_.accepted;
        }
        const PushResult pushed =
            config_.admission == AdmissionPolicy::Block
                ? queue_.push(std::move(job))
                : queue_.tryPush(std::move(job));
        if (pushed == PushResult::Ok)
            return future;

        // Refused: the job never reached a shard — roll the
        // accounting back and complete it as Shed here.  The moved-
        // from job retains nothing; recreate the result directly.
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --counters_.accepted;
            ++counters_.shed;
            OHA_ASSERT(inFlight_ > 0);
            if (--inFlight_ == 0)
                idle_.notify_all();
        }
        ServiceRunResult out;
        out.outcome = RequestOutcome::Shed;
        out.error = pushed == PushResult::Closed
                        ? "service is shut down"
                        : "queue full";
        std::promise<ServiceRunResult> shed;
        std::future<ServiceRunResult> shedFuture = shed.get_future();
        shed.set_value(std::move(out));
        return shedFuture;
    }

    void
    drain()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idle_.wait(lock, [this] { return inFlight_ == 0; });
    }

    void
    shutdown()
    {
        queue_.close();
        for (std::thread &shard : shards_)
            if (shard.joinable())
                shard.join();
        {
            std::lock_guard<std::mutex> lock(snapshotMutex_);
            stopSnapshots_ = true;
        }
        snapshotCv_.notify_all();
        if (snapshotThread_.joinable())
            snapshotThread_.join();
        // The final snapshot is written AFTER the shards drain, so it
        // captures everything the last request warmed.  A write
        // failure here is counted and warned, never fatal.
        bool writeFinal = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            writeFinal = !stateDir_.empty() && !finalSnapshotDone_;
            finalSnapshotDone_ = true;
        }
        if (writeFinal)
            writeSnapshot(defaultSnapshotPath(stateDir_));
    }

    const ServiceConfig config_;
    const std::size_t shardCount_;
    const std::string stateDir_;
    const std::uint64_t snapshotInterval_;
    RequestQueue<Job> queue_;
    std::vector<std::thread> shards_;

    std::thread snapshotThread_;
    std::mutex snapshotMutex_;
    std::condition_variable snapshotCv_;
    bool stopSnapshots_ = false;

    mutable std::mutex mutex_;
    std::condition_variable idle_;
    /** Accepted but not yet completed (queued + running). */
    std::size_t inFlight_ = 0;
    ServiceCounters counters_;
    bool finalSnapshotDone_ = false;
};

AnalysisService::AnalysisService(ServiceConfig config)
    : impl_(std::make_unique<Impl>(config))
{
}

AnalysisService::~AnalysisService()
{
    impl_->shutdown();
}

std::future<ServiceRunResult>
AnalysisService::submit(AnalysisRequest request)
{
    return impl_->submit(std::move(request));
}

void
AnalysisService::drain()
{
    impl_->drain();
}

void
AnalysisService::shutdown()
{
    impl_->shutdown();
}

std::size_t
AnalysisService::queueDepth() const
{
    return impl_->queue_.depth();
}

std::size_t
AnalysisService::shards() const
{
    return impl_->shardCount_;
}

ServiceCounters
AnalysisService::counters() const
{
    std::lock_guard<std::mutex> lock(impl_->mutex_);
    return impl_->counters_;
}

bool
AnalysisService::snapshotNow()
{
    if (impl_->stateDir_.empty())
        return false;
    return writeSnapshot(defaultSnapshotPath(impl_->stateDir_));
}

const std::string &
AnalysisService::stateDir() const
{
    return impl_->stateDir_;
}

} // namespace oha::service
