/**
 * @file
 * OHA as a service: a persistent analysis daemon core.
 *
 * Batch mode pays the full cost of every pipeline invocation: each
 * runOptFt/runOptSlice call profiles, records, and solves from
 * scratch, and the process exits with the caches it warmed.  The
 * AnalysisService turns the pipeline into a long-lived server:
 * requests (a workload + pipeline configuration) enter a bounded
 * queue, worker shards drain them through the unmodified pipeline
 * entry points, and the shared cross-request cache
 * (service/shared_cache.h) — static results via analysis/
 * andersen_cache.h, trace captures via exec/trace_cache.h — carries
 * the expensive intermediate state from one request to the next.  A
 * warm request for a hot (module, corpus) pair skips its static phase
 * and its trace captures entirely.
 *
 * Admission control: the queue depth is capped; at the cap a submit
 * either blocks (AdmissionPolicy::Block — back pressure) or fails
 * fast with RequestOutcome::Shed (AdmissionPolicy::Shed).  Requests
 * may carry a deadline; a request still queued when its deadline
 * passes is completed as Expired without running — shed work is
 * cheap, abandoned work is free.
 *
 * Determinism contract: the pipeline entry points are pure functions
 * of (workload, config), and every cache layer is value-keyed with
 * results bit-identical to a fresh computation (stored workUnits are
 * the one real computation's deterministic cost).  Therefore a
 * request's result is byte-identical to a direct batch-mode call —
 * at ANY shard count, on any cache state, in any arrival order.  The
 * service-vs-batch parity test pins this.
 */

#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>

#include "core/optft.h"
#include "core/optslice.h"
#include "workloads/workloads.h"

namespace oha::service {

/** What submit() does when the request queue is full. */
enum class AdmissionPolicy
{
    Block, ///< back pressure: submit() waits for a free slot
    Shed,  ///< fail fast: submit() completes the request as Shed
};

/** Daemon configuration. */
struct ServiceConfig
{
    /** Worker shards draining the queue (each runs one request at a
     *  time through the pipeline).  0 = OHA_THREADS. */
    std::size_t shards = 1;
    /** Queue-depth cap (admission control). */
    std::size_t maxQueueDepth = 64;
    AdmissionPolicy admission = AdmissionPolicy::Block;
    /** Durable-state directory.  Non-empty: the shared cache is
     *  warm-started from <dir>/oha-cache.snapshot at construction and
     *  snapshotted back on graceful shutdown (service/snapshot.h).
     *  Empty: falls back to OHA_STATE_DIR; persistence is off when
     *  that is unset too. */
    std::string stateDir;
    /** Seconds between periodic background snapshots while running.
     *  0 falls back to OHA_SNAPSHOT_INTERVAL; 0 there too means
     *  snapshot on shutdown only. */
    std::uint64_t snapshotIntervalSeconds = 0;
};

/** One analysis request: a workload plus the pipeline configuration
 *  to run it under.  workload.race selects the pipeline (OptFT for
 *  race workloads, OptSlice otherwise). */
struct AnalysisRequest
{
    workloads::Workload workload;
    core::OptFtConfig ftConfig;       ///< used when workload.race
    core::OptSliceConfig sliceConfig; ///< used otherwise
    /** Maximum time the request may sit in the queue; still queued
     *  after this, it completes as Expired without running.  Zero =
     *  no deadline. */
    std::chrono::milliseconds deadline{0};
};

enum class RequestOutcome
{
    Done,    ///< ran to completion
    Shed,    ///< refused at admission (queue full, Shed policy)
    Expired, ///< deadline passed while queued; never ran
    Failed,  ///< the pipeline threw; see error
};

/** Result of one service request. */
struct ServiceRunResult
{
    RequestOutcome outcome = RequestOutcome::Done;
    std::string error;
    /** Exactly one is set when outcome == Done. */
    std::optional<core::OptFtResult> ft;
    std::optional<core::OptSliceResult> slice;
    /** Milliseconds spent queued / running (wall clock). */
    double queueMs = 0;
    double runMs = 0;
};

/** Monotonic service counters. */
struct ServiceCounters
{
    std::uint64_t accepted = 0;
    std::uint64_t shed = 0;
    std::uint64_t expired = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
};

/**
 * The daemon core.  Construction spawns the shards; destruction
 * closes the queue, completes every accepted request, and joins the
 * shards (graceful drain — accepted work is never dropped).
 */
class AnalysisService
{
  public:
    explicit AnalysisService(ServiceConfig config = {});
    ~AnalysisService();

    AnalysisService(const AnalysisService &) = delete;
    AnalysisService &operator=(const AnalysisService &) = delete;

    /**
     * Submit a request.  The future completes when the request has
     * been run, shed, or expired.  Under AdmissionPolicy::Block this
     * call blocks while the queue is at its depth cap.  Submitting
     * after shutdown() completes the request as Shed.
     */
    std::future<ServiceRunResult> submit(AnalysisRequest request);

    /** Block until every accepted request has completed.  New
     *  submissions remain possible afterwards. */
    void drain();

    /** Graceful shutdown: refuse new requests, run everything already
     *  accepted, join the shards.  With a state directory configured,
     *  a final cache snapshot is written after the shards drain.
     *  Idempotent; implied by ~. */
    void shutdown();

    /** Write a cache snapshot now (no-op without a state directory).
     *  False when persistence is off or the write failed — the
     *  service keeps running in memory either way. */
    bool snapshotNow();

    /** The resolved state directory ("" = persistence off). */
    const std::string &stateDir() const;

    std::size_t queueDepth() const;
    std::size_t shards() const;
    ServiceCounters counters() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace oha::service
