/**
 * @file
 * Warm-start snapshots of the shared cross-request cache.
 *
 * A long-lived analysis daemon (analysis_service.h) earns its warm
 * hit rate over many requests; a restart used to throw all of that
 * away.  This module persists the *plain-data* sections of the shared
 * cache — recorded trace captures, profiling observations, static
 * race results and slice sets — into one checksummed, atomically
 * published container (support/durable_file.h, kind Snapshot), and
 * re-admits them at boot.
 *
 * What is deliberately NOT persisted: Andersen points-to results.
 * They are opaque (hash-consed pools, live module references), so
 * after a restart they are recomputed from scratch — the paper's
 * "reject, count, recompute" degradation, applied to the one section
 * that cannot be re-verified from bytes.
 *
 * Restore semantics: every restored entry keeps both fingerprints of
 * every key component, so a post-restart request still performs the
 * full dual-fingerprint verification before a hit is served.  Entries
 * are admitted with null module pointers — they serve verified hits
 * but are excluded from version lineage (never patch bases).  Any
 * entry that fails structural validation is rejected and counted
 * individually; any container-level defect (truncation, bit flip,
 * version skew, wrong kind) rejects the whole file and the daemon
 * simply starts cold.  A snapshot load NEVER crashes the process and
 * NEVER admits unverified data.
 *
 * Write failures (disk full, I/O error, injected fault) are counted
 * and warned; the cache stays fully functional in memory — snapshots
 * are an optimization, never a dependency.
 */

#pragma once

#include <cstdint>
#include <string>

namespace oha::service {

/** Snapshot-subsystem counters (process-wide, atomically updated). */
struct SnapshotStats
{
    /** Successful writeSnapshot() calls. */
    std::uint64_t writes = 0;
    /** writeSnapshot() calls that failed (I/O error, injected fault);
     *  the previously published snapshot, if any, is untouched. */
    std::uint64_t writeFailures = 0;
    /** Successful loadSnapshot() calls (the container verified). */
    std::uint64_t loads = 0;
    /** loadSnapshot() calls rejected wholesale (missing file is NOT
     *  counted — only defective ones). */
    std::uint64_t loadRejects = 0;
    /** Entries admitted across all loads. */
    std::uint64_t entriesRestored = 0;
    /** Entries individually rejected by semantic validation. */
    std::uint64_t entriesRejected = 0;
    /** errno of the most recent write failure (0 = none). */
    int lastErrno = 0;
};

SnapshotStats snapshotStats();
void resetSnapshotStats();

/** Canonical snapshot path under a state directory. */
std::string defaultSnapshotPath(const std::string &stateDir);

/**
 * Serialize the shared cache's plain-data sections to @p path using
 * the atomic temp+fsync+rename protocol.  Entries whose payload
 * cannot be read back (e.g. an unmappable spilled segment) are
 * skipped with a warning; an I/O failure anywhere aborts the write,
 * counts a writeFailure and leaves any previously published snapshot
 * untouched.  False on failure (with @p errorOut set).
 */
bool writeSnapshot(const std::string &path,
                   std::string *errorOut = nullptr);

/**
 * Load @p path and re-admit every valid entry into the shared cache.
 * Missing file: returns false quietly (cold start, not an error).
 * Defective file: rejected wholesale, counted, warned — returns
 * false.  Individually invalid entries are skipped and counted; the
 * rest still restore.  True when the container verified (even if
 * zero entries survived semantic validation).
 */
bool loadSnapshot(const std::string &path,
                  std::string *errorOut = nullptr);

} // namespace oha::service
