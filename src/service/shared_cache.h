/**
 * @file
 * Process-wide spine of the cross-request analysis cache.
 *
 * The analysis daemon (service/analysis_service.h) serves many
 * requests from one process, so the memoized static artifacts —
 * Andersen results, whole static-race results, slice sets
 * (analysis/andersen_cache.h) and recorded traces
 * (exec/trace_cache.h) — live in one shared cache: each subsystem
 * keeps its own typed key->entry map (a "section"), while this spine
 * owns everything the sections share:
 *
 *  - the mutex serializing every section's probes and inserts;
 *  - the LRU recency list and the configurable byte budget evictions
 *    are charged against (entries held whole modules alive forever
 *    before this existed — unbounded growth in a daemon);
 *  - the generation stamp that invalidates in-flight computations
 *    across reset() (a solve started before a reset must not insert
 *    its pre-reset result afterwards);
 *  - hit/miss/eviction accounting.
 *
 * Fingerprints are value identity: two independent 64-bit hashes of
 * the canonical text.  The primary hash is the map key; the secondary
 * is stored per entry and verified on every hit, so a primary-hash
 * collision degrades to a verified miss + fresh solve instead of
 * silently returning another module's result.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "service/lru.h"

namespace oha::ir {
class Module;
}

namespace oha::service {

/** Two independent 64-bit hashes of one canonical text. */
struct Fingerprint
{
    std::uint64_t primary = 0;
    std::uint64_t secondary = 0;

    bool
    operator==(const Fingerprint &other) const
    {
        return primary == other.primary && secondary == other.secondary;
    }
    bool operator!=(const Fingerprint &other) const
    {
        return !(*this == other);
    }
};

/** Hash @p text with both fingerprint functions in one pass. */
Fingerprint fingerprintText(const std::string &text);

/**
 * Fingerprint of a module's printed form.  Printing is expensive, so
 * results are memoized by object identity in a bounded side map; the
 * memo holds only weak references — it never keeps a module alive
 * (cache *entries* pin the modules their results reference, and
 * release them on eviction).
 */
Fingerprint
fingerprintModule(const std::shared_ptr<const ir::Module> &module);

/** Counters since process start / last reset(). */
struct SharedCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /** Primary-fingerprint hits whose stored secondary fingerprint
     *  did not match: a real collision, served as a fresh solve. */
    std::uint64_t verifiedMisses = 0;
    std::uint64_t evictions = 0;
    /** Computations discarded because a reset() intervened between
     *  their cache probe and their insert. */
    std::uint64_t staleDrops = 0;
    /** Misses served by patching a cached ancestor version instead of
     *  solving from scratch (the version-lineage path of the static
     *  sections — see analysis/andersen_cache.h). */
    std::uint64_t lineageHits = 0;
    std::size_t entries = 0;
    std::size_t bytesCached = 0;
    std::size_t byteBudget = 0;
    std::uint64_t generation = 0;
};

/** The process-wide cache spine.  All methods are thread-safe unless
 *  documented as requiring the spine mutex. */
class SharedCache
{
  public:
    static SharedCache &instance();

    /** The single lock serializing section probes/inserts and every
     *  method below documented as "mutex held". */
    std::mutex &mutex() { return mutex_; }

    /** Recency list + byte accounting.  Mutex held. */
    LruList &lru() { return lru_; }

    // Stat bumps.  Mutex held.
    void noteHit() { ++stats_.hits; }
    void noteMiss() { ++stats_.misses; }
    void
    noteVerifiedMiss()
    {
        ++stats_.verifiedMisses;
        ++stats_.misses;
    }
    void noteStaleDrop() { ++stats_.staleDrops; }
    void noteLineageHit() { ++stats_.lineageHits; }

    /** Evict cold entries until the byte budget fits.  Mutex held. */
    void
    enforceBudget()
    {
        stats_.evictions += lru_.evictToFit(byteBudget_);
    }

    /** Generation stamp; lock-free read for in-flight solvers. */
    std::uint64_t
    generation() const
    {
        return generation_.load(std::memory_order_acquire);
    }

    /**
     * Register a section's wholesale-clear callback, run under the
     * mutex by reset().  Callbacks must clear the section's maps
     * WITHOUT touching the LRU list (reset clears it directly).
     * Called once per section, on first use.
     */
    void registerSection(std::function<void()> clear);

    /** Bump the generation, clear every section and the recency list,
     *  zero the counters. */
    void reset();

    /** Change the byte budget and evict down to it immediately. */
    void setByteBudget(std::size_t bytes);

    std::size_t byteBudget() const;

    /** Consistent snapshot of the counters. */
    SharedCacheStats stats() const;

  private:
    SharedCache();

    mutable std::mutex mutex_;
    LruList lru_;
    std::atomic<std::uint64_t> generation_{0};
    std::size_t byteBudget_ = 0;
    SharedCacheStats stats_;
    std::vector<std::function<void()>> sections_;
};

namespace testing {

/**
 * Test seam for the collision-verification path: while enabled, every
 * text fingerprint gets the SAME primary hash (the secondary stays
 * real), so any two distinct modules/invariant sets collide on the
 * cache key.  Callers should reset the cache around toggling.
 */
void forcePrimaryFingerprintCollisions(bool enabled);

} // namespace testing

} // namespace oha::service
