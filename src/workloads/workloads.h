/**
 * @file
 * Synthetic benchmark workloads named after the paper's evaluation
 * programs (Section 6.1).
 *
 * The paper's corpora (DaCapo, JavaGrande, nginx, redis, perl, vim,
 * sphinx, go, zlib and their input sets) are external artifacts; per
 * the substitution rule each namesake here is a generated OHA-IR
 * program engineered to exhibit the *phenomenon* that made the
 * original interesting:
 *
 *  race-detection suite (Figure 5 / Table 1)
 *   - lusearch/raytracer: heavy lock-guarded shared state -> the
 *     likely-guarding-locks invariant is the win;
 *   - pmd/batik: cold error paths (LUC) and a rare true race;
 *   - moldyn: flag-based custom synchronization (Figure 4);
 *   - sunflow/montecarlo: barrier/fork-join parallelism a lockset
 *     detector cannot optimize;
 *   - xalan: statically almost race-free already (hybrid ~ optimistic);
 *   - luindex: a singleton background thread only the invariant can
 *     prove single;
 *   - sor/sparse/series/crypt/lufact: thread-local kernels provably
 *     race-free by the sound detector.
 *
 *  slicing suite (Figure 6 / Table 2)
 *   - perl/redis/vim: indirect-dispatch interpreters/servers (likely
 *     callee sets); perl's shared script state keeps slices big;
 *   - vim/go: large input-dependent behaviour spaces (slow invariant
 *     convergence, Figures 7-8);
 *   - sphinx: deep call pipelines (context checking is the overhead);
 *   - zlib: a small kernel whose endpoint slice is tiny under
 *     predicated CS analysis;
 *   - nginx: I/O-style event loop where slicing is cheap either way.
 *
 * Every workload carries deterministic profiling and testing input
 * corpora; testing inputs are drawn from the same distribution, so
 * rare behaviours missed during profiling occasionally appear at
 * test time and exercise genuine mis-speculation + rollback.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exec/interpreter.h"
#include "ir/module.h"

namespace oha::workloads {

/** A benchmark program plus its input corpora. */
struct Workload
{
    std::string name;
    std::shared_ptr<ir::Module> module;
    std::vector<exec::ExecConfig> profilingSet;
    std::vector<exec::ExecConfig> testingSet;
    /** True for the race-detection suite. */
    bool race = false;
    /** The paper's reported baseline runtime (display only). */
    double paperBaselineSeconds = 1.0;
};

/** Names of the 14 race-detection workloads, Figure 5 order. */
const std::vector<std::string> &raceWorkloadNames();

/** The five statically race-free kernels (right of Figure 5's line). */
const std::vector<std::string> &raceFreeKernelNames();

/** Names of the 7 slicing workloads, Table 2 order. */
const std::vector<std::string> &sliceWorkloadNames();

/** Build a race workload with deterministic corpora. */
Workload makeRaceWorkload(const std::string &name,
                          std::size_t profileRuns = 48,
                          std::size_t testRuns = 24);

/** Build a slicing workload with deterministic corpora. */
Workload makeSliceWorkload(const std::string &name,
                           std::size_t profileRuns = 48,
                           std::size_t testRuns = 24);

/**
 * A pointer-dense dispatch surface at analysis-service scale: a wide
 * shared dispatch table populated by a handful of registrar functions
 * and read through variable geps by @p readers reader functions.
 * Every table slot aliases every registered object, so Andersen
 * propagation (cells x readers x objects element flow) dominates
 * constraint construction — the regime where re-analysis cost hurts a
 * service and where incremental patching pays.  Static module only
 * (no input corpora): built for the incremental-analysis benchmark.
 */
std::shared_ptr<ir::Module>
makeDispatchSurfaceModule(std::size_t readers);

/** As above with explicit registration density: @p registrars
 *  functions each registering @p objectsPerRegistrar objects.  The
 *  solved sets carry registrars x objectsPerRegistrar elements, so
 *  this knob scales per-node propagation work independently of module
 *  size — the regime the wavefront solver's thread-scaling bench
 *  measures.  The one-argument form is (readers, 8, 8). */
std::shared_ptr<ir::Module>
makeDispatchSurfaceModule(std::size_t readers, std::size_t registrars,
                          std::size_t objectsPerRegistrar);

} // namespace oha::workloads
