/**
 * @file
 * Generators for the 7 slicing workloads (Table 2 order).  See
 * workloads.h for the phenomenon each namesake models.
 *
 * Two mechanisms drive the hybrid-vs-optimistic gap, mirroring the
 * paper:
 *  - *cold checksum writers*: rare error/reset paths deep inside the
 *    handlers/stages store into the endpoint's checksum state.  The
 *    sound slicer must pull every handler's computation into the
 *    slice through those stores; the LUC invariant prunes them.
 *  - *cold call fan*: helpers statically call several next-layer
 *    helpers but dynamically only one.  Sound context-sensitive
 *    analysis blows past its context budget (falls back to CI, which
 *    conflates the shared box allocator's heap); the likely-unused-
 *    call-contexts invariant collapses the fan so the predicated
 *    analysis runs context-sensitively (Figure 11's vim/nginx flip).
 */

#include "workloads/workloads.h"

#include <map>

#include "support/rng.h"
#include "workloads/builder_util.h"

namespace oha::workloads {

namespace {

using ir::BasicBlock;
using ir::BinOpKind;
using ir::Function;
using ir::IRBuilder;
using ir::Module;
using ir::Reg;

constexpr std::int64_t kColdArg = 4095;

std::uint64_t
nameSeed(const std::string &name)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : name)
        h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    return h ^ 0x5eed;
}

/** Knobs for the slicing applications. */
struct SliceKnobs
{
    int tableSize = 16;        ///< indirect dispatch table entries
    int scriptLen = 80;        ///< dispatched operations per run
    int handlerWeight = 4;     ///< arithmetic per handler
    int utilLayers = 0;        ///< layered helper calls per handler
    int utilFan = 2;           ///< static helpers per layer (dynamic: 1)
    bool sharedBoxes = true;   ///< CI-conflating shared alloc helper
    bool coldChkWriters = true; ///< cold paths store into checksum state
    bool hotChkEntangle = false; ///< perl: hot paths touch checksum state
    int opSpread = 6;          ///< op distribution decay
    double coldProb = 0.04;    ///< P(run exercises a rare behaviour)
    int recursion = 0;         ///< go: recursive evaluator depth knob
    int bookkeepingOps = 0;    ///< nginx: endpoint-irrelevant event work
    int pipelineDepth = 0;     ///< sphinx/zlib: nested stage depth
    int blocksPerRun = 0;      ///< pipeline outer loop length
    /** Cold "subsystem" modules (replication, persistence, plugins):
     *  statically reachable from every handler, never executed in
     *  this deployment.  They blow the sound CS analysis past its
     *  context budget; LUC + context invariants collapse them. */
    int coldSubsystems = 0;
    int subsystemWeight = 24;
    /** nginx: pure-compute wait loop per event (models I/O-bound
     *  time that no slice instruments). */
    int ioWaitIters = 0;
    /** Inline the checksum fold (zlib kernels). */
    bool inlineFold = false;
};

constexpr int kStateCells = 32;

/** Shared pieces: checksum state global + shared box allocator. */
struct CommonParts
{
    std::uint32_t chkG = 0;
    std::uint32_t stateG = 0;
    Function *mkbox = nullptr;
};

CommonParts
emitCommon(Module &module, IRBuilder &b)
{
    CommonParts parts;
    parts.chkG = module.addGlobal("chk_state", 2);
    parts.stateG = module.addGlobal("state", kStateCells);
    parts.mkbox = b.createFunction("mkbox", 1);
    const Reg cell = b.alloc(1);
    b.store(cell, 0);
    b.ret(cell);
    return parts;
}

/** Emit a cold "checksum reset" write (the slice-bloating store). */
void
emitColdChkWrite(IRBuilder &b, const CommonParts &parts, Reg trigger,
                 Reg value)
{
    emitIf(b, b.eq(trigger, b.constInt(kColdArg)), [&] {
        const Reg cell = b.gep(b.globalAddr(parts.chkG), 0);
        b.store(cell, b.bxor(b.load(cell), value));
    });
}

/**
 * Layered utility helpers with cold call fan.  Returns the layer-0
 * helpers.  Each helper takes (value, coldFlag): it hot-calls exactly
 * one next-layer helper and cold-calls the rest behind the flag.
 * The flag is derived from *raw input* by the caller, so profiled
 * and tested behaviour is exactly controlled by the corpus.
 */
std::vector<Function *>
emitUtilLayers(IRBuilder &b, const CommonParts &parts,
               const SliceKnobs &knobs)
{
    std::vector<std::vector<Function *>> utils(
        std::size_t(std::max(knobs.utilLayers, 0)));
    for (int layer = knobs.utilLayers - 1; layer >= 0; --layer) {
        utils[std::size_t(layer)].resize(std::size_t(knobs.utilFan));
        for (int u = 0; u < knobs.utilFan; ++u) {
            Function *f = b.createFunction(
                "util_" + std::to_string(layer) + "_" + std::to_string(u),
                2);
            const Reg arg = 0;
            const Reg cold = 1;
            Reg acc = b.add(b.mul(arg, b.constInt(layer + 2 + u)),
                            b.constInt(u + 1));
            if (layer + 1 < knobs.utilLayers) {
                const auto &next = utils[std::size_t(layer) + 1];
                // Hot path: a single next-layer call.
                acc = b.add(acc,
                            b.call(next[std::size_t(u % knobs.utilFan)],
                                   {acc, cold}));
                // Cold fan: statically present, dynamically dead
                // unless the input armed the flag.
                for (int v = 0; v < knobs.utilFan; ++v) {
                    if (v == u % knobs.utilFan)
                        continue;
                    emitIf(b, cold, [&] {
                        const Reg extra =
                            b.call(next[std::size_t(v)], {acc, cold});
                        if (knobs.coldChkWriters) {
                            const Reg cell =
                                b.gep(b.globalAddr(parts.chkG), 0);
                            b.store(cell,
                                    b.add(b.load(cell), extra));
                        }
                    });
                }
            } else if (knobs.coldChkWriters) {
                emitIf(b, cold, [&] {
                    const Reg cell = b.gep(b.globalAddr(parts.chkG), 0);
                    b.store(cell, b.bxor(b.load(cell), acc));
                });
            }
            b.ret(acc);
            utils[std::size_t(layer)][std::size_t(u)] = f;
        }
    }
    return utils.empty() ? std::vector<Function *>{}
                         : utils.front();
}

/** Build a dispatch-style application (perl/redis/vim/go/nginx). */
std::shared_ptr<Module>
buildDispatchModule(const SliceKnobs &knobs)
{
    auto module = std::make_shared<Module>();
    IRBuilder b(*module);
    CommonParts parts = emitCommon(*module, b);

    const auto tableG = module->addGlobal(
        "op_table", std::uint32_t(knobs.tableSize));
    const auto bookG = module->addGlobal("conn_state", 16);

    const std::vector<Function *> utils = emitUtilLayers(b, parts, knobs);

    // Cold subsystem modules: a chain of heavy functions reachable
    // from every handler behind an input test that this deployment's
    // inputs can never satisfy (arg is always < kNeverArg).  They are
    // the "code that is there but you never run" of a real server.
    constexpr std::int64_t kNeverArg = 8191;
    std::vector<Function *> subsystems;
    for (int s = knobs.coldSubsystems - 1; s >= 0; --s) {
        Function *f =
            b.createFunction("subsystem_" + std::to_string(s), 1);
        Reg acc = b.mul(0, b.constInt(s + 5));
        const Reg noCold = b.constInt(0);
        for (int w = 0; w < knobs.subsystemWeight; ++w)
            acc = b.bxor(acc, b.add(acc, b.constInt(w + 3)));
        if (!utils.empty()) {
            acc = b.add(acc, b.call(utils[std::size_t(s) % utils.size()],
                                    {acc, noCold}));
            acc = b.add(acc,
                        b.call(utils[std::size_t(s + 1) % utils.size()],
                               {acc, noCold}));
        }
        if (!subsystems.empty()) {
            // Multiple call sites into the deeper subsystems make the
            // acyclic call-chain count exponential in the subsystem
            // count — the sound CS analysis cannot afford it.
            acc = b.add(acc, b.call(subsystems.back(), {acc}));
            acc = b.add(acc, b.call(subsystems.back(), {b.add(acc, acc)}));
            if (subsystems.size() >= 2) {
                acc = b.add(
                    acc,
                    b.call(subsystems[subsystems.size() - 2], {acc}));
            }
        }
        if (knobs.coldChkWriters) {
            const Reg cell = b.gep(b.globalAddr(parts.chkG), 0);
            b.store(cell, b.add(b.load(cell), acc));
        }
        b.ret(acc);
        subsystems.push_back(f);
    }

    // Recursive evaluator (go).
    Function *recurse = nullptr;
    if (knobs.recursion > 0) {
        recurse = b.createFunction("recurse", 2); // (value, depth)
        Function *f = b.currentFunction();
        BasicBlock *deeper = b.createBlock(f, "deeper");
        BasicBlock *leaf = b.createBlock(f, "leaf");
        const Reg depth = 1;
        b.condBr(b.binop(BinOpKind::Gt, depth, b.constInt(0)), deeper,
                 leaf);
        b.setInsertPoint(deeper);
        const Reg shrunk = b.sub(depth, b.constInt(1));
        const Reg child = b.call(recurse, {b.add(0, depth), shrunk});
        b.ret(b.add(child, b.constInt(1)));
        b.setInsertPoint(leaf);
        b.ret(b.assign(0));
    }

    // Handlers.
    std::vector<Function *> handlers;
    for (int k = 0; k < knobs.tableSize; ++k) {
        Function *h =
            b.createFunction("handler_" + std::to_string(k), 1);
        const Reg arg = 0;
        const Reg coldFlag = b.eq(arg, b.constInt(kColdArg));
        Reg acc = b.add(arg, b.constInt(k * 3 + 1));
        for (int w = 0; w < knobs.handlerWeight; ++w)
            acc = b.bxor(acc, b.mul(arg, b.constInt(w + k + 2)));
        if (!utils.empty()) {
            acc = b.add(acc,
                        b.call(utils[std::size_t(k) % utils.size()],
                               {acc, coldFlag}));
        }
        if (recurse && k >= knobs.tableSize / 2 && k % 4 == 1) {
            const Reg depth =
                b.band(arg, b.constInt(knobs.recursion - 1));
            acc = b.add(acc, b.call(recurse, {acc, depth}));
        }
        if (knobs.sharedBoxes) {
            const Reg box = b.call(parts.mkbox, {acc});
            b.store(box, acc);
            acc = b.add(acc, b.load(box));
        }
        // Per-handler home cell (endpoint C observes cell 1).
        const Reg cell =
            b.gep(b.globalAddr(parts.stateG), k % kStateCells);
        b.store(cell, b.add(b.load(cell), acc));
        if (knobs.hotChkEntangle) {
            // perl: the generic value array entangles everything with
            // the endpoint chain on the hot path.
            const Reg slot = b.band(arg, b.constInt(1));
            const Reg chkCell =
                b.gepDyn(b.globalAddr(parts.chkG), slot);
            b.store(chkCell, b.add(b.load(chkCell), acc));
        }
        if (knobs.coldChkWriters)
            emitColdChkWrite(b, parts, arg, acc);
        if (!subsystems.empty()) {
            // Dead-in-this-deployment subsystem entry points.
            emitIf(b, b.eq(arg, b.constInt(kNeverArg)), [&] {
                Reg extra = b.call(
                    subsystems[std::size_t(k) % subsystems.size()],
                    {acc});
                extra = b.add(
                    extra,
                    b.call(
                        subsystems[std::size_t(k + 1) %
                                   subsystems.size()],
                        {acc}));
                const Reg cell = b.gep(b.globalAddr(parts.chkG), 0);
                b.store(cell, b.add(b.load(cell), extra));
            });
        }
        b.ret(acc);
        handlers.push_back(h);
    }

    // dispatch(op, arg)
    Function *dispatch = b.createFunction("dispatch", 2);
    {
        const Reg fp = b.load(b.gepDyn(b.globalAddr(tableG), 0));
        b.ret(b.icall(fp, {1}));
    }

    // main
    b.createFunction("main", 0);
    {
        for (int k = 0; k < knobs.tableSize; ++k) {
            b.store(b.gep(b.globalAddr(tableG), k),
                    b.funcAddr(handlers[std::size_t(k)]));
        }

        const Reg sum = b.constInt(0);
        const Reg bytesOut = b.constInt(0);
        const Reg len = b.constInt(knobs.scriptLen);
        // Seed the checksum state.
        b.store(b.gep(b.globalAddr(parts.chkG), 0), b.constInt(7));

        emitCountedLoop(b, len, [&](Reg s) {
            const Reg op = b.inputDyn(s, 16);
            const Reg arg =
                b.inputDyn(b.add(s, b.constInt(knobs.scriptLen)), 16);
            const Reg r = b.call(dispatch, {op, arg});
            b.binopTo(sum, BinOpKind::Add, sum, r);

            // Endpoint chain: checksum folded through memory (and,
            // when sharedBoxes, through the conflatable allocator).
            const Reg chkCell = b.gep(b.globalAddr(parts.chkG), 0);
            Reg folded = b.bxor(b.load(chkCell), arg);
            if (knobs.sharedBoxes) {
                const Reg box = b.call(parts.mkbox, {folded});
                b.store(box, folded);
                folded = b.load(box);
            }
            b.store(chkCell, folded);

            // Endpoint-irrelevant connection bookkeeping (nginx).
            for (int c = 0; c < knobs.bookkeepingOps; ++c) {
                const Reg cell = b.gep(b.globalAddr(bookG), c % 16);
                b.store(cell, b.add(b.load(cell), arg));
            }
            if (knobs.bookkeepingOps > 0) {
                b.binopTo(bytesOut, BinOpKind::Add, bytesOut,
                          b.band(arg, b.constInt(1023)));
            }

            // I/O wait: compute-only spin no slice ever instruments.
            if (knobs.ioWaitIters > 0) {
                const Reg spin = b.constInt(0);
                emitCountedLoop(
                    b, b.constInt(knobs.ioWaitIters),
                    [&](Reg w) {
                        b.binopTo(spin, BinOpKind::Add, spin,
                                  b.bxor(w, arg));
                    },
                    "iowait");
            }
        });

        // Endpoint A: the checksum (small true slice, bloated for the
        // sound slicer by the cold writers).
        b.output(b.load(b.gep(b.globalAddr(parts.chkG), 0)));
        if (knobs.bookkeepingOps > 0)
            b.output(bytesOut);
        // Endpoints B/C: observers of the home cells of *infrequent*
        // handlers — the paper's debugging scenario slices on the
        // misbehaving rare command.  Entangled with every handler
        // under a conflated CI heap, separated by predicated CS.
        b.output(b.load(b.gep(b.globalAddr(parts.stateG),
                              (knobs.tableSize / 3) % kStateCells)));
        b.output(b.load(b.gep(b.globalAddr(parts.stateG),
                              (knobs.tableSize / 2) % kStateCells)));
        (void)sum; // computed but unobserved, like most server state
        b.ret();
    }

    module->finalize();
    return module;
}

/** Build a pipeline-style application (zlib, sphinx). */
std::shared_ptr<Module>
buildPipelineModule(const SliceKnobs &knobs)
{
    auto module = std::make_shared<Module>();
    IRBuilder b(*module);
    CommonParts parts = emitCommon(*module, b);
    const auto outG = module->addGlobal("out_buf", 16);

    // Transform stages: stage_i calls stage_{i+1}; rare inputs hit a
    // "dictionary flush" that resets the checksum state.
    std::vector<Function *> stages(std::size_t(knobs.pipelineDepth));
    for (int i = knobs.pipelineDepth - 1; i >= 0; --i) {
        // (value, rawSample): the cold trigger compares the untouched
        // input sample so corpora fully control cold-path execution.
        Function *f = b.createFunction("stage_" + std::to_string(i), 2);
        const Reg arg = 0;
        const Reg raw = 1;
        Reg acc = b.mul(arg, b.constInt(i + 3));
        for (int w = 0; w < knobs.handlerWeight; ++w)
            acc = b.bxor(acc, b.add(acc, b.constInt(w + 17)));
        if (knobs.sharedBoxes) {
            const Reg box = b.call(parts.mkbox, {acc});
            b.store(box, acc);
            acc = b.load(box);
        }
        if (i + 1 < knobs.pipelineDepth) {
            acc = b.add(
                acc, b.call(stages[std::size_t(i) + 1], {acc, raw}));
        }
        if (knobs.coldChkWriters)
            emitColdChkWrite(b, parts, raw, acc);
        b.ret(acc);
        stages[std::size_t(i)] = f;
    }

    // Checksum helper: folds through the checksum global (and the
    // shared boxes, for CI conflation).  zlib-style kernels inline
    // the fold — an adler32 update is a couple of instructions.
    Function *fold = nullptr;
    if (!knobs.inlineFold) {
        fold = b.createFunction("fold", 1);
        const Reg sample = 0;
        const Reg chkCell = b.gep(b.globalAddr(parts.chkG), 0);
        Reg folded = b.bxor(b.load(chkCell), sample);
        if (knobs.sharedBoxes) {
            const Reg box = b.call(parts.mkbox, {folded});
            b.store(box, folded);
            folded = b.load(box);
        }
        b.store(chkCell, b.add(folded, b.constInt(1)));
        b.ret(folded);
    }

    b.createFunction("main", 0);
    {
        const Reg volume = b.constInt(0);
        b.store(b.gep(b.globalAddr(parts.chkG), 0), b.constInt(1));
        emitCountedLoop(b, b.constInt(knobs.blocksPerRun), [&](Reg blk) {
            // Samples live in the "args" region of the input vector,
            // where the corpus generator plants rare kColdArg values.
            const Reg sample =
                b.inputDyn(blk, 16 + knobs.blocksPerRun);
            const Reg transformed =
                b.call(stages[0], {sample, sample});
            b.store(b.gepDyn(b.globalAddr(outG),
                             b.band(blk, b.constInt(15))),
                    transformed);
            b.binopTo(volume, BinOpKind::Add, volume, transformed);
            if (knobs.inlineFold) {
                const Reg chkCell = b.gep(b.globalAddr(parts.chkG), 0);
                b.store(chkCell, b.bxor(b.load(chkCell), sample));
            } else {
                b.call(fold, {sample});
            }
        });
        // The stream checksum is the observable; the transform volume
        // stays internal (out_buf models the output file).
        b.output(b.load(b.gep(b.globalAddr(parts.chkG), 0)));
        (void)volume;
        b.ret();
    }

    module->finalize();
    return module;
}

/** Input generation for dispatch/pipeline apps. */
exec::ExecConfig
makeSliceInput(const SliceKnobs &knobs, std::uint64_t seed)
{
    Rng rng(seed);
    exec::ExecConfig config;
    const std::size_t len = std::size_t(knobs.scriptLen);
    config.input.resize(16 + 2 * len + 64, 0);
    for (int i = 0; i < 16; ++i)
        config.input[std::size_t(i)] =
            static_cast<std::int64_t>(rng.below(64));

    for (std::size_t s = 0; s < len; ++s) {
        if (knobs.tableSize > 0) {
            // Geometric-ish decay: low-numbered handlers common,
            // high-numbered rare; drives gradual invariant
            // convergence (Figures 7/8).
            std::uint64_t op = 0;
            while (op + 1 < std::uint64_t(knobs.tableSize) &&
                   rng.chance(1.0 - 1.0 / knobs.opSpread)) {
                op += rng.below(2) + (rng.chance(0.2) ? 1 : 0);
            }
            if (rng.chance(knobs.coldProb / double(len)))
                op = std::uint64_t(knobs.tableSize) - 1 - rng.below(2);
            config.input[16 + s] = static_cast<std::int64_t>(
                op % std::uint64_t(knobs.tableSize));
        }
        std::int64_t arg = static_cast<std::int64_t>(rng.below(1024));
        if (rng.chance(knobs.coldProb / (2.0 * double(len))))
            arg = kColdArg; // cold checksum writer / cold call fan
        config.input[16 + len + s] = arg;
    }
    config.scheduleSeed = rng.next();
    return config;
}

const std::map<std::string, SliceKnobs> &
slicePresets()
{
    static const std::map<std::string, SliceKnobs> presets = [] {
        std::map<std::string, SliceKnobs> p;
        {
            // nginx: I/O-bound event loop; endpoint slices are small,
            // almost all time is un-instrumented wait/bookkeeping.
            SliceKnobs k;
            k.tableSize = 8;
            k.scriptLen = 40;
            k.handlerWeight = 2;
            k.utilLayers = 2;
            k.utilFan = 4;
            k.coldChkWriters = false;
            k.opSpread = 4;
            k.coldProb = 0.02;
            k.bookkeepingOps = 6;
            k.ioWaitIters = 60;
            k.coldSubsystems = 4;
            p["nginx"] = k;
        }
        {
            // redis: command dispatch over a shared store, with cold
            // persistence/replication subsystems.
            SliceKnobs k;
            k.tableSize = 16;
            k.scriptLen = 80;
            k.handlerWeight = 12;
            k.utilLayers = 2;
            k.utilFan = 3;
            k.opSpread = 5;
            k.coldProb = 0.04;
            k.coldSubsystems = 6;
            p["redis"] = k;
        }
        {
            // perl: interpreter whose generic value state entangles
            // the endpoint with every hot handler.
            SliceKnobs k;
            k.tableSize = 24;
            k.scriptLen = 90;
            k.handlerWeight = 4;
            k.utilLayers = 1;
            k.utilFan = 2;
            k.hotChkEntangle = true;
            k.opSpread = 8;
            k.coldProb = 0.05;
            k.coldSubsystems = 8;
            p["perl"] = k;
        }
        {
            // vim: many commands, deep cold call fan, slow invariant
            // convergence.
            SliceKnobs k;
            k.tableSize = 40;
            k.scriptLen = 70;
            k.handlerWeight = 9;
            k.utilLayers = 3;
            k.utilFan = 4;
            k.opSpread = 12;
            k.coldProb = 0.03;
            k.coldSubsystems = 4;
            p["vim"] = k;
        }
        {
            // sphinx: deep pipeline; context checks dominate runtime.
            SliceKnobs k;
            k.tableSize = 0;
            k.handlerWeight = 3;
            k.pipelineDepth = 10;
            k.blocksPerRun = 60;
            k.coldProb = 0.02;
            p["sphinx"] = k;
        }
        {
            // go: recursive evaluator, unstable contexts.
            SliceKnobs k;
            k.tableSize = 18;
            k.scriptLen = 60;
            k.handlerWeight = 8;
            k.utilLayers = 1;
            k.utilFan = 2;
            k.opSpread = 7;
            k.coldProb = 0.10;
            k.recursion = 10;
            k.subsystemWeight = 24;
            k.coldSubsystems = 2;
            p["go"] = k;
        }
        {
            // zlib: small kernel; checksum slice tiny once the cold
            // "dictionary flush" writers are pruned.
            SliceKnobs k;
            k.tableSize = 0;
            k.handlerWeight = 16;
            k.pipelineDepth = 8;
            k.blocksPerRun = 60;
            k.coldProb = 0.015;
            k.inlineFold = true;
            p["zlib"] = k;
        }
        return p;
    }();
    return presets;
}

const std::map<std::string, double> &
paperBaselines()
{
    static const std::map<std::string, double> t = {
        {"nginx", 0.34}, {"redis", 0.19}, {"perl", 0.79},
        {"vim", 0.11},   {"sphinx", 1.72}, {"go", 0.95},
        {"zlib", 0.19},
    };
    return t;
}

} // namespace

const std::vector<std::string> &
sliceWorkloadNames()
{
    static const std::vector<std::string> names = {
        "nginx", "redis", "perl", "vim", "sphinx", "go", "zlib",
    };
    return names;
}

std::shared_ptr<ir::Module>
makeDispatchSurfaceModule(std::size_t readers)
{
    return makeDispatchSurfaceModule(readers, 8, 8);
}

std::shared_ptr<ir::Module>
makeDispatchSurfaceModule(std::size_t readers, std::size_t registrars,
                          std::size_t objectsPerRegistrar)
{
    // Width / density knobs: 32 slots each aliasing all registered
    // objects, eight table reads per reader.  Propagation work is
    // roughly slots x loads x objects element crossings; the solved
    // state is a factor ~min(slots, loads) smaller, which is exactly
    // the gap an incremental re-solve keeps.
    constexpr int kSlots = 32;
    constexpr int kLoadsPerReader = 8;

    auto module = std::make_shared<Module>();
    IRBuilder b(*module);
    const auto tableG =
        module->addGlobal("dispatch_table", kSlots);

    // Readers first: "edit the first N% of functions" sweeps then hit
    // reader bodies, the representative small edit (local code, no
    // change to the registration structure).
    std::vector<Function *> parts;
    for (std::size_t r = 0; r < readers; ++r) {
        parts.push_back(b.createFunction(
            "surface_reader_" + std::to_string(r), 1));
        const Reg arg = 0;
        const Reg local = b.alloc(1);
        for (int l = 0; l < kLoadsPerReader; ++l) {
            const Reg slot = b.gepDyn(b.globalAddr(tableG), arg);
            b.store(local, b.load(slot));
        }
        b.ret(b.constInt(0));
    }
    for (std::size_t w = 0; w < registrars; ++w) {
        parts.push_back(b.createFunction(
            "surface_registrar_" + std::to_string(w), 1));
        const Reg arg = 0;
        for (std::size_t a = 0; a < objectsPerRegistrar; ++a) {
            const Reg obj = b.alloc(1);
            b.store(b.gepDyn(b.globalAddr(tableG), arg), obj);
        }
        b.ret(b.constInt(0));
    }

    b.createFunction("main", 0);
    for (std::size_t i = 0; i < parts.size(); ++i)
        b.call(parts[i], {b.constInt(std::int64_t(i) % kSlots)});
    b.ret(b.constInt(0));

    module->finalize();
    return module;
}

Workload
makeSliceWorkload(const std::string &name, std::size_t profileRuns,
                  std::size_t testRuns)
{
    auto it = slicePresets().find(name);
    if (it == slicePresets().end())
        OHA_FATAL("unknown slice workload '%s'", name.c_str());
    const SliceKnobs &knobs = it->second;

    Workload workload;
    workload.name = name;
    workload.race = false;
    workload.paperBaselineSeconds = paperBaselines().at(name);
    workload.module = knobs.pipelineDepth > 0
                          ? buildPipelineModule(knobs)
                          : buildDispatchModule(knobs);

    const std::uint64_t seed = nameSeed(name);
    SliceKnobs inputKnobs = knobs;
    if (knobs.pipelineDepth > 0)
        inputKnobs.scriptLen = knobs.blocksPerRun;
    for (std::size_t i = 0; i < profileRuns; ++i) {
        workload.profilingSet.push_back(
            makeSliceInput(inputKnobs, seed + i));
    }
    for (std::size_t i = 0; i < testRuns; ++i) {
        workload.testingSet.push_back(
            makeSliceInput(inputKnobs, seed + 100000 + i));
    }
    return workload;
}

} // namespace oha::workloads
