/**
 * @file
 * Generators for the 14 race-detection workloads (Figure 5 order).
 * See workloads.h for the phenomenon each namesake models.
 */

#include "workloads/workloads.h"

#include <map>

#include "support/rng.h"
#include "workloads/builder_util.h"

namespace oha::workloads {

namespace {

using ir::BasicBlock;
using ir::BinOpKind;
using ir::Function;
using ir::IRBuilder;
using ir::Module;
using ir::Reg;

/** Magic request values recognized by worker loops. */
constexpr std::int64_t kColdRequest = 999;
constexpr std::int64_t kRaceRequest = 555;

/** FNV-1a so corpora are deterministic across platforms. */
std::uint64_t
nameSeed(const std::string &name)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : name)
        h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    return h;
}

/** Thread/benchmark structure knobs for the server-style generator. */
struct ServerKnobs
{
    int threads = 3;
    int requests = 50;
    int sharedReads = 2;   ///< read-only index reads per request
    int lockedOps = 2;     ///< lock-guarded shared updates per request
    int scratchOps = 2;    ///< thread-local buffer ops per request
    int arithOps = 3;      ///< plain arithmetic per request
    bool poolInLoop = false;  ///< spawn workers inside a loop
    bool viaHelper = false;   ///< spawn a background thread via helper
    bool barrier = false;     ///< unguarded disjoint-slot result writes
    bool customSync = false;  ///< flag-handoff pair (Figure 4)
    bool heavyIndexer = false; ///< background thread with hot unguarded
                               ///< self-writes (singleton-invariant win)
    double coldProb = 0.02;   ///< P(run contains a cold request)
    double raceProb = 0.0;    ///< P(run triggers the intentional race)
};

/** Build the server-style multithreaded program. */
std::shared_ptr<Module>
buildServerModule(const ServerKnobs &knobs)
{
    auto module = std::make_shared<Module>();
    IRBuilder b(*module);

    const auto indexG = module->addGlobal("index", 64);
    const auto statsG = module->addGlobal("stats", 8);
    const auto statsLockG = module->addGlobal("stats_lock", 1);
    const auto errorLogG = module->addGlobal("error_log", 4);
    const auto raceCtrG = module->addGlobal("race_counter", 1);
    const auto resultsG = module->addGlobal("results", 8);
    const auto syncFlagG = module->addGlobal("sync_flag", 1);
    const auto syncDataG = module->addGlobal("sync_data", 1);
    const auto syncLockG = module->addGlobal("sync_lock", 1);
    const auto outBufG = module->addGlobal("out_buf", 16);

    // ---- worker(tid) ------------------------------------------------
    Function *worker = b.createFunction("worker", 1);
    {
        const Reg tid = 0;
        const Reg scratch = b.alloc(8);
        const Reg acc = b.constInt(1);
        const Reg nReq = b.constInt(knobs.requests);
        const Reg base = b.mul(tid, b.constInt(256));
        const Reg c63 = b.constInt(63);
        const Reg c7 = b.constInt(7);

        emitCountedLoop(b, nReq, [&](Reg r) {
            const Reg req = b.inputDyn(b.add(base, r), 64);

            // Read-only shared index lookups (pruned by sound MHP:
            // written only before any spawn).
            for (int k = 0; k < knobs.sharedReads; ++k) {
                const Reg slot = b.band(b.add(req, b.constInt(k)), c63);
                const Reg v =
                    b.load(b.gepDyn(b.globalAddr(indexG), slot));
                b.binopTo(acc, BinOpKind::Add, acc, v);
            }

            // Plain arithmetic.
            for (int k = 0; k < knobs.arithOps; ++k) {
                b.binopTo(acc, BinOpKind::Xor, acc,
                          b.mul(req, b.constInt(2 * k + 3)));
            }

            // Lock-guarded shared statistics: the sound detector must
            // keep these (may-alias locksets); the guarding-locks
            // invariant prunes them.
            if (knobs.lockedOps > 0) {
                const Reg lockPtr = b.globalAddr(statsLockG);
                b.lock(lockPtr);
                for (int k = 0; k < knobs.lockedOps; ++k) {
                    const Reg slot =
                        b.band(b.add(req, b.constInt(k)), c7);
                    const Reg cell =
                        b.gepDyn(b.globalAddr(statsG), slot);
                    b.store(cell, b.add(b.load(cell), acc));
                }
                b.unlock(lockPtr);
            }

            // Thread-local scratch (pruned even by the sound detector
            // via escape analysis).
            for (int k = 0; k < knobs.scratchOps; ++k) {
                const Reg slot = b.band(b.add(r, b.constInt(k)), c7);
                const Reg cell = b.gepDyn(scratch, slot);
                b.store(cell, acc);
                b.binopTo(acc, BinOpKind::Add, acc, b.load(cell));
            }

            // Barrier-style disjoint-slot result writes: statically
            // racy (variable index), dynamically race-free — the
            // pattern lockset detectors cannot optimize (sunflow /
            // montecarlo).
            if (knobs.barrier) {
                const Reg cell = b.gepDyn(b.globalAddr(resultsG), tid);
                b.store(cell, b.add(b.load(cell), acc));
            }

            // Cold error path: unguarded shared write, never profiled.
            emitIf(b, b.eq(req, b.constInt(kColdRequest)), [&] {
                const Reg cell = b.gep(b.globalAddr(errorLogG), 0);
                b.store(cell, b.add(b.load(cell), b.constInt(1)));
                b.binopTo(acc, BinOpKind::Add, acc, b.constInt(17));
            });

        });
        b.ret(acc);
    }

    // ---- intentional racer pair (pmd) --------------------------------
    // Two synchronization-free threads increment a shared counter when
    // input word 5 says so: a genuine data race every detector
    // configuration must report identically.
    Function *racer = nullptr;
    if (knobs.raceProb > 0) {
        racer = b.createFunction("racer", 0);
        emitIf(b, b.eq(b.input(5), b.constInt(1)), [&] {
            const Reg cell = b.globalAddr(raceCtrG);
            b.store(cell, b.add(b.load(cell), b.constInt(1)));
        });
        b.ret(b.constInt(0));
    }

    // ---- heavy background indexer (luindex / batik) -----------------
    Function *indexer = nullptr;
    Function *startHelper = nullptr;
    if (knobs.viaHelper) {
        indexer = b.createFunction("indexer", 1);
        {
            const Reg rounds =
                b.constInt(knobs.heavyIndexer ? knobs.requests * 6
                                              : knobs.requests);
            const Reg acc = b.constInt(3);
            const Reg c15 = b.constInt(15);
            emitCountedLoop(b, rounds, [&](Reg i) {
                const Reg v = b.inputDyn(i, 32);
                b.binopTo(acc, BinOpKind::Add, acc, v);
                // Unguarded writes to a private-by-convention global:
                // only provably ordered if this thread is a singleton.
                const Reg cell = b.gepDyn(b.globalAddr(outBufG),
                                          b.band(i, c15));
                b.store(cell, b.add(b.load(cell), acc));
            });
            b.ret(acc);
        }
        startHelper = b.createFunction("start_indexer", 0);
        {
            const Reg h = b.spawn(indexer, {b.constInt(0)});
            b.ret(h);
        }
    }

    // ---- custom-sync pair (moldyn, Figure 4) ------------------------
    Function *producer = nullptr;
    Function *consumer = nullptr;
    if (knobs.customSync) {
        producer = b.createFunction("producer", 0);
        {
            // Unguarded payload write, then flag publication under a
            // lock: the payload's ordering exists only through the
            // lock + spin chain.
            b.store(b.globalAddr(syncDataG), b.input(7));
            const Reg lockPtr = b.globalAddr(syncLockG);
            b.lock(lockPtr);
            b.store(b.globalAddr(syncFlagG), b.constInt(1));
            b.unlock(lockPtr);
            b.ret();
        }
        consumer = b.createFunction("consumer", 0);
        {
            Function *f = b.currentFunction();
            BasicBlock *spin = b.createBlock(f, "spin");
            BasicBlock *ready = b.createBlock(f, "ready");
            b.br(spin);
            b.setInsertPoint(spin);
            const Reg lockPtr = b.globalAddr(syncLockG);
            b.lock(lockPtr);
            const Reg flag = b.load(b.globalAddr(syncFlagG));
            b.unlock(lockPtr);
            b.condBr(flag, ready, spin);
            b.setInsertPoint(ready);
            b.ret(b.load(b.globalAddr(syncDataG)));
        }
    }

    // ---- main --------------------------------------------------------
    b.createFunction("main", 0);
    {
        // Initialize the read-only index before any thread exists.
        emitCountedLoop(b, b.constInt(64), [&](Reg i) {
            b.store(b.gepDyn(b.globalAddr(indexG), i), b.inputDyn(i, 0));
        });

        const Reg total = b.constInt(0);

        Reg helperHandle = ir::kNoReg;
        if (knobs.viaHelper)
            helperHandle = b.call(startHelper, {});

        Reg prodHandle = ir::kNoReg, consHandle = ir::kNoReg;
        if (knobs.customSync) {
            prodHandle = b.spawn(producer, {});
            consHandle = b.spawn(consumer, {});
        }

        Reg racer1 = ir::kNoReg, racer2 = ir::kNoReg;
        if (racer) {
            racer1 = b.spawn(racer, {});
            racer2 = b.spawn(racer, {});
        }

        if (knobs.poolInLoop) {
            const Reg handles = b.alloc(
                static_cast<std::uint32_t>(knobs.threads));
            emitCountedLoop(
                b, b.constInt(knobs.threads),
                [&](Reg t) {
                    const Reg h = b.spawn(worker, {t});
                    b.store(b.gepDyn(handles, t), h);
                },
                "pool");
            emitCountedLoop(
                b, b.constInt(knobs.threads),
                [&](Reg t) {
                    const Reg r = b.join(b.load(b.gepDyn(handles, t)));
                    b.binopTo(total, BinOpKind::Add, total, r);
                },
                "poolJoin");
        } else {
            std::vector<Reg> handles;
            for (int t = 0; t < knobs.threads; ++t)
                handles.push_back(b.spawn(worker, {b.constInt(t)}));
            for (Reg h : handles) {
                const Reg r = b.join(h);
                b.binopTo(total, BinOpKind::Add, total, r);
            }
        }

        if (knobs.customSync) {
            b.join(prodHandle);
            const Reg got = b.join(consHandle);
            b.binopTo(total, BinOpKind::Add, total, got);
        }
        if (racer) {
            b.join(racer1);
            b.join(racer2);
        }
        if (knobs.viaHelper) {
            const Reg r = b.join(helperHandle);
            b.binopTo(total, BinOpKind::Add, total, r);
            b.binopTo(total, BinOpKind::Add, total,
                      b.load(b.gep(b.globalAddr(outBufG), 3)));
        }

        // Post-join readback of shared statistics, under the stats
        // lock (the pool-style joins are not statically matchable, so
        // only the guarding-locks invariant can order this readback
        // with the workers' updates).
        if (knobs.lockedOps > 0)
            b.lock(b.globalAddr(statsLockG));
        emitCountedLoop(
            b, b.constInt(8),
            [&](Reg i) {
                const Reg v =
                    b.load(b.gepDyn(b.globalAddr(statsG), i));
                b.binopTo(total, BinOpKind::Add, total, v);
            },
            "readback");
        if (knobs.lockedOps > 0)
            b.unlock(b.globalAddr(statsLockG));
        b.binopTo(total, BinOpKind::Add, total,
                  b.load(b.globalAddr(raceCtrG)));

        b.output(total);
        b.ret();
    }

    module->finalize();
    return module;
}

/** Input corpus generator for the server workloads. */
exec::ExecConfig
makeServerInput(const ServerKnobs &knobs, std::uint64_t seed)
{
    Rng rng(seed);
    exec::ExecConfig config;
    config.input.resize(64 + std::size_t(knobs.threads) * 256, 0);
    for (int i = 0; i < 64; ++i)
        config.input[i] = static_cast<std::int64_t>(rng.below(256));
    for (int t = 0; t < knobs.threads; ++t)
        for (int r = 0; r < knobs.requests; ++r)
            config.input[64 + std::size_t(t) * 256 + std::size_t(r)] =
                static_cast<std::int64_t>(rng.below(48));
    if (rng.chance(knobs.coldProb)) {
        const std::size_t t = rng.below(knobs.threads);
        const std::size_t r = rng.below(knobs.requests);
        config.input[64 + t * 256 + r] = kColdRequest;
    }
    if (knobs.raceProb > 0 && rng.chance(knobs.raceProb))
        config.input[5] = 1; // arm the racer pair
    config.scheduleSeed = rng.next();
    return config;
}

/** Knobs for the five statically race-free JavaGrande-style kernels. */
struct KernelKnobs
{
    int threads = 4;
    int iters = 300;
    int memOps = 2;   ///< thread-local buffer ops per iteration
    int arithOps = 3; ///< arithmetic per iteration
};

std::shared_ptr<Module>
buildKernelModule(const KernelKnobs &knobs)
{
    auto module = std::make_shared<Module>();
    IRBuilder b(*module);

    Function *worker = b.createFunction("kernel_worker", 1);
    {
        const Reg tid = 0;
        const Reg buf = b.alloc(16);
        const Reg acc = b.assign(tid);
        const Reg c15 = b.constInt(15);
        emitCountedLoop(b, b.constInt(knobs.iters), [&](Reg i) {
            const Reg v = b.inputDyn(b.add(i, b.mul(tid, b.constInt(31))),
                                     0);
            for (int k = 0; k < knobs.arithOps; ++k) {
                b.binopTo(acc, BinOpKind::Add, acc,
                          b.mul(v, b.constInt(k + 1)));
            }
            for (int k = 0; k < knobs.memOps; ++k) {
                const Reg cell = b.gepDyn(buf, b.band(i, c15));
                b.store(cell, acc);
                b.binopTo(acc, BinOpKind::Xor, acc, b.load(cell));
            }
        });
        b.ret(acc);
    }

    b.createFunction("main", 0);
    {
        const Reg total = b.constInt(0);
        std::vector<Reg> handles;
        for (int t = 0; t < knobs.threads; ++t)
            handles.push_back(b.spawn(worker, {b.constInt(t)}));
        for (Reg h : handles)
            b.binopTo(total, BinOpKind::Add, total, b.join(h));
        b.output(total);
        b.ret();
    }

    module->finalize();
    return module;
}

exec::ExecConfig
makeKernelInput(std::uint64_t seed)
{
    Rng rng(seed);
    exec::ExecConfig config;
    config.input.resize(128);
    for (auto &v : config.input)
        v = static_cast<std::int64_t>(rng.below(1 << 20));
    config.scheduleSeed = rng.next();
    return config;
}

/** Per-benchmark presets. */
const std::map<std::string, ServerKnobs> &
serverPresets()
{
    static const std::map<std::string, ServerKnobs> presets = [] {
        std::map<std::string, ServerKnobs> p;
        // lusearch: lock-heavy search server with a thread pool.
        p["lusearch"] = {3, 70, 7, 4, 4, 2, true,  false, false, false,
                         false, 0.04, 0.0};
        // pmd: analysis tool with cold paths and a rare true race.
        p["pmd"] = {3, 50, 4, 2, 4, 4, false, false, false, false,
                    false, 0.10, 0.12};
        // raytracer: heavy locked shared-scene updates.
        p["raytracer"] = {3, 60, 4, 6, 4, 3, false, false, false, false,
                          false, 0.02, 0.0};
        // moldyn: custom synchronization handoff (Figure 4).
        p["moldyn"] = {2, 40, 2, 3, 6, 6, false, false, false, true,
                       false, 0.02, 0.0};
        // sunflow: barrier/fork-join rendering.
        p["sunflow"] = {4, 60, 6, 0, 8, 4, false, false, true, false,
                        false, 0.02, 0.0};
        // montecarlo: barrier-style simulation.
        p["montecarlo"] = {4, 50, 4, 0, 10, 6, false, false, true, false,
                           false, 0.01, 0.0};
        // batik: background renderer via helper + cold paths.
        p["batik"] = {2, 50, 4, 3, 6, 4, false, true, false, false,
                      false, 0.08, 0.0};
        // xalan: statically almost race-free transformer.
        p["xalan"] = {3, 60, 10, 0, 6, 3, false, false, false, false,
                      false, 0.01, 0.0};
        // luindex: hot singleton indexer thread.
        p["luindex"] = {2, 70, 2, 2, 4, 2, false, true, false, false,
                        true, 0.02, 0.0};
        return p;
    }();
    return presets;
}

const std::map<std::string, KernelKnobs> &
kernelPresets()
{
    static const std::map<std::string, KernelKnobs> presets = [] {
        std::map<std::string, KernelKnobs> p;
        p["sor"] = {4, 350, 4, 2};
        p["sparse"] = {4, 250, 5, 2};
        p["series"] = {4, 550, 1, 10};
        p["crypt"] = {4, 300, 3, 4};
        p["lufact"] = {4, 220, 4, 3};
        return p;
    }();
    return presets;
}

/** Paper baseline seconds (Figure 5 parentheses), display only. */
const std::map<std::string, double> &
paperBaselines()
{
    static const std::map<std::string, double> t = {
        {"lusearch", 2.2}, {"pmd", 0.77},      {"raytracer", 3.6},
        {"moldyn", 1.5},   {"sunflow", 6.7},   {"montecarlo", 7.3},
        {"batik", 9.9},    {"xalan", 1.9},     {"luindex", 11.9},
        {"sor", 1.1},      {"sparse", 2.2},    {"series", 24.1},
        {"crypt", 4.1},    {"lufact", 1.8},
    };
    return t;
}

} // namespace

const std::vector<std::string> &
raceWorkloadNames()
{
    static const std::vector<std::string> names = {
        "lusearch", "pmd",        "raytracer", "moldyn", "sunflow",
        "montecarlo", "batik",    "xalan",     "luindex",
        "sor",      "sparse",     "series",    "crypt",  "lufact",
    };
    return names;
}

const std::vector<std::string> &
raceFreeKernelNames()
{
    static const std::vector<std::string> names = {
        "sor", "sparse", "series", "crypt", "lufact",
    };
    return names;
}

Workload
makeRaceWorkload(const std::string &name, std::size_t profileRuns,
                 std::size_t testRuns)
{
    Workload workload;
    workload.name = name;
    workload.race = true;
    auto bl = paperBaselines().find(name);
    if (bl != paperBaselines().end())
        workload.paperBaselineSeconds = bl->second;

    const std::uint64_t seed = nameSeed(name);
    if (auto it = serverPresets().find(name); it != serverPresets().end()) {
        workload.module = buildServerModule(it->second);
        for (std::size_t i = 0; i < profileRuns; ++i) {
            workload.profilingSet.push_back(
                makeServerInput(it->second, seed + i));
        }
        for (std::size_t i = 0; i < testRuns; ++i) {
            workload.testingSet.push_back(
                makeServerInput(it->second, seed + 100000 + i));
        }
        return workload;
    }
    if (auto it = kernelPresets().find(name); it != kernelPresets().end()) {
        workload.module = buildKernelModule(it->second);
        for (std::size_t i = 0; i < profileRuns; ++i)
            workload.profilingSet.push_back(makeKernelInput(seed + i));
        for (std::size_t i = 0; i < testRuns; ++i) {
            workload.testingSet.push_back(
                makeKernelInput(seed + 100000 + i));
        }
        return workload;
    }
    OHA_FATAL("unknown race workload '%s'", name.c_str());
}

} // namespace oha::workloads
