#include "workloads/edits.h"

#include <set>
#include <sstream>

#include "ir/parser.h"
#include "ir/printer.h"
#include "support/common.h"

namespace oha::workloads {

namespace {

/** Function name of a `func name(...) {` line, or empty. */
std::string
funcNameOf(const std::string &line)
{
    if (line.rfind("func ", 0) != 0)
        return {};
    const std::size_t paren = line.find('(');
    if (paren == std::string::npos)
        return {};
    return line.substr(5, paren - 5);
}

/** True for a block-label line (`  label:  ; bN`). */
bool
isLabelLine(const std::string &line)
{
    std::string body = line;
    const std::size_t comment = body.find(';');
    if (comment != std::string::npos)
        body = body.substr(0, comment);
    while (!body.empty() &&
           (body.back() == ' ' || body.back() == '\t'))
        body.pop_back();
    return !body.empty() && body.back() == ':';
}

} // namespace

std::unique_ptr<ir::Module>
reprintModule(const ir::Module &module)
{
    return ir::parseModule(ir::printModule(module));
}

std::unique_ptr<ir::Module>
editFunctions(const ir::Module &module,
              const std::vector<std::string> &names)
{
    const std::set<std::string> wanted(names.begin(), names.end());
    for (const std::string &name : wanted)
        OHA_ASSERT(module.functionByName(name), "unknown function");

    std::istringstream in(ir::printModule(module));
    std::ostringstream out;
    std::string line;
    // When >0, the current function is being edited and the prologue
    // goes right after its first (entry) block label.
    unsigned pendingRegs = 0;
    bool awaitLabel = false;
    while (std::getline(in, line)) {
        out << line << '\n';
        const std::string name = funcNameOf(line);
        if (!name.empty() && wanted.count(name)) {
            pendingRegs = module.functionByName(name)->numRegs();
            awaitLabel = true;
        } else if (awaitLabel && isLabelLine(line)) {
            const unsigned a = pendingRegs, b = pendingRegs + 1;
            out << "    r" << a << " = alloc 1\n";
            out << "    r" << b << " = alloc 1\n";
            out << "    *r" << a << " = r" << b << '\n';
            awaitLabel = false;
        }
    }
    return ir::parseModule(out.str());
}

std::unique_ptr<ir::Module>
scaleModule(const ir::Module &module, std::size_t copies)
{
    OHA_ASSERT(copies >= 1);
    std::set<std::string> funcNames;
    for (const auto &func : module.functions())
        funcNames.insert(func->name());
    std::set<std::string> globalNames;
    for (const auto &global : module.globals())
        globalNames.insert(global.name);

    const std::string text = ir::printModule(module);
    std::ostringstream out;
    out << text;
    for (std::size_t c = 1; c < copies; ++c) {
        const std::string suffix = "__" + std::to_string(c);
        // Rename the identifier following @p kw when it names a
        // function (the parser resolves `&name` globals-first, so a
        // global shadowing a function name must stay untouched).
        const auto renameAfter = [&](std::string &line,
                                     const std::string &kw) {
            std::size_t at = 0;
            while ((at = line.find(kw, at)) != std::string::npos) {
                const std::size_t start = at + kw.size();
                std::size_t end = start;
                while (end < line.size() &&
                       (std::isalnum(
                            static_cast<unsigned char>(line[end])) ||
                        line[end] == '_'))
                    ++end;
                const std::string name = line.substr(start, end - start);
                if (funcNames.count(name) && !globalNames.count(name))
                    line.insert(end, suffix);
                at = end;
            }
        };
        std::istringstream in(text);
        std::string line;
        bool inFunction = false;
        while (std::getline(in, line)) {
            if (line.rfind("func ", 0) == 0)
                inFunction = true;
            if (!inFunction)
                continue; // shared globals are declared once
            renameAfter(line, "func ");
            renameAfter(line, "call ");
            renameAfter(line, "spawn ");
            renameAfter(line, "&");
            out << line << '\n';
        }
    }
    return ir::parseModule(out.str());
}

std::vector<std::string>
firstFunctionNames(const ir::Module &module, std::size_t count)
{
    std::vector<std::string> names;
    for (const auto &func : module.functions()) {
        if (names.size() >= count)
            break;
        names.push_back(func->name());
    }
    return names;
}

} // namespace oha::workloads
