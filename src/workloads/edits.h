/**
 * @file
 * Deterministic source-level edits over OHA-IR modules, for the
 * incremental-analysis benchmark and tests.
 *
 * Edits operate on the printed text form and re-parse, exactly like a
 * developer editing a source file between two analysis-service
 * requests: the edited module has fresh instruction/block ids, and
 * only name + canonical-text identity (ir::FunctionFingerprint)
 * connects the two versions.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/module.h"

namespace oha::workloads {

/** Print @p module and parse it back (a no-op edit: every function
 *  keeps its fingerprint, but all ids are reassigned). */
std::unique_ptr<ir::Module> reprintModule(const ir::Module &module);

/**
 * Insert a small pointer-relevant prologue (two fresh allocations and
 * a store linking them) at the top of the entry block of every
 * function in @p names, via print -> text edit -> parse.  Changes the
 * edited functions' fingerprints and points-to results while leaving
 * every other function's canonical text untouched.
 */
std::unique_ptr<ir::Module>
editFunctions(const ir::Module &module,
              const std::vector<std::string> &names);

/** The first @p count function names of @p module in definition
 *  order (for "edit N% of functions" sweeps). */
std::vector<std::string> firstFunctionNames(const ir::Module &module,
                                            std::size_t count);

/**
 * Scale @p module to @p copies copies of its function set (copy 0
 * verbatim, later copies with `__<c>`-suffixed function names), all
 * sharing the original globals.  Dispatch-table workloads get
 * superlinearly harder to analyze: every copy registers its own
 * functions in the shared tables, so indirect-call target sets grow
 * with the copy count — the regime where incremental re-analysis
 * pays (the incremental-analysis benchmark uses this to measure
 * re-analysis cost against module size at fixed edit size).
 */
std::unique_ptr<ir::Module> scaleModule(const ir::Module &module,
                                        std::size_t copies);

} // namespace oha::workloads
