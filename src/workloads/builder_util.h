/**
 * @file
 * Construction helpers shared by the workload generators.
 */

#pragma once

#include <functional>
#include <string>

#include "ir/builder.h"

namespace oha::workloads {

/** Emit `for (i = 0; i < n; ++i) body(i)` at the current insertion
 *  point; the builder ends up in the loop exit block. */
inline void
emitCountedLoop(ir::IRBuilder &b, ir::Reg n,
                const std::function<void(ir::Reg)> &body,
                const std::string &tag = "loop")
{
    ir::Function *func = b.currentFunction();
    // Derive the label suffix from the function's block count: unique
    // within the function, deterministic, and — unlike a mutable
    // function-local static — safe when workloads build concurrently.
    const std::string suffix =
        tag + std::to_string(func->blocks().size());
    ir::BasicBlock *head = b.createBlock(func, "head_" + suffix);
    ir::BasicBlock *bodyBlk = b.createBlock(func, "body_" + suffix);
    ir::BasicBlock *exit = b.createBlock(func, "exit_" + suffix);

    const ir::Reg i = b.constInt(0);
    const ir::Reg one = b.constInt(1);
    b.br(head);
    b.setInsertPoint(head);
    b.condBr(b.lt(i, n), bodyBlk, exit);
    b.setInsertPoint(bodyBlk);
    body(i);
    b.binopTo(i, ir::BinOpKind::Add, i, one);
    b.br(head);
    b.setInsertPoint(exit);
}

/** Emit `if (cond) thenFn()` (no else); builder ends after the if. */
inline void
emitIf(ir::IRBuilder &b, ir::Reg cond, const std::function<void()> &thenFn,
       const std::string &tag = "if")
{
    ir::Function *func = b.currentFunction();
    // See emitCountedLoop: block-count suffixes are deterministic and
    // thread-safe, unlike the shared static counter they replace.
    const std::string suffix =
        tag + std::to_string(func->blocks().size());
    ir::BasicBlock *thenBlk = b.createBlock(func, "then_" + suffix);
    ir::BasicBlock *cont = b.createBlock(func, "cont_" + suffix);
    b.condBr(cond, thenBlk, cont);
    b.setInsertPoint(thenBlk);
    thenFn();
    b.br(cont);
    b.setInsertPoint(cont);
}

} // namespace oha::workloads
