#include "invariants/invariant_set.h"

#include <sstream>

namespace oha::inv {

std::size_t
InvariantSet::factCount() const
{
    std::size_t n = visitedBlocks.size();
    for (const auto &[site, callees] : calleeSets)
        n += callees.size();
    n += callContexts.size();
    n += mustAliasLocks.size();
    n += singletonSpawnSites.size();
    n += elidableLockSites.size();
    return n;
}

std::string
InvariantSet::saveText() const
{
    std::ostringstream os;
    os << "oha-invariants v1\n";
    os << "numblocks " << numBlocks << "\n";

    os << "visited";
    visitedBlocks.forEach([&](std::uint32_t b) { os << " " << b; });
    os << "\n";

    for (const auto &[site, callees] : calleeSets) {
        os << "callees " << site;
        for (FuncId f : callees)
            os << " " << f;
        os << "\n";
    }

    if (hasCallContexts)
        os << "contexts-profiled\n";
    for (const CallContext &context : callContexts) {
        os << "context";
        for (InstrId site : context)
            os << " " << site;
        os << "\n";
    }

    for (const auto &[a, b] : mustAliasLocks)
        os << "lockalias " << a << " " << b << "\n";

    for (InstrId site : singletonSpawnSites)
        os << "singleton " << site << "\n";

    for (InstrId site : elidableLockSites)
        os << "elidable-lock " << site << "\n";

    return os.str();
}

InvariantSet
InvariantSet::loadText(const std::string &text)
{
    InvariantSet set;
    std::istringstream is(text);
    std::string line;

    if (!std::getline(is, line) || line != "oha-invariants v1")
        OHA_FATAL("bad invariant file header");

    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string kind;
        ls >> kind;
        if (kind == "numblocks") {
            ls >> set.numBlocks;
        } else if (kind == "visited") {
            std::uint32_t b;
            while (ls >> b)
                set.visitedBlocks.insert(b);
        } else if (kind == "callees") {
            InstrId site;
            ls >> site;
            auto &callees = set.calleeSets[site];
            FuncId f;
            while (ls >> f)
                callees.insert(f);
        } else if (kind == "contexts-profiled") {
            set.hasCallContexts = true;
        } else if (kind == "context") {
            CallContext context;
            InstrId site;
            while (ls >> site)
                context.push_back(site);
            set.callContexts.insert(std::move(context));
        } else if (kind == "lockalias") {
            InstrId a, b;
            ls >> a >> b;
            set.mustAliasLocks.insert({a, b});
        } else if (kind == "singleton") {
            InstrId site;
            ls >> site;
            set.singletonSpawnSites.insert(site);
        } else if (kind == "elidable-lock") {
            InstrId site;
            ls >> site;
            set.elidableLockSites.insert(site);
        } else {
            OHA_FATAL("bad invariant line kind '%s'", kind.c_str());
        }
    }

    set.rehashContexts();
    return set;
}

bool
InvariantSet::operator==(const InvariantSet &other) const
{
    return numBlocks == other.numBlocks &&
           visitedBlocks == other.visitedBlocks &&
           calleeSets == other.calleeSets &&
           callContexts == other.callContexts &&
           mustAliasLocks == other.mustAliasLocks &&
           singletonSpawnSites == other.singletonSpawnSites &&
           elidableLockSites == other.elidableLockSites &&
           hasCallContexts == other.hasCallContexts;
}

} // namespace oha::inv
