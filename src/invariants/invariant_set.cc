#include "invariants/invariant_set.h"

#include <sstream>

#include "dyn/violation.h"

namespace oha::inv {

bool
InvariantSet::demote(const dyn::Violation &violation)
{
    using dyn::ViolationFamily;
    switch (violation.family) {
      case ViolationFamily::UnreachableBlock: {
        const BlockId block = violation.site;
        if (visitedBlocks.contains(block))
            return false;
        visitedBlocks.insert(block);
        return true;
      }
      case ViolationFamily::CalleeSet: {
        // Widen, don't drop: to the predicated analyses a missing
        // entry means the site never executes at all (profiler output
        // only omits sites in likely-unreachable code), which would
        // make the repaired plan *stronger* with no check guarding it.
        auto it = calleeSets.find(violation.site);
        if (it == calleeSets.end())
            return false;
        return it->second.insert(static_cast<FuncId>(violation.observed))
            .second;
      }
      case ViolationFamily::CallContext: {
        // Admit the offending chain plus every prefix — the same
        // closure the profiler maintains, so saveText/loadText and
        // the checker's incremental hashes stay consistent.
        bool changed = false;
        CallContext prefix;
        prefix.reserve(violation.contextChain.size());
        for (InstrId site : violation.contextChain) {
            prefix.push_back(site);
            if (callContexts.insert(prefix).second) {
                contextHashes.insert(contextHash(prefix));
                changed = true;
            }
        }
        return changed;
      }
      case ViolationFamily::MustAliasLock: {
        if (violation.partner == violation.site) {
            // The site itself is not single-object: no pair that
            // includes it can survive.
            bool changed = false;
            for (auto it = mustAliasLocks.begin();
                 it != mustAliasLocks.end();) {
                if (it->first == violation.site ||
                    it->second == violation.site) {
                    it = mustAliasLocks.erase(it);
                    changed = true;
                } else {
                    ++it;
                }
            }
            return changed;
        }
        InstrId a = violation.site;
        InstrId b = violation.partner;
        if (a > b)
            std::swap(a, b);
        return mustAliasLocks.erase({a, b}) > 0;
      }
      case ViolationFamily::SingletonSpawn:
        return singletonSpawnSites.erase(violation.site) > 0;
      case ViolationFamily::ElidedLockRace: {
        const bool changed = !elidableLockSites.empty();
        elidableLockSites.clear();
        return changed;
      }
      case ViolationFamily::None:
        return false;
    }
    return false;
}

std::size_t
InvariantSet::factCount() const
{
    std::size_t n = visitedBlocks.size();
    for (const auto &[site, callees] : calleeSets)
        n += callees.size();
    n += callContexts.size();
    n += mustAliasLocks.size();
    n += singletonSpawnSites.size();
    n += elidableLockSites.size();
    return n;
}

std::string
InvariantSet::saveText() const
{
    std::ostringstream os;
    os << "oha-invariants v1\n";
    os << "numblocks " << numBlocks << "\n";

    os << "visited";
    visitedBlocks.forEach([&](std::uint32_t b) { os << " " << b; });
    os << "\n";

    for (const auto &[site, callees] : calleeSets) {
        os << "callees " << site;
        for (FuncId f : callees)
            os << " " << f;
        os << "\n";
    }

    if (hasCallContexts)
        os << "contexts-profiled\n";
    for (const CallContext &context : callContexts) {
        os << "context";
        for (InstrId site : context)
            os << " " << site;
        os << "\n";
    }

    for (const auto &[a, b] : mustAliasLocks)
        os << "lockalias " << a << " " << b << "\n";

    for (InstrId site : singletonSpawnSites)
        os << "singleton " << site << "\n";

    for (InstrId site : elidableLockSites)
        os << "elidable-lock " << site << "\n";

    return os.str();
}

InvariantSet
InvariantSet::loadText(const std::string &text)
{
    InvariantSet set;
    std::istringstream is(text);
    std::string line;

    if (!std::getline(is, line) || line != "oha-invariants v1")
        OHA_FATAL("bad invariant file header");

    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string kind;
        ls >> kind;
        if (kind == "numblocks") {
            ls >> set.numBlocks;
        } else if (kind == "visited") {
            std::uint32_t b;
            while (ls >> b)
                set.visitedBlocks.insert(b);
        } else if (kind == "callees") {
            InstrId site;
            ls >> site;
            auto &callees = set.calleeSets[site];
            FuncId f;
            while (ls >> f)
                callees.insert(f);
        } else if (kind == "contexts-profiled") {
            set.hasCallContexts = true;
        } else if (kind == "context") {
            CallContext context;
            InstrId site;
            while (ls >> site)
                context.push_back(site);
            set.callContexts.insert(std::move(context));
        } else if (kind == "lockalias") {
            InstrId a, b;
            ls >> a >> b;
            set.mustAliasLocks.insert({a, b});
        } else if (kind == "singleton") {
            InstrId site;
            ls >> site;
            set.singletonSpawnSites.insert(site);
        } else if (kind == "elidable-lock") {
            InstrId site;
            ls >> site;
            set.elidableLockSites.insert(site);
        } else {
            OHA_FATAL("bad invariant line kind '%s'", kind.c_str());
        }
    }

    set.rehashContexts();
    return set;
}

bool
InvariantSet::operator==(const InvariantSet &other) const
{
    return numBlocks == other.numBlocks &&
           visitedBlocks == other.visitedBlocks &&
           calleeSets == other.calleeSets &&
           callContexts == other.callContexts &&
           mustAliasLocks == other.mustAliasLocks &&
           singletonSpawnSites == other.singletonSpawnSites &&
           elidableLockSites == other.elidableLockSites &&
           hasCallContexts == other.hasCallContexts;
}

} // namespace oha::inv
