/**
 * @file
 * Likely invariants: the dynamically-gathered, statically-assumed
 * facts at the heart of optimistic hybrid analysis (Section 2.1).
 *
 * An InvariantSet is the *merged* artifact of a profiling campaign:
 * reachable-style invariants (visited blocks, callee sets, call
 * contexts) are unions over runs, while constraint-style invariants
 * (must-alias locks, singleton threads) hold only if no profiled run
 * violated them.  The set is (de)serializable as a text file, exactly
 * as the paper's tools store it.
 */

#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "support/common.h"
#include "support/sparse_bit_set.h"

namespace oha::dyn {
struct Violation;
} // namespace oha::dyn

namespace oha::inv {

/** A call context: chain of call-site instruction ids, outermost first. */
using CallContext = std::vector<InstrId>;

/**
 * Call stacks deeper than this are exempt from the call-context
 * invariant: the profiler stops recording them and the runtime
 * checker skips checking them.  Both sides must use this one constant
 * — if the caps ever diverged, deep recursion would mis-speculate on
 * contexts the profiler never had a chance to record.
 */
constexpr std::size_t kMaxContextDepth = 64;

/** Incremental hash of a call context (push one call site at a time). */
inline std::uint64_t
contextHashPush(std::uint64_t parent, InstrId site)
{
    std::uint64_t x = parent ^ (site + 0x9e3779b97f4a7c15ULL);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    return x;
}

/** Hash a full call context from the root. */
inline std::uint64_t
contextHash(const CallContext &context)
{
    std::uint64_t h = 0x51ed270b0a1f39c1ULL;
    for (InstrId site : context)
        h = contextHashPush(h, site);
    return h;
}

/** The merged likely-invariant artifact consumed by predicated
 *  static analysis and the runtime invariant checker. */
struct InvariantSet
{
    /** Number of blocks in the module (for LUC complement). */
    std::uint32_t numBlocks = 0;

    /** Blocks observed executed in some profiled run.  Likely
     *  unreachable code = complement (Section 4.2.1). */
    SparseBitSet visitedBlocks;

    /** Indirect call site -> functions observed as targets
     *  (Section 5.2.2).  Union across runs. */
    std::map<InstrId, std::set<FuncId>> calleeSets;

    /** Observed call contexts including every prefix
     *  (Section 5.2.3).  Union across runs. */
    std::set<CallContext> callContexts;

    /** Hashes of callContexts, for the cheap runtime check. */
    std::set<std::uint64_t> contextHashes;

    /** Lock-site pairs (a <= b, reflexive included) observed to
     *  always lock one and the same dynamic object (Section 4.2.2). */
    std::set<std::pair<InstrId, InstrId>> mustAliasLocks;

    /** Spawn sites observed to create exactly one thread in every
     *  profiled run (Section 4.2.3). */
    std::set<InstrId> singletonSpawnSites;

    /** Lock sites whose instrumentation may be elided under the
     *  no-custom-synchronization invariant (Section 4.2.4). */
    std::set<InstrId> elidableLockSites;

    /** Whether call-context invariants were profiled (OptSlice only:
     *  profiling them is pointless for a context-insensitive client). */
    bool hasCallContexts = false;

    /** True if @p block was visited in some profiled run. */
    bool
    blockVisited(BlockId block) const
    {
        return visitedBlocks.contains(block);
    }

    /** True if (a, b) — order-normalized — is a must-alias lock pair. */
    bool
    locksMustAlias(InstrId a, InstrId b) const
    {
        if (a > b)
            std::swap(a, b);
        return mustAliasLocks.count({a, b}) > 0;
    }

    /** Rebuild contextHashes from callContexts. */
    void
    rehashContexts()
    {
        contextHashes.clear();
        for (const CallContext &context : callContexts)
            contextHashes.insert(contextHash(context));
    }

    /**
     * Remove exactly the fact @p violation disproved — the repair
     * step of adaptive misspeculation recovery (driven by
     * runOptFt/runOptSlice after a rollback).  By family:
     *  - UnreachableBlock: mark the block visited (it is reachable);
     *  - CalleeSet: admit the observed target into the site's set (a
     *    *missing* entry means "the site never executes" to the
     *    predicated analyses — LUC guards that — so the set must be
     *    widened, never dropped);
     *  - CallContext: admit the observed chain and all its prefixes;
     *  - MustAliasLock: a single-site rebind removes every pair the
     *    site participates in; a pair divergence removes that pair;
     *  - SingletonSpawn: drop the site from the singleton set;
     *  - ElidedLockRace: withdraw lock elision entirely (the rollback
     *    predicate is global, so no one site can be blamed).
     * Returns whether anything changed.
     */
    bool demote(const dyn::Violation &violation);

    /** Total number of individual invariant facts (for convergence). */
    std::size_t factCount() const;

    /** Serialize to the paper's text-file format. */
    std::string saveText() const;

    /** Parse the text-file format; fatal on malformed input. */
    static InvariantSet loadText(const std::string &text);

    bool operator==(const InvariantSet &other) const;
};

} // namespace oha::inv
