#include "ir/module.h"

#include "ir/printer.h"
#include "ir/verifier.h"

namespace oha::ir {

namespace {

/**
 * Same dual-hash construction as the shared-cache fingerprints: an
 * FNV-1a primary plus an independent multiply-add secondary finished
 * with splitmix64.  Duplicated here rather than shared because ir/
 * sits below service/ in the layering.
 */
FunctionFingerprint
hashCanonicalText(const std::string &text)
{
    std::uint64_t primary = 1469598103934665603ULL;
    std::uint64_t secondary = 0x9e3779b97f4a7c15ULL;
    for (unsigned char c : text) {
        primary ^= c;
        primary *= 1099511628211ULL;
        secondary = secondary * 6364136223846793005ULL + c + 1;
    }
    std::uint64_t z = secondary + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return FunctionFingerprint{primary, z};
}

} // namespace

std::string
canonicalFunctionText(const Module &module, const Function &func)
{
    // numRegs is deliberately excluded: builders may reserve unused
    // trailing registers that a print -> parse round-trip drops, and
    // an unused register carries no constraints.
    std::string text = "func " + func.name() + "/" +
                       std::to_string(func.numParams()) + "\n";
    for (const auto &block : func.blocks()) {
        text += block->label();
        text += ":\n";
        for (const Instruction &instr : block->instructions()) {
            text += printInstruction(module, instr);
            text += "\n";
        }
    }
    return text;
}

void
Module::finalize()
{
    OHA_ASSERT(!finalized_, "module finalized twice");

    InstrId nextInstr = 0;
    instrById_.clear();

    for (auto &func : funcs_) {
        for (auto &block : func->blocks()) {
            for (Instruction &instr : block->instructions()) {
                instr.id = nextInstr++;
                instr.block = block->id();
                instr.func = func->id();
                instrById_.push_back(&instr);
            }
        }
    }

    finalized_ = true;
    verifyModule(*this);

    funcFps_.clear();
    funcFps_.reserve(funcs_.size());
    for (auto &func : funcs_)
        funcFps_.push_back(hashCanonicalText(canonicalFunctionText(*this, *func)));
}

} // namespace oha::ir
