#include "ir/module.h"

#include "ir/verifier.h"

namespace oha::ir {

void
Module::finalize()
{
    OHA_ASSERT(!finalized_, "module finalized twice");

    InstrId nextInstr = 0;
    instrById_.clear();

    for (auto &func : funcs_) {
        for (auto &block : func->blocks()) {
            for (Instruction &instr : block->instructions()) {
                instr.id = nextInstr++;
                instr.block = block->id();
                instr.func = func->id();
                instrById_.push_back(&instr);
            }
        }
    }

    finalized_ = true;
    verifyModule(*this);
}

} // namespace oha::ir
