/**
 * @file
 * Structural verifier for OHA IR modules.
 */

#pragma once

namespace oha::ir {

class Module;

/**
 * Check that @p module is structurally well-formed: every block ends
 * with exactly one terminator, branch targets stay within their
 * function, register operands are in range, and call arities match
 * their callees.  Fatal on the first violation.
 */
void verifyModule(const Module &module);

} // namespace oha::ir
