#include "ir/instruction.h"

namespace oha::ir {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Alloc: return "alloc";
      case Opcode::ConstInt: return "const";
      case Opcode::Assign: return "assign";
      case Opcode::BinOp: return "binop";
      case Opcode::GlobalAddr: return "gaddr";
      case Opcode::FuncAddr: return "faddr";
      case Opcode::Gep: return "gep";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::Call: return "call";
      case Opcode::ICall: return "icall";
      case Opcode::Ret: return "ret";
      case Opcode::Br: return "br";
      case Opcode::CondBr: return "condbr";
      case Opcode::Lock: return "lock";
      case Opcode::Unlock: return "unlock";
      case Opcode::Spawn: return "spawn";
      case Opcode::Join: return "join";
      case Opcode::Output: return "output";
      case Opcode::Input: return "input";
    }
    return "?";
}

const char *
binopName(BinOpKind kind)
{
    switch (kind) {
      case BinOpKind::Add: return "+";
      case BinOpKind::Sub: return "-";
      case BinOpKind::Mul: return "*";
      case BinOpKind::Div: return "/";
      case BinOpKind::Mod: return "%";
      case BinOpKind::And: return "&";
      case BinOpKind::Or: return "|";
      case BinOpKind::Xor: return "^";
      case BinOpKind::Shl: return "<<";
      case BinOpKind::Shr: return ">>";
      case BinOpKind::Lt: return "<";
      case BinOpKind::Le: return "<=";
      case BinOpKind::Gt: return ">";
      case BinOpKind::Ge: return ">=";
      case BinOpKind::Eq: return "==";
      case BinOpKind::Ne: return "!=";
    }
    return "?";
}

} // namespace oha::ir
