#include "ir/instruction.h"

namespace oha::ir {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Alloc: return "alloc";
      case Opcode::ConstInt: return "const";
      case Opcode::Assign: return "assign";
      case Opcode::BinOp: return "binop";
      case Opcode::GlobalAddr: return "gaddr";
      case Opcode::FuncAddr: return "faddr";
      case Opcode::Gep: return "gep";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::Call: return "call";
      case Opcode::ICall: return "icall";
      case Opcode::Ret: return "ret";
      case Opcode::Br: return "br";
      case Opcode::CondBr: return "condbr";
      case Opcode::Lock: return "lock";
      case Opcode::Unlock: return "unlock";
      case Opcode::Spawn: return "spawn";
      case Opcode::Join: return "join";
      case Opcode::Output: return "output";
      case Opcode::Input: return "input";
    }
    return "?";
}

const char *
binopName(BinOpKind kind)
{
    switch (kind) {
      case BinOpKind::Add: return "+";
      case BinOpKind::Sub: return "-";
      case BinOpKind::Mul: return "*";
      case BinOpKind::Div: return "/";
      case BinOpKind::Mod: return "%";
      case BinOpKind::And: return "&";
      case BinOpKind::Or: return "|";
      case BinOpKind::Xor: return "^";
      case BinOpKind::Shl: return "<<";
      case BinOpKind::Shr: return ">>";
      case BinOpKind::Lt: return "<";
      case BinOpKind::Le: return "<=";
      case BinOpKind::Gt: return ">";
      case BinOpKind::Ge: return ">=";
      case BinOpKind::Eq: return "==";
      case BinOpKind::Ne: return "!=";
    }
    return "?";
}

std::int64_t
evalBinOp(BinOpKind kind, std::int64_t lhs, std::int64_t rhs)
{
    switch (kind) {
      case BinOpKind::Add: return lhs + rhs;
      case BinOpKind::Sub: return lhs - rhs;
      case BinOpKind::Mul: return lhs * rhs;
      case BinOpKind::Div: return rhs == 0 ? 0 : lhs / rhs;
      case BinOpKind::Mod: return rhs == 0 ? 0 : lhs % rhs;
      case BinOpKind::And: return lhs & rhs;
      case BinOpKind::Or: return lhs | rhs;
      case BinOpKind::Xor: return lhs ^ rhs;
      case BinOpKind::Shl: return lhs << (rhs & 63);
      case BinOpKind::Shr:
        return static_cast<std::int64_t>(
            static_cast<std::uint64_t>(lhs) >> (rhs & 63));
      case BinOpKind::Lt: return lhs < rhs;
      case BinOpKind::Le: return lhs <= rhs;
      case BinOpKind::Gt: return lhs > rhs;
      case BinOpKind::Ge: return lhs >= rhs;
      case BinOpKind::Eq: return lhs == rhs;
      case BinOpKind::Ne: return lhs != rhs;
    }
    return 0;
}

} // namespace oha::ir
