#include "ir/printer.h"

#include <sstream>

#include "ir/module.h"

namespace oha::ir {

namespace {

std::string
regName(Reg reg)
{
    if (reg == kNoReg)
        return "_";
    return "r" + std::to_string(reg);
}

} // namespace

std::string
printInstruction(const Module &module, const Instruction &instr)
{
    std::ostringstream os;
    auto callee = [&] { return module.function(instr.callee)->name(); };
    auto argList = [&] {
        std::string s = "(";
        for (std::size_t i = 0; i < instr.args.size(); ++i) {
            if (i)
                s += ", ";
            s += regName(instr.args[i]);
        }
        return s + ")";
    };

    switch (instr.op) {
      case Opcode::Alloc:
        os << regName(instr.dest) << " = alloc " << instr.imm;
        break;
      case Opcode::ConstInt:
        os << regName(instr.dest) << " = " << instr.imm;
        break;
      case Opcode::Assign:
        os << regName(instr.dest) << " = " << regName(instr.a);
        break;
      case Opcode::BinOp:
        os << regName(instr.dest) << " = " << regName(instr.a) << " "
           << binopName(instr.binop) << " " << regName(instr.b);
        break;
      case Opcode::GlobalAddr:
        os << regName(instr.dest) << " = &"
           << module.globals()[instr.globalId].name;
        break;
      case Opcode::FuncAddr:
        os << regName(instr.dest) << " = &" << callee();
        break;
      case Opcode::Gep:
        os << regName(instr.dest) << " = &" << regName(instr.a) << "[";
        if (instr.b != kNoReg)
            os << regName(instr.b);
        else
            os << instr.imm;
        os << "]";
        break;
      case Opcode::Load:
        os << regName(instr.dest) << " = *" << regName(instr.a);
        break;
      case Opcode::Store:
        os << "*" << regName(instr.a) << " = " << regName(instr.b);
        break;
      case Opcode::Call:
        os << regName(instr.dest) << " = call " << callee() << argList();
        break;
      case Opcode::ICall:
        os << regName(instr.dest) << " = icall *" << regName(instr.a)
           << argList();
        break;
      case Opcode::Ret:
        os << "ret";
        if (instr.a != kNoReg)
            os << " " << regName(instr.a);
        break;
      case Opcode::Br:
        os << "br " << module.block(instr.target)->label();
        break;
      case Opcode::CondBr:
        os << "condbr " << regName(instr.a) << ", "
           << module.block(instr.target)->label() << ", "
           << module.block(instr.target2)->label();
        break;
      case Opcode::Lock:
        os << "lock " << regName(instr.a);
        break;
      case Opcode::Unlock:
        os << "unlock " << regName(instr.a);
        break;
      case Opcode::Spawn:
        os << regName(instr.dest) << " = spawn " << callee() << argList();
        break;
      case Opcode::Join:
        os << regName(instr.dest) << " = join " << regName(instr.a);
        break;
      case Opcode::Output:
        os << "output " << regName(instr.a);
        break;
      case Opcode::Input:
        os << regName(instr.dest) << " = input[" << instr.imm;
        if (instr.b != kNoReg)
            os << " + " << regName(instr.b);
        os << "]";
        break;
    }
    return os.str();
}

std::string
printFunction(const Module &module, const Function &func)
{
    std::ostringstream os;
    os << "func " << func.name() << "(";
    for (unsigned i = 0; i < func.numParams(); ++i) {
        if (i)
            os << ", ";
        os << "r" << i;
    }
    os << ") {\n";
    for (const auto &block : func.blocks()) {
        os << "  " << block->label() << ":  ; b" << block->id() << "\n";
        for (const Instruction &instr : block->instructions()) {
            os << "    " << printInstruction(module, instr);
            if (instr.id != kNoInstr)
                os << "  ; i" << instr.id;
            os << "\n";
        }
    }
    os << "}\n";
    return os.str();
}

std::string
printModule(const Module &module)
{
    std::ostringstream os;
    for (const auto &global : module.globals())
        os << "global " << global.name << "[" << global.size << "]\n";
    if (!module.globals().empty())
        os << "\n";
    for (const auto &func : module.functions())
        os << printFunction(module, *func) << "\n";
    return os.str();
}

} // namespace oha::ir
