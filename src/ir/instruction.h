/**
 * @file
 * Instruction set of the OHA intermediate representation.
 *
 * The IR is a compact register machine chosen so that every analysis
 * in the paper is expressible over it: loads/stores for points-to,
 * race detection and slicing; direct and indirect calls for callee-set
 * and call-context invariants; lock/unlock and spawn/join for the
 * lockset and may-happen-in-parallel analyses; Output instructions as
 * observable slice endpoints.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/common.h"

namespace oha::ir {

/** Per-function virtual register index. */
using Reg = std::uint32_t;

/** Sentinel for "no register operand". */
constexpr Reg kNoReg = static_cast<Reg>(-1);

/** Opcode of an IR instruction. */
enum class Opcode : std::uint8_t
{
    Alloc,      ///< dest = new object with `imm` cells (allocation site)
    ConstInt,   ///< dest = imm
    Assign,     ///< dest = a
    BinOp,      ///< dest = a <binop> b
    GlobalAddr, ///< dest = address of global `globalId`
    FuncAddr,   ///< dest = function pointer to `callee`
    Gep,        ///< dest = &a[field]; field = imm, or dynamic via reg b
    Load,       ///< dest = *a
    Store,      ///< *a = b
    Call,       ///< dest = callee(args...)
    ICall,      ///< dest = (*a)(args...)
    Ret,        ///< return a (or void when a == kNoReg)
    Br,         ///< goto target
    CondBr,     ///< if (a != 0) goto target else goto target2
    Lock,       ///< acquire mutex object *a points to
    Unlock,     ///< release mutex object *a points to
    Spawn,      ///< dest = spawn thread running callee(args...)
    Join,       ///< dest = join thread handle a (yields its return value)
    Output,     ///< emit value a to the observable output stream
    Input,      ///< dest = input word at index (imm + value(b) if b set)
};

/** Arithmetic / relational operator for Opcode::BinOp. */
enum class BinOpKind : std::uint8_t
{
    Add, Sub, Mul, Div, Mod,
    And, Or, Xor, Shl, Shr,
    Lt, Le, Gt, Ge, Eq, Ne,
};

/**
 * One IR instruction.  A plain struct: instructions are stored by
 * value inside their basic block and identified module-wide by `id`
 * (assigned by Module::finalize()).
 */
struct Instruction
{
    Opcode op = Opcode::ConstInt;
    /** Module-unique id; valid after Module::finalize(). */
    InstrId id = kNoInstr;
    /** Enclosing block id; valid after Module::finalize(). */
    BlockId block = kNoBlock;
    /** Enclosing function id; valid after Module::finalize(). */
    FuncId func = kNoFunc;

    Reg dest = kNoReg;
    Reg a = kNoReg;
    Reg b = kNoReg;
    std::vector<Reg> args;

    std::int64_t imm = 0;
    BinOpKind binop = BinOpKind::Add;
    FuncId callee = kNoFunc;
    std::uint32_t globalId = static_cast<std::uint32_t>(-1);
    BlockId target = kNoBlock;
    BlockId target2 = kNoBlock;

    /** True for instructions that must terminate a basic block. */
    bool
    isTerminator() const
    {
        return op == Opcode::Br || op == Opcode::CondBr ||
               op == Opcode::Ret;
    }

    /** True for Load/Store — the events a race detector instruments. */
    bool
    isMemAccess() const
    {
        return op == Opcode::Load || op == Opcode::Store;
    }

    /** True for any direct or indirect call (not Spawn). */
    bool
    isCall() const
    {
        return op == Opcode::Call || op == Opcode::ICall;
    }

    /** Collect the registers this instruction reads. */
    void
    usedRegs(std::vector<Reg> &out) const
    {
        out.clear();
        auto add = [&](Reg r) {
            if (r != kNoReg)
                out.push_back(r);
        };
        switch (op) {
          case Opcode::Alloc:
          case Opcode::ConstInt:
          case Opcode::GlobalAddr:
          case Opcode::FuncAddr:
          case Opcode::Br:
            break;
          case Opcode::Input:
            add(b);
            break;
          case Opcode::Assign:
          case Opcode::Load:
          case Opcode::Lock:
          case Opcode::Unlock:
          case Opcode::CondBr:
          case Opcode::Ret:
          case Opcode::Output:
          case Opcode::Join:
            add(a);
            break;
          case Opcode::BinOp:
          case Opcode::Store:
            add(a);
            add(b);
            break;
          case Opcode::Gep:
            add(a);
            add(b);
            break;
          case Opcode::Call:
          case Opcode::Spawn:
            for (Reg r : args)
                add(r);
            break;
          case Opcode::ICall:
            add(a);
            for (Reg r : args)
                add(r);
            break;
        }
    }

    /** Register this instruction defines, or kNoReg. */
    Reg definedReg() const { return dest; }
};

/** Printable mnemonic for @p op. */
const char *opcodeName(Opcode op);

/** Printable symbol for @p kind ("+", "<=", ...). */
const char *binopName(BinOpKind kind);

/** Evaluate a binary operator on two 64-bit values (div/mod by 0 = 0).
 *  Inline: this sits under the interpreter's most common opcode. */
inline std::int64_t
evalBinOp(BinOpKind kind, std::int64_t lhs, std::int64_t rhs)
{
    switch (kind) {
      case BinOpKind::Add: return lhs + rhs;
      case BinOpKind::Sub: return lhs - rhs;
      case BinOpKind::Mul: return lhs * rhs;
      case BinOpKind::Div: return rhs == 0 ? 0 : lhs / rhs;
      case BinOpKind::Mod: return rhs == 0 ? 0 : lhs % rhs;
      case BinOpKind::And: return lhs & rhs;
      case BinOpKind::Or: return lhs | rhs;
      case BinOpKind::Xor: return lhs ^ rhs;
      case BinOpKind::Shl: return lhs << (rhs & 63);
      case BinOpKind::Shr:
        return static_cast<std::int64_t>(
            static_cast<std::uint64_t>(lhs) >> (rhs & 63));
      case BinOpKind::Lt: return lhs < rhs;
      case BinOpKind::Le: return lhs <= rhs;
      case BinOpKind::Gt: return lhs > rhs;
      case BinOpKind::Ge: return lhs >= rhs;
      case BinOpKind::Eq: return lhs == rhs;
      case BinOpKind::Ne: return lhs != rhs;
    }
    return 0;
}

} // namespace oha::ir
