/**
 * @file
 * IRBuilder: the ergonomic construction API for OHA IR modules.
 *
 * Mirrors the shape of LLVM's IRBuilder: hold an insertion point,
 * emit instructions that auto-allocate destination registers.
 * Workload generators and tests build programs exclusively through
 * this class.
 */

#pragma once

#include <string>
#include <vector>

#include "ir/module.h"

namespace oha::ir {

/** Streaming instruction builder with an insertion point. */
class IRBuilder
{
  public:
    explicit IRBuilder(Module &module) : module_(module) {}

    /** Create a function and position the builder in a fresh entry block. */
    Function *
    createFunction(const std::string &name, unsigned numParams)
    {
        Function *func = module_.addFunction(name, numParams);
        setInsertPoint(module_.addBlock(func, "entry"));
        return func;
    }

    /** Create an (unpositioned) block in @p func. */
    BasicBlock *
    createBlock(Function *func, const std::string &label)
    {
        return module_.addBlock(func, label);
    }

    void setInsertPoint(BasicBlock *block) { block_ = block; }
    BasicBlock *insertBlock() const { return block_; }
    Function *currentFunction() const { return block_->parent(); }
    Module &module() { return module_; }

    // ---- value-producing instructions -------------------------------

    /** dest = imm */
    Reg
    constInt(std::int64_t value)
    {
        Instruction instr;
        instr.op = Opcode::ConstInt;
        instr.imm = value;
        return emitDef(instr);
    }

    /** dest = new object with @p cells cells (allocation site) */
    Reg
    alloc(std::uint32_t cells)
    {
        Instruction instr;
        instr.op = Opcode::Alloc;
        instr.imm = cells;
        return emitDef(instr);
    }

    /** dest = src */
    Reg
    assign(Reg src)
    {
        Instruction instr;
        instr.op = Opcode::Assign;
        instr.a = src;
        return emitDef(instr);
    }

    /**
     * Redefine an existing register: dest = src.  Registers are
     * normally single-assignment (emitDef allocates a fresh one), but
     * loop-carried variables need explicit redefinition.
     */
    void
    assignTo(Reg dest, Reg src)
    {
        Instruction instr;
        instr.op = Opcode::Assign;
        instr.dest = dest;
        instr.a = src;
        emit(instr);
    }

    /** Redefine an existing register: dest = lhs <kind> rhs. */
    void
    binopTo(Reg dest, BinOpKind kind, Reg lhs, Reg rhs)
    {
        Instruction instr;
        instr.op = Opcode::BinOp;
        instr.dest = dest;
        instr.binop = kind;
        instr.a = lhs;
        instr.b = rhs;
        emit(instr);
    }

    /** Redefine an existing register with a constant: dest = imm. */
    void
    constTo(Reg dest, std::int64_t value)
    {
        Instruction instr;
        instr.op = Opcode::ConstInt;
        instr.dest = dest;
        instr.imm = value;
        emit(instr);
    }

    /** dest = lhs <kind> rhs */
    Reg
    binop(BinOpKind kind, Reg lhs, Reg rhs)
    {
        Instruction instr;
        instr.op = Opcode::BinOp;
        instr.binop = kind;
        instr.a = lhs;
        instr.b = rhs;
        return emitDef(instr);
    }

    Reg add(Reg a, Reg b) { return binop(BinOpKind::Add, a, b); }
    Reg sub(Reg a, Reg b) { return binop(BinOpKind::Sub, a, b); }
    Reg mul(Reg a, Reg b) { return binop(BinOpKind::Mul, a, b); }
    Reg mod(Reg a, Reg b) { return binop(BinOpKind::Mod, a, b); }
    Reg lt(Reg a, Reg b) { return binop(BinOpKind::Lt, a, b); }
    Reg le(Reg a, Reg b) { return binop(BinOpKind::Le, a, b); }
    Reg eq(Reg a, Reg b) { return binop(BinOpKind::Eq, a, b); }
    Reg ne(Reg a, Reg b) { return binop(BinOpKind::Ne, a, b); }
    Reg bxor(Reg a, Reg b) { return binop(BinOpKind::Xor, a, b); }
    Reg band(Reg a, Reg b) { return binop(BinOpKind::And, a, b); }

    /** dest = &global */
    Reg
    globalAddr(std::uint32_t globalId)
    {
        Instruction instr;
        instr.op = Opcode::GlobalAddr;
        instr.globalId = globalId;
        return emitDef(instr);
    }

    /** dest = function pointer */
    Reg
    funcAddr(Function *func)
    {
        Instruction instr;
        instr.op = Opcode::FuncAddr;
        instr.callee = func->id();
        return emitDef(instr);
    }

    /** dest = &base[field], constant field index */
    Reg
    gep(Reg base, std::int64_t field)
    {
        Instruction instr;
        instr.op = Opcode::Gep;
        instr.a = base;
        instr.imm = field;
        return emitDef(instr);
    }

    /** dest = &base[index], dynamic index register */
    Reg
    gepDyn(Reg base, Reg index)
    {
        Instruction instr;
        instr.op = Opcode::Gep;
        instr.a = base;
        instr.b = index;
        return emitDef(instr);
    }

    /** dest = *ptr */
    Reg
    load(Reg ptr)
    {
        Instruction instr;
        instr.op = Opcode::Load;
        instr.a = ptr;
        return emitDef(instr);
    }

    /** *ptr = value */
    void
    store(Reg ptr, Reg value)
    {
        Instruction instr;
        instr.op = Opcode::Store;
        instr.a = ptr;
        instr.b = value;
        emit(instr);
    }

    /** dest = callee(args...) */
    Reg
    call(Function *callee, std::vector<Reg> args = {})
    {
        Instruction instr;
        instr.op = Opcode::Call;
        instr.callee = callee->id();
        instr.args = std::move(args);
        return emitDef(instr);
    }

    /** dest = (*fp)(args...) */
    Reg
    icall(Reg funcPtr, std::vector<Reg> args = {})
    {
        Instruction instr;
        instr.op = Opcode::ICall;
        instr.a = funcPtr;
        instr.args = std::move(args);
        return emitDef(instr);
    }

    /** dest = input[(imm + index) mod inputLength] */
    Reg
    input(std::int64_t index)
    {
        Instruction instr;
        instr.op = Opcode::Input;
        instr.imm = index;
        return emitDef(instr);
    }

    /** dest = input[(imm + value(indexReg)) mod inputLength] */
    Reg
    inputDyn(Reg indexReg, std::int64_t base = 0)
    {
        Instruction instr;
        instr.op = Opcode::Input;
        instr.b = indexReg;
        instr.imm = base;
        return emitDef(instr);
    }

    /** dest = spawn callee(args...) */
    Reg
    spawn(Function *callee, std::vector<Reg> args = {})
    {
        Instruction instr;
        instr.op = Opcode::Spawn;
        instr.callee = callee->id();
        instr.args = std::move(args);
        return emitDef(instr);
    }

    /** dest = join(handle) */
    Reg
    join(Reg handle)
    {
        Instruction instr;
        instr.op = Opcode::Join;
        instr.a = handle;
        return emitDef(instr);
    }

    // ---- void instructions ------------------------------------------

    /** lock(*ptr) */
    void
    lock(Reg ptr)
    {
        Instruction instr;
        instr.op = Opcode::Lock;
        instr.a = ptr;
        emit(instr);
    }

    /** unlock(*ptr) */
    void
    unlock(Reg ptr)
    {
        Instruction instr;
        instr.op = Opcode::Unlock;
        instr.a = ptr;
        emit(instr);
    }

    /** output(value) — observable sink / slice endpoint */
    void
    output(Reg value)
    {
        Instruction instr;
        instr.op = Opcode::Output;
        instr.a = value;
        emit(instr);
    }

    // ---- terminators -------------------------------------------------

    void
    ret()
    {
        Instruction instr;
        instr.op = Opcode::Ret;
        emit(instr);
    }

    void
    ret(Reg value)
    {
        Instruction instr;
        instr.op = Opcode::Ret;
        instr.a = value;
        emit(instr);
    }

    void
    br(BasicBlock *target)
    {
        Instruction instr;
        instr.op = Opcode::Br;
        instr.target = target->id();
        emit(instr);
    }

    void
    condBr(Reg cond, BasicBlock *ifTrue, BasicBlock *ifFalse)
    {
        Instruction instr;
        instr.op = Opcode::CondBr;
        instr.a = cond;
        instr.target = ifTrue->id();
        instr.target2 = ifFalse->id();
        emit(instr);
    }

  private:
    void
    emit(Instruction instr)
    {
        OHA_ASSERT(block_ != nullptr, "no insertion point");
        block_->instructions().push_back(std::move(instr));
    }

    Reg
    emitDef(Instruction instr)
    {
        OHA_ASSERT(block_ != nullptr, "no insertion point");
        instr.dest = block_->parent()->allocReg();
        const Reg dest = instr.dest;
        block_->instructions().push_back(std::move(instr));
        return dest;
    }

    Module &module_;
    BasicBlock *block_ = nullptr;
};

} // namespace oha::ir
