#include "ir/cfg.h"

#include <queue>

namespace oha::ir {

Cfg::Cfg(const Function &func) : func_(func)
{
    const std::size_t n = func.blocks().size();
    succs_.resize(n);
    preds_.resize(n);
    reach_.resize(n);

    for (std::size_t i = 0; i < n; ++i)
        local_.emplace(func.blocks()[i]->id(), i);

    for (std::size_t i = 0; i < n; ++i) {
        succs_[i] = func.blocks()[i]->successors();
        for (BlockId succ : succs_[i])
            preds_[localIndex(succ)].push_back(func.blocks()[i]->id());
    }

    // Transitive closure by per-block BFS.  Functions in this IR are
    // small (tens of blocks), so the quadratic closure is cheap and
    // the bitset answers are O(1) afterwards.
    for (std::size_t i = 0; i < n; ++i) {
        std::queue<std::size_t> work;
        for (BlockId succ : succs_[i]) {
            const std::size_t si = localIndex(succ);
            if (reach_[i].insert(static_cast<std::uint32_t>(si)))
                work.push(si);
        }
        while (!work.empty()) {
            const std::size_t cur = work.front();
            work.pop();
            for (BlockId succ : succs_[cur]) {
                const std::size_t si = localIndex(succ);
                if (reach_[i].insert(static_cast<std::uint32_t>(si)))
                    work.push(si);
            }
        }
    }

    // Iterative dominator computation: dom(entry) = {entry},
    // dom(b) = {b} ∪ ⋂_{p ∈ preds(b)} dom(p).
    dom_.resize(n);
    SparseBitSet all;
    for (std::size_t i = 0; i < n; ++i)
        all.insert(static_cast<std::uint32_t>(i));
    for (std::size_t i = 0; i < n; ++i)
        dom_[i] = all;
    dom_[0].clear();
    dom_[0].insert(0);
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = 1; i < n; ++i) {
            SparseBitSet next = all;
            bool anyPred = false;
            for (BlockId pred : preds_[i]) {
                next.intersectWith(dom_[localIndex(pred)]);
                anyPred = true;
            }
            if (!anyPred)
                next.clear(); // unreachable block
            next.insert(static_cast<std::uint32_t>(i));
            if (!(next == dom_[i])) {
                dom_[i] = std::move(next);
                changed = true;
            }
        }
    }

    // fromEntry_ is exposed publicly, so it stores BlockIds (not the
    // local indices reach_ uses internally).
    fromEntry_.insert(func.blocks()[0]->id());
    reach_[0].forEach([&](std::uint32_t li) {
        fromEntry_.insert(func.blocks()[li]->id());
    });
}

std::size_t
Cfg::localIndex(BlockId block) const
{
    auto it = local_.find(block);
    OHA_ASSERT(it != local_.end(), "block not in this function");
    return it->second;
}

const std::vector<BlockId> &
Cfg::successors(BlockId block) const
{
    return succs_[localIndex(block)];
}

const std::vector<BlockId> &
Cfg::predecessors(BlockId block) const
{
    return preds_[localIndex(block)];
}

bool
Cfg::reaches(BlockId from, BlockId to) const
{
    return reach_[localIndex(from)].contains(
        static_cast<std::uint32_t>(localIndex(to)));
}

bool
Cfg::dominates(BlockId from, BlockId to) const
{
    return dom_[localIndex(to)].contains(
        static_cast<std::uint32_t>(localIndex(from)));
}

} // namespace oha::ir
