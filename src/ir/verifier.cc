#include "ir/verifier.h"

#include <unordered_set>
#include <vector>

#include "ir/module.h"

namespace oha::ir {

namespace {

void
verifyFunction(const Module &module, const Function &func)
{
    std::unordered_set<BlockId> ownBlocks;
    for (const auto &block : func.blocks())
        ownBlocks.insert(block->id());

    if (func.blocks().empty())
        OHA_FATAL("function '%s' has no blocks", func.name().c_str());

    std::vector<Reg> uses;
    for (const auto &block : func.blocks()) {
        const auto &instrs = block->instructions();
        if (instrs.empty()) {
            OHA_FATAL("empty block '%s' in '%s'", block->label().c_str(),
                      func.name().c_str());
        }
        if (!instrs.back().isTerminator()) {
            OHA_FATAL("block '%s' in '%s' lacks a terminator",
                      block->label().c_str(), func.name().c_str());
        }

        for (std::size_t i = 0; i < instrs.size(); ++i) {
            const Instruction &instr = instrs[i];
            if (instr.isTerminator() && i + 1 != instrs.size()) {
                OHA_FATAL("terminator mid-block in '%s' block '%s'",
                          func.name().c_str(), block->label().c_str());
            }

            instr.usedRegs(uses);
            for (Reg reg : uses) {
                if (reg >= func.numRegs()) {
                    OHA_FATAL("register r%u out of range in '%s'",
                              reg, func.name().c_str());
                }
            }
            if (instr.dest != kNoReg && instr.dest >= func.numRegs()) {
                OHA_FATAL("dest register r%u out of range in '%s'",
                          instr.dest, func.name().c_str());
            }

            switch (instr.op) {
              case Opcode::Br:
                if (!ownBlocks.count(instr.target))
                    OHA_FATAL("cross-function branch in '%s'",
                              func.name().c_str());
                break;
              case Opcode::CondBr:
                if (!ownBlocks.count(instr.target) ||
                    !ownBlocks.count(instr.target2)) {
                    OHA_FATAL("cross-function condbr in '%s'",
                              func.name().c_str());
                }
                break;
              case Opcode::Call:
              case Opcode::Spawn:
              case Opcode::FuncAddr: {
                if (instr.callee >= module.numFunctions())
                    OHA_FATAL("bad callee id in '%s'", func.name().c_str());
                if (instr.op != Opcode::FuncAddr) {
                    const Function *callee = module.function(instr.callee);
                    if (instr.args.size() != callee->numParams()) {
                        OHA_FATAL("arity mismatch calling '%s' from '%s'",
                                  callee->name().c_str(),
                                  func.name().c_str());
                    }
                }
                break;
              }
              case Opcode::GlobalAddr:
                if (instr.globalId >= module.globals().size())
                    OHA_FATAL("bad global id in '%s'", func.name().c_str());
                break;
              default:
                break;
            }
        }
    }
}

} // namespace

void
verifyModule(const Module &module)
{
    OHA_ASSERT(module.finalized(), "verify requires a finalized module");
    for (const auto &func : module.functions())
        verifyFunction(module, *func);
}

} // namespace oha::ir
