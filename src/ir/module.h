/**
 * @file
 * The Module: a whole program in OHA IR.
 *
 * A module is built through IRBuilder, then sealed with finalize(),
 * which assigns module-unique instruction ids, builds flat id ->
 * object indexes and verifies the IR.  Function and block ids are
 * assigned eagerly at creation so branch targets can be encoded as
 * final BlockIds while building.  After finalize() the module is
 * immutable; analyses and the interpreter rely on stable pointers
 * into it.
 */

#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/function.h"
#include "support/common.h"

namespace oha::ir {

/** A global variable: a statically-allocated object with @p size cells. */
struct GlobalVar
{
    std::string name;
    std::uint32_t size = 1;
};

/**
 * Two independent 64-bit hashes of a function's canonical text (see
 * Module::functionFingerprint).  Dual hashes follow the shared-cache
 * convention: equality of both is treated as value identity, a
 * single-hash match alone never is.
 */
struct FunctionFingerprint
{
    std::uint64_t primary = 0;
    std::uint64_t secondary = 0;

    bool
    operator==(const FunctionFingerprint &other) const
    {
        return primary == other.primary && secondary == other.secondary;
    }
    bool operator!=(const FunctionFingerprint &other) const
    {
        return !(*this == other);
    }
};

/** A whole program. */
class Module
{
  public:
    Module() = default;
    Module(const Module &) = delete;
    Module &operator=(const Module &) = delete;

    /** Create a function; the function named "main" is the entry point. */
    Function *
    addFunction(std::string name, unsigned numParams)
    {
        OHA_ASSERT(!finalized_, "module already finalized");
        auto func = std::make_unique<Function>(std::move(name), numParams);
        func->setId(static_cast<FuncId>(funcs_.size()));
        auto [it, inserted] = byName_.emplace(func->name(), func.get());
        (void)it;
        if (!inserted)
            OHA_FATAL("duplicate function name '%s'", func->name().c_str());
        funcs_.push_back(std::move(func));
        return funcs_.back().get();
    }

    /** Create a block in @p func with a module-unique id. */
    BasicBlock *
    addBlock(Function *func, std::string label)
    {
        OHA_ASSERT(!finalized_, "module already finalized");
        BasicBlock *block = func->addBlock(std::move(label));
        block->setId(static_cast<BlockId>(blockById_.size()));
        blockById_.push_back(block);
        return block;
    }

    /** Declare a global with @p size cells; returns its global id. */
    std::uint32_t
    addGlobal(std::string name, std::uint32_t size = 1)
    {
        OHA_ASSERT(!finalized_, "module already finalized");
        globals_.push_back({std::move(name), size});
        return static_cast<std::uint32_t>(globals_.size() - 1);
    }

    /**
     * Seal the module: assign instruction ids, build indexes, and
     * verify structural well-formedness.  Fatal on malformed IR.
     */
    void finalize();

    bool finalized() const { return finalized_; }

    const std::vector<std::unique_ptr<Function>> &
    functions() const
    {
        return funcs_;
    }

    const std::vector<GlobalVar> &globals() const { return globals_; }

    /** Function named @p name, or nullptr. */
    Function *
    functionByName(const std::string &name) const
    {
        auto it = byName_.find(name);
        return it == byName_.end() ? nullptr : it->second;
    }

    /** The entry function ("main"); fatal if absent. */
    Function *
    entryFunction() const
    {
        Function *func = functionByName("main");
        OHA_ASSERT(func != nullptr, "module has no main()");
        return func;
    }

    std::size_t numInstrs() const { return instrById_.size(); }
    std::size_t numBlocks() const { return blockById_.size(); }
    std::size_t numFunctions() const { return funcs_.size(); }

    const Instruction &
    instr(InstrId id) const
    {
        OHA_ASSERT(id < instrById_.size());
        return *instrById_[id];
    }

    BasicBlock *
    block(BlockId id) const
    {
        OHA_ASSERT(id < blockById_.size());
        return blockById_[id];
    }

    Function *
    function(FuncId id) const
    {
        OHA_ASSERT(id < funcs_.size());
        return funcs_[id].get();
    }

    /**
     * Dual hash of the function's canonical text (available after
     * finalize()).  The canonical text is reprint-stable: it names
     * callees/globals and uses function-local block labels, never
     * module-global instruction or block ids, so print -> parse ->
     * finalize round-trips preserve every fingerprint.  Equal
     * fingerprints are how ModuleDiff decides a function is unchanged
     * across module versions.
     */
    const FunctionFingerprint &
    functionFingerprint(FuncId id) const
    {
        OHA_ASSERT(finalized_ && id < funcFps_.size());
        return funcFps_[id];
    }

  private:
    bool finalized_ = false;
    std::vector<std::unique_ptr<Function>> funcs_;
    std::vector<GlobalVar> globals_;
    std::unordered_map<std::string, Function *> byName_;
    std::vector<const Instruction *> instrById_;
    std::vector<BasicBlock *> blockById_;
    std::vector<FunctionFingerprint> funcFps_;
};

/**
 * The reprint-stable per-function text that functionFingerprint()
 * hashes: a `func name/params` header followed by each block's label
 * and printed instructions.  Exposed so ModuleDiff tests and debugging
 * can inspect exactly what two versions are compared on.
 */
std::string canonicalFunctionText(const Module &module,
                                  const Function &func);

} // namespace oha::ir
