/**
 * @file
 * Human-readable dumping of OHA IR, for debugging and examples.
 */

#pragma once

#include <string>

namespace oha::ir {

class Module;
class Function;
struct Instruction;

/** Render one instruction as text (without trailing newline). */
std::string printInstruction(const Module &module, const Instruction &instr);

/** Render a whole function. */
std::string printFunction(const Module &module, const Function &func);

/** Render the whole module. */
std::string printModule(const Module &module);

} // namespace oha::ir
