/**
 * @file
 * Per-function control-flow graph utilities: predecessor/successor
 * lists and an intra-procedural may-reach relation.
 *
 * The static slicer (Section 5.1.1) is flow-sensitive when resolving
 * load/store edges: a store only feeds a load if the store's block may
 * precede the load's block on some CFG path.  Cfg::reaches() answers
 * that query.
 */

#pragma once

#include <unordered_map>
#include <vector>

#include "ir/function.h"
#include "support/sparse_bit_set.h"

namespace oha::ir {

/** CFG view over one function (blocks indexed locally). */
class Cfg
{
  public:
    explicit Cfg(const Function &func);

    /** Successor block ids of @p block. */
    const std::vector<BlockId> &successors(BlockId block) const;

    /** Predecessor block ids of @p block. */
    const std::vector<BlockId> &predecessors(BlockId block) const;

    /**
     * True if control can flow from the end of @p from to the start
     * of @p to along one or more CFG edges (not reflexive unless the
     * block is on a cycle).
     */
    bool reaches(BlockId from, BlockId to) const;

    /** Blocks reachable from the function entry. */
    const SparseBitSet &reachableFromEntry() const { return fromEntry_; }

    /**
     * True if every path from the function entry to @p to passes
     * through @p from (classic dominance; reflexive).  Used by the
     * static MHP analysis to prove "access always follows this join".
     */
    bool dominates(BlockId from, BlockId to) const;

    /**
     * True if a store at (storeBlock, storeIdx) may execute before a
     * load at (loadBlock, loadIdx) in some run of the function.
     */
    bool
    mayPrecede(BlockId storeBlock, std::size_t storeIdx, BlockId loadBlock,
               std::size_t loadIdx) const
    {
        if (storeBlock == loadBlock) {
            return storeIdx < loadIdx || reaches(storeBlock, loadBlock);
        }
        return reaches(storeBlock, loadBlock);
    }

  private:
    std::size_t localIndex(BlockId block) const;

    const Function &func_;
    std::unordered_map<BlockId, std::size_t> local_;
    std::vector<std::vector<BlockId>> succs_;
    std::vector<std::vector<BlockId>> preds_;
    /** reach_[i] = set of local indices reachable from block i. */
    std::vector<SparseBitSet> reach_;
    /** dom_[i] = set of local indices dominating block i. */
    std::vector<SparseBitSet> dom_;
    SparseBitSet fromEntry_;
};

} // namespace oha::ir
