#include "ir/parser.h"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

#include "support/common.h"

namespace oha::ir {

namespace {

/** Line-oriented cursor with 1-based line numbers for diagnostics. */
struct Source
{
    std::vector<std::string> lines;
    std::size_t cursor = 0;

    explicit Source(const std::string &text)
    {
        std::istringstream is(text);
        std::string line;
        while (std::getline(is, line))
            lines.push_back(stripped(line));
    }

    static std::string
    stripped(std::string line)
    {
        const std::size_t comment = line.find(';');
        if (comment != std::string::npos)
            line.erase(comment);
        const std::size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos)
            return "";
        const std::size_t last = line.find_last_not_of(" \t\r");
        return line.substr(first, last - first + 1);
    }

    bool done() const { return cursor >= lines.size(); }
    const std::string &peek() const { return lines[cursor]; }
    int lineNo() const { return static_cast<int>(cursor + 1); }
};

[[noreturn]] void
fail(const Source &src, const std::string &message)
{
    OHA_FATAL("IR parse error at line %d: %s (in '%s')", src.lineNo(),
              message.c_str(),
              src.done() ? "<eof>" : src.peek().c_str());
}

/** In-place token scanner over one instruction line. */
struct Scanner
{
    const std::string &text;
    std::size_t pos = 0;

    explicit Scanner(const std::string &line) : text(line) {}

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    eat(const std::string &token)
    {
        skipSpace();
        if (text.compare(pos, token.size(), token) == 0) {
            pos += token.size();
            return true;
        }
        return false;
    }

    bool
    atEnd()
    {
        skipSpace();
        return pos >= text.size();
    }

    /** Identifier: [A-Za-z_][A-Za-z0-9_]* */
    std::string
    ident()
    {
        skipSpace();
        std::size_t start = pos;
        while (pos < text.size() &&
               (std::isalnum(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '_'))
            ++pos;
        return text.substr(start, pos - start);
    }

    bool
    number(std::int64_t &out)
    {
        skipSpace();
        std::size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+'))
            ++pos;
        std::size_t digits = pos;
        while (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos])))
            ++pos;
        if (pos == digits) {
            pos = start;
            return false;
        }
        out = std::stoll(text.substr(start, pos - start));
        return true;
    }
};

/** Parser state for one module. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : src_(text) {}

    std::unique_ptr<Module>
    run()
    {
        module_ = std::make_unique<Module>();
        declarePass();
        definePass();
        module_->finalize();
        return std::move(module_);
    }

  private:
    // ---- pass 1: globals + function signatures -----------------------
    void
    declarePass()
    {
        for (src_.cursor = 0; !src_.done(); ++src_.cursor) {
            const std::string &line = src_.peek();
            if (line.rfind("global ", 0) == 0) {
                Scanner s(line);
                s.eat("global");
                const std::string name = s.ident();
                std::int64_t size = 1;
                if (s.eat("[")) {
                    if (!s.number(size) || !s.eat("]"))
                        fail(src_, "bad global size");
                }
                if (name.empty())
                    fail(src_, "global needs a name");
                globals_[name] = module_->addGlobal(
                    name, static_cast<std::uint32_t>(size));
            } else if (line.rfind("func ", 0) == 0) {
                Scanner s(line);
                s.eat("func");
                const std::string name = s.ident();
                if (name.empty() || !s.eat("("))
                    fail(src_, "bad function header");
                unsigned params = 0;
                while (!s.eat(")")) {
                    if (s.ident().empty())
                        fail(src_, "bad parameter list");
                    ++params;
                    s.eat(",");
                }
                funcs_[name] = module_->addFunction(name, params);
            }
        }
    }

    // ---- pass 2: blocks + instructions --------------------------------
    void
    definePass()
    {
        for (src_.cursor = 0; !src_.done(); ++src_.cursor) {
            if (src_.peek().rfind("func ", 0) != 0)
                continue;
            Scanner s(src_.peek());
            s.eat("func");
            parseFunctionBody(funcs_.at(s.ident()));
        }
    }

    void
    parseFunctionBody(Function *func)
    {
        // Sub-pass A: create the blocks so branches can resolve.
        blocks_.clear();
        const std::size_t bodyStart = src_.cursor + 1;
        for (src_.cursor = bodyStart; !src_.done(); ++src_.cursor) {
            const std::string &line = src_.peek();
            if (line == "}")
                break;
            if (line.empty() || line.back() != ':')
                continue;
            const std::string label = line.substr(0, line.size() - 1);
            if (blocks_.count(label))
                fail(src_, "duplicate block label '" + label + "'");
            blocks_[label] = module_->addBlock(func, label);
        }
        if (src_.done())
            fail(src_, "missing '}' closing function " + func->name());
        const std::size_t bodyEnd = src_.cursor;
        if (blocks_.empty())
            fail(src_, "function " + func->name() + " has no blocks");

        // Sub-pass B: parse instructions into their blocks.
        BasicBlock *current = nullptr;
        maxReg_ = func->numParams();
        for (src_.cursor = bodyStart; src_.cursor < bodyEnd;
             ++src_.cursor) {
            const std::string &line = src_.peek();
            if (line.empty())
                continue;
            if (line.back() == ':') {
                current = blocks_.at(line.substr(0, line.size() - 1));
                continue;
            }
            if (!current)
                fail(src_, "instruction before any block label");
            current->instructions().push_back(parseInstruction(line));
        }
        func->reserveRegs(maxReg_);
    }

    Reg
    reg(Scanner &s)
    {
        s.skipSpace();
        if (s.eat("_"))
            return kNoReg;
        if (!s.eat("r"))
            fail(src_, "expected register");
        std::int64_t n;
        if (!s.number(n) || n < 0)
            fail(src_, "bad register number");
        maxReg_ = std::max(maxReg_, static_cast<unsigned>(n) + 1);
        return static_cast<Reg>(n);
    }

    std::vector<Reg>
    argList(Scanner &s)
    {
        if (!s.eat("("))
            fail(src_, "expected argument list");
        std::vector<Reg> args;
        while (!s.eat(")")) {
            args.push_back(reg(s));
            s.eat(",");
        }
        return args;
    }

    Function *
    calleeNamed(const std::string &name)
    {
        auto it = funcs_.find(name);
        if (it == funcs_.end())
            fail(src_, "unknown function '" + name + "'");
        return it->second;
    }

    BlockId
    blockNamed(Scanner &s)
    {
        const std::string label = s.ident();
        auto it = blocks_.find(label);
        if (it == blocks_.end())
            fail(src_, "unknown block label '" + label + "'");
        return it->second->id();
    }

    /** Parse a BinOpKind symbol, longest-match first. */
    bool
    binop(Scanner &s, BinOpKind &kind)
    {
        static const std::pair<const char *, BinOpKind> table[] = {
            {"<<", BinOpKind::Shl}, {">>", BinOpKind::Shr},
            {"<=", BinOpKind::Le},  {">=", BinOpKind::Ge},
            {"==", BinOpKind::Eq},  {"!=", BinOpKind::Ne},
            {"+", BinOpKind::Add},  {"-", BinOpKind::Sub},
            {"*", BinOpKind::Mul},  {"/", BinOpKind::Div},
            {"%", BinOpKind::Mod},  {"&", BinOpKind::And},
            {"|", BinOpKind::Or},   {"^", BinOpKind::Xor},
            {"<", BinOpKind::Lt},   {">", BinOpKind::Gt},
        };
        for (const auto &[symbol, op] : table) {
            if (s.eat(symbol)) {
                kind = op;
                return true;
            }
        }
        return false;
    }

    Instruction
    parseInstruction(const std::string &line)
    {
        Scanner s(line);
        Instruction ins;

        // ---- void statements ---------------------------------------
        if (s.eat("ret")) {
            ins.op = Opcode::Ret;
            if (!s.atEnd())
                ins.a = reg(s);
            return ins;
        }
        if (s.eat("br ")) {
            ins.op = Opcode::Br;
            ins.target = blockNamed(s);
            return ins;
        }
        if (s.eat("condbr")) {
            ins.op = Opcode::CondBr;
            ins.a = reg(s);
            if (!s.eat(","))
                fail(src_, "condbr needs two labels");
            ins.target = blockNamed(s);
            if (!s.eat(","))
                fail(src_, "condbr needs two labels");
            ins.target2 = blockNamed(s);
            return ins;
        }
        if (s.eat("lock")) {
            ins.op = Opcode::Lock;
            ins.a = reg(s);
            return ins;
        }
        if (s.eat("unlock")) {
            ins.op = Opcode::Unlock;
            ins.a = reg(s);
            return ins;
        }
        if (s.eat("output")) {
            ins.op = Opcode::Output;
            ins.a = reg(s);
            return ins;
        }
        if (s.eat("*")) { // *rX = rY
            ins.op = Opcode::Store;
            ins.a = reg(s);
            if (!s.eat("="))
                fail(src_, "store needs '='");
            ins.b = reg(s);
            return ins;
        }

        // ---- definitions: <reg> = <rhs> ----------------------------
        ins.dest = reg(s);
        if (!s.eat("="))
            fail(src_, "expected '='");

        if (s.eat("alloc")) {
            ins.op = Opcode::Alloc;
            if (!s.number(ins.imm))
                fail(src_, "alloc needs a size");
            return ins;
        }
        if (s.eat("call")) {
            ins.op = Opcode::Call;
            ins.callee = calleeNamed(s.ident())->id();
            ins.args = argList(s);
            return ins;
        }
        if (s.eat("icall")) {
            ins.op = Opcode::ICall;
            if (!s.eat("*"))
                fail(src_, "icall needs '*reg'");
            ins.a = reg(s);
            ins.args = argList(s);
            return ins;
        }
        if (s.eat("spawn")) {
            ins.op = Opcode::Spawn;
            ins.callee = calleeNamed(s.ident())->id();
            ins.args = argList(s);
            return ins;
        }
        if (s.eat("join")) {
            ins.op = Opcode::Join;
            ins.a = reg(s);
            return ins;
        }
        if (s.eat("input")) {
            ins.op = Opcode::Input;
            if (!s.eat("["))
                fail(src_, "input needs '[index]'");
            if (!s.number(ins.imm))
                fail(src_, "input needs a base index");
            if (s.eat("+"))
                ins.b = reg(s);
            if (!s.eat("]"))
                fail(src_, "input needs closing ']'");
            return ins;
        }
        if (s.eat("&")) {
            // &name, &rY[k], &rY[rZ]
            s.skipSpace();
            if (s.text.compare(s.pos, 1, "r") == 0 &&
                s.pos + 1 < s.text.size() &&
                std::isdigit(
                    static_cast<unsigned char>(s.text[s.pos + 1]))) {
                ins.op = Opcode::Gep;
                ins.a = reg(s);
                if (!s.eat("["))
                    fail(src_, "gep needs '[field]'");
                if (!s.number(ins.imm)) {
                    ins.imm = 0;
                    ins.b = reg(s);
                }
                if (!s.eat("]"))
                    fail(src_, "gep needs closing ']'");
                return ins;
            }
            const std::string name = s.ident();
            if (auto git = globals_.find(name); git != globals_.end()) {
                ins.op = Opcode::GlobalAddr;
                ins.globalId = git->second;
                return ins;
            }
            if (auto fit = funcs_.find(name); fit != funcs_.end()) {
                ins.op = Opcode::FuncAddr;
                ins.callee = fit->second->id();
                return ins;
            }
            fail(src_, "unknown symbol '&" + name + "'");
        }
        if (s.eat("*")) { // load
            ins.op = Opcode::Load;
            ins.a = reg(s);
            return ins;
        }
        if (std::int64_t value; s.number(value)) {
            ins.op = Opcode::ConstInt;
            ins.imm = value;
            return ins;
        }
        // rY, possibly followed by a binary operator.
        ins.a = reg(s);
        BinOpKind kind;
        if (binop(s, kind)) {
            ins.op = Opcode::BinOp;
            ins.binop = kind;
            ins.b = reg(s);
            return ins;
        }
        ins.op = Opcode::Assign;
        return ins;
    }

    Source src_;
    std::unique_ptr<Module> module_;
    std::map<std::string, Function *> funcs_;
    std::map<std::string, std::uint32_t> globals_;
    std::map<std::string, BasicBlock *> blocks_;
    unsigned maxReg_ = 0;
};

} // namespace

std::unique_ptr<Module>
parseModule(const std::string &text)
{
    return Parser(text).run();
}

} // namespace oha::ir
