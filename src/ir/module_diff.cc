#include "ir/module_diff.h"

#include <algorithm>

namespace oha::ir {

ModuleDiff
computeModuleDiff(const Module &base, const Module &next)
{
    OHA_ASSERT(base.finalized() && next.finalized(),
               "diff requires finalized modules");

    ModuleDiff diff;

    const auto &baseGlobals = base.globals();
    const auto &nextGlobals = next.globals();
    if (baseGlobals.size() != nextGlobals.size()) {
        diff.globalsChanged = true;
    } else {
        for (std::size_t i = 0; i < baseGlobals.size(); ++i) {
            if (baseGlobals[i].name != nextGlobals[i].name ||
                baseGlobals[i].size != nextGlobals[i].size) {
                diff.globalsChanged = true;
                break;
            }
        }
    }

    for (const auto &func : base.functions()) {
        const Function *other = next.functionByName(func->name());
        if (!other) {
            diff.removed.push_back(func->name());
            continue;
        }
        const FunctionFingerprint &baseFp =
            base.functionFingerprint(func->id());
        const FunctionFingerprint &nextFp =
            next.functionFingerprint(other->id());
        if (baseFp == nextFp)
            diff.unchanged.push_back(func->name());
        else
            diff.changed.push_back(func->name());
    }
    for (const auto &func : next.functions()) {
        if (!base.functionByName(func->name()))
            diff.added.push_back(func->name());
    }

    std::sort(diff.added.begin(), diff.added.end());
    std::sort(diff.removed.begin(), diff.removed.end());
    std::sort(diff.changed.begin(), diff.changed.end());
    std::sort(diff.unchanged.begin(), diff.unchanged.end());
    return diff;
}

} // namespace oha::ir
