/**
 * @file
 * Structural diff between two finalized module versions.
 *
 * Functions are matched by name and compared by their canonical-text
 * fingerprints (Module::functionFingerprint): a rename therefore shows
 * up as remove + add, and a whitespace-only reprint (print -> parse ->
 * finalize) produces an empty diff.  The diff is the input to
 * analysis::ConstraintDiff, which lowers it to constraint add/remove
 * sets for the incremental Andersen solve.
 */

#pragma once

#include <string>
#include <vector>

#include "ir/module.h"

namespace oha::ir {

/** Names of functions that differ between a base and a next version. */
struct ModuleDiff
{
    std::vector<std::string> added;    ///< present only in next
    std::vector<std::string> removed;  ///< present only in base
    std::vector<std::string> changed;  ///< both, different fingerprint
    std::vector<std::string> unchanged; ///< both, identical fingerprint
    /// Globals differ (count, order, name or size).  Global cells are
    /// identity-mapped across versions, so any change here disables
    /// incremental patching.
    bool globalsChanged = false;

    bool
    empty() const
    {
        return added.empty() && removed.empty() && changed.empty() &&
               !globalsChanged;
    }
};

/** Diff @p base -> @p next; both must be finalized. */
ModuleDiff computeModuleDiff(const Module &base, const Module &next);

} // namespace oha::ir
