/**
 * @file
 * Basic blocks and functions of the OHA IR.
 */

#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "ir/instruction.h"
#include "support/common.h"

namespace oha::ir {

class Function;

/**
 * A straight-line sequence of instructions ending in a terminator.
 * Block ids are module-unique after Module::finalize().
 */
class BasicBlock
{
  public:
    BasicBlock(Function *parent, std::string label)
        : parent_(parent), label_(std::move(label))
    {}

    Function *parent() const { return parent_; }
    const std::string &label() const { return label_; }

    BlockId id() const { return id_; }
    void setId(BlockId id) { id_ = id; }

    std::vector<Instruction> &instructions() { return instrs_; }
    const std::vector<Instruction> &instructions() const { return instrs_; }

    /** The terminator (last instruction); block must be non-empty. */
    const Instruction &
    terminator() const
    {
        OHA_ASSERT(!instrs_.empty());
        return instrs_.back();
    }

    /** Successor block ids implied by the terminator. */
    std::vector<BlockId>
    successors() const
    {
        if (instrs_.empty())
            return {};
        const Instruction &term = instrs_.back();
        switch (term.op) {
          case Opcode::Br:
            return {term.target};
          case Opcode::CondBr:
            return {term.target, term.target2};
          default:
            return {};
        }
    }

  private:
    Function *parent_;
    std::string label_;
    BlockId id_ = kNoBlock;
    std::vector<Instruction> instrs_;
};

/**
 * A function: a register file size, a parameter count and an ordered
 * list of basic blocks, the first of which is the entry block.
 * Parameters occupy registers [0, numParams).
 */
class Function
{
  public:
    Function(std::string name, unsigned numParams)
        : name_(std::move(name)), numParams_(numParams),
          nextReg_(numParams)
    {}

    const std::string &name() const { return name_; }
    unsigned numParams() const { return numParams_; }

    FuncId id() const { return id_; }
    void setId(FuncId id) { id_ = id; }

    /** Total virtual registers used (parameters included). */
    unsigned numRegs() const { return nextReg_; }

    /** Allocate a fresh virtual register. */
    Reg allocReg() { return nextReg_++; }

    /** Grow the register file to at least @p count registers (used by
     *  the IR parser, which sees register numbers before defs). */
    void reserveRegs(unsigned count) { nextReg_ = std::max(nextReg_, count); }

    /** Append a new block; the first block created is the entry. */
    BasicBlock *
    addBlock(std::string label)
    {
        blocks_.push_back(
            std::make_unique<BasicBlock>(this, std::move(label)));
        return blocks_.back().get();
    }

    BasicBlock *
    entry() const
    {
        OHA_ASSERT(!blocks_.empty());
        return blocks_.front().get();
    }

    const std::vector<std::unique_ptr<BasicBlock>> &
    blocks() const
    {
        return blocks_;
    }

  private:
    std::string name_;
    unsigned numParams_;
    unsigned nextReg_;
    FuncId id_ = kNoFunc;
    std::vector<std::unique_ptr<BasicBlock>> blocks_;
};

} // namespace oha::ir
