/**
 * @file
 * Text-format parser for OHA IR.
 *
 * Accepts exactly the syntax printer.cc emits (comments after ';' are
 * ignored), so modules round-trip:
 *
 *     global counter[2]
 *
 *     func main() {
 *       entry:
 *         r0 = 41
 *         r1 = &counter
 *         *r1 = r0
 *         r2 = *r1
 *         output r2
 *         ret
 *     }
 *
 * Functions may be used before their definition (two-pass parse).
 * Errors are reported with 1-based line numbers via OHA_FATAL.
 */

#pragma once

#include <memory>
#include <string>

#include "ir/module.h"

namespace oha::ir {

/** Parse @p text into a finalized module; fatal on malformed input. */
std::unique_ptr<Module> parseModule(const std::string &text);

} // namespace oha::ir
