/**
 * @file
 * Structured reporting for pipeline results: markdown rows for
 * OptFT/OptSlice results and a whole-suite report generator that
 * re-derives the paper-vs-measured comparison (the EXPERIMENTS.md
 * content) from live runs.
 */

#pragma once

#include <string>
#include <vector>

#include "core/optft.h"
#include "core/optslice.h"

namespace oha::core {

/** Paper-reported reference values for one benchmark (for the
 *  side-by-side columns; zero means "not reported"). */
struct PaperReference
{
    double speedupVsFastTrack = 0;
    double speedupVsHybrid = 0;
    double sliceSpeedup = 0;
};

/** Paper reference for @p benchmark (Figures 5/6, Tables 1/2). */
PaperReference paperReference(const std::string &benchmark);

/** One markdown table row for an OptFT result (with paper columns). */
std::string markdownRow(const OptFtResult &result);

/** One markdown table row for an OptSlice result. */
std::string markdownRow(const OptSliceResult &result);

/** Options for the whole-suite report. */
struct ReportOptions
{
    std::size_t profileRuns = 48;
    std::size_t raceTestRuns = 16;
    std::size_t sliceTestRuns = 12;
    bool includeRaceSuite = true;
    bool includeSliceSuite = true;
};

/**
 * Run both pipelines over every benchmark and render a markdown
 * report with paper-vs-measured columns and aggregate averages.
 * Deterministic; suitable for diffing across library changes.
 */
std::string generateSuiteReport(const ReportOptions &options = {});

} // namespace oha::core
