/**
 * @file
 * Circuit-breaker policy for adaptive misspeculation recovery.
 *
 * Adaptive recovery (runOptFt/runOptSlice with
 * config.adaptiveRecovery) repairs the optimistic plan after every
 * rollback: demote the lying invariant, re-run the predicated static
 * phase through the memo cache, continue the corpus.  That loop must
 * not be allowed to spin when speculation keeps losing — each repair
 * costs a (memoized) static re-analysis, and a corpus that violates
 * invariants at a high rate is telling us the profile does not
 * transfer, so the honest move is the paper's fallback: run the
 * remainder under the sound hybrid plan.  The breaker trips on either
 * signal:
 *  - the repair budget is exhausted (repredications >=
 *    maxRepredications), or
 *  - the observed misspeculation rate over the inputs evaluated so
 *    far exceeds misspecRateThreshold, once at least minRunsForRate
 *    inputs have been seen (so one early rollback cannot trip it).
 */

#pragma once

#include <cstddef>
#include <cstdint>

namespace oha::core {

/** Decides when adaptive recovery must degrade to the hybrid plan. */
struct RecoveryBreaker
{
    std::size_t maxRepredications = 4;
    double misspecRateThreshold = 0.5;
    std::size_t minRunsForRate = 8;

    /** Evaluate the policy after a rollback: @p repredications repairs
     *  performed, @p rollbacks total rollbacks, @p evaluated inputs
     *  scanned so far. */
    bool
    tripped(std::size_t repredications, std::uint64_t rollbacks,
            std::size_t evaluated) const
    {
        if (repredications >= maxRepredications)
            return true;
        return evaluated >= minRunsForRate &&
               double(rollbacks) >
                   misspecRateThreshold * double(evaluated);
    }
};

} // namespace oha::core
