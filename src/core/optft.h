/**
 * @file
 * OptFT: the end-to-end optimistic hybrid race-detection pipeline
 * (Section 4).
 *
 * Phases, exactly as the paper lays them out:
 *  1. profile likely invariants until the learned set stabilizes
 *     (Section 6.1: "profile increasing numbers of executions until
 *     the number of learned dynamic invariants stabilize");
 *  2. no-custom-synchronization calibration: optimistically elide
 *     lock instrumentation around check-free critical sections, then
 *     verify against a sound detector on profiling inputs and restore
 *     offending locks (Section 4.2.4);
 *  3. sound static race detection (for hybrid FastTrack) and
 *     predicated static race detection (for OptFT);
 *  4. run the testing corpus under full FastTrack, hybrid FastTrack
 *     and OptFT; OptFT executes speculatively, rolling back to the
 *     sound hybrid configuration on invariant violations (and on race
 *     reports when lock elision is active, which must be treated as
 *     potential mis-speculations).
 */

#pragma once

#include <set>
#include <string>
#include <vector>

#include "analysis/race_detector.h"
#include "core/cost_model.h"
#include "dyn/fault_injector.h"
#include "dyn/violation.h"
#include "workloads/workloads.h"

namespace oha::core {

/** OptFT pipeline configuration. */
struct OptFtConfig
{
    /** Stop profiling after this many runs even if not converged. */
    std::size_t maxProfileRuns = 48;
    /** Declare convergence after this many runs with no new facts. */
    std::size_t convergenceWindow = 6;
    /** Profiling runs used by the no-custom-sync calibration. */
    std::size_t customSyncCalibrationRuns = 6;
    /** >1 enables aggressive likely-unreachable code (Section 2.1's
     *  strength/stability trade-off): blocks executed fewer than this
     *  many times across the whole profiling campaign are assumed
     *  unreachable. */
    std::uint64_t aggressiveLucMinVisits = 0;
    /** Worker threads for batched runs (profiling, calibration, test
     *  evaluation); 0 = OHA_THREADS env var, 1 = serial.  Results are
     *  merged in input-index order, so they are identical for any
     *  value — only wall-clock time changes. */
    std::size_t threads = 0;
    /** Worker threads for each wavefront-parallel Andersen solve
     *  inside the static phase; 0 = the OHA_THREADS pool size.  The
     *  solver is deterministic, so results are byte-identical at any
     *  value (AndersenOptions::solverThreads). */
    std::uint32_t solverThreads = 0;
    /** Record-once/analyze-many: execute each testing (and
     *  calibration) input once with a TraceRecorder, then drive the
     *  full/hybrid/optimistic FastTrack configurations — and the
     *  rollback re-analysis — from TraceReplayer instead of
     *  re-interpreting.  All reported results are byte-identical to
     *  the direct path; only interpretedSteps/replayedEvents (and
     *  wall-clock time) differ. */
    bool useTraceReplay = true;
    /** With useTraceReplay: shard count for the no-checker reference
     *  replays (full + hybrid FastTrack).  Each of N workers decodes
     *  the whole capture but analyzes only its obj-id slice of shadow
     *  memory; sync events broadcast to all shards and the per-shard
     *  race sets merge deterministically, so results are
     *  byte-identical to serial replay at any value.  0 = the
     *  OHA_REPLAY_SHARDS env var (validated + clamped to [1, 64];
     *  default 1 = serial).  Checker-attached optimistic replays
     *  always run serially — the checker's abort point must observe
     *  every access in stream order. */
    std::size_t replayShards = 0;
    /** With useTraceReplay: serve captures from the shared
     *  cross-request cache (exec/trace_cache.h) instead of recording
     *  privately.  Captures are value-keyed on (module, exec config),
     *  so repeated pipeline invocations over a hot corpus — service
     *  mode's steady state — skip the interpreter entirely.  Results
     *  are identical either way (a capture is a pure function of its
     *  key). */
    bool cacheTraceCaptures = true;
    /** Serve per-input profiling observations from the shared
     *  cross-request cache (profile/observation_cache.h).  Like trace
     *  captures, an observation is a pure function of (module, input),
     *  so the merged invariant set — and everything downstream — is
     *  identical either way; a warm service request skips the live
     *  profiling interpreter entirely. */
    bool cacheProfileObservations = true;
    /** Adaptive misspeculation recovery (Section 2.3's rollback, made
     *  a loop): after a rollback, demote the violated invariant,
     *  re-run the predicated static phase through the andersen_cache
     *  memo, rebuild the optimistic plan, and continue the remaining
     *  testing inputs under the repaired plan.  Off reproduces the
     *  historical fire-and-forget behavior (every input keeps the
     *  original plan and pays its own rollback). */
    bool adaptiveRecovery = true;
    /** Circuit breaker: maximum demote + re-predicate repairs before
     *  the remaining corpus degrades to the sound hybrid plan. */
    std::size_t maxRepredications = 4;
    /** Circuit breaker: degrade when rollbacks / inputs-evaluated
     *  exceeds this rate (see minRunsForMisspecRate). */
    double misspecRateThreshold = 0.5;
    /** Rate threshold only arms after this many evaluated inputs. */
    std::size_t minRunsForMisspecRate = 8;
    /** Non-zero: deterministically perturb the profiled invariants
     *  (dyn::FaultInjector) so the testing corpus mis-speculates —
     *  exercises rollback/demotion/breaker paths on demand.  CI
     *  sweeps this via OHA_FAULT_SEED (see ci/run.sh faults). */
    std::uint64_t faultSeed = 0;
    CostModel cost;
};

/** End-to-end result for one benchmark (Figure 5 / Table 1 row). */
struct OptFtResult
{
    std::string name;
    bool staticallyRaceFree = false;

    // Modeled offline costs (seconds).
    double soundStaticSeconds = 0;
    double predStaticSeconds = 0;
    double profileSeconds = 0;
    std::size_t profileRunsUsed = 0;

    // Testing-corpus accounting.
    std::size_t testRuns = 0;
    double baselineSeconds = 0; ///< uninstrumented corpus runtime
    RunCost fastTrack;          ///< full FastTrack
    RunCost hybridFt;           ///< sound-hybrid FastTrack
    RunCost optFt;              ///< OptFT (speculative)
    std::uint64_t misSpeculations = 0;

    /** Optimistic reports equal to sound reports on every test run. */
    bool raceReportsMatch = true;
    /** Races seen across the corpus (after recovery), full detector. */
    std::size_t racesObserved = 0;

    std::size_t soundRacyAccesses = 0;
    std::size_t predRacyAccesses = 0;
    std::size_t elidedLockSites = 0;

    /** Speedups (ratios of normalized dynamic runtimes). */
    double speedupVsFastTrack = 1.0;
    double speedupVsHybrid = 1.0;

    /** Break-even baseline-seconds; negative = never. */
    double breakEvenVsHybrid = -1.0;
    double breakEvenVsFastTrack = -1.0;

    // Execute-once/replay-many accounting over the testing corpus.
    // These two deliberately differ between useTraceReplay modes (the
    // whole point is doing less interpreter work), so parity checks
    // must exclude them.
    /** Guest instructions actually pushed through fetch/decode/eval. */
    std::uint64_t interpretedSteps = 0;
    /** Event records decoded from traces (0 on the direct path). */
    std::uint64_t replayedEvents = 0;

    // Modeled record/replay costs (seconds).  Additive metrics only:
    // the headline fastTrack/hybridFt/optFt figures keep pricing
    // rollback as a full re-execution so Figure 5 stays comparable to
    // the paper; these report what the replay-based paths cost
    // instead.  Both are derived from run results that are identical
    // in either mode, so they are parity-comparable.
    /** Modeled cost of capturing each testing input's trace once. */
    double recordSeconds = 0;
    /** Modeled cost of the rollback re-analyses when performed as
     *  trace replays rather than re-executions. */
    double replayRollbackSeconds = 0;

    // Adaptive-recovery accounting (all zero when adaptiveRecovery is
    // off or nothing mis-speculated).
    /** Demote + re-predicate repair cycles performed. */
    std::size_t repredications = 0;
    /** Modeled cost of the repair-time static re-analyses.  Additive
     *  metric, like recordSeconds: not folded into predStaticSeconds,
     *  so the headline upfront figures stay comparable to the
     *  non-adaptive pipeline. */
    double repredStaticSeconds = 0;
    /** The circuit breaker degraded the remaining corpus to hybrid. */
    bool circuitBroken = false;
    /** Invariant facts demoted, in rollback order. */
    std::vector<dyn::Violation> demotions;
    /** Faults injected when config.faultSeed is non-zero. */
    std::vector<dyn::FaultInjection> injectedFaults;
};

/**
 * OptFT's rollback trigger (Section 2.3 + Section 4.2.4).
 *
 * An invariant violation always rolls back.  A race report additionally
 * forces rollback whenever lock elision is active *anywhere* in the
 * plan — not merely at the reported pair — because an elided lock
 * removes happens-before edges globally: the false race it introduces
 * can surface between accesses that never touch the elided lock
 * (Figure 4).  There is no per-race attribution that is sound without
 * re-running, so the global condition is deliberately conservative;
 * the sound re-analysis then confirms or discards the report.
 */
bool optFtShouldRollBack(bool invariantViolated, bool racesReported,
                         bool lockElisionActive);

/** Run the whole OptFT pipeline on @p workload. */
OptFtResult runOptFt(const workloads::Workload &workload,
                     const OptFtConfig &config = {});

} // namespace oha::core
