#include "core/optft.h"

#include "analysis/lockset.h"
#include "dyn/fasttrack.h"
#include "dyn/invariant_checker.h"
#include "dyn/plans.h"
#include "profile/profiler.h"

namespace oha::core {

namespace {

using RacePairs = std::set<std::pair<InstrId, InstrId>>;

/** Run one execution with a FastTrack tool under @p plan. */
struct FtRun
{
    exec::RunResult result;
    RacePairs races;
    exec::EventCounts ftDelivered;
    exec::EventCounts checkerDelivered;
    std::uint64_t slowChecks = 0;
    bool violated = false;
};

FtRun
runFastTrack(const ir::Module &module, const exec::ExecConfig &config,
             const exec::InstrumentationPlan &plan,
             dyn::InvariantChecker *checker = nullptr)
{
    FtRun out;
    dyn::FastTrack tool;
    exec::Interpreter interp(module, config);
    interp.attach(&tool, &plan);
    if (checker) {
        checker->setInterpreter(&interp);
        interp.attach(checker, &checker->plan());
    }
    out.result = interp.run();
    out.races = tool.racePairs();
    out.ftDelivered = out.result.delivered[0];
    if (checker) {
        out.checkerDelivered = out.result.delivered[1];
        out.slowChecks = checker->slowContextChecks();
        out.violated = checker->violated();
    }
    return out;
}

/**
 * No-custom-sync calibration (Section 4.2.4): propose eliding
 * lock/unlock sites whose critical sections contain no remaining
 * dynamic checks, validate against a sound FastTrack on profiling
 * inputs, and withdraw candidates that produce false races.
 */
std::set<InstrId>
calibrateLockElision(const ir::Module &module,
                     const inv::InvariantSet &invariants,
                     const analysis::StaticRaceResult &predicated,
                     const workloads::Workload &workload,
                     std::size_t calibrationRuns)
{
    // Candidate lock sites: no potentially-racy access holds them.
    analysis::AndersenOptions aopts;
    aopts.invariants = &invariants;
    const analysis::AndersenResult andersen =
        analysis::runAndersen(module, aopts);
    const analysis::LocksetAnalysis locksets(module, andersen,
                                             &invariants);

    std::set<InstrId> guardingSites;
    for (InstrId access : predicated.racyAccesses) {
        const auto &held = locksets.locksHeldAt(access);
        guardingSites.insert(held.begin(), held.end());
    }

    std::set<InstrId> lockSites, unlockSites;
    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        const ir::Instruction &ins = module.instr(id);
        if (!invariants.blockVisited(ins.block))
            continue;
        if (ins.op == ir::Opcode::Lock)
            lockSites.insert(id);
        else if (ins.op == ir::Opcode::Unlock)
            unlockSites.insert(id);
    }

    std::set<InstrId> candidates;
    for (InstrId lock : lockSites)
        if (!guardingSites.count(lock))
            candidates.insert(lock);

    auto elidableWithUnlocks = [&](const std::set<InstrId> &locks) {
        std::set<InstrId> all = locks;
        // An unlock is elidable when every lock site it may release
        // is elided.
        for (InstrId unlock : unlockSites) {
            const SparseBitSet targets = andersen.pointerTargets(unlock);
            bool allElided = true;
            for (InstrId lock : lockSites) {
                if (andersen.pointerTargets(lock).intersects(targets) &&
                    !locks.count(lock)) {
                    allElided = false;
                    break;
                }
            }
            if (allElided)
                all.insert(unlock);
        }
        return all;
    };

    const exec::InstrumentationPlan soundPlan =
        dyn::fullFastTrackPlan(module);

    const std::size_t runs =
        std::min(calibrationRuns, workload.profilingSet.size());
    while (!candidates.empty()) {
        inv::InvariantSet trial = invariants;
        trial.elidableLockSites = elidableWithUnlocks(candidates);
        const exec::InstrumentationPlan optPlan =
            dyn::optimisticFastTrackPlan(module, predicated.racyAccesses,
                                         trial);

        std::set<InstrId> falseRaceFuncs;
        bool mismatch = false;
        for (std::size_t i = 0; i < runs; ++i) {
            const auto &config = workload.profilingSet[i];
            const FtRun optimistic =
                runFastTrack(module, config, optPlan);
            const FtRun sound = runFastTrack(module, config, soundPlan);
            for (const auto &race : optimistic.races) {
                if (!sound.races.count(race)) {
                    mismatch = true;
                    falseRaceFuncs.insert(module.instr(race.first).func);
                    falseRaceFuncs.insert(module.instr(race.second).func);
                }
            }
        }
        if (!mismatch)
            break;

        // Restore instrumentation for offending locks: candidates in
        // the functions involved in false races (fall back to popping
        // one candidate if the heuristic makes no progress).
        bool removed = false;
        for (auto it = candidates.begin(); it != candidates.end();) {
            const ir::Instruction &lock = module.instr(*it);
            bool offending = falseRaceFuncs.count(lock.func) > 0;
            if (!offending) {
                // Figure 4: the lost edge may order accesses in other
                // functions; treat locks in the offending *thread
                // region* conservatively by also matching callers.
                offending = false;
            }
            if (offending) {
                it = candidates.erase(it);
                removed = true;
            } else {
                ++it;
            }
        }
        if (!removed)
            candidates.erase(std::prev(candidates.end()));
    }

    return candidates.empty() ? std::set<InstrId>{}
                              : elidableWithUnlocks(candidates);
}

} // namespace

OptFtResult
runOptFt(const workloads::Workload &workload, const OptFtConfig &config)
{
    OHA_ASSERT(workload.race, "runOptFt needs a race workload");
    const ir::Module &module = *workload.module;
    const CostModel &cost = config.cost;

    OptFtResult result;
    result.name = workload.name;

    // ---- Phase 1: likely-invariant profiling -------------------------
    prof::ProfilingCampaign campaign(module, {});
    std::size_t unchanged = 0;
    for (const auto &input : workload.profilingSet) {
        if (campaign.numRuns() >= config.maxProfileRuns ||
            unchanged >= config.convergenceWindow) {
            break;
        }
        unchanged = campaign.addRun(input) ? 0 : unchanged + 1;
    }
    inv::InvariantSet invariants =
        config.aggressiveLucMinVisits > 1
            ? campaign.invariantsWithAggressiveLuc(
                  config.aggressiveLucMinVisits)
            : campaign.invariants();
    result.profileRunsUsed = campaign.numRuns();

    // ---- Phase 2: static analyses -------------------------------------
    const analysis::StaticRaceResult sound =
        analysis::runStaticRaceDetector(module, nullptr);
    const analysis::StaticRaceResult predicated =
        analysis::runStaticRaceDetector(module, &invariants);
    result.soundStaticSeconds =
        double(sound.workUnits) / cost.staticUnitsPerSecond * cost.offlineScale;
    result.predStaticSeconds =
        double(predicated.workUnits) / cost.staticUnitsPerSecond * cost.offlineScale;
    result.staticallyRaceFree = sound.racyAccesses.empty();
    result.soundRacyAccesses = sound.racyAccesses.size();
    result.predRacyAccesses = predicated.racyAccesses.size();

    // ---- Phase 2b: no-custom-sync calibration -------------------------
    std::uint64_t calibrationSteps = 0;
    invariants.elidableLockSites = calibrateLockElision(
        module, invariants, predicated, workload,
        config.customSyncCalibrationRuns);
    result.elidedLockSites = invariants.elidableLockSites.size();
    // Calibration executions count as profiling cost.
    for (std::size_t i = 0;
         i < std::min(config.customSyncCalibrationRuns,
                      workload.profilingSet.size());
         ++i) {
        exec::Interpreter probe(module, workload.profilingSet[i]);
        calibrationSteps += probe.run().steps;
    }
    result.profileSeconds =
        (double(campaign.profiledSteps()) +
         2.0 * double(calibrationSteps)) *
        cost.profilingOverhead / cost.unitsPerSecond * cost.offlineScale;

    // ---- Phase 3: dynamic analysis over the testing corpus ------------
    const auto fullPlan = dyn::fullFastTrackPlan(module);
    const auto hybridPlan =
        dyn::hybridFastTrackPlan(module, sound.racyAccesses);
    const auto optPlan = dyn::optimisticFastTrackPlan(
        module, predicated.racyAccesses, invariants);

    dyn::CheckerConfig checkerConfig;
    checkerConfig.callContexts = false;

    std::set<std::pair<InstrId, InstrId>> allRaces;
    for (const auto &input : workload.testingSet) {
        // Full FastTrack (the sound reference).
        const FtRun full = runFastTrack(module, input, fullPlan);
        result.fastTrack.add(
            priceFastTrackRun(cost, full.result, full.ftDelivered));
        allRaces.insert(full.races.begin(), full.races.end());

        // Hybrid FastTrack.
        const FtRun hybrid = runFastTrack(module, input, hybridPlan);
        result.hybridFt.add(
            priceFastTrackRun(cost, hybrid.result, hybrid.ftDelivered));
        if (hybrid.races != full.races)
            result.raceReportsMatch = false;

        // OptFT: speculative run + rollback on mis-speculation.
        dyn::InvariantChecker checker(module, invariants, checkerConfig);
        const FtRun optimistic =
            runFastTrack(module, input, optPlan, &checker);
        RunCost optCost = priceFastTrackRun(
            cost, optimistic.result, optimistic.ftDelivered,
            &optimistic.checkerDelivered, optimistic.slowChecks);

        RacePairs finalRaces = optimistic.races;
        const bool raceUnderElision =
            !optimistic.races.empty() &&
            !invariants.elidableLockSites.empty();
        if (optimistic.violated || raceUnderElision) {
            // Roll back: deterministic re-execution under the sound
            // hybrid configuration (Section 2.3).
            ++result.misSpeculations;
            const FtRun redo = runFastTrack(module, input, hybridPlan);
            const RunCost redoCost = priceFastTrackRun(
                cost, redo.result, redo.ftDelivered);
            optCost.rollback = redoCost.total();
            finalRaces = redo.races;
        }
        result.optFt.add(optCost);
        if (finalRaces != full.races)
            result.raceReportsMatch = false;
    }

    result.testRuns = workload.testingSet.size();
    result.racesObserved = allRaces.size();
    result.baselineSeconds = result.fastTrack.base / cost.unitsPerSecond;

    // ---- Derived metrics ----------------------------------------------
    const double normFt = result.fastTrack.normalized();
    const double normHybrid = result.hybridFt.normalized();
    const double normOpt = result.optFt.normalized();
    if (normOpt > 0) {
        result.speedupVsFastTrack = normFt / normOpt;
        result.speedupVsHybrid = normHybrid / normOpt;
    }

    // Break-even: T such that upfront_opt + norm_opt*T equals the
    // competitor's upfront + norm*T (T in baseline seconds).
    const double upfrontOpt =
        result.profileSeconds + result.predStaticSeconds;
    auto breakEven = [&](double upfrontOther, double normOther) {
        if (normOther <= normOpt)
            return -1.0;
        return (upfrontOpt - upfrontOther) / (normOther - normOpt);
    };
    result.breakEvenVsHybrid =
        breakEven(result.soundStaticSeconds, normHybrid);
    result.breakEvenVsFastTrack = breakEven(0.0, normFt);

    return result;
}

} // namespace oha::core
