#include "core/optft.h"

#include "analysis/andersen_cache.h"
#include "analysis/lockset.h"
#include "dyn/fasttrack.h"
#include "dyn/invariant_checker.h"
#include "dyn/plans.h"
#include "exec/trace.h"
#include "profile/profiler.h"
#include "support/thread_pool.h"

namespace oha::core {

namespace {

using RacePairs = std::set<std::pair<InstrId, InstrId>>;

/** Run one execution with a FastTrack tool under @p plan. */
struct FtRun
{
    exec::RunResult result;
    RacePairs races;
    exec::EventCounts ftDelivered;
    exec::EventCounts checkerDelivered;
    std::uint64_t slowChecks = 0;
    bool violated = false;
};

FtRun
runFastTrack(const ir::Module &module, const exec::ExecConfig &config,
             const exec::InstrumentationPlan &plan,
             dyn::InvariantChecker *checker = nullptr)
{
    FtRun out;
    dyn::FastTrack tool;
    exec::Interpreter interp(module, config);
    interp.attach(&tool, &plan);
    if (checker) {
        checker->setControl(&interp);
        interp.attach(checker, &checker->plan());
    }
    out.result = interp.run();
    out.races = tool.racePairs();
    out.ftDelivered = out.result.delivered[0];
    if (checker) {
        out.checkerDelivered = out.result.delivered[1];
        out.slowChecks = checker->slowContextChecks();
        out.violated = checker->violated();
    }
    return out;
}

/** Same analysis, driven from a recorded trace instead of a live
 *  interpreter (record-once/analyze-many).  Byte-identical results. */
FtRun
replayFastTrack(const ir::Module &module, const exec::RecordedTrace &trace,
                const exec::InstrumentationPlan &plan,
                dyn::InvariantChecker *checker = nullptr)
{
    FtRun out;
    dyn::FastTrack tool;
    exec::TraceReplayer replayer(module, trace);
    replayer.attach(&tool, &plan);
    if (checker) {
        checker->setControl(&replayer);
        replayer.attach(checker, &checker->plan());
    }
    out.result = replayer.run();
    out.races = tool.racePairs();
    out.ftDelivered = out.result.delivered[0];
    if (checker) {
        out.checkerDelivered = out.result.delivered[1];
        out.slowChecks = checker->slowContextChecks();
        out.violated = checker->violated();
    }
    return out;
}

/**
 * No-custom-sync calibration (Section 4.2.4): propose eliding
 * lock/unlock sites whose critical sections contain no remaining
 * dynamic checks, validate against a sound FastTrack on profiling
 * inputs, and withdraw candidates that produce false races.
 */
std::set<InstrId>
calibrateLockElision(const ir::Module &module,
                     const inv::InvariantSet &invariants,
                     const analysis::StaticRaceResult &predicated,
                     const workloads::Workload &workload,
                     std::size_t calibrationRuns, std::size_t threads,
                     const std::vector<exec::RecordedTrace> *traces)
{
    // Candidate lock sites: no potentially-racy access holds them.
    // This is the same predicated CI configuration the static race
    // detector just solved, so the memo cache serves it back for free.
    analysis::AndersenOptions aopts;
    aopts.invariants = &invariants;
    const std::shared_ptr<const analysis::AndersenResult> andersenSp =
        analysis::runAndersenMemo(workload.module, aopts);
    const analysis::AndersenResult &andersen = *andersenSp;
    const analysis::LocksetAnalysis locksets(module, andersen,
                                             &invariants);

    std::set<InstrId> guardingSites;
    for (InstrId access : predicated.racyAccesses) {
        const auto &held = locksets.locksHeldAt(access);
        guardingSites.insert(held.begin(), held.end());
    }

    std::set<InstrId> lockSites, unlockSites;
    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        const ir::Instruction &ins = module.instr(id);
        if (!invariants.blockVisited(ins.block))
            continue;
        if (ins.op == ir::Opcode::Lock)
            lockSites.insert(id);
        else if (ins.op == ir::Opcode::Unlock)
            unlockSites.insert(id);
    }

    std::set<InstrId> candidates;
    for (InstrId lock : lockSites)
        if (!guardingSites.count(lock))
            candidates.insert(lock);

    auto elidableWithUnlocks = [&](const std::set<InstrId> &locks) {
        std::set<InstrId> all = locks;
        // An unlock is elidable when every lock site it may release
        // is elided.
        for (InstrId unlock : unlockSites) {
            const SparseBitSet targets = andersen.pointerTargets(unlock);
            bool allElided = true;
            for (InstrId lock : lockSites) {
                if (andersen.pointerTargets(lock).intersects(targets) &&
                    !locks.count(lock)) {
                    allElided = false;
                    break;
                }
            }
            if (allElided)
                all.insert(unlock);
        }
        return all;
    };

    const exec::InstrumentationPlan soundPlan =
        dyn::fullFastTrackPlan(module);

    const std::size_t runs =
        std::min(calibrationRuns, workload.profilingSet.size());
    OHA_ASSERT(!traces || traces->size() >= runs,
               "calibration traces must cover the calibration runs");

    // Each calibration execution comes either from a live run or — in
    // record-once mode — from replaying the input's recorded trace,
    // so every round of the elision loop reuses the same captures.
    auto calibRaces = [&](std::size_t i,
                          const exec::InstrumentationPlan &plan) {
        if (traces)
            return replayFastTrack(module, (*traces)[i], plan).races;
        return runFastTrack(module, workload.profilingSet[i], plan).races;
    };

    // The sound reference races are loop-invariant (the plan never
    // changes across rounds): compute them once, batched.
    const std::vector<RacePairs> soundRaces = support::runBatch(
        runs,
        [&](std::size_t i) { return calibRaces(i, soundPlan); },
        threads);

    while (!candidates.empty()) {
        inv::InvariantSet trial = invariants;
        trial.elidableLockSites = elidableWithUnlocks(candidates);
        const exec::InstrumentationPlan optPlan =
            dyn::optimisticFastTrackPlan(module, predicated.racyAccesses,
                                         trial);

        // Validate every calibration trial of this round concurrently.
        const std::vector<RacePairs> optRaces = support::runBatch(
            runs,
            [&](std::size_t i) { return calibRaces(i, optPlan); },
            threads);

        std::set<InstrId> falseRaceFuncs;
        bool mismatch = false;
        for (std::size_t i = 0; i < runs; ++i) {
            for (const auto &race : optRaces[i]) {
                if (!soundRaces[i].count(race)) {
                    mismatch = true;
                    falseRaceFuncs.insert(module.instr(race.first).func);
                    falseRaceFuncs.insert(module.instr(race.second).func);
                }
            }
        }
        if (!mismatch)
            break;

        // Restore instrumentation for offending locks: candidates in
        // the functions involved in false races (fall back to popping
        // one candidate if the heuristic makes no progress).
        bool removed = false;
        for (auto it = candidates.begin(); it != candidates.end();) {
            const ir::Instruction &lock = module.instr(*it);
            bool offending = falseRaceFuncs.count(lock.func) > 0;
            if (!offending) {
                // Figure 4: the lost edge may order accesses in other
                // functions; treat locks in the offending *thread
                // region* conservatively by also matching callers.
                offending = false;
            }
            if (offending) {
                it = candidates.erase(it);
                removed = true;
            } else {
                ++it;
            }
        }
        if (!removed)
            candidates.erase(std::prev(candidates.end()));
    }

    return candidates.empty() ? std::set<InstrId>{}
                              : elidableWithUnlocks(candidates);
}

} // namespace

bool
optFtShouldRollBack(bool invariantViolated, bool racesReported,
                    bool lockElisionActive)
{
    // See the header: a race report only implies possible
    // mis-speculation when a lost happens-before edge could have
    // produced it, i.e. when any lock site is elided — and then
    // globally, because the false race need not involve the elided
    // lock itself.
    return invariantViolated || (racesReported && lockElisionActive);
}

OptFtResult
runOptFt(const workloads::Workload &workload, const OptFtConfig &config)
{
    OHA_ASSERT(workload.race, "runOptFt needs a race workload");
    const ir::Module &module = *workload.module;
    const CostModel &cost = config.cost;

    OptFtResult result;
    result.name = workload.name;

    // ---- Phase 1: likely-invariant profiling -------------------------
    prof::ProfileOptions profOptions;
    profOptions.threads = config.threads;
    prof::ProfilingCampaign campaign(module, profOptions);
    campaign.addRunsUntilConverged(workload.profilingSet,
                                   config.maxProfileRuns,
                                   config.convergenceWindow);
    inv::InvariantSet invariants =
        config.aggressiveLucMinVisits > 1
            ? campaign.invariantsWithAggressiveLuc(
                  config.aggressiveLucMinVisits)
            : campaign.invariants();
    result.profileRunsUsed = campaign.numRuns();

    // ---- Phase 2: static analyses -------------------------------------
    // Sound and predicated detectors are independent; run them
    // concurrently (collected in index order for determinism) and
    // route them through the static-result memo, so calibration
    // sweeps with converged invariants reuse whole detector outputs.
    const auto detectors = support::runBatch(
        2,
        [&](std::size_t i) {
            return analysis::runStaticRaceDetectorMemo(
                workload.module, i == 0 ? nullptr : &invariants);
        },
        config.threads);
    const analysis::StaticRaceResult &sound = *detectors[0];
    const analysis::StaticRaceResult &predicated = *detectors[1];
    result.soundStaticSeconds =
        double(sound.workUnits) / cost.staticUnitsPerSecond * cost.offlineScale;
    result.predStaticSeconds =
        double(predicated.workUnits) / cost.staticUnitsPerSecond * cost.offlineScale;
    result.staticallyRaceFree = sound.racyAccesses.empty();
    result.soundRacyAccesses = sound.racyAccesses.size();
    result.predRacyAccesses = predicated.racyAccesses.size();

    // ---- Phase 2b: no-custom-sync calibration -------------------------
    const std::size_t calibRuns = std::min(
        config.customSyncCalibrationRuns, workload.profilingSet.size());
    // In record-once mode each calibration input is executed exactly
    // once; every elision round then replays the captures.
    std::vector<exec::RecordedTrace> calibTraces;
    if (config.useTraceReplay) {
        calibTraces = support::runBatch(
            calibRuns,
            [&](std::size_t i) {
                return exec::recordRun(module, workload.profilingSet[i]);
            },
            config.threads);
    }
    std::uint64_t calibrationSteps = 0;
    invariants.elidableLockSites = calibrateLockElision(
        module, invariants, predicated, workload, calibRuns,
        config.threads, config.useTraceReplay ? &calibTraces : nullptr);
    result.elidedLockSites = invariants.elidableLockSites.size();
    // Calibration executions count as profiling cost.  The recording
    // run's step count is the uninstrumented step count, so both modes
    // price identically.
    if (config.useTraceReplay) {
        for (const exec::RecordedTrace &trace : calibTraces)
            calibrationSteps += trace.result.steps;
    } else {
        const std::vector<std::uint64_t> probeSteps = support::runBatch(
            calibRuns,
            [&](std::size_t i) {
                exec::Interpreter probe(module, workload.profilingSet[i]);
                return probe.run().steps;
            },
            config.threads);
        for (std::uint64_t steps : probeSteps)
            calibrationSteps += steps;
    }
    result.profileSeconds =
        (double(campaign.profiledSteps()) +
         2.0 * double(calibrationSteps)) *
        cost.profilingOverhead / cost.unitsPerSecond * cost.offlineScale;

    // ---- Phase 3: dynamic analysis over the testing corpus ------------
    const auto fullPlan = dyn::fullFastTrackPlan(module);
    const auto hybridPlan =
        dyn::hybridFastTrackPlan(module, sound.racyAccesses);
    const auto optPlan = dyn::optimisticFastTrackPlan(
        module, predicated.racyAccesses, invariants);

    dyn::CheckerConfig checkerConfig;
    checkerConfig.callContexts = false;

    // Each testing input is an independent evaluation job (full,
    // hybrid and speculative runs plus the deterministic rollback
    // re-execution); jobs run batched and their outcomes are folded
    // into the result serially in input-index order, so accumulation
    // — including floating-point cost sums — is identical for any
    // thread count.
    struct TestEval
    {
        FtRun full;
        FtRun hybrid;
        FtRun optimistic;
        bool rolledBack = false;
        FtRun redo;
        std::uint64_t interpreted = 0; ///< guest steps fetch/decode/eval'd
    };
    const std::vector<TestEval> evals = support::runBatch(
        workload.testingSet.size(),
        [&](std::size_t i) {
            const auto &input = workload.testingSet[i];
            TestEval eval;
            if (config.useTraceReplay) {
                // Record once, analyze many: one uninstrumented
                // execution captures the event stream; every analysis
                // configuration replays it.
                const exec::RecordedTrace trace =
                    exec::recordRun(module, input);
                eval.interpreted = trace.result.steps;
                eval.full = replayFastTrack(module, trace, fullPlan);
                eval.hybrid = replayFastTrack(module, trace, hybridPlan);
                dyn::InvariantChecker checker(module, invariants,
                                              checkerConfig);
                eval.optimistic =
                    replayFastTrack(module, trace, optPlan, &checker);
                if (optFtShouldRollBack(
                        eval.optimistic.violated,
                        !eval.optimistic.races.empty(),
                        !invariants.elidableLockSites.empty())) {
                    // Rollback is a replay of the same trace under
                    // the sound hybrid plan; determinism makes that
                    // byte-identical to the hybrid replay above, so
                    // reuse it instead of decoding the stream again.
                    eval.rolledBack = true;
                    eval.redo = eval.hybrid;
                }
            } else {
                // Full FastTrack (the sound reference).
                eval.full = runFastTrack(module, input, fullPlan);
                // Hybrid FastTrack.
                eval.hybrid = runFastTrack(module, input, hybridPlan);
                // OptFT: speculative run + rollback on mis-speculation.
                dyn::InvariantChecker checker(module, invariants,
                                              checkerConfig);
                eval.optimistic =
                    runFastTrack(module, input, optPlan, &checker);
                eval.interpreted = eval.full.result.steps +
                                   eval.hybrid.result.steps +
                                   eval.optimistic.result.steps;
                if (optFtShouldRollBack(
                        eval.optimistic.violated,
                        !eval.optimistic.races.empty(),
                        !invariants.elidableLockSites.empty())) {
                    // Roll back: deterministic re-execution under the
                    // sound hybrid configuration (Section 2.3).
                    eval.rolledBack = true;
                    eval.redo = runFastTrack(module, input, hybridPlan);
                    eval.interpreted += eval.redo.result.steps;
                }
            }
            return eval;
        },
        config.threads);

    std::set<std::pair<InstrId, InstrId>> allRaces;
    for (const TestEval &eval : evals) {
        result.fastTrack.add(priceFastTrackRun(cost, eval.full.result,
                                               eval.full.ftDelivered));
        allRaces.insert(eval.full.races.begin(), eval.full.races.end());

        result.hybridFt.add(priceFastTrackRun(cost, eval.hybrid.result,
                                              eval.hybrid.ftDelivered));
        if (eval.hybrid.races != eval.full.races)
            result.raceReportsMatch = false;

        RunCost optCost = priceFastTrackRun(
            cost, eval.optimistic.result, eval.optimistic.ftDelivered,
            &eval.optimistic.checkerDelivered, eval.optimistic.slowChecks);
        RacePairs finalRaces = eval.optimistic.races;
        if (eval.rolledBack) {
            ++result.misSpeculations;
            const RunCost redoCost = priceFastTrackRun(
                cost, eval.redo.result, eval.redo.ftDelivered);
            optCost.rollback = redoCost.total();
            finalRaces = eval.redo.races;
            // Additive metric: what the rollback costs when performed
            // as a trace replay instead of the re-execution priced
            // above.  eval.redo.result is identical in both modes, so
            // this stays parity-comparable.
            result.replayRollbackSeconds +=
                priceTraceReplaySeconds(cost, eval.redo.result);
        }
        result.optFt.add(optCost);
        if (finalRaces != eval.full.races)
            result.raceReportsMatch = false;

        // Execute-once accounting.  The recording run is event- and
        // step-identical to the full-plan run's underlying execution,
        // so pricing from eval.full.result keeps both modes equal.
        result.interpretedSteps += eval.interpreted;
        result.recordSeconds +=
            priceTraceRecordSeconds(cost, eval.full.result);
        if (config.useTraceReplay) {
            result.replayedEvents += eval.full.result.totalEvents.total() +
                                     eval.hybrid.result.totalEvents.total() +
                                     eval.optimistic.result.totalEvents.total();
        }
    }

    result.testRuns = workload.testingSet.size();
    result.racesObserved = allRaces.size();
    result.baselineSeconds = result.fastTrack.base / cost.unitsPerSecond;

    // ---- Derived metrics ----------------------------------------------
    const double normFt = result.fastTrack.normalized();
    const double normHybrid = result.hybridFt.normalized();
    const double normOpt = result.optFt.normalized();
    if (normOpt > 0) {
        result.speedupVsFastTrack = normFt / normOpt;
        result.speedupVsHybrid = normHybrid / normOpt;
    }

    // Break-even: T such that upfront_opt + norm_opt*T equals the
    // competitor's upfront + norm*T (T in baseline seconds).
    const double upfrontOpt =
        result.profileSeconds + result.predStaticSeconds;
    auto breakEven = [&](double upfrontOther, double normOther) {
        if (normOther <= normOpt)
            return -1.0;
        return (upfrontOpt - upfrontOther) / (normOther - normOpt);
    };
    result.breakEvenVsHybrid =
        breakEven(result.soundStaticSeconds, normHybrid);
    result.breakEvenVsFastTrack = breakEven(0.0, normFt);

    return result;
}

} // namespace oha::core
