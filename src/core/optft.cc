#include "core/optft.h"

#include "analysis/andersen_cache.h"
#include "analysis/callgraph.h"
#include "analysis/lockset.h"
#include "core/recovery.h"
#include "dyn/fasttrack.h"
#include "dyn/invariant_checker.h"
#include "dyn/plans.h"
#include "exec/trace.h"
#include "exec/trace_cache.h"
#include "profile/observation_cache.h"
#include "profile/profiler.h"
#include "support/env.h"
#include "support/thread_pool.h"

namespace oha::core {

namespace {

using RacePairs = std::set<std::pair<InstrId, InstrId>>;

/** Run one execution with a FastTrack tool under @p plan. */
struct FtRun
{
    exec::RunResult result;
    RacePairs races;
    exec::EventCounts ftDelivered;
    exec::EventCounts checkerDelivered;
    std::uint64_t slowChecks = 0;
    bool violated = false;
};

FtRun
runFastTrack(const ir::Module &module, const exec::ExecConfig &config,
             const exec::InstrumentationPlan &plan,
             dyn::InvariantChecker *checker = nullptr)
{
    FtRun out;
    dyn::FastTrack tool;
    exec::Interpreter interp(module, config);
    interp.attach(&tool, &plan);
    if (checker) {
        checker->setControl(&interp);
        interp.attach(checker, &checker->plan());
    }
    out.result = interp.run();
    out.races = tool.racePairs();
    out.ftDelivered = out.result.delivered[0];
    if (checker) {
        out.checkerDelivered = out.result.delivered[1];
        out.slowChecks = checker->slowContextChecks();
        out.violated = checker->violated();
    }
    return out;
}

/** Same analysis, driven from a recorded trace instead of a live
 *  interpreter (record-once/analyze-many).  Byte-identical results. */
FtRun
replayFastTrack(const ir::Module &module, const exec::RecordedTrace &trace,
                const exec::InstrumentationPlan &plan,
                dyn::InvariantChecker *checker = nullptr)
{
    FtRun out;
    dyn::FastTrack tool;
    exec::TraceReplayer replayer(module, trace);
    replayer.attach(&tool, &plan);
    if (checker) {
        checker->setControl(&replayer);
        replayer.attach(checker, &checker->plan());
    }
    out.result = replayer.run();
    out.races = tool.racePairs();
    out.ftDelivered = out.result.delivered[0];
    if (checker) {
        out.checkerDelivered = out.result.delivered[1];
        out.slowChecks = checker->slowContextChecks();
        out.violated = checker->violated();
    }
    return out;
}

/**
 * Sharded replay of one FastTrack analysis: @p numShards workers each
 * decode the full stream but analyze only their slice of shadow
 * memory (obj % numShards); sync/spawn/join and thread-lifecycle
 * events are broadcast to every shard, so all shards maintain
 * identical vector clocks and each memory cell is checked by exactly
 * one.  The merged result is byte-identical to replayFastTrack():
 * races are the deterministic union of the disjoint per-shard sets,
 * stream-level fields (status, steps, outputs, totalEvents) are
 * shard-invariant, and delivered Load/Store counts sum across the
 * partition back to the serial counts.  Checker-attached (optimistic)
 * replays cannot shard — the checker's abort must see every access in
 * stream order — so only the full/hybrid reference evaluations take
 * this path.
 */
FtRun
replayFastTrackSharded(const ir::Module &module,
                       const exec::RecordedTrace &trace,
                       const exec::InstrumentationPlan &plan,
                       std::uint32_t numShards, std::size_t threads)
{
    if (numShards <= 1)
        return replayFastTrack(module, trace, plan);

    struct ShardOut
    {
        exec::RunResult result;
        std::set<dyn::RaceReport> races;
    };
    const std::vector<ShardOut> shards = support::runBatch(
        numShards,
        [&](std::size_t s) {
            ShardOut out;
            dyn::FastTrack tool;
            tool.setShardFilter(static_cast<std::uint32_t>(s), numShards);
            exec::TraceReplayer replayer(module, trace);
            replayer.setShardFilter(static_cast<std::uint32_t>(s),
                                    numShards);
            replayer.attach(&tool, &plan);
            out.result = replayer.run();
            out.races = tool.races();
            return out;
        },
        threads);

    std::vector<std::set<dyn::RaceReport>> raceSets;
    raceSets.reserve(shards.size());
    for (const ShardOut &shard : shards)
        raceSets.push_back(shard.races);
    const std::set<dyn::RaceReport> merged = dyn::mergeShardRaces(raceSets);

    FtRun out;
    out.result = shards[0].result;
    exec::EventCounts &delivered = out.result.delivered[0];
    for (std::size_t s = 1; s < shards.size(); ++s) {
        delivered[exec::EventClass::Load] +=
            shards[s].result.delivered[0][exec::EventClass::Load];
        delivered[exec::EventClass::Store] +=
            shards[s].result.delivered[0][exec::EventClass::Store];
    }
    out.ftDelivered = delivered;
    for (const dyn::RaceReport &race : merged)
        out.races.insert({race.first, race.second});
    return out;
}

/** Lock and unlock sites in profiled-visited code. */
struct LockSiteSets
{
    std::set<InstrId> locks;
    std::set<InstrId> unlocks;
};

LockSiteSets
collectLockSites(const ir::Module &module,
                 const inv::InvariantSet &invariants)
{
    LockSiteSets sites;
    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        const ir::Instruction &ins = module.instr(id);
        if (!invariants.blockVisited(ins.block))
            continue;
        if (ins.op == ir::Opcode::Lock)
            sites.locks.insert(id);
        else if (ins.op == ir::Opcode::Unlock)
            sites.unlocks.insert(id);
    }
    return sites;
}

/** Lock sites held at some potentially-racy access (these must keep
 *  their instrumentation: they order the accesses the dynamic
 *  detector still watches). */
std::set<InstrId>
guardingLockSites(const ir::Module &module,
                  const analysis::AndersenResult &andersen,
                  const inv::InvariantSet &invariants,
                  const std::set<InstrId> &racyAccesses)
{
    const analysis::LocksetAnalysis locksets(module, andersen,
                                             &invariants);
    std::set<InstrId> guarding;
    for (InstrId access : racyAccesses) {
        const auto &held = locksets.locksHeldAt(access);
        guarding.insert(held.begin(), held.end());
    }
    return guarding;
}

/** Close an elided-lock set over its unlocks: an unlock is elidable
 *  when every lock site it may release is elided. */
std::set<InstrId>
elidableWithUnlocks(const analysis::AndersenResult &andersen,
                    const LockSiteSets &sites,
                    const std::set<InstrId> &locks)
{
    std::set<InstrId> all = locks;
    for (InstrId unlock : sites.unlocks) {
        const SparseBitSet targets = andersen.pointerTargets(unlock);
        bool allElided = true;
        for (InstrId lock : sites.locks) {
            if (andersen.pointerTargets(lock).intersects(targets) &&
                !locks.count(lock)) {
                allElided = false;
                break;
            }
        }
        if (allElided)
            all.insert(unlock);
    }
    return all;
}

/**
 * No-custom-sync calibration (Section 4.2.4): propose eliding
 * lock/unlock sites whose critical sections contain no remaining
 * dynamic checks, validate against a sound FastTrack on profiling
 * inputs, and withdraw candidates that produce false races.
 */
std::set<InstrId>
calibrateLockElision(const ir::Module &module,
                     const inv::InvariantSet &invariants,
                     const analysis::StaticRaceResult &predicated,
                     const workloads::Workload &workload,
                     std::size_t calibrationRuns, std::size_t threads,
                     std::uint32_t solverThreads,
                     const std::vector<
                         std::shared_ptr<const exec::RecordedTrace>>
                         *traces)
{
    // Candidate lock sites: no potentially-racy access holds them.
    // This is the same predicated CI configuration the static race
    // detector just solved, so the memo cache serves it back for free.
    analysis::AndersenOptions aopts;
    aopts.invariants = &invariants;
    aopts.solverThreads = solverThreads;
    const std::shared_ptr<const analysis::AndersenResult> andersenSp =
        analysis::runAndersenMemo(workload.module, aopts);
    const analysis::AndersenResult &andersen = *andersenSp;

    const std::set<InstrId> guardingSites = guardingLockSites(
        module, andersen, invariants, predicated.racyAccesses);
    const LockSiteSets sites = collectLockSites(module, invariants);

    std::set<InstrId> candidates;
    for (InstrId lock : sites.locks)
        if (!guardingSites.count(lock))
            candidates.insert(lock);

    // For withdrawing offenders below: which functions each false
    // race implicates, including their direct callees.
    const analysis::CallGraph callgraph(module, andersen, &invariants);

    const exec::InstrumentationPlan soundPlan =
        dyn::fullFastTrackPlan(module);

    const std::size_t runs =
        std::min(calibrationRuns, workload.profilingSet.size());
    OHA_ASSERT(!traces || traces->size() >= runs,
               "calibration traces must cover the calibration runs");

    // Each calibration execution comes either from a live run or — in
    // record-once mode — from replaying the input's recorded trace,
    // so every round of the elision loop reuses the same captures.
    auto calibRaces = [&](std::size_t i,
                          const exec::InstrumentationPlan &plan) {
        if (traces)
            return replayFastTrack(module, *(*traces)[i], plan).races;
        return runFastTrack(module, workload.profilingSet[i], plan).races;
    };

    // The sound reference races are loop-invariant (the plan never
    // changes across rounds): compute them once, batched.
    const std::vector<RacePairs> soundRaces = support::runBatch(
        runs,
        [&](std::size_t i) { return calibRaces(i, soundPlan); },
        threads);

    while (!candidates.empty()) {
        inv::InvariantSet trial = invariants;
        trial.elidableLockSites =
            elidableWithUnlocks(andersen, sites, candidates);
        const exec::InstrumentationPlan optPlan =
            dyn::optimisticFastTrackPlan(module, predicated.racyAccesses,
                                         trial);

        // Validate every calibration trial of this round concurrently.
        const std::vector<RacePairs> optRaces = support::runBatch(
            runs,
            [&](std::size_t i) { return calibRaces(i, optPlan); },
            threads);

        std::set<InstrId> falseRaceFuncs;
        bool mismatch = false;
        for (std::size_t i = 0; i < runs; ++i) {
            for (const auto &race : optRaces[i]) {
                if (!soundRaces[i].count(race)) {
                    mismatch = true;
                    falseRaceFuncs.insert(module.instr(race.first).func);
                    falseRaceFuncs.insert(module.instr(race.second).func);
                }
            }
        }
        if (!mismatch)
            break;

        // Restore instrumentation for offending locks: candidates in
        // the functions involved in false races, plus — Figure 4: the
        // lost happens-before edge can surface as a false race in a
        // *caller* of the function whose lock was elided — candidates
        // in functions directly called from an implicated function
        // (fall back to popping one candidate if the heuristic makes
        // no progress).
        std::set<FuncId> offendingFuncs = falseRaceFuncs;
        for (FuncId func : falseRaceFuncs) {
            const std::set<FuncId> &callees = callgraph.callees(func);
            offendingFuncs.insert(callees.begin(), callees.end());
        }
        bool removed = false;
        for (auto it = candidates.begin(); it != candidates.end();) {
            const ir::Instruction &lock = module.instr(*it);
            if (offendingFuncs.count(lock.func) > 0) {
                it = candidates.erase(it);
                removed = true;
            } else {
                ++it;
            }
        }
        if (!removed)
            candidates.erase(std::prev(candidates.end()));
    }

    return candidates.empty()
               ? std::set<InstrId>{}
               : elidableWithUnlocks(andersen, sites, candidates);
}

/**
 * Adaptive recovery: a demotion can only grow the predicated
 * racy-access set, so calibrated elisions may now sit on locks that
 * guard racy accesses.  Keep the already-validated elided lock sites
 * that still guard nothing racy and re-derive the elidable unlocks
 * for the surviving set; never add new elisions — that would need
 * the calibration runs again.
 */
std::set<InstrId>
refilterElidableLocks(const std::shared_ptr<const ir::Module> &moduleSp,
                      const inv::InvariantSet &invariants,
                      const analysis::StaticRaceResult &predicated,
                      std::uint32_t solverThreads)
{
    if (invariants.elidableLockSites.empty())
        return {};
    const ir::Module &module = *moduleSp;
    analysis::AndersenOptions aopts;
    aopts.invariants = &invariants;
    aopts.solverThreads = solverThreads;
    const std::shared_ptr<const analysis::AndersenResult> andersenSp =
        analysis::runAndersenMemo(moduleSp, aopts);
    const analysis::AndersenResult &andersen = *andersenSp;

    const std::set<InstrId> guarding = guardingLockSites(
        module, andersen, invariants, predicated.racyAccesses);
    const LockSiteSets sites = collectLockSites(module, invariants);

    std::set<InstrId> kept;
    for (InstrId lock : sites.locks)
        if (invariants.elidableLockSites.count(lock) &&
            !guarding.count(lock))
            kept.insert(lock);
    if (kept.empty())
        return {};
    return elidableWithUnlocks(andersen, sites, kept);
}

} // namespace

bool
optFtShouldRollBack(bool invariantViolated, bool racesReported,
                    bool lockElisionActive)
{
    // See the header: a race report only implies possible
    // mis-speculation when a lost happens-before edge could have
    // produced it, i.e. when any lock site is elided — and then
    // globally, because the false race need not involve the elided
    // lock itself.
    return invariantViolated || (racesReported && lockElisionActive);
}

OptFtResult
runOptFt(const workloads::Workload &workload, const OptFtConfig &config)
{
    OHA_ASSERT(workload.race, "runOptFt needs a race workload");
    const ir::Module &module = *workload.module;
    const CostModel &cost = config.cost;

    OptFtResult result;
    result.name = workload.name;

    // ---- Phase 1: likely-invariant profiling -------------------------
    prof::ProfileOptions profOptions;
    profOptions.threads = config.threads;
    prof::ProfilingCampaign campaign(module, profOptions);
    prof::Observer observer;
    if (config.cacheProfileObservations)
        observer = [&](const exec::ExecConfig &input) {
            return prof::observeRunMemo(workload.module, profOptions,
                                        input);
        };
    campaign.addRunsUntilConverged(workload.profilingSet,
                                   config.maxProfileRuns,
                                   config.convergenceWindow, observer);
    inv::InvariantSet invariants =
        config.aggressiveLucMinVisits > 1
            ? campaign.invariantsWithAggressiveLuc(
                  config.aggressiveLucMinVisits)
            : campaign.invariants();
    result.profileRunsUsed = campaign.numRuns();

    // ---- Phase 1b: optional fault injection ---------------------------
    // Perturb the profiled invariants so the testing corpus provably
    // mis-speculates — exercises the rollback/demotion/circuit-breaker
    // machinery below on demand (tests, CI seed sweeps).
    if (config.faultSeed != 0) {
        dyn::FaultInjectorOptions injectOptions;
        injectOptions.seed = config.faultSeed;
        const dyn::FaultInjector injector(module, injectOptions);
        result.injectedFaults =
            injector.inject(invariants, workload.testingSet);
    }

    // ---- Phase 2: static analyses -------------------------------------
    // Sound and predicated detectors are independent; run them
    // concurrently (collected in index order for determinism) and
    // route them through the static-result memo, so calibration
    // sweeps with converged invariants reuse whole detector outputs.
    const auto detectors = support::runBatch(
        2,
        [&](std::size_t i) {
            return analysis::runStaticRaceDetectorMemo(
                workload.module, i == 0 ? nullptr : &invariants,
                config.solverThreads);
        },
        config.threads);
    const analysis::StaticRaceResult &sound = *detectors[0];
    // Mutable handle: adaptive recovery re-runs the predicated
    // detector (through the memo) after each demotion.
    std::shared_ptr<const analysis::StaticRaceResult> predicatedSp =
        detectors[1];
    const analysis::StaticRaceResult &predicated = *predicatedSp;
    result.soundStaticSeconds =
        double(sound.workUnits) / cost.staticUnitsPerSecond * cost.offlineScale;
    result.predStaticSeconds =
        double(predicated.workUnits) / cost.staticUnitsPerSecond * cost.offlineScale;
    result.staticallyRaceFree = sound.racyAccesses.empty();
    result.soundRacyAccesses = sound.racyAccesses.size();
    result.predRacyAccesses = predicated.racyAccesses.size();

    // ---- Phase 2b: no-custom-sync calibration -------------------------
    const std::size_t calibRuns = std::min(
        config.customSyncCalibrationRuns, workload.profilingSet.size());
    // In record-once mode each calibration input is executed exactly
    // once; every elision round then replays the captures.  With
    // cacheTraceCaptures the captures come from (and feed) the shared
    // cross-request cache, so a warm service request skips even that
    // one execution.
    auto capture = [&](const exec::ExecConfig &input) {
        return config.cacheTraceCaptures
                   ? exec::recordRunMemo(workload.module, input)
                   : std::make_shared<const exec::RecordedTrace>(
                         exec::recordRun(module, input));
    };
    std::vector<std::shared_ptr<const exec::RecordedTrace>> calibTraces;
    if (config.useTraceReplay) {
        calibTraces = support::runBatch(
            calibRuns,
            [&](std::size_t i) {
                return capture(workload.profilingSet[i]);
            },
            config.threads);
    }
    std::uint64_t calibrationSteps = 0;
    invariants.elidableLockSites = calibrateLockElision(
        module, invariants, predicated, workload, calibRuns,
        config.threads, config.solverThreads,
        config.useTraceReplay ? &calibTraces : nullptr);
    result.elidedLockSites = invariants.elidableLockSites.size();
    // Calibration executions count as profiling cost.  The recording
    // run's step count is the uninstrumented step count, so both modes
    // price identically.
    if (config.useTraceReplay) {
        for (const auto &trace : calibTraces)
            calibrationSteps += trace->result.steps;
    } else {
        const std::vector<std::uint64_t> probeSteps = support::runBatch(
            calibRuns,
            [&](std::size_t i) {
                exec::Interpreter probe(module, workload.profilingSet[i]);
                return probe.run().steps;
            },
            config.threads);
        for (std::uint64_t steps : probeSteps)
            calibrationSteps += steps;
    }
    result.profileSeconds =
        (double(campaign.profiledSteps()) +
         2.0 * double(calibrationSteps)) *
        cost.profilingOverhead / cost.unitsPerSecond * cost.offlineScale;

    // ---- Phase 3: dynamic analysis over the testing corpus ------------
    const auto fullPlan = dyn::fullFastTrackPlan(module);
    const auto hybridPlan =
        dyn::hybridFastTrackPlan(module, sound.racyAccesses);
    exec::InstrumentationPlan optPlan = dyn::optimisticFastTrackPlan(
        module, predicatedSp->racyAccesses, invariants);

    dyn::CheckerConfig checkerConfig;
    checkerConfig.callContexts = false;

    const std::size_t numTests = workload.testingSet.size();

    // Record once, analyze many: one uninstrumented execution per
    // input captures the event stream; every analysis configuration
    // (and every adaptive re-evaluation) replays it.
    std::vector<std::shared_ptr<const exec::RecordedTrace>> traces;
    if (config.useTraceReplay) {
        traces = support::runBatch(
            numTests,
            [&](std::size_t i) { return capture(workload.testingSet[i]); },
            config.threads);
    }

    // Reference runs.  Full and hybrid FastTrack do not depend on the
    // speculative plan, so they are evaluated once per input up
    // front; the hybrid result doubles as the deterministic rollback
    // re-analysis (identical by determinism) and as the degraded
    // configuration once the circuit breaker trips.
    struct RefEval
    {
        FtRun full;
        FtRun hybrid;
    };
    const auto replayShards = static_cast<std::uint32_t>(
        config.replayShards != 0
            ? std::min<std::size_t>(config.replayShards, 64)
            : support::envSizeBytes("OHA_REPLAY_SHARDS", 1, 1, 64));
    const std::vector<RefEval> refs = support::runBatch(
        numTests,
        [&](std::size_t i) {
            RefEval ref;
            if (config.useTraceReplay) {
                ref.full = replayFastTrackSharded(module, *traces[i],
                                                  fullPlan, replayShards,
                                                  config.threads);
                ref.hybrid = replayFastTrackSharded(module, *traces[i],
                                                    hybridPlan, replayShards,
                                                    config.threads);
            } else {
                ref.full = runFastTrack(module, workload.testingSet[i],
                                        fullPlan);
                ref.hybrid = runFastTrack(module, workload.testingSet[i],
                                          hybridPlan);
            }
            return ref;
        },
        config.threads);

    // Speculative runs, in adaptive rounds.  Each round batch-runs
    // the remaining inputs under the current optimistic plan, then
    // scans the outcomes serially in input-index order.  At the first
    // rollback the round stops: the lying invariant is demoted, the
    // predicated static phase re-runs through the memo cache, the
    // plan is rebuilt, and the next round restarts at the following
    // input — so results are exactly those of the serial repair loop
    // at any thread count (later same-round evaluations are
    // discarded, not folded).  A circuit breaker degrades the
    // remaining corpus to the sound hybrid configuration when the
    // repair budget or the observed misspeculation rate is exceeded.
    struct OptEval
    {
        FtRun optimistic;
        bool rolledBack = false;
        bool degraded = false;
        dyn::Violation violation;
    };
    std::vector<OptEval> opts(numTests);
    const RecoveryBreaker breaker{config.maxRepredications,
                                  config.misspecRateThreshold,
                                  config.minRunsForMisspecRate};
    std::uint64_t rollbacksSeen = 0;
    bool degraded = false;
    std::size_t next = 0;
    while (next < numTests) {
        if (degraded) {
            // Sound fallback: the rest of the corpus runs the hybrid
            // configuration (no speculation, no checker).  By
            // determinism that evaluation is identical to the hybrid
            // reference, so reuse it.
            for (std::size_t i = next; i < numTests; ++i) {
                opts[i].optimistic = refs[i].hybrid;
                opts[i].degraded = true;
            }
            break;
        }
        const std::size_t start = next;
        const std::vector<OptEval> round = support::runBatch(
            numTests - start,
            [&](std::size_t k) {
                const std::size_t i = start + k;
                OptEval eval;
                dyn::InvariantChecker checker(module, invariants,
                                              checkerConfig);
                eval.optimistic =
                    config.useTraceReplay
                        ? replayFastTrack(module, *traces[i], optPlan,
                                          &checker)
                        : runFastTrack(module, workload.testingSet[i],
                                       optPlan, &checker);
                if (optFtShouldRollBack(
                        eval.optimistic.violated,
                        !eval.optimistic.races.empty(),
                        !invariants.elidableLockSites.empty())) {
                    eval.rolledBack = true;
                    if (checker.violated()) {
                        eval.violation = checker.violation();
                    } else {
                        eval.violation.family =
                            dyn::ViolationFamily::ElidedLockRace;
                    }
                }
                return eval;
            },
            config.threads);

        next = numTests;
        for (std::size_t k = 0; k < round.size(); ++k) {
            const std::size_t i = start + k;
            opts[i] = round[k];
            if (!opts[i].rolledBack)
                continue;
            ++rollbacksSeen;
            if (!config.adaptiveRecovery)
                continue; // historical behavior: plan never changes
            const dyn::Violation &violation = opts[i].violation;
            if (breaker.tripped(result.repredications, rollbacksSeen,
                                i + 1)) {
                degraded = true;
                result.circuitBroken = true;
            } else if (!invariants.demote(violation)) {
                // Defensive: an unrepairable violation (nothing left
                // to remove) must degrade rather than spin.
                degraded = true;
                result.circuitBroken = true;
            } else {
                result.demotions.push_back(violation);
                ++result.repredications;
                if (violation.family !=
                    dyn::ViolationFamily::ElidedLockRace) {
                    // Re-predicate on the repaired invariants.  The
                    // memo keys on the invariant text, so repeated
                    // repairs of converging sets are incremental in
                    // practice.
                    predicatedSp = analysis::runStaticRaceDetectorMemo(
                        workload.module, &invariants,
                        config.solverThreads);
                    result.repredStaticSeconds +=
                        double(predicatedSp->workUnits) /
                        cost.staticUnitsPerSecond * cost.offlineScale;
                    invariants.elidableLockSites = refilterElidableLocks(
                        workload.module, invariants, *predicatedSp,
                        config.solverThreads);
                }
                optPlan = dyn::optimisticFastTrackPlan(
                    module, predicatedSp->racyAccesses, invariants);
            }
            next = i + 1; // discard this round's later evaluations
            break;
        }
    }

    // Fold the outcomes serially in input-index order, so
    // accumulation — including floating-point cost sums — is
    // identical for any thread count.
    std::set<std::pair<InstrId, InstrId>> allRaces;
    for (std::size_t i = 0; i < numTests; ++i) {
        const RefEval &ref = refs[i];
        const OptEval &opt = opts[i];
        result.fastTrack.add(priceFastTrackRun(cost, ref.full.result,
                                               ref.full.ftDelivered));
        allRaces.insert(ref.full.races.begin(), ref.full.races.end());

        result.hybridFt.add(priceFastTrackRun(cost, ref.hybrid.result,
                                              ref.hybrid.ftDelivered));
        if (ref.hybrid.races != ref.full.races)
            result.raceReportsMatch = false;

        RunCost optCost = priceFastTrackRun(
            cost, opt.optimistic.result, opt.optimistic.ftDelivered,
            &opt.optimistic.checkerDelivered, opt.optimistic.slowChecks);
        RacePairs finalRaces = opt.optimistic.races;
        if (opt.rolledBack) {
            ++result.misSpeculations;
            // Roll back: deterministic re-analysis under the sound
            // hybrid configuration (Section 2.3) — identical to the
            // hybrid reference by determinism, so reuse it.
            const FtRun &redo = ref.hybrid;
            const RunCost redoCost = priceFastTrackRun(
                cost, redo.result, redo.ftDelivered);
            optCost.rollback = redoCost.total();
            finalRaces = redo.races;
            // Additive metric: what the rollback costs when performed
            // as a trace replay instead of the re-execution priced
            // above.  redo.result is identical in both modes, so this
            // stays parity-comparable.
            result.replayRollbackSeconds +=
                priceTraceReplaySeconds(cost, redo.result);
        }
        result.optFt.add(optCost);
        if (finalRaces != ref.full.races)
            result.raceReportsMatch = false;

        // Execute-once accounting.  The recording run is event- and
        // step-identical to the full-plan run's underlying execution,
        // so pricing from ref.full.result keeps both modes equal.
        if (config.useTraceReplay) {
            result.interpretedSteps += traces[i]->result.steps;
        } else {
            result.interpretedSteps += ref.full.result.steps +
                                       ref.hybrid.result.steps +
                                       opt.optimistic.result.steps;
            if (opt.rolledBack)
                result.interpretedSteps += ref.hybrid.result.steps;
        }
        result.recordSeconds +=
            priceTraceRecordSeconds(cost, ref.full.result);
        if (config.useTraceReplay) {
            result.replayedEvents +=
                ref.full.result.totalEvents.total() +
                ref.hybrid.result.totalEvents.total() +
                opt.optimistic.result.totalEvents.total();
        }
    }

    result.testRuns = workload.testingSet.size();
    result.racesObserved = allRaces.size();
    result.baselineSeconds = result.fastTrack.base / cost.unitsPerSecond;

    // ---- Derived metrics ----------------------------------------------
    const double normFt = result.fastTrack.normalized();
    const double normHybrid = result.hybridFt.normalized();
    const double normOpt = result.optFt.normalized();
    if (normOpt > 0) {
        result.speedupVsFastTrack = normFt / normOpt;
        result.speedupVsHybrid = normHybrid / normOpt;
    }

    // Break-even: T such that upfront_opt + norm_opt*T equals the
    // competitor's upfront + norm*T (T in baseline seconds).
    const double upfrontOpt =
        result.profileSeconds + result.predStaticSeconds;
    auto breakEven = [&](double upfrontOther, double normOther) {
        if (normOther <= normOpt)
            return -1.0;
        return (upfrontOpt - upfrontOther) / (normOther - normOpt);
    };
    result.breakEvenVsHybrid =
        breakEven(result.soundStaticSeconds, normHybrid);
    result.breakEvenVsFastTrack = breakEven(0.0, normFt);

    return result;
}

} // namespace oha::core
