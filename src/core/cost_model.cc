#include "core/cost_model.h"

#include <algorithm>

namespace oha::core {

namespace {

using exec::EventClass;

double
invariantCost(const CostModel &model, const exec::EventCounts &checker,
              std::uint64_t slowContextChecks)
{
    double cost = 0;
    cost += double(checker[EventClass::BlockEnter]) * model.lucCheck;
    // Call-class checker events are callee-set probes and/or context
    // pushes; Ret events are context pops.
    cost += double(checker[EventClass::Call]) *
            std::max(model.calleeCheck, model.contextCheckFast);
    cost += double(checker[EventClass::Ret]) * model.contextCheckFast;
    cost += double(checker[EventClass::Lock]) * model.lockCheck;
    cost += double(checker[EventClass::Spawn]) * model.spawnCheck;
    cost += double(slowContextChecks) * model.contextCheckSlow;
    return cost;
}

} // namespace

RunCost
priceFastTrackRun(const CostModel &model, const exec::RunResult &run,
                  const exec::EventCounts &ftDelivered,
                  const exec::EventCounts *checker,
                  std::uint64_t slowContextChecks)
{
    RunCost cost;
    cost.base = double(run.steps) * model.baseInstr;

    const auto &total = run.totalEvents;
    const std::uint64_t intercepted =
        total[EventClass::Load] + total[EventClass::Store] +
        total[EventClass::Lock] + total[EventClass::Unlock] +
        total[EventClass::Spawn] + total[EventClass::Join];
    cost.framework = double(intercepted) * model.framework;

    cost.analysis =
        double(ftDelivered[EventClass::Load] +
               ftDelivered[EventClass::Store]) *
            model.ftMemCheck +
        double(ftDelivered[EventClass::Lock] +
               ftDelivered[EventClass::Unlock] +
               ftDelivered[EventClass::Spawn] +
               ftDelivered[EventClass::Join]) *
            model.ftSync;

    if (checker)
        cost.invariants = invariantCost(model, *checker,
                                        slowContextChecks);
    return cost;
}

RunCost
priceGiriRun(const CostModel &model, const exec::RunResult &run,
             const exec::EventCounts &giriDelivered,
             const exec::EventCounts *checker,
             std::uint64_t slowContextChecks)
{
    RunCost cost;
    cost.base = double(run.steps) * model.baseInstr;
    cost.analysis = double(giriDelivered.total()) * model.giriEvent;
    if (checker)
        cost.invariants = invariantCost(model, *checker,
                                        slowContextChecks);
    return cost;
}

double
priceTraceRecordSeconds(const CostModel &model, const exec::RunResult &run)
{
    return (double(run.steps) * model.baseInstr +
            double(run.totalEvents.total()) * model.recordEvent) /
           model.unitsPerSecond;
}

double
priceTraceReplaySeconds(const CostModel &model, const exec::RunResult &run)
{
    return double(run.totalEvents.total()) * model.replayEvent /
           model.unitsPerSecond;
}

} // namespace oha::core
