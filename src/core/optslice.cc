#include "core/optslice.h"

#include <algorithm>
#include <optional>

#include "dyn/giri.h"
#include "dyn/invariant_checker.h"
#include "dyn/plans.h"
#include "profile/profiler.h"
#include "support/thread_pool.h"

namespace oha::core {

namespace {

/** Points-to analysis picked CS-first within budget (a Table 2 AT). */
struct PickedAndersen
{
    analysis::AndersenResult result;
    AnalysisPick pick;
};

PickedAndersen
pickAndersen(const ir::Module &module, const inv::InvariantSet *invariants,
             const OptSliceConfig &config)
{
    analysis::AndersenOptions options;
    options.contextSensitive = true;
    options.invariants = invariants;
    options.maxContexts = config.csContextBudget;

    PickedAndersen picked;
    picked.result = analysis::runAndersen(module, options);
    if (picked.result.completed) {
        picked.pick.contextSensitive = true;
    } else {
        // CS exhausted the budget: fall back to CI (Table 2's "most
        // accurate analysis that will run").
        const std::uint64_t wasted = picked.result.workUnits;
        options.contextSensitive = false;
        picked.result = analysis::runAndersen(module, options);
        picked.result.workUnits += wasted;
        picked.pick.contextSensitive = false;
    }
    picked.pick.seconds =
        double(picked.result.workUnits) / config.cost.staticUnitsPerSecond;
    return picked;
}

/** All Output instructions of the module. */
std::vector<InstrId>
outputInstrs(const ir::Module &module)
{
    std::vector<InstrId> out;
    for (InstrId id = 0; id < module.numInstrs(); ++id)
        if (module.instr(id).op == ir::Opcode::Output)
            out.push_back(id);
    return out;
}

/** Static slices for all endpoints at one analysis level. */
struct SliceSet
{
    std::vector<std::set<InstrId>> slices;
    bool contextSensitive = false;
    bool complete = false;
    std::uint64_t workUnits = 0;
};

/**
 * Compute static slices for @p endpoints with fallback: try the
 * picked (possibly CS) points-to result; if any slice blows the work
 * budget, retry context-insensitively.  An incomplete static slice
 * must never become an instrumentation plan — it is not closed, so
 * the dynamic slicer would silently lose dependencies.
 */
SliceSet
computeAllSlices(const ir::Module &module,
                 const std::vector<InstrId> &endpoints,
                 const inv::InvariantSet *invariants,
                 const OptSliceConfig &config,
                 const analysis::AndersenResult &picked, bool pickedCs)
{
    SliceSet out;

    analysis::SlicerOptions options;
    options.invariants = invariants;
    options.maxWork = config.sliceWorkBudget;

    auto attempt = [&](const analysis::AndersenResult &pts) {
        std::vector<std::set<InstrId>> slices;
        const analysis::StaticSlicer slicer(module, pts, options);
        for (InstrId endpoint : endpoints) {
            auto slice = slicer.slice(endpoint);
            out.workUnits += slice.workUnits;
            if (!slice.completed)
                return false;
            slices.push_back(std::move(slice.instructions));
        }
        out.slices = std::move(slices);
        return true;
    };

    if (attempt(picked)) {
        out.contextSensitive = pickedCs;
        out.complete = true;
        return out;
    }
    if (pickedCs) {
        analysis::AndersenOptions ciOptions;
        ciOptions.invariants = invariants;
        const analysis::AndersenResult ciPts =
            analysis::runAndersen(module, ciOptions);
        out.workUnits += ciPts.workUnits;
        if (attempt(ciPts)) {
            out.contextSensitive = false;
            out.complete = true;
            return out;
        }
    }
    // Static slicing failed entirely: the caller must fall back to
    // full instrumentation (pure Giri).
    out.slices.assign(endpoints.size(), {});
    return out;
}

struct GiriRun
{
    exec::RunResult result;
    std::map<InstrId, std::set<InstrId>> slices;
    exec::EventCounts delivered;
    exec::EventCounts checkerDelivered;
    std::uint64_t slowChecks = 0;
    bool violated = false;
    std::uint64_t missingDeps = 0;
};

GiriRun
runGiri(const ir::Module &module, const exec::ExecConfig &config,
        const exec::InstrumentationPlan &plan,
        const std::vector<InstrId> &endpoints,
        dyn::InvariantChecker *checker = nullptr)
{
    GiriRun out;
    dyn::GiriSlicer tool(module);
    exec::Interpreter interp(module, config);
    interp.attach(&tool, &plan);
    if (checker) {
        checker->setInterpreter(&interp);
        interp.attach(checker, &checker->plan());
    }
    out.result = interp.run();
    for (InstrId endpoint : endpoints)
        out.slices[endpoint] = tool.slice(endpoint);
    out.delivered = out.result.delivered[0];
    if (checker) {
        out.checkerDelivered = out.result.delivered[1];
        out.slowChecks = checker->slowContextChecks();
        out.violated = checker->violated();
    }
    out.missingDeps = tool.missingDependencies();
    return out;
}

} // namespace

OptSliceResult
runOptSlice(const workloads::Workload &workload,
            const OptSliceConfig &config)
{
    OHA_ASSERT(!workload.race, "runOptSlice needs a slicing workload");
    const ir::Module &module = *workload.module;
    const CostModel &cost = config.cost;

    OptSliceResult result;
    result.name = workload.name;

    // ---- Phase 1: profiling -------------------------------------------
    prof::ProfileOptions profOptions;
    profOptions.callContexts = true;
    profOptions.threads = config.threads;
    prof::ProfilingCampaign campaign(module, profOptions);
    campaign.addRunsUntilConverged(workload.profilingSet,
                                   config.maxProfileRuns,
                                   config.convergenceWindow);
    const inv::InvariantSet invariants =
        config.aggressiveLucMinVisits > 1
            ? campaign.invariantsWithAggressiveLuc(
                  config.aggressiveLucMinVisits)
            : campaign.invariants();
    result.profileRunsUsed = campaign.numRuns();
    result.profileSeconds = double(campaign.profiledSteps()) *
                            cost.profilingOverhead / cost.unitsPerSecond * cost.offlineScale;

    // ---- Phase 2: static analyses --------------------------------------
    PickedAndersen soundPts = pickAndersen(module, nullptr, config);
    result.soundPts = soundPts.pick;
    PickedAndersen optPts = pickAndersen(module, &invariants, config);
    result.optPts = optPts.pick;

    // ---- Phase 3: endpoint selection ------------------------------------
    // Rank candidate endpoints by (cheap) CI sound slice size and keep
    // the non-trivial ones (Section 6.1.2).
    std::vector<InstrId> endpoints;
    {
        std::optional<analysis::AndersenResult> ciPts;
        const analysis::AndersenResult *rankPts = &soundPts.result;
        if (soundPts.pick.contextSensitive) {
            ciPts = analysis::runAndersen(module, {});
            rankPts = &*ciPts;
        }
        analysis::SlicerOptions rankOptions;
        rankOptions.maxWork = config.sliceWorkBudget;
        const analysis::StaticSlicer ranker(module, *rankPts,
                                            rankOptions);
        std::vector<std::pair<std::size_t, InstrId>> candidates;
        for (InstrId endpoint : outputInstrs(module))
            candidates.push_back(
                {ranker.slice(endpoint).instructions.size(), endpoint});
        std::sort(candidates.rbegin(), candidates.rend());
        for (const auto &[size, endpoint] : candidates) {
            if (endpoints.size() >= config.maxEndpoints)
                break;
            if (size >= config.minSliceSize || endpoints.empty())
                endpoints.push_back(endpoint);
        }
    }

    // Per-endpoint static slices with CS -> CI fallback; incomplete
    // slices must never be used as instrumentation plans.
    const SliceSet soundSlices =
        computeAllSlices(module, endpoints, nullptr, config,
                         soundPts.result, soundPts.pick.contextSensitive);
    const SliceSet optSlices =
        computeAllSlices(module, endpoints, &invariants, config,
                         optPts.result, optPts.pick.contextSensitive);
    result.soundSlice.contextSensitive = soundSlices.contextSensitive;
    result.optSlice.contextSensitive = optSlices.contextSensitive;
    result.soundSlice.seconds =
        double(soundSlices.workUnits) / cost.staticUnitsPerSecond * cost.offlineScale;
    result.optSlice.seconds =
        double(optSlices.workUnits) / cost.staticUnitsPerSecond * cost.offlineScale;

    std::vector<exec::InstrumentationPlan> hybridPlans, optPlans;
    double soundSizeSum = 0, optSizeSum = 0;
    for (std::size_t e = 0; e < endpoints.size(); ++e) {
        hybridPlans.push_back(
            soundSlices.complete
                ? dyn::sliceGiriPlan(module, soundSlices.slices[e])
                : dyn::fullGiriPlan(module));
        optPlans.push_back(
            optSlices.complete
                ? dyn::sliceGiriPlan(module, optSlices.slices[e])
                : dyn::fullGiriPlan(module));
        soundSizeSum += double(soundSlices.slices[e].size());
        optSizeSum += double(optSlices.slices[e].size());
    }
    result.endpoints = endpoints.size();
    result.soundSliceSize = soundSizeSum / double(endpoints.size());
    result.optSliceSize = optSizeSum / double(endpoints.size());

    result.soundAliasRate =
        soundPts.result.aliasRate(module, &invariants);
    result.optAliasRate = optPts.result.aliasRate(module, &invariants);

    // ---- Phase 4: dynamic slicing over the testing corpus ---------------
    dyn::CheckerConfig checkerConfig;
    checkerConfig.callContexts = invariants.hasCallContexts;
    checkerConfig.guardingLocks = false;
    checkerConfig.singletonThreads = false;

    // Every (testing input, endpoint) pair is an independent slicing
    // task; run them batched and fold the outcomes serially in task
    // order so cost accumulation is identical for any thread count.
    struct SliceEval
    {
        GiriRun hybrid;
        GiriRun optimistic;
        bool rolledBack = false;
        GiriRun redo;
    };
    const std::size_t tasks =
        workload.testingSet.size() * endpoints.size();
    const std::vector<SliceEval> evals = support::runBatch(
        tasks,
        [&](std::size_t task) {
            const auto &input =
                workload.testingSet[task / endpoints.size()];
            const std::size_t e = task % endpoints.size();
            const std::vector<InstrId> target = {endpoints[e]};

            SliceEval eval;
            eval.hybrid = runGiri(module, input, hybridPlans[e], target);
            dyn::InvariantChecker checker(module, invariants,
                                          checkerConfig);
            eval.optimistic =
                runGiri(module, input, optPlans[e], target, &checker);
            if (eval.optimistic.violated) {
                eval.rolledBack = true;
                eval.redo =
                    runGiri(module, input, hybridPlans[e], target);
            }
            return eval;
        },
        config.threads);

    for (const SliceEval &eval : evals) {
        result.hybrid.add(priceGiriRun(cost, eval.hybrid.result,
                                       eval.hybrid.delivered));

        RunCost optCost = priceGiriRun(cost, eval.optimistic.result,
                                       eval.optimistic.delivered,
                                       &eval.optimistic.checkerDelivered,
                                       eval.optimistic.slowChecks);
        const std::map<InstrId, std::set<InstrId>> &finalSlices =
            eval.rolledBack ? eval.redo.slices : eval.optimistic.slices;
        if (eval.rolledBack) {
            ++result.misSpeculations;
            optCost.rollback =
                priceGiriRun(cost, eval.redo.result, eval.redo.delivered)
                    .total();
        }
        result.optimistic.add(optCost);

        // Soundness: the recovered optimistic slice must equal the
        // traditional hybrid slice.
        if (finalSlices != eval.hybrid.slices)
            result.sliceResultsMatch = false;
    }

    result.testRuns = workload.testingSet.size();
    result.baselineSeconds = result.hybrid.base / cost.unitsPerSecond;

    const double normHybrid = result.hybrid.normalized();
    const double normOpt = result.optimistic.normalized();
    if (normOpt > 0)
        result.dynSpeedup = normHybrid / normOpt;

    const double upfrontOpt = result.profileSeconds +
                              result.optPts.seconds +
                              result.optSlice.seconds;
    const double upfrontHybrid =
        result.soundPts.seconds + result.soundSlice.seconds;
    if (normHybrid > normOpt) {
        result.breakEven = std::max(
            0.0, (upfrontOpt - upfrontHybrid) / (normHybrid - normOpt));
    } else {
        result.breakEven = -1.0;
    }

    return result;
}

} // namespace oha::core
