#include "core/optslice.h"

#include <algorithm>
#include <optional>

#include "analysis/andersen_cache.h"
#include "analysis/constraint_diff.h"
#include "core/recovery.h"
#include "dyn/giri.h"
#include "dyn/invariant_checker.h"
#include "dyn/plans.h"
#include "exec/trace.h"
#include "exec/trace_cache.h"
#include "profile/observation_cache.h"
#include "profile/profiler.h"
#include "support/env.h"
#include "support/thread_pool.h"

namespace oha::core {

namespace {

/** Points-to analysis picked CS-first within budget (a Table 2 AT). */
struct PickedAndersen
{
    /** Memoized (possibly shared) result; never mutated. */
    std::shared_ptr<const analysis::AndersenResult> result;
    AnalysisPick pick;
    /** Work burnt on a CS attempt that blew the context budget,
     *  charged to this pick's cost on top of the fallback's units. */
    std::uint64_t wastedUnits = 0;
};

PickedAndersen
pickAndersen(const std::shared_ptr<const ir::Module> &module,
             const inv::InvariantSet *invariants,
             const OptSliceConfig &config)
{
    analysis::AndersenOptions options;
    options.contextSensitive = true;
    options.invariants = invariants;
    options.maxContexts = config.csContextBudget;
    options.solverThreads = config.solverThreads;

    PickedAndersen picked;
    picked.result = analysis::runAndersenMemo(module, options);
    if (picked.result->completed) {
        picked.pick.contextSensitive = true;
    } else {
        // CS exhausted the budget: fall back to CI (Table 2's "most
        // accurate analysis that will run").
        picked.wastedUnits = picked.result->workUnits;
        options.contextSensitive = false;
        picked.result = analysis::runAndersenMemo(module, options);
        picked.pick.contextSensitive = false;
    }
    picked.pick.seconds =
        double(picked.result->workUnits + picked.wastedUnits) /
        config.cost.staticUnitsPerSecond;
    return picked;
}

/** All Output instructions of the module. */
std::vector<InstrId>
outputInstrs(const ir::Module &module)
{
    std::vector<InstrId> out;
    for (InstrId id = 0; id < module.numInstrs(); ++id)
        if (module.instr(id).op == ir::Opcode::Output)
            out.push_back(id);
    return out;
}

/**
 * Compute static slices for @p endpoints with fallback: try the
 * picked (possibly CS) points-to result; if any slice blows the work
 * budget, retry context-insensitively.  An incomplete static slice
 * must never become an instrumentation plan — it is not closed, so
 * the dynamic slicer would silently lose dependencies.
 *
 * Memoized through the static-result cache: sweep points that rebuild
 * the same (module, invariants, endpoints) slicing task — Figure 8
 * re-runs the whole static phase per profiling-run count — reuse the
 * stored slice sets.  The stored workUnits are the deterministic cost
 * of the one real computation.
 */
std::shared_ptr<const analysis::SliceSetResult>
computeAllSlices(const std::shared_ptr<const ir::Module> &module,
                 const std::vector<InstrId> &endpoints,
                 const inv::InvariantSet *invariants,
                 const OptSliceConfig &config,
                 const analysis::AndersenResult &picked, bool pickedCs)
{
    // Everything that can change the output beyond (module,
    // invariants, endpoints): the per-slice work budget and the
    // analysis level of the picked points-to result.
    const std::uint64_t configKey =
        config.sliceWorkBudget ^ (pickedCs ? 1ull << 63 : 0);

    auto compute = [&]() {
        analysis::SliceSetResult out;

        analysis::SlicerOptions options;
        options.invariants = invariants;
        options.maxWork = config.sliceWorkBudget;

        // Endpoints slice independently; compute them batched, then
        // fold work accounting in endpoint order, stopping at the
        // first incomplete slice — exactly the serial early-exit
        // accounting, so reported static-phase costs are thread-count
        // invariant.
        auto attempt = [&](const analysis::AndersenResult &pts) {
            const analysis::StaticSlicer slicer(*module, pts, options);
            auto sliceResults = support::runBatch(
                endpoints.size(),
                [&](std::size_t e) { return slicer.slice(endpoints[e]); },
                config.threads);
            std::vector<std::set<InstrId>> slices;
            for (auto &slice : sliceResults) {
                out.workUnits += slice.workUnits;
                if (!slice.completed)
                    return false;
                slices.push_back(std::move(slice.instructions));
            }
            out.slices = std::move(slices);
            return true;
        };

        if (attempt(picked)) {
            out.contextSensitive = pickedCs;
            out.complete = true;
            return out;
        }
        if (pickedCs) {
            analysis::AndersenOptions ciOptions;
            ciOptions.invariants = invariants;
            ciOptions.solverThreads = config.solverThreads;
            const std::shared_ptr<const analysis::AndersenResult> ciPts =
                analysis::runAndersenMemo(module, ciOptions);
            out.workUnits += ciPts->workUnits;
            if (attempt(*ciPts)) {
                out.contextSensitive = false;
                out.complete = true;
                return out;
            }
        }
        // Static slicing failed entirely: the caller must fall back
        // to full instrumentation (pure Giri).
        out.slices.assign(endpoints.size(), {});
        return out;
    };

    // Per-endpoint lineage patching: when the cache holds the slice
    // set of an ancestor version of this module, endpoints whose base
    // slice the edit cannot reach keep it (translated across
    // versions); only the rest are re-sliced.  A translated slice is
    // exact, not conservative: all its instructions live in clean
    // functions (equal points-to nodes, identical bodies), so every
    // dependence edge among them is version-stable, and the closure
    // cannot have grown — growth would need a slice load newly
    // aliasing a store in a dirty function, which the
    // dirty-store-cells intersection check rules out.
    auto incremental = [&](const analysis::SliceLineageBase &base)
        -> std::optional<analysis::SliceSetResult> {
        const analysis::ConstraintDiff &diff = *base.diff;
        const analysis::SliceSetResult &bs = *base.slices;
        // Only a complete base set at the same analysis level is a
        // usable patch base; CS slices additionally need a stable
        // cross-version context identity.
        if (!bs.complete || bs.contextSensitive != pickedCs)
            return std::nullopt;
        if (pickedCs && diff.hasCallContextsEither)
            return std::nullopt;
        if (bs.endpoints.size() != bs.slices.size())
            return std::nullopt;
        analysis::AndersenOptions baseOptions;
        baseOptions.contextSensitive = pickedCs;
        baseOptions.invariants = base.invariants.get();
        baseOptions.solverThreads = config.solverThreads;
        const std::shared_ptr<const analysis::AndersenResult> basePts =
            analysis::runAndersenMemo(base.module, baseOptions);
        if (!basePts->completed || !picked.completed)
            return std::nullopt;

        const analysis::VersionMap vmap =
            analysis::buildVersionMap(*base.module, *module);
        const std::vector<bool> dirty = analysis::unionDirtyClosure(
            *base.module, *basePts, *module, picked, diff,
            base.invariants.get(), invariants);

        SparseBitSet dirtyStoreCells;
        for (InstrId id = 0; id < module->numInstrs(); ++id) {
            const ir::Instruction &ins = module->instr(id);
            if (ins.op == ir::Opcode::Store && dirty[ins.func])
                dirtyStoreCells.unionWith(picked.pointerTargets(id));
        }

        std::map<InstrId, std::size_t> baseIndexOfEndpoint;
        for (std::size_t i = 0; i < bs.endpoints.size(); ++i) {
            const InstrId mapped = vmap.instrMap[bs.endpoints[i]];
            if (mapped != kNoInstr)
                baseIndexOfEndpoint[mapped] = i;
        }

        analysis::SliceSetResult out;
        out.contextSensitive = pickedCs;
        out.complete = true;
        out.slices.resize(endpoints.size());
        analysis::SlicerOptions options;
        options.invariants = invariants;
        options.maxWork = config.sliceWorkBudget;
        const analysis::StaticSlicer slicer(*module, picked, options);
        for (std::size_t e = 0; e < endpoints.size(); ++e) {
            std::set<InstrId> translated;
            bool reusable = false;
            const auto at = baseIndexOfEndpoint.find(endpoints[e]);
            if (at != baseIndexOfEndpoint.end()) {
                reusable = true;
                for (const InstrId bid : bs.slices[at->second]) {
                    const InstrId nid = vmap.instrMap[bid];
                    if (nid == kNoInstr ||
                        dirty[module->instr(nid).func] ||
                        (module->instr(nid).op == ir::Opcode::Load &&
                         picked.pointerTargets(nid).intersects(
                             dirtyStoreCells))) {
                        reusable = false;
                        break;
                    }
                    translated.insert(nid);
                }
            }
            if (reusable) {
                out.workUnits += translated.size();
                out.slices[e] = std::move(translated);
                continue;
            }
            analysis::StaticSliceResult fresh =
                slicer.slice(endpoints[e]);
            out.workUnits += fresh.workUnits;
            // Budget blown: bail out to compute()'s full fallback
            // ladder (CI retry, then pure-Giri surrender).
            if (!fresh.completed)
                return std::nullopt;
            out.slices[e] = std::move(fresh.instructions);
        }
        return out;
    };
    return analysis::sliceSetMemo(module, invariants, configKey,
                                  endpoints, compute, incremental);
}

struct GiriRun
{
    exec::RunResult result;
    std::map<InstrId, std::set<InstrId>> slices;
    exec::EventCounts delivered;
    exec::EventCounts checkerDelivered;
    std::uint64_t slowChecks = 0;
    bool violated = false;
    std::uint64_t missingDeps = 0;
};

GiriRun
runGiri(const ir::Module &module, const exec::ExecConfig &config,
        const exec::InstrumentationPlan &plan,
        const std::vector<InstrId> &endpoints,
        dyn::InvariantChecker *checker = nullptr)
{
    GiriRun out;
    dyn::GiriSlicer tool(module);
    exec::Interpreter interp(module, config);
    interp.attach(&tool, &plan);
    if (checker) {
        checker->setControl(&interp);
        interp.attach(checker, &checker->plan());
    }
    out.result = interp.run();
    for (InstrId endpoint : endpoints)
        out.slices[endpoint] = tool.slice(endpoint);
    out.delivered = out.result.delivered[0];
    if (checker) {
        out.checkerDelivered = out.result.delivered[1];
        out.slowChecks = checker->slowContextChecks();
        out.violated = checker->violated();
    }
    out.missingDeps = tool.missingDependencies();
    return out;
}

/** Same slicing run, driven from a recorded trace instead of a live
 *  interpreter (record-once/analyze-many).  Byte-identical results.
 *  The trace is read-only, so many tasks may replay it concurrently. */
GiriRun
replayGiri(const ir::Module &module, const exec::RecordedTrace &trace,
           const exec::InstrumentationPlan &plan,
           const std::vector<InstrId> &endpoints,
           dyn::InvariantChecker *checker = nullptr)
{
    GiriRun out;
    dyn::GiriSlicer tool(module);
    exec::TraceReplayer replayer(module, trace);
    replayer.attach(&tool, &plan);
    if (checker) {
        checker->setControl(&replayer);
        replayer.attach(checker, &checker->plan());
    }
    out.result = replayer.run();
    for (InstrId endpoint : endpoints)
        out.slices[endpoint] = tool.slice(endpoint);
    out.delivered = out.result.delivered[0];
    if (checker) {
        out.checkerDelivered = out.result.delivered[1];
        out.slowChecks = checker->slowContextChecks();
        out.violated = checker->violated();
    }
    out.missingDeps = tool.missingDependencies();
    return out;
}

} // namespace

OptSliceResult
runOptSlice(const workloads::Workload &workload,
            const OptSliceConfig &config)
{
    OHA_ASSERT(!workload.race, "runOptSlice needs a slicing workload");
    const ir::Module &module = *workload.module;
    const CostModel &cost = config.cost;

    OptSliceResult result;
    result.name = workload.name;

    // ---- Phase 1: profiling -------------------------------------------
    prof::ProfileOptions profOptions;
    profOptions.callContexts = true;
    profOptions.threads = config.threads;
    prof::ProfilingCampaign campaign(module, profOptions);
    prof::Observer observer;
    if (config.cacheProfileObservations)
        observer = [&](const exec::ExecConfig &input) {
            return prof::observeRunMemo(workload.module, profOptions,
                                        input);
        };
    campaign.addRunsUntilConverged(workload.profilingSet,
                                   config.maxProfileRuns,
                                   config.convergenceWindow, observer);
    inv::InvariantSet invariants =
        config.aggressiveLucMinVisits > 1
            ? campaign.invariantsWithAggressiveLuc(
                  config.aggressiveLucMinVisits)
            : campaign.invariants();
    result.profileRunsUsed = campaign.numRuns();
    result.profileSeconds = double(campaign.profiledSteps()) *
                            cost.profilingOverhead / cost.unitsPerSecond * cost.offlineScale;

    // ---- Phase 1b: optional fault injection ---------------------------
    // Perturb the profiled invariants so the testing corpus provably
    // mis-speculates (tests, CI seed sweeps).  Only the families the
    // OptSlice checker configuration watches are injectable here: lock
    // and spawn invariants are race-detection machinery the slicing
    // checker never arms (guardingLocks/singletonThreads below).
    if (config.faultSeed != 0) {
        dyn::FaultInjectorOptions injectOptions;
        injectOptions.seed = config.faultSeed;
        injectOptions.families = {dyn::ViolationFamily::UnreachableBlock,
                                  dyn::ViolationFamily::CalleeSet,
                                  dyn::ViolationFamily::CallContext};
        const dyn::FaultInjector injector(module, injectOptions);
        result.injectedFaults =
            injector.inject(invariants, workload.testingSet);
    }

    // ---- Phase 2: static analyses --------------------------------------
    // The sound and predicated configurations are independent solves;
    // run them concurrently (results are collected in index order, so
    // the reported picks are thread-count invariant).
    const std::shared_ptr<const ir::Module> moduleSp = workload.module;
    std::vector<PickedAndersen> picks = support::runBatch(
        2,
        [&](std::size_t i) {
            return pickAndersen(moduleSp, i == 0 ? nullptr : &invariants,
                                config);
        },
        config.threads);
    PickedAndersen &soundPts = picks[0];
    PickedAndersen &optPts = picks[1];
    result.soundPts = soundPts.pick;
    result.optPts = optPts.pick;

    // ---- Phase 3: endpoint selection ------------------------------------
    // Rank candidate endpoints by (cheap) CI sound slice size and keep
    // the non-trivial ones (Section 6.1.2).
    std::vector<InstrId> endpoints;
    {
        std::shared_ptr<const analysis::AndersenResult> ciPts;
        const analysis::AndersenResult *rankPts = soundPts.result.get();
        if (soundPts.pick.contextSensitive) {
            // The memo serves the CI pre-pass of the sound CS solve
            // back instead of solving again.
            ciPts = analysis::runAndersenMemo(moduleSp, {});
            rankPts = ciPts.get();
        }
        analysis::SlicerOptions rankOptions;
        rankOptions.maxWork = config.sliceWorkBudget;
        const analysis::StaticSlicer ranker(module, *rankPts,
                                            rankOptions);
        const std::vector<InstrId> outputs = outputInstrs(module);
        const std::vector<std::size_t> sizes = support::runBatch(
            outputs.size(),
            [&](std::size_t i) {
                return ranker.slice(outputs[i]).instructions.size();
            },
            config.threads);
        std::vector<std::pair<std::size_t, InstrId>> candidates;
        for (std::size_t i = 0; i < outputs.size(); ++i)
            candidates.push_back({sizes[i], outputs[i]});
        std::sort(candidates.rbegin(), candidates.rend());
        for (const auto &[size, endpoint] : candidates) {
            if (endpoints.size() >= config.maxEndpoints)
                break;
            if (size >= config.minSliceSize || endpoints.empty())
                endpoints.push_back(endpoint);
        }
    }

    // Per-endpoint static slices with CS -> CI fallback; incomplete
    // slices must never be used as instrumentation plans.
    const std::shared_ptr<const analysis::SliceSetResult> soundSlicesSp =
        computeAllSlices(moduleSp, endpoints, nullptr, config,
                         *soundPts.result,
                         soundPts.pick.contextSensitive);
    const std::shared_ptr<const analysis::SliceSetResult> optSlicesSp =
        computeAllSlices(moduleSp, endpoints, &invariants, config,
                         *optPts.result, optPts.pick.contextSensitive);
    const analysis::SliceSetResult &soundSlices = *soundSlicesSp;
    const analysis::SliceSetResult &optSlices = *optSlicesSp;
    result.soundSlice.contextSensitive = soundSlices.contextSensitive;
    result.optSlice.contextSensitive = optSlices.contextSensitive;
    result.soundSlice.seconds =
        double(soundSlices.workUnits) / cost.staticUnitsPerSecond * cost.offlineScale;
    result.optSlice.seconds =
        double(optSlices.workUnits) / cost.staticUnitsPerSecond * cost.offlineScale;

    std::vector<exec::InstrumentationPlan> hybridPlans, optPlans;
    double soundSizeSum = 0, optSizeSum = 0;
    for (std::size_t e = 0; e < endpoints.size(); ++e) {
        hybridPlans.push_back(
            soundSlices.complete
                ? dyn::sliceGiriPlan(module, soundSlices.slices[e])
                : dyn::fullGiriPlan(module));
        optPlans.push_back(
            optSlices.complete
                ? dyn::sliceGiriPlan(module, optSlices.slices[e])
                : dyn::fullGiriPlan(module));
        soundSizeSum += double(soundSlices.slices[e].size());
        optSizeSum += double(optSlices.slices[e].size());
    }
    result.endpoints = endpoints.size();
    result.soundSliceSize = soundSizeSum / double(endpoints.size());
    result.optSliceSize = optSizeSum / double(endpoints.size());

    result.soundAliasRate =
        soundPts.result->aliasRate(module, &invariants);
    result.optAliasRate = optPts.result->aliasRate(module, &invariants);

    // ---- Phase 4: dynamic slicing over the testing corpus ---------------
    dyn::CheckerConfig checkerConfig;
    checkerConfig.callContexts = invariants.hasCallContexts;
    checkerConfig.guardingLocks = false;
    checkerConfig.singletonThreads = false;

    // Record-once mode: capture every testing input's trace exactly
    // once, up front.  The traces are immutable afterwards, so the
    // per-(input, endpoint) tasks below replay them concurrently
    // without synchronization.  With cacheTraceCaptures the captures
    // come from (and feed) the shared cross-request cache, so a warm
    // service request skips even the one recording execution.
    std::vector<std::shared_ptr<const exec::RecordedTrace>> traces;
    if (config.useTraceReplay) {
        traces = support::runBatch(
            workload.testingSet.size(),
            [&](std::size_t i) {
                return config.cacheTraceCaptures
                           ? exec::recordRunMemo(moduleSp,
                                                 workload.testingSet[i])
                           : std::make_shared<const exec::RecordedTrace>(
                                 exec::recordRun(module,
                                                 workload.testingSet[i]));
            },
            config.threads);
    }

    // Every (testing input, endpoint) pair is an independent slicing
    // task, ordered input-major.  The hybrid references do not depend
    // on the speculative plans, so they are evaluated once per task up
    // front; each reference doubles as the deterministic rollback
    // re-analysis and as the degraded configuration once the circuit
    // breaker trips.
    const std::size_t tasks =
        workload.testingSet.size() * endpoints.size();
    // Replay-only batches may run wider than OHA_THREADS: the tasks
    // share one immutable capture read-only (axis (a) of sharded
    // replay), so OHA_REPLAY_SHARDS raises the floor here while
    // interpreter-bound phases keep the configured width.
    const std::size_t replayWorkers =
        config.useTraceReplay
            ? std::max<std::size_t>(
                  support::configuredThreads(config.threads),
                  config.replayShards != 0
                      ? std::min<std::size_t>(config.replayShards, 64)
                      : support::envSizeBytes("OHA_REPLAY_SHARDS", 1, 1, 64))
            : config.threads;
    const std::vector<GiriRun> refs = support::runBatch(
        tasks,
        [&](std::size_t task) {
            const std::size_t e = task % endpoints.size();
            const std::vector<InstrId> target = {endpoints[e]};
            if (config.useTraceReplay) {
                return replayGiri(module,
                                  *traces[task / endpoints.size()],
                                  hybridPlans[e], target);
            }
            return runGiri(module,
                           workload.testingSet[task / endpoints.size()],
                           hybridPlans[e], target);
        },
        replayWorkers);

    // Speculative runs, in adaptive rounds (same repair loop as
    // runOptFt): batch the remaining tasks under the current
    // optimistic plans, scan serially in task order, and at the first
    // rollback demote the lying invariant, re-run the predicated
    // points-to + slicing phase through the memo caches, rebuild the
    // per-endpoint plans, and restart at the following task.  Later
    // same-round evaluations are discarded, so results equal the
    // serial repair loop at any thread count.
    struct OptEval
    {
        GiriRun optimistic;
        bool rolledBack = false;
        bool degraded = false;
        dyn::Violation violation;
    };
    std::vector<OptEval> opts(tasks);
    const RecoveryBreaker breaker{config.maxRepredications,
                                  config.misspecRateThreshold,
                                  config.minRunsForMisspecRate};
    std::uint64_t rollbacksSeen = 0;
    bool degraded = false;
    std::size_t next = 0;
    while (next < tasks) {
        if (degraded) {
            // Sound fallback: the rest of the corpus runs the hybrid
            // plans (no speculation, no checker).  By determinism that
            // evaluation is identical to the hybrid reference.
            for (std::size_t task = next; task < tasks; ++task) {
                opts[task].optimistic = refs[task];
                opts[task].degraded = true;
            }
            break;
        }
        const std::size_t start = next;
        const std::vector<OptEval> round = support::runBatch(
            tasks - start,
            [&](std::size_t k) {
                const std::size_t task = start + k;
                const std::size_t e = task % endpoints.size();
                const std::vector<InstrId> target = {endpoints[e]};
                OptEval eval;
                dyn::InvariantChecker checker(module, invariants,
                                              checkerConfig);
                eval.optimistic =
                    config.useTraceReplay
                        ? replayGiri(module,
                                     *traces[task / endpoints.size()],
                                     optPlans[e], target, &checker)
                        : runGiri(module,
                                  workload
                                      .testingSet[task / endpoints.size()],
                                  optPlans[e], target, &checker);
                if (eval.optimistic.violated) {
                    eval.rolledBack = true;
                    eval.violation = checker.violation();
                }
                return eval;
            },
            config.threads);

        next = tasks;
        for (std::size_t k = 0; k < round.size(); ++k) {
            const std::size_t task = start + k;
            opts[task] = round[k];
            if (!opts[task].rolledBack)
                continue;
            ++rollbacksSeen;
            if (!config.adaptiveRecovery)
                continue; // historical behavior: plans never change
            const dyn::Violation &violation = opts[task].violation;
            if (breaker.tripped(result.repredications, rollbacksSeen,
                                task + 1)) {
                degraded = true;
                result.circuitBroken = true;
            } else if (!invariants.demote(violation)) {
                // Defensive: an unrepairable violation must degrade
                // rather than spin.
                degraded = true;
                result.circuitBroken = true;
            } else {
                result.demotions.push_back(violation);
                ++result.repredications;
                // Re-predicate points-to and slicing on the repaired
                // invariants; both routes are memoized, so repeated
                // repairs of converging sets are incremental.
                const PickedAndersen repredPts =
                    pickAndersen(moduleSp, &invariants, config);
                const std::shared_ptr<const analysis::SliceSetResult>
                    repredSlices = computeAllSlices(
                        moduleSp, endpoints, &invariants, config,
                        *repredPts.result,
                        repredPts.pick.contextSensitive);
                result.repredStaticSeconds +=
                    repredPts.pick.seconds +
                    double(repredSlices->workUnits) /
                        cost.staticUnitsPerSecond * cost.offlineScale;
                for (std::size_t e = 0; e < endpoints.size(); ++e) {
                    optPlans[e] =
                        repredSlices->complete
                            ? dyn::sliceGiriPlan(module,
                                                 repredSlices->slices[e])
                            : dyn::fullGiriPlan(module);
                }
            }
            next = task + 1; // discard this round's later evaluations
            break;
        }
    }

    // In record-once mode each input's interpreter work happened once,
    // at capture time, regardless of how many endpoint tasks share it.
    if (config.useTraceReplay) {
        for (const auto &trace : traces)
            result.interpretedSteps += trace->result.steps;
    }

    // Fold serially in task order, so cost accumulation — including
    // floating-point sums — is identical for any thread count.
    for (std::size_t task = 0; task < tasks; ++task) {
        const GiriRun &hybrid = refs[task];
        const OptEval &opt = opts[task];
        result.hybrid.add(
            priceGiriRun(cost, hybrid.result, hybrid.delivered));

        RunCost optCost = priceGiriRun(cost, opt.optimistic.result,
                                       opt.optimistic.delivered,
                                       &opt.optimistic.checkerDelivered,
                                       opt.optimistic.slowChecks);
        const std::map<InstrId, std::set<InstrId>> &finalSlices =
            opt.rolledBack ? hybrid.slices : opt.optimistic.slices;
        if (opt.rolledBack) {
            ++result.misSpeculations;
            // Roll back: deterministic re-analysis under the sound
            // hybrid plan — identical to the hybrid reference by
            // determinism, so reuse it.
            optCost.rollback =
                priceGiriRun(cost, hybrid.result, hybrid.delivered)
                    .total();
            // Additive metric; hybrid.result is identical in both
            // modes, so it stays parity-comparable.
            result.replayRollbackSeconds +=
                priceTraceReplaySeconds(cost, hybrid.result);
        }
        result.optimistic.add(optCost);

        if (config.useTraceReplay) {
            result.replayedEvents +=
                hybrid.result.totalEvents.total() +
                opt.optimistic.result.totalEvents.total();
        } else {
            result.interpretedSteps += hybrid.result.steps +
                                       opt.optimistic.result.steps;
            if (opt.rolledBack)
                result.interpretedSteps += hybrid.result.steps;
        }

        // Soundness: the recovered optimistic slice must equal the
        // traditional hybrid slice.
        if (finalSlices != hybrid.slices)
            result.sliceResultsMatch = false;
    }

    // One modeled capture per testing input.  The hybrid run's steps
    // and event totals are plan-independent, so this prices the same
    // in either mode (the first endpoint task of each input stands in
    // for the input's execution).
    if (!endpoints.empty()) {
        for (std::size_t i = 0; i < workload.testingSet.size(); ++i) {
            result.recordSeconds += priceTraceRecordSeconds(
                cost, refs[i * endpoints.size()].result);
        }
    }

    result.testRuns = workload.testingSet.size();
    result.baselineSeconds = result.hybrid.base / cost.unitsPerSecond;

    const double normHybrid = result.hybrid.normalized();
    const double normOpt = result.optimistic.normalized();
    if (normOpt > 0)
        result.dynSpeedup = normHybrid / normOpt;

    const double upfrontOpt = result.profileSeconds +
                              result.optPts.seconds +
                              result.optSlice.seconds;
    const double upfrontHybrid =
        result.soundPts.seconds + result.soundSlice.seconds;
    if (normHybrid > normOpt) {
        result.breakEven = std::max(
            0.0, (upfrontOpt - upfrontHybrid) / (normHybrid - normOpt));
    } else {
        result.breakEven = -1.0;
    }

    return result;
}

} // namespace oha::core
