#include "core/report.h"

#include <map>
#include <sstream>

#include "support/table.h"

namespace oha::core {

PaperReference
paperReference(const std::string &benchmark)
{
    // Figure 5 / Table 1 (OptFT speedups) and Figure 6 / Table 2
    // (OptSlice dynamic speedups), as printed in the paper.
    static const std::map<std::string, PaperReference> refs = {
        {"lusearch", {6.3, 3.0, 0}}, {"pmd", {1.6, 1.3, 0}},
        {"raytracer", {9.8, 3.6, 0}}, {"moldyn", {6.7, 3.5, 0}},
        {"sunflow", {2.6, 1.1, 0}},  {"montecarlo", {1.3, 0.99, 0}},
        {"batik", {7.6, 1.2, 0}},    {"xalan", {1.0, 1.0, 0}},
        {"luindex", {4.8, 3.6, 0}},
        {"nginx", {0, 0, 1.2}},      {"redis", {0, 0, 13.1}},
        {"perl", {0, 0, 1.4}},       {"vim", {0, 0, 9.9}},
        {"sphinx", {0, 0, 3.9}},     {"go", {0, 0, 6.5}},
        {"zlib", {0, 0, 81.2}},
    };
    auto it = refs.find(benchmark);
    return it == refs.end() ? PaperReference{} : it->second;
}

std::string
markdownRow(const OptFtResult &result)
{
    const PaperReference ref = paperReference(result.name);
    std::ostringstream os;
    os << "| " << result.name << " | "
       << fmtDouble(result.fastTrack.normalized(), 1) << " | "
       << fmtDouble(result.hybridFt.normalized(), 1) << " | "
       << fmtDouble(result.optFt.normalized(), 1) << " | "
       << fmtSpeedup(result.speedupVsFastTrack);
    if (ref.speedupVsFastTrack > 0)
        os << " (paper " << fmtSpeedup(ref.speedupVsFastTrack) << ")";
    os << " | " << fmtSpeedup(result.speedupVsHybrid);
    if (ref.speedupVsHybrid > 0)
        os << " (paper " << fmtSpeedup(ref.speedupVsHybrid) << ")";
    os << " | " << (result.staticallyRaceFree ? "race-free" : "")
       << (result.raceReportsMatch ? "" : " **MISMATCH**") << " |";
    return os.str();
}

std::string
markdownRow(const OptSliceResult &result)
{
    const PaperReference ref = paperReference(result.name);
    std::ostringstream os;
    os << "| " << result.name << " | "
       << fmtDouble(result.hybrid.normalized(), 1) << " | "
       << fmtDouble(result.optimistic.normalized(), 1) << " | "
       << fmtSpeedup(result.dynSpeedup);
    if (ref.sliceSpeedup > 0)
        os << " (paper " << fmtSpeedup(ref.sliceSpeedup) << ")";
    os << " | " << fmtDouble(result.soundSliceSize, 0) << " -> "
       << fmtDouble(result.optSliceSize, 0) << " | "
       << result.misSpeculations << " | "
       << (result.sliceResultsMatch ? "" : "**MISMATCH**") << " |";
    return os.str();
}

std::string
generateSuiteReport(const ReportOptions &options)
{
    std::ostringstream os;
    os << "# OHA suite report (live)\n\n";
    os << "Deterministic paper-vs-measured comparison regenerated "
          "from the current library.\n\n";

    if (options.includeRaceSuite) {
        os << "## Race detection (Figure 5 / Table 1)\n\n";
        os << "| benchmark | FastTrack | Hybrid FT | OptFT | "
              "speedup vs FT | speedup vs hybrid | notes |\n";
        os << "|---|---|---|---|---|---|---|\n";
        double sumFt = 0, sumHyb = 0;
        int interesting = 0;
        for (const auto &name : workloads::raceWorkloadNames()) {
            OptFtConfig config;
            config.maxProfileRuns = options.profileRuns;
            const auto result = runOptFt(
                workloads::makeRaceWorkload(name, options.profileRuns,
                                            options.raceTestRuns),
                config);
            os << markdownRow(result) << "\n";
            if (!result.staticallyRaceFree) {
                sumFt += result.speedupVsFastTrack;
                sumHyb += result.speedupVsHybrid;
                ++interesting;
            }
        }
        if (interesting > 0) {
            os << "\naverages over the " << interesting
               << " non-race-free benchmarks: "
               << fmtSpeedup(sumFt / interesting)
               << " vs FastTrack (paper 3.5x), "
               << fmtSpeedup(sumHyb / interesting)
               << " vs hybrid FT (paper 1.8x)\n";
        }
        os << "\n";
    }

    if (options.includeSliceSuite) {
        os << "## Dynamic slicing (Figure 6 / Table 2)\n\n";
        os << "| benchmark | Trad. hybrid | OptSlice | speedup | "
              "static slice | rollbacks | notes |\n";
        os << "|---|---|---|---|---|---|---|\n";
        double sum = 0;
        int count = 0;
        for (const auto &name : workloads::sliceWorkloadNames()) {
            OptSliceConfig config;
            config.maxProfileRuns = options.profileRuns;
            const auto result = runOptSlice(
                workloads::makeSliceWorkload(name, options.profileRuns,
                                             options.sliceTestRuns),
                config);
            os << markdownRow(result) << "\n";
            sum += result.dynSpeedup;
            ++count;
        }
        if (count > 0) {
            os << "\naverage OptSlice speedup: "
               << fmtSpeedup(sum / count) << " (paper 8.3x)\n";
        }
    }
    return os.str();
}

} // namespace oha::core
