/**
 * @file
 * The deterministic cost model that converts event counts into
 * modeled runtimes.
 *
 * The paper reports wall-clock overheads on the authors' testbed;
 * our substrate is an interpreter, so absolute wall time is
 * meaningless.  Instead — following the paper's own observation that
 * "the overhead of dynamic analysis is roughly proportional to the
 * amount of instrumentation" (Section 2.3) — every run is priced as
 * Σ events × per-event cost.  Costs are in abstract units; a fixed
 * units-per-second constant converts to the modeled seconds shown in
 * the Table 1/2 reproductions.  All results are therefore exactly
 * reproducible across machines.
 */

#pragma once

#include <cstdint>

#include "exec/interpreter.h"

namespace oha::core {

/** Per-event cost constants (abstract units). */
struct CostModel
{
    /** Uninstrumented guest instruction. */
    double baseInstr = 1.0;

    /** RoadRunner-style framework interception of a memory or sync
     *  event, paid by every FastTrack-family tool regardless of
     *  elision (Figure 5's "Framework Overhead" band).  Giri-family
     *  tools use compile-time instrumentation and pay nothing. */
    double framework = 2.0;

    /** FastTrack epoch/VC check per instrumented load/store. */
    double ftMemCheck = 38.0;
    /** FastTrack vector-clock transfer per lock/unlock/spawn/join. */
    double ftSync = 60.0;

    /** Giri trace append per instrumented instruction.  Dynamic
     *  slicing is extremely heavyweight (the paper's traditional
     *  hybrid slicer reaches 339x, Figure 6). */
    double giriEvent = 260.0;

    /** Invariant checks (designed to be cheap, Section 2.1). */
    double lucCheck = 0.1;          ///< per unreachable-block entry hit
    double calleeCheck = 0.8;       ///< per checked indirect call
    double contextCheckFast = 1.4;  ///< per call/ret context update
    double contextCheckSlow = 8.0;  ///< per exact-set fallback probe
    double lockCheck = 0.8;         ///< per checked lock acquisition
    double spawnCheck = 0.8;        ///< per checked spawn

    /** Trace capture: cost of appending one event record during the
     *  execute-once recording run (record-once/analyze-many mode). */
    double recordEvent = 0.3;
    /** Trace replay: cost of decoding + dispatching one recorded
     *  event without re-running fetch/decode/eval.  Well under
     *  baseInstr + framework per event, which is where replay-based
     *  rollback wins over re-execution. */
    double replayEvent = 0.8;

    /** Modeled interpreter speed: units per modeled second. */
    double unitsPerSecond = 60e6;
    /** Static-analysis solver speed: work units per modeled second. */
    double staticUnitsPerSecond = 1.2e5;
    /** Profiling overhead multiplier vs. an uninstrumented run. */
    double profilingOverhead = 12.0;
    /** Corpus-scale normalization for offline (profiling + static)
     *  costs.  Our generated programs and corpora are ~2-3 orders of
     *  magnitude smaller than the paper's benchmarks; offline costs
     *  are scaled so the break-even analysis of Tables 1/2 plays out
     *  on the paper's minutes-scale axis. */
    double offlineScale = 400.0;
};

/** Cost breakdown of one dynamic-analysis run (or a corpus of runs). */
struct RunCost
{
    double base = 0;       ///< uninstrumented execution
    double framework = 0;  ///< interception framework
    double analysis = 0;   ///< the analysis' own checks
    double invariants = 0; ///< likely-invariant verification
    double rollback = 0;   ///< sound re-analysis after mis-speculation

    double
    total() const
    {
        return base + framework + analysis + invariants + rollback;
    }

    /** Runtime normalized to uninstrumented execution (Figures 5/6). */
    double
    normalized() const
    {
        return base > 0 ? total() / base : 0.0;
    }

    void
    add(const RunCost &other)
    {
        base += other.base;
        framework += other.framework;
        analysis += other.analysis;
        invariants += other.invariants;
        rollback += other.rollback;
    }
};

/** Price a FastTrack-family run from its event accounting.
 *  @param ftDelivered events delivered to the FastTrack tool
 *  @param checker     events delivered to the invariant checker
 *                     (null when none attached)
 *  @param slowContextChecks exact-set context probes performed */
RunCost priceFastTrackRun(const CostModel &model,
                          const exec::RunResult &run,
                          const exec::EventCounts &ftDelivered,
                          const exec::EventCounts *checker = nullptr,
                          std::uint64_t slowContextChecks = 0);

/** Price a Giri-family run. */
RunCost priceGiriRun(const CostModel &model, const exec::RunResult &run,
                     const exec::EventCounts &giriDelivered,
                     const exec::EventCounts *checker = nullptr,
                     std::uint64_t slowContextChecks = 0);

/** Modeled seconds to capture @p run's trace once: the uninstrumented
 *  execution plus the per-event append cost. */
double priceTraceRecordSeconds(const CostModel &model,
                               const exec::RunResult &run);

/** Modeled seconds to replay @p run's recorded event stream through
 *  one analysis configuration (decode + dispatch only; no guest
 *  fetch/decode/eval). */
double priceTraceReplaySeconds(const CostModel &model,
                               const exec::RunResult &run);

} // namespace oha::core
